"""Benchmark: regenerate paper Fig. 8.

SpaceCDN latency distributions when only 30/50/80% of satellites duty-cycle
as caches, against the terrestrial median reference line.
"""

from repro.experiments import figure8
from repro.experiments.common import DEFAULT_SEED


def test_figure8(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure8.run(seed=DEFAULT_SEED, users_per_epoch=20, num_epochs=4),
        rounds=1,
        iterations=1,
    )
    emit("Figure 8: duty-cycled SpaceCDN latency", figure8.format_result(result))

    # Paper: >= 50% caching satellites stay competitive with terrestrial.
    competitive = result.competitive_fractions()
    assert 0.5 in competitive
    assert 0.8 in competitive
    # And the latency must decrease with the caching fraction.
    assert (
        result.rtt_summaries[0.8].median
        <= result.rtt_summaries[0.5].median
        <= result.rtt_summaries[0.3].median
    )
