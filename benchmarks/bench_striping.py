"""Ablation: video-stripe duration vs satellite chain and coverage gaps (§4).

Stripes must be short enough that one satellite pass covers a stripe's
playback window (the paper suggests "n minutes" per stripe with 5-10 minute
passes).
"""

from repro.analysis.tables import format_table
from repro.experiments.common import shell1_constellation
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.striping import plan_stripes, stripe_coverage_gaps


def _sweep():
    constellation = shell1_constellation()
    viewer = GeoPoint(0.0, 0.0, 0.0)
    rows = []
    for stripe_s in (120.0, 300.0, 600.0):
        plan = plan_stripes(
            constellation,
            viewer,
            start_s=0.0,
            video_duration_s=3600.0,
            stripe_duration_s=stripe_s,
            pass_step_s=15.0,
        )
        gaps = stripe_coverage_gaps(plan)
        gap_seconds = sum(g for _, g in gaps)
        preloadable = sum(1 for a in plan.assignments if a.slack_before_s > 0)
        rows.append(
            (
                f"{stripe_s:.0f}s stripes",
                plan.num_stripes,
                len(plan.distinct_satellites()),
                gap_seconds / 3600.0,
                preloadable,
            )
        )
    return rows


def test_striping_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: stripe duration vs coverage (1h video, equator viewer)",
        format_table(
            ("stripe", "stripes", "satellites", "uncovered frac", "preloadable"),
            rows,
            float_fmt="{:.3f}",
        ),
    )

    by_stripe = {name: rest for name, *rest in rows}
    # Short stripes fit inside single passes: minimal uncovered time.
    assert by_stripe["120s stripes"][2] < 0.1
    # 10-minute stripes exceed the max pass duration: gaps appear.
    assert by_stripe["600s stripes"][2] > by_stripe["120s stripes"][2]
    # A long video must hop across several satellites regardless.
    assert by_stripe["300s stripes"][1] >= 5
