"""Benchmark: regenerate paper Fig. 4.

CDF of the HTTP response-time difference (Starlink - terrestrial) per
country, from the NetMet browsing model.
"""

from repro.analysis.tables import format_cdf_points
from repro.experiments import figure4
from repro.experiments.common import DEFAULT_SEED


def test_figure4(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure4.run(seed=DEFAULT_SEED, rounds=3),
        rounds=1,
        iterations=1,
    )
    emit("Figure 4: HTTP response-time difference", figure4.format_result(result))
    emit(
        "Figure 4: CDF series (diff ms @ quantile)",
        format_cdf_points(
            {iso2: result.cdf(iso2).points(9) for iso2 in sorted(result.differences_ms)},
            value_label="HRT diff ms",
        ),
    )

    # Paper shape: terrestrial wins by ~20-50 ms (up to ~100) in PoP-served
    # countries; Nigeria is the lone Starlink win.
    for iso2 in ("US", "CA", "GB", "DE"):
        assert 10.0 < result.median_difference_ms(iso2) < 110.0
    assert result.median_difference_ms("NG") < 0.0
