"""Ablation: placement resilience under satellite failures.

Sweeps the failed-satellite fraction and reports how the paper's 4-per-plane
placement degrades — reachability, worst-case and mean hop distance — and
contrasts it with a sparser 1-per-plane placement.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import shell1_snapshot
from repro.orbits.elements import starlink_shell1
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.resilience import placement_under_failures, random_failure_set

FRACTIONS = (0.0, 0.05, 0.1, 0.2, 0.3)


def _sweep():
    shell = starlink_shell1()
    snapshot = shell1_snapshot(0.0)
    rng = np.random.default_rng(7)
    rows = []
    for copies in (1, 4):
        holders = KPerPlanePlacement(copies_per_plane=copies).place_object(
            "resilience-object", shell
        )
        for fraction in FRACTIONS:
            failed = random_failure_set(shell.total_satellites, fraction, rng)
            report = placement_under_failures(snapshot, holders, failed)
            rows.append(
                (
                    f"{copies}/plane @ {fraction:.0%} failed",
                    report.surviving_replicas,
                    report.reachable_fraction,
                    report.worst_case_hops,
                    report.mean_hops,
                )
            )
    return rows


def test_resilience_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: placement resilience vs failure fraction",
        format_table(
            ("scenario", "replicas left", "reachable", "worst hops", "mean hops"),
            rows,
            float_fmt="{:.2f}",
        ),
    )

    by_name = {name: rest for name, *rest in rows}
    # Moderate failures: the 4/plane placement keeps everyone reachable
    # with bounded hop inflation.
    assert by_name["4/plane @ 10% failed"][1] == 1.0
    assert by_name["4/plane @ 10% failed"][2] <= 9
    # Heavy failures isolate a few grid islands (all four ISL neighbours
    # dead) — reachability stays near-total but not perfect.
    assert by_name["4/plane @ 30% failed"][1] >= 0.97
    # Dense placement dominates sparse on mean hop distance throughout.
    for fraction in FRACTIONS:
        dense = by_name[f"4/plane @ {fraction:.0%} failed"][3]
        sparse = by_name[f"1/plane @ {fraction:.0%} failed"][3]
        assert dense < sparse
