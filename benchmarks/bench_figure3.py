"""Benchmark: regenerate paper Fig. 3 (Maputo case study).

Median RTT from Maputo to each reachable CDN site over Starlink (a) and a
terrestrial ISP (b).
"""

from repro.experiments import figure3
from repro.experiments.common import DEFAULT_SEED
from repro.measurements.aim import STARLINK, TERRESTRIAL


def test_figure3(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure3.run(seed=DEFAULT_SEED, samples_per_site=25),
        rounds=1,
        iterations=1,
    )
    emit("Figure 3: Maputo -> CDN median RTTs", figure3.format_result(result))

    star_name, star_rtt = result.optimal_site(STARLINK)
    terr_name, terr_rtt = result.optimal_site(TERRESTRIAL)
    assert star_name == "Frankfurt"  # paper: optimal Starlink mapping
    assert 130.0 < star_rtt < 190.0  # paper: ~160 ms
    assert terr_name == "Maputo"  # paper: local CDN terrestrially
    assert 10.0 < terr_rtt < 35.0  # paper: ~20 ms
    # African sites over Starlink exceed the Frankfurt latency by far.
    assert result.starlink_ms["Cape Town"] > 250.0
