"""Ablation: the full SpaceCDN system under live traffic.

Runs the request-level system (per-satellite caches, pull-through fills,
rotating constellation) against a regional Zipf workload and sweeps the
per-satellite cache size: the space tier's hit ratio — and therefore the
user-perceived median RTT — rises with on-board storage.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.cdn.content import build_catalog
from repro.experiments.common import shell1_constellation
from repro.geo.datasets import city_by_name
from repro.spacecdn.bubbles import RegionalPopularity
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.system import SpaceCdnSystem
from repro.workloads.regional import RegionalRequestMixer
from repro.workloads.requests import RequestGenerator

CITIES = ("Maputo", "Nairobi", "Lagos", "Sao Paulo", "Jakarta")


def _run_system(cache_mb: int):
    # A mixed catalog where video segments dominate bytes: small caches can
    # hold the web head but not the video tail, so capacity matters.
    catalog = build_catalog(
        np.random.default_rng(0),
        300,
        regions=("africa", "south-america", "asia"),
        global_fraction=0.2,
        kind_weights={"web": 0.5, "news": 0.2, "video-segment": 0.3},
    )
    system = SpaceCdnSystem(
        constellation=shell1_constellation(),
        catalog=catalog,
        cache_bytes_per_satellite=cache_mb * 1_000_000,
        max_hops=5,
        ground_rtt_ms=140.0,
    )
    # Operator-side preload: each region's head content gets 2 replicas per
    # plane (placement + system integration; the rest arrives pull-through).
    popularity = RegionalPopularity(catalog=catalog, seed=1)
    placement = KPerPlanePlacement(copies_per_plane=2)
    shell = shell1_constellation().config
    preload = {
        object_id: placement.place_object(object_id, shell)
        for region in popularity.regions()
        for object_id in popularity.top_objects(region, 10)
    }
    system.preload(preload)
    mixer = RegionalRequestMixer(
        popularity=popularity,
        rng=np.random.default_rng(2),
    )
    generator = RequestGenerator(
        cities=tuple(city_by_name(c) for c in CITIES),
        mixer=mixer,
        requests_per_second_total=1.5,
        rng=np.random.default_rng(3),
    )
    system.run(generator.generate_list(600.0))  # ten simulated minutes
    stats = system.stats
    return (
        stats.space_hit_ratio,
        float(np.median(stats.rtt_samples_ms)),
        stats.requests,
    )


def _sweep():
    rows = []
    for cache_mb in (2, 8, 32):
        hit_ratio, median_rtt, requests = _run_system(cache_mb)
        rows.append((f"{cache_mb} MB/sat", hit_ratio, median_rtt, requests))
    return rows


def test_system_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: live SpaceCDN system vs per-satellite cache size",
        format_table(
            ("cache", "space hit ratio", "median RTT (ms)", "requests"),
            rows,
            float_fmt="{:.3f}",
        ),
    )

    hit_ratios = [r[1] for r in rows]
    median_rtts = [r[2] for r in rows]
    # More on-board storage -> more space hits -> lower median RTT.
    assert hit_ratios == sorted(hit_ratios)
    assert median_rtts == sorted(median_rtts, reverse=True)
    # At the largest size the space tier absorbs most traffic.
    assert hit_ratios[-1] > 0.5
