"""Ablation: cache eviction policies under Zipf traffic.

DESIGN.md calls out the eviction-policy choice for on-satellite caches; this
bench compares LRU/LFU/FIFO hit ratios under stationary Zipf traffic and
under a regional popularity *shift* (the satellite crossing into a new
region), where LFU's stale frequency counts hurt it.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.cdn.cache import FifoCache, LfuCache, LruCache
from repro.cdn.content import build_catalog
from repro.workloads.zipf import ZipfDistribution


def _drive(cache, catalog, ids):
    objects = list(catalog)
    for object_id in ids:
        if cache.get(object_id) is None:
            obj = catalog.get(object_id)
            if obj.size_bytes <= cache.capacity_bytes:
                cache.put(obj)
    return cache.stats.hit_ratio


def _sweep():
    rng = np.random.default_rng(3)
    catalog = build_catalog(rng, 500, kind_weights={"web": 1.0})
    all_ids = [o.object_id for o in catalog]

    zipf = ZipfDistribution(n=250, s=0.9, rng=rng)
    stationary = [all_ids[r - 1] for r in zipf.sample_many(4000)]
    # Popularity shift: same skew, disjoint half of the catalog.
    shifted = [all_ids[250 + r - 1] for r in zipf.sample_many(4000)]
    mixed = stationary + shifted

    rows = []
    for name, cache_cls in (("LRU", LruCache), ("LFU", LfuCache), ("FIFO", FifoCache)):
        capacity = 4_000_000
        stationary_ratio = _drive(cache_cls(capacity), catalog, stationary)
        shift_ratio = _drive(cache_cls(capacity), catalog, mixed)
        rows.append((name, stationary_ratio, shift_ratio))
    return rows


def test_cache_policy_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: eviction policy hit ratios (Zipf s=0.9)",
        format_table(
            ("policy", "stationary", "with popularity shift"),
            rows,
            float_fmt="{:.3f}",
        ),
    )
    ratios = {name: (stat, shift) for name, stat, shift in rows}
    # All policies must achieve a sane hit ratio under stationary Zipf.
    assert all(stat > 0.3 for stat, _ in ratios.values())
    # LRU adapts to the shift at least as well as FIFO.
    assert ratios["LRU"][1] >= ratios["FIFO"][1] - 0.02
