"""Benchmarks and the speedup guard for the parallel shard executor.

Two jobs:

* ``pytest benchmarks/bench_runner_parallel.py`` — guard that the
  supervised worker pool (``--jobs 4``) completes the figure-8 plan at
  least 2x faster than the serial path on a machine with >= 4 cores
  (skipped below that: the pool cannot beat physics), and that the
  parallel output stays byte-identical to serial on the bench workload
  everywhere.
* ``python benchmarks/bench_runner_parallel.py --emit
  BENCH_runner_parallel.json`` — measure shard throughput at jobs 1, 2,
  and 4 and dump the wall-clock/speedup summary as JSON (what CI uploads
  as an artifact), recording the host's core count alongside so a
  single-core container's numbers are never mistaken for a scaling claim.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.experiments import figure8
from repro.runner import ExperimentRunner, RunnerOptions

SEED = 7
USERS_PER_EPOCH = 60
NUM_EPOCHS = 12
JOBS_SWEEP = (1, 2, 4)
TARGET_PARALLEL_SPEEDUP = 2.0
MIN_CORES_FOR_GUARD = 4


def _plan():
    return figure8.build_plan(
        seed=SEED, users_per_epoch=USERS_PER_EPOCH, num_epochs=NUM_EPOCHS
    )


def _time_run(jobs: int, base: Path) -> float:
    runner = ExperimentRunner(
        plan=_plan(),
        run_dir=base / f"jobs{jobs}",
        options=RunnerOptions(jobs=jobs),
    )
    start = time.perf_counter()
    runner.execute()
    return time.perf_counter() - start


def measure() -> dict:
    """Wall-clock the same figure-8 plan at every width, best of two."""
    plan = _plan()
    num_shards = len(plan.shard_ids)
    by_jobs = {}
    with tempfile.TemporaryDirectory() as tmp:
        for jobs in JOBS_SWEEP:
            seconds = min(
                _time_run(jobs, Path(tmp) / f"round{i}") for i in range(2)
            )
            by_jobs[str(jobs)] = {
                "seconds": seconds,
                "shards_per_second": num_shards / seconds,
                "speedup_vs_serial": by_jobs["1"]["seconds"] / seconds
                if "1" in by_jobs
                else 1.0,
            }
    return {
        "experiment": "figure8",
        "seed": SEED,
        "users_per_epoch": USERS_PER_EPOCH,
        "num_epochs": NUM_EPOCHS,
        "num_shards": num_shards,
        "cpu_count": os.cpu_count(),
        "jobs": by_jobs,
    }


def test_parallel_output_matches_serial_on_bench_workload(tmp_path):
    """Byte-identity holds on the bench workload itself, at any core count."""
    serial_dir = tmp_path / "serial"
    parallel_dir = tmp_path / "parallel"
    serial = ExperimentRunner(_plan(), serial_dir).execute()
    parallel = ExperimentRunner(
        _plan(), parallel_dir, RunnerOptions(jobs=4)
    ).execute()
    assert parallel == serial
    assert (parallel_dir / "result.txt").read_bytes() == (
        serial_dir / "result.txt"
    ).read_bytes()


def test_jobs4_at_least_2x_serial(tmp_path):
    """With >= 4 cores, four workers must halve the figure-8 wall-clock."""
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_GUARD:
        pytest.skip(
            f"{cores} core(s) < {MIN_CORES_FOR_GUARD}: a {TARGET_PARALLEL_SPEEDUP}x "
            f"speedup is not physically available to guard"
        )
    serial_s = min(_time_run(1, tmp_path / f"s{i}") for i in range(2))
    parallel_s = min(_time_run(4, tmp_path / f"p{i}") for i in range(2))
    speedup = serial_s / parallel_s
    assert speedup >= TARGET_PARALLEL_SPEEDUP, (
        f"--jobs 4 only {speedup:.2f}x serial on {cores} cores "
        f"({serial_s:.3f}s vs {parallel_s:.3f}s for "
        f"{len(_plan().shard_ids)} shards)"
    )


def main(argv: list[str]) -> int:
    if len(argv) == 2 and argv[0] == "--emit":
        summary = measure()
        with open(argv[1], "w") as handle:
            json.dump(summary, handle, indent=1, sort_keys=True)
            handle.write("\n")
        last = str(JOBS_SWEEP[-1])
        print(
            f"wrote {argv[1]}: {summary['num_shards']} shards on "
            f"{summary['cpu_count']} core(s); jobs=1 "
            f"{summary['jobs']['1']['shards_per_second']:.2f} shards/s, "
            f"jobs={last} {summary['jobs'][last]['speedup_vs_serial']:.2f}x"
        )
        return 0
    print(
        "usage: python benchmarks/bench_runner_parallel.py "
        "--emit BENCH_runner_parallel.json"
    )
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
