"""Ablation: copies-per-plane vs worst-case hop distance (paper §4 claim).

"With around 4 copies distributed within each plane, an object can be
reachable within 5 hops, even within a single orbital plane; fewer copies
would be needed if east-west ISLs across orbital planes are also used."
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import shell1_snapshot
from repro.orbits.elements import starlink_shell1
from repro.spacecdn.placement import KPerPlanePlacement, RandomPlacement, replica_hop_profile


def _sweep():
    shell = starlink_shell1()
    snapshot = shell1_snapshot(0.0)
    rows = []
    for copies in (1, 2, 4, 8):
        holders = KPerPlanePlacement(copies_per_plane=copies).place_object(
            "ablation-object", shell
        )
        profile = replica_hop_profile(snapshot, holders)
        hops = np.array(list(profile.values()))
        rows.append(
            (
                f"{copies}/plane ({len(holders)} total)",
                int(hops.max()),
                float(hops.mean()),
            )
        )
    # Random placement with the same total copy count as 4/plane.
    total = 4 * shell.num_planes
    holders = RandomPlacement(
        total_copies=total, rng=np.random.default_rng(0)
    ).place_object("ablation-object", shell)
    profile = replica_hop_profile(snapshot, holders)
    hops = np.array(list(profile.values()))
    rows.append((f"random ({total} total)", int(hops.max()), float(hops.mean())))
    return rows


def test_placement_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: replica placement vs hop distance",
        format_table(("placement", "max hops", "mean hops"), rows, float_fmt="{:.2f}"),
    )

    by_name = {name: (worst, mean) for name, worst, mean in rows}
    # The paper's claim: 4 copies per plane -> reachable within 5 hops.
    assert by_name["4/plane (288 total)"][0] <= 5
    # More copies never makes the worst case worse.
    worsts = [worst for _, worst, _ in rows[:4]]
    assert worsts == sorted(worsts, reverse=True)
