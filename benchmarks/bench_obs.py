"""Benchmarks and the overhead guard for the observability layer.

Two jobs:

* ``pytest benchmarks/bench_obs.py`` — benchmark the fastcore kernels with
  observability disabled (the default no-op recorder) and enabled, plus the
  guard asserting the disabled instrumentation costs at most 2% of a kernel
  call — the "zero-overhead by default" contract of :mod:`repro.obs`.
* ``python benchmarks/bench_obs.py --emit BENCH_obs.json`` — run every
  kernel under a live recorder and dump the per-site profile summary as
  JSON (what CI uploads as an artifact).
"""

from __future__ import annotations

import json
import sys
import time

from repro.obs import ObsRecorder, get_recorder, recording
from repro.orbits.elements import starlink_shell1
from repro.orbits.walker import build_walker_delta
from repro.topology import fastcore

SOURCES = tuple(range(0, 1584, 50))  # 32 spread-out sources on shell1


def _core():
    constellation = build_walker_delta(starlink_shell1())
    return fastcore.build_core(constellation, 0.0)


def _min_time(fn, repeats: int = 5, inner: int = 3) -> float:
    """Noise-robust per-call seconds: best mean over ``repeats`` batches."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def test_disabled_instrumentation_overhead_under_two_percent():
    """The no-op recorder's timer must vanish next to any kernel call.

    A disabled kernel call differs from uninstrumented code by exactly one
    ``get_recorder().timer(...)`` context, so bounding that context at 2%
    of the cheapest kernel bounds the whole disabled-path overhead.
    """
    core = _core()
    rec = get_recorder()
    assert not rec.enabled

    def noop_context():
        with rec.timer("bench.noop"):
            pass

    # Per-call cost of the disabled instrumentation (amortised tight loop).
    start = time.perf_counter()
    for _ in range(10_000):
        noop_context()
    noop_s = (time.perf_counter() - start) / 10_000

    kernel_s = min(
        _min_time(lambda: fastcore.latency_batch(core, SOURCES)),
        _min_time(lambda: fastcore.hop_distances_batch(core, SOURCES)),
        _min_time(lambda: fastcore.nearest_hops(core, SOURCES)),
    )
    assert noop_s <= 0.02 * kernel_s, (
        f"disabled recorder costs {noop_s * 1e9:.0f} ns/call vs "
        f"{kernel_s * 1e6:.0f} us kernel: over the 2% budget"
    )


def test_latency_batch_disabled(benchmark):
    core = _core()
    result = benchmark(lambda: fastcore.latency_batch(core, SOURCES))
    assert result.shape == (len(SOURCES), 1584)


def test_latency_batch_enabled(benchmark):
    core = _core()
    with recording(ObsRecorder()) as recorder:
        result = benchmark(lambda: fastcore.latency_batch(core, SOURCES))
    assert result.shape == (len(SOURCES), 1584)
    assert recorder.profile.sites["fastcore.latency_batch"].calls >= 1


def test_hop_ladder_batch_disabled(benchmark):
    core = _core()
    result = benchmark(lambda: fastcore.hop_ladder_batch(core, SOURCES, 8))
    assert result.shape == (len(SOURCES), 9)


def profile_kernels() -> dict:
    """Run every instrumented kernel once under a live recorder."""
    core = _core()
    with recording(ObsRecorder()) as recorder:
        fastcore.latency_batch(core, SOURCES)
        fastcore.hop_distances_batch(core, SOURCES)
        fastcore.nearest_hops(core, SOURCES)
        fastcore.hop_ladder_batch(core, SOURCES, 8)
    return recorder.profile.summary()


def main(argv: list[str]) -> int:
    if len(argv) == 2 and argv[0] == "--emit":
        summary = profile_kernels()
        with open(argv[1], "w") as handle:
            json.dump(summary, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(summary)} kernel timings to {argv[1]}")
        return 0
    print("usage: python benchmarks/bench_obs.py --emit BENCH_obs.json")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
