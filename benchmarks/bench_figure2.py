"""Benchmark: regenerate paper Fig. 2.

Per-country delta in median RTT to the optimal CDN (Starlink - terrestrial),
over every country measured on both networks.
"""

from repro.experiments import figure2
from repro.experiments.common import DEFAULT_SEED


def test_figure2(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure2.run(seed=DEFAULT_SEED, tests_per_city=30),
        rounds=1,
        iterations=1,
    )
    emit("Figure 2: per-country median RTT delta", figure2.format_result(result))

    # Paper shape: terrestrial faster nearly everywhere (~50 ms typical),
    # worst in ISL-served Africa, Nigeria the lone exception.
    assert 25.0 < result.median_delta_ms() < 75.0
    assert result.countries_where_starlink_faster() == ["NG"]
    assert result.deltas_ms["MZ"] > 90.0
