"""Ablation: video QoE — SpaceCDN vs today's Starlink path.

Runs DASH-style ABR sessions for a Maputo viewer over three paths: the
SpaceCDN (content within a few ISL hops), today's Starlink path to the
Frankfurt CDN (high RTT, Mathis-bound throughput, bufferbloat spikes), and
a local terrestrial ISP. Reports startup delay, mean bitrate and rebuffer
ratio — the paper's "slow loading times and frequent buffering" quantified.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.spacecdn.streaming import AbrPlayer, constant_path


def _session(name, rtt_fn, tp_fn):
    player = AbrPlayer(rtt_ms_fn=rtt_fn, throughput_mbps_fn=tp_fn)
    report = player.play(600.0)
    return (
        name,
        report.startup_delay_s,
        report.mean_bitrate_mbps,
        report.rebuffer_events,
        report.rebuffer_ratio,
    )


def _sweep():
    rng = np.random.default_rng(7)
    rows = []

    # SpaceCDN: content <= 5 hops away, healthy downlink.
    rows.append(_session("SpaceCDN (5-hop)", *constant_path(43.0, 60.0)))

    # Today's Maputo -> Frankfurt path: ~150 ms idle with bufferbloat
    # spikes, single-flow throughput Mathis-bound around 12 Mbps.
    def today_rtt():
        return 150.0 + float(rng.exponential(60.0))

    def today_throughput():
        return max(2.0, float(rng.normal(11.0, 3.0)))

    rows.append(_session("Starlink->Frankfurt", today_rtt, today_throughput))

    # Local terrestrial ISP with a Maputo CDN.
    rows.append(_session("terrestrial (local CDN)", *constant_path(20.0, 80.0)))
    return rows


def test_streaming_qoe(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: ABR video QoE for a Maputo viewer (10-minute session)",
        format_table(
            ("path", "startup (s)", "mean bitrate (Mbps)", "rebuffers", "stall ratio"),
            rows,
            float_fmt="{:.2f}",
        ),
    )

    by_name = {name: rest for name, *rest in rows}
    space = by_name["SpaceCDN (5-hop)"]
    today = by_name["Starlink->Frankfurt"]
    terrestrial = by_name["terrestrial (local CDN)"]
    # SpaceCDN restores the terrestrial-class experience.
    assert space[1] >= 0.9 * terrestrial[1]  # bitrate parity
    assert space[3] == 0.0  # no stalls
    # Today's path pays in bitrate and/or startup.
    assert today[1] < space[1]
    assert today[0] > space[0]
