"""Benchmark-suite helpers.

Each benchmark regenerates one paper artifact and prints the rows/series the
paper reports (bypassing pytest capture, so the output appears inline with
the benchmark table).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capsys):
    """Print text to the real terminal, outside pytest's capture."""

    def _emit(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n================ {title} ================")
            print(body)

    return _emit
