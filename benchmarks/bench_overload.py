"""Benchmarks and guards for the overload-protected serve path.

Two jobs:

* ``pytest benchmarks/bench_overload.py`` — guard that a saturating cohort
  through the overloaded batch path stays well ahead of the scalar
  reference walk, that the bench workload actually exercises the
  protections (some shedding, never total collapse), and that batch and
  scalar agree element-wise on this exact workload.
* ``python benchmarks/bench_overload.py --emit BENCH_overload.json`` —
  measure and dump the throughput/speedup/shedding summary as JSON (CI
  gates it against the committed baseline via ``repro obs diff``).
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.cdn.content import build_catalog
from repro.errors import UnavailableError
from repro.faults import FaultSchedule, FlashCrowdProcess
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import starlink_shell1
from repro.orbits.walker import build_walker_delta
from repro.overload import OverloadModel
from repro.spacecdn.system import SpaceCdnSystem

CONSTELLATION = build_walker_delta(starlink_shell1())
CATALOG = build_catalog(
    np.random.default_rng(1),
    60,
    regions=("africa", "europe"),
    kind_weights={"web": 1.0},
)
OBJECTS = sorted(o.object_id for o in CATALOG)

OVERLOAD_COHORT = 2_400
TARGET_OVERLOAD_SPEEDUP = 3.0


def _users(count: int, rng: np.random.Generator) -> list[GeoPoint]:
    """Ground points under the shell's coverage band (|lat| <= 52)."""
    return [
        GeoPoint(float(lat), float(lon), 0.0)
        for lat, lon in zip(
            rng.uniform(-52.0, 52.0, count), rng.uniform(-180.0, 180.0, count)
        )
    ]


def _workload(num_requests: int, num_users: int, seed: int):
    """One single-slot cohort: shared users, Zipf-ish object popularity."""
    rng = np.random.default_rng(seed)
    users = _users(num_users, rng)
    ranks = np.arange(1, len(OBJECTS) + 1, dtype=float)
    weights = 1.0 / ranks
    weights /= weights.sum()
    user_picks = rng.integers(len(users), size=num_requests)
    object_picks = rng.choice(len(OBJECTS), size=num_requests, p=weights)
    return (
        [users[i] for i in user_picks],
        [OBJECTS[i] for i in object_picks],
        0.0,
    )


def _model() -> OverloadModel:
    """Tight enough that the cohort saturates its popular targets."""
    return OverloadModel(
        capacity_per_slot=20.0,
        ground_capacity_per_slot=800.0,
        deadline_ms=1500.0,
        seed=11,
    )


def _schedule() -> FaultSchedule:
    return FaultSchedule().add(
        FlashCrowdProcess(extra_requests_per_slot=1.0, start_s=0.0)
    )


def _make_system() -> SpaceCdnSystem:
    system = SpaceCdnSystem(
        constellation=CONSTELLATION,
        catalog=CATALOG,
        cache_bytes_per_satellite=10**8,
        max_hops=6,
        fault_schedule=_schedule(),
        overload=_model(),
    )
    system.preload(
        {
            oid: frozenset(
                {(i * 11) % len(CONSTELLATION), (i * 29 + 3) % len(CONSTELLATION)}
            )
            for i, oid in enumerate(OBJECTS[:20])
        }
    )
    return system


def _time_batch(cohort) -> tuple[float, SpaceCdnSystem]:
    system = _make_system()
    users, oids, t = cohort
    start = time.perf_counter()
    system.serve_batch(users, oids, t, continue_on_unavailable=True)
    return time.perf_counter() - start, system


def _time_scalar(cohort, limit: int | None = None) -> float:
    system = _make_system()
    users, oids, t = cohort
    if limit is not None:
        users, oids = users[:limit], oids[:limit]
    start = time.perf_counter()
    for user, oid in zip(users, oids):
        try:
            system.serve(user, oid, t)
        except UnavailableError:  # covers OverloadedError sheds
            pass
    return time.perf_counter() - start


def measure() -> dict:
    """Overloaded cohort, both modes; one core, wall-clock."""
    cohort = _workload(OVERLOAD_COHORT, num_users=48, seed=3)
    batch_s, system = _time_batch(cohort)
    scalar_s = _time_scalar(cohort)
    stats = system.stats
    return {
        "shell": "shell1",
        "overloaded": {
            "requests": OVERLOAD_COHORT,
            "batch_seconds": batch_s,
            "scalar_seconds": scalar_s,
            "speedup": scalar_s / batch_s,
            "requests_per_min": OVERLOAD_COHORT / batch_s * 60.0,
            "shed": stats.shed,
            "deadline_exhausted": stats.deadline_exhausted,
            "unavailable": stats.unavailable,
        },
    }


def test_overloaded_batch_beats_scalar():
    """Even with the per-request admission/breaker walk, cohort serving
    must keep a clear lead over the scalar loop on a saturating workload."""
    cohort = _workload(OVERLOAD_COHORT, num_users=48, seed=3)
    batch_s = min(_time_batch(cohort)[0] for _ in range(3))
    scalar_s = _time_scalar(cohort)
    speedup = scalar_s / batch_s
    assert speedup >= TARGET_OVERLOAD_SPEEDUP, (
        f"overloaded batch only {speedup:.1f}x scalar "
        f"({scalar_s:.3f}s vs {batch_s:.3f}s for {OVERLOAD_COHORT} requests)"
    )


def test_bench_workload_actually_sheds():
    """The guard is meaningless if the workload never trips the
    protections — or if they collapse the whole cohort."""
    cohort = _workload(OVERLOAD_COHORT, num_users=48, seed=3)
    _, system = _time_batch(cohort)
    shed_fraction = system.stats.shed_fraction
    assert shed_fraction is not None and 0.0 < shed_fraction < 1.0
    assert system.stats.served > 0


def test_batch_results_match_scalar_on_bench_workload():
    """The bench workload itself double-checks equivalence end to end."""
    users, oids, t = _workload(300, num_users=24, seed=4)
    scalar_system = _make_system()
    expected = []
    for user, oid in zip(users, oids):
        try:
            expected.append(scalar_system.serve(user, oid, t))
        except UnavailableError:
            expected.append(None)
    batch_system = _make_system()
    actual = batch_system.serve_batch(users, oids, t, continue_on_unavailable=True)
    assert actual == expected
    assert batch_system.stats == scalar_system.stats


def main(argv: list[str]) -> int:
    if len(argv) == 2 and argv[0] == "--emit":
        summary = measure()
        with open(argv[1], "w") as handle:
            json.dump(summary, handle, indent=1, sort_keys=True)
            handle.write("\n")
        overloaded = summary["overloaded"]
        print(
            f"wrote {argv[1]}: overloaded {overloaded['requests_per_min']:,.0f} "
            f"requests/min, speedup {overloaded['speedup']:.1f}x, "
            f"{overloaded['shed']} shed"
        )
        return 0
    print("usage: python benchmarks/bench_overload.py --emit BENCH_overload.json")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
