"""Ablation: content-bubble prefetching vs plain LRU (§5).

Sweeps the prefetch budget and measures the hit-ratio gain as a satellite's
footprint crosses regions with geographically skewed popularity.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.cdn.content import build_catalog
from repro.spacecdn.bubbles import RegionalPopularity, simulate_orbit_requests

REGIONS = ("europe", "africa", "south-america", "asia")


def _sweep():
    catalog = build_catalog(
        np.random.default_rng(0),
        600,
        regions=REGIONS,
        global_fraction=0.2,
        kind_weights={"web": 0.6, "news": 0.4},
    )
    popularity = RegionalPopularity(catalog=catalog, seed=1)
    sequence = list(REGIONS) * 3
    rows = []
    for prefetch in (0.2, 0.4, 0.6, 0.8):
        result = simulate_orbit_requests(
            catalog=catalog,
            popularity=popularity,
            region_sequence=sequence,
            requests_per_region=200,
            cache_bytes=3_000_000,
            prefetch_fraction=prefetch,
        )
        rows.append(
            (
                f"prefetch {prefetch:.0%}",
                result.bubble_hit_ratio,
                result.plain_hit_ratio,
                result.improvement,
            )
        )
    return rows


def test_bubble_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: content bubbles vs plain LRU (hit ratio)",
        format_table(
            ("config", "bubble", "plain LRU", "gain"), rows, float_fmt="{:.3f}"
        ),
    )
    # Geo-predictive prefetch must beat reactive LRU at every budget.
    assert all(gain > 0.0 for _, _, _, gain in rows)
    # And a meaningful gain at the default budget.
    by_name = {name: gain for name, _, _, gain in rows}
    assert by_name["prefetch 60%"] > 0.03
