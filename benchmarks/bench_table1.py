"""Benchmark: regenerate paper Table 1.

Average distance to the best CDN and median minimum RTT per country, for
terrestrial and Starlink clients, side by side with the paper's numbers.
"""

from repro.experiments import table1
from repro.experiments.common import DEFAULT_SEED


def test_table1(benchmark, emit):
    result = benchmark.pedantic(
        lambda: table1.run(seed=DEFAULT_SEED, tests_per_city=30),
        rounds=1,
        iterations=1,
    )
    emit("Table 1: distance to best CDN / minRTT", table1.format_result(result))

    rows = {r.iso2: r for r in result.rows}
    # Headline shape assertions (the benchmark fails if the shape breaks).
    assert rows["MZ"].starlink_distance_km > 7500
    assert rows["MZ"].starlink_min_rtt_ms > 100
    assert rows["ES"].starlink_min_rtt_ms < 45
    assert all(
        rows[c].starlink_min_rtt_ms > rows[c].terrestrial_min_rtt_ms
        for c in ("GT", "MZ", "CY", "SZ", "HT", "KE", "ZM", "RW", "LT")
    )
