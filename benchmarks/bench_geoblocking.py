"""Ablation: geo-blocking prevalence for Starlink subscribers (§2).

Quantifies how many covered countries lose access to their own
region-licensed content because their traffic exits at a foreign PoP.
"""

from repro.experiments import geoblocking


def test_geoblocking_prevalence(benchmark, emit):
    result = benchmark.pedantic(geoblocking.run, rounds=1, iterations=1)
    emit(
        "Ablation: Starlink geo-blocking of home-market content",
        geoblocking.format_result(result),
    )

    # The structural claim: a meaningful minority of covered countries are
    # misblocked — all of them countries served through another region's PoP.
    assert 0.05 < result.misblock_rate() < 0.6
    affected = set(result.affected_countries())
    # The Frankfurt-served African countries are the canonical victims.
    assert {"MZ", "KE", "ZM", "RW"} <= affected
    # Countries with a local PoP never are.
    assert {"ES", "JP", "US", "DE"}.isdisjoint(affected)
