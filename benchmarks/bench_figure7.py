"""Benchmark: regenerate paper Fig. 7.

Latency CDFs of SpaceCDN content found on the access satellite and at 3/5/10
ISL hops, against the AIM-measured Starlink and terrestrial baselines.
"""

from repro.analysis.tables import format_cdf_points
from repro.experiments import figure7
from repro.experiments.common import DEFAULT_SEED
from repro.measurements.aim import STARLINK, TERRESTRIAL


def test_figure7(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure7.run(seed=DEFAULT_SEED, users_per_epoch=20, num_epochs=5),
        rounds=1,
        iterations=1,
    )
    emit("Figure 7: SpaceCDN vs baselines", figure7.format_result(result))
    series = {
        ("1st/Sat" if n == 0 else f"{n} ISLs"): result.cdf(n).points(9)
        for n in figure7.HOP_COUNTS
    }
    series["Starlink (AIM)"] = result.cdf(STARLINK).points(9)
    series["Terrestrial (AIM)"] = result.cdf(TERRESTRIAL).points(9)
    emit("Figure 7: CDF series", format_cdf_points(series, value_label="RTT ms"))

    from repro.analysis.plot import ascii_cdf

    curves = {
        "1st/Sat": result.cdf(0),
        "3 ISLs": result.cdf(3),
        "5 ISLs": result.cdf(5),
        "X 10 ISLs": result.cdf(10),
        "starlink AIM": result.cdf(STARLINK),
        "terrestrial AIM": result.cdf(TERRESTRIAL),
    }
    emit("Figure 7: ASCII CDF (cf. the paper's plot)", ascii_cdf(curves, x_max=90.0))

    # Paper claims: <=5 hops competitive with terrestrial (and better in the
    # tail); 10 hops ~half of current Starlink.
    assert result.cdf(5).quantile(0.95) < result.cdf(TERRESTRIAL).quantile(0.95)
    ratio = result.cdf(10).quantile(0.5) / result.cdf(STARLINK).quantile(0.5)
    assert 0.25 < ratio < 0.75
    for q in (0.25, 0.5, 0.75):
        assert result.cdf(5).quantile(q) < result.cdf(STARLINK).quantile(q)
