"""Ablation: the latency penalty as a *download speed* penalty.

AIM's headline metrics are speeds; TCP ties single-flow throughput to RTT
(Mathis bound), so Starlink's PoP detours also shrink downloads. This bench
reports median download speeds per country class from the synthetic AIM
dataset.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import DEFAULT_SEED, aim_dataset
from repro.measurements.aim import STARLINK, TERRESTRIAL

COUNTRIES = ("US", "DE", "ES", "JP", "MZ", "KE", "ZM", "NG")


def _sweep():
    dataset = aim_dataset(DEFAULT_SEED)
    rows = []
    for iso2 in COUNTRIES:
        star = [t.download_mbps for t in dataset.filter(isp=STARLINK, iso2=iso2)]
        terr = [t.download_mbps for t in dataset.filter(isp=TERRESTRIAL, iso2=iso2)]
        rows.append(
            (
                iso2,
                float(np.median(star)) if star else float("nan"),
                float(np.median(terr)) if terr else float("nan"),
            )
        )
    return rows


def test_throughput_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: median download speed (Mbps) from synthetic AIM",
        format_table(("country", "Starlink", "terrestrial"), rows),
    )

    by_country = {iso2: (star, terr) for iso2, star, terr in rows}
    # PoP-local countries: Starlink downloads are healthy (>50 Mbps).
    for iso2 in ("US", "DE", "ES", "JP"):
        assert by_country[iso2][0] > 50.0
    # ISL-served countries: the RTT penalty halves Starlink throughput
    # relative to the PoP-local countries.
    for iso2 in ("MZ", "KE", "ZM"):
        assert by_country[iso2][0] < by_country["ES"][0] / 2.0
    # Nigeria: Starlink out-downloads the congested terrestrial access.
    assert by_country["NG"][0] > by_country["NG"][1]
