"""Benchmark: regenerate paper Fig. 5.

First-contentful-paint distributions for Starlink vs terrestrial in Germany
and the UK — the best case (both have local PoPs) where Starlink still pays
~200 ms.
"""

from repro.experiments import figure5
from repro.experiments.common import DEFAULT_SEED


def test_figure5(benchmark, emit):
    result = benchmark.pedantic(
        lambda: figure5.run(seed=DEFAULT_SEED, rounds=4),
        rounds=1,
        iterations=1,
    )
    emit("Figure 5: first contentful paint (DE, GB)", figure5.format_result(result))

    for iso2 in ("DE", "GB"):
        gap = result.median_gap_ms(iso2)
        assert 120.0 < gap < 350.0  # paper: ~200 ms
