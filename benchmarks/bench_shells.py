"""Ablation: SpaceCDN hop-ladder latency across constellation shells.

The paper simulates Shell 1 only; this ablation re-runs the Fig. 7 hop
ladder on the other public Starlink shells and a Gen2-style VLEO shell.
Lower altitude shortens access links; denser planes shorten ISL hops —
both push the SpaceCDN curves left.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.orbits.elements import (
    oneweb_phase1,
    starlink_shell1,
    starlink_shell3,
    starlink_vleo,
)
from repro.orbits.visibility import nearest_visible_satellite
from repro.orbits.walker import build_walker_delta
from repro.simulation.sampler import seeded_rng, user_sample_points
from repro.topology.graph import access_latency_ms, build_snapshot
from repro.topology.routing import latency_by_hop_count


def _median_rtts(shell, users):
    constellation = build_walker_delta(shell)
    snapshot = build_snapshot(constellation, 0.0)
    per_hop: dict[int, list[float]] = {0: [], 3: [], 5: []}
    served = 0
    for user in users:
        try:
            access = nearest_visible_satellite(constellation, user, 0.0)
        except Exception:
            continue  # VLEO/70-deg shells have different coverage bands
        served += 1
        access_ms = access_latency_ms(access.slant_range_km)
        ladder = latency_by_hop_count(snapshot, access.index, 5)
        for hops in per_hop:
            if hops in ladder:
                per_hop[hops].append(
                    2.0 * (access_ms + ladder[hops]) + CDN_SERVER_THINK_TIME_MS
                )
    return served, {h: float(np.median(v)) for h, v in per_hop.items() if v}


def _sweep():
    rng = seeded_rng(7, 0x5E11)
    users = user_sample_points(rng, 25, max_abs_latitude_deg=50.0)
    rows = []
    shells = (starlink_shell1(), starlink_shell3(), starlink_vleo(), oneweb_phase1())
    for shell in shells:
        served, medians = _median_rtts(shell, users)
        rows.append(
            (
                shell.name,
                shell.total_satellites,
                medians.get(0, float("nan")),
                # OneWeb has no ISLs: hop curves are structurally absent.
                medians.get(3, float("nan")),
                medians.get(5, float("nan")),
            )
        )
    return rows


def test_shell_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: SpaceCDN hop-ladder RTT medians by shell (ms)",
        format_table(
            ("shell", "satellites", "1st/Sat", "3 ISLs", "5 ISLs"), rows
        ),
    )

    import math

    by_shell = {name: rest for name, *rest in rows}
    # VLEO's shorter slant ranges beat Shell 1 at the access hop.
    assert by_shell["starlink-vleo"][1] < by_shell["starlink-shell1"][1]
    # OneWeb's 1200 km altitude costs it at the access hop, and it has no
    # ISL curves at all (bent pipe only).
    assert by_shell["oneweb-phase1"][1] > by_shell["starlink-shell1"][1]
    assert math.isnan(by_shell["oneweb-phase1"][2])
    # Every ISL shell keeps the 5-hop RTT under typical Starlink RTTs.
    assert all(
        row[4] < 80.0 for row in rows if not math.isnan(row[4])
    )
