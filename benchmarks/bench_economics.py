"""Ablation: delivery economics (paper §5) — where SpaceCDN pays off.

Sweeps monthly regional demand for a remote region (no local CDN edge) and
a well-served region, printing the per-GB cost of SpaceCDN vs terrestrial
CDN vs origin-only delivery and the break-even demand.
"""

from repro.analysis.tables import format_table
from repro.economics.costs import DeliveryCostModel


def _sweep():
    model = DeliveryCostModel()
    rows = []
    for demand in (1e4, 1e5, 1e6, 1e7, 1e8):
        for edge_is_local, label in ((False, "remote"), (True, "served")):
            breakdown = model.breakdown(demand, edge_is_local=edge_is_local)
            rows.append(
                (
                    f"{demand:,.0f} GB/mo ({label})",
                    breakdown.spacecdn_usd_per_gb,
                    breakdown.terrestrial_cdn_usd_per_gb,
                    breakdown.origin_only_usd_per_gb,
                    breakdown.cheapest(),
                )
            )
    breakeven_remote = model.breakeven_demand_gb_per_month(edge_is_local=False)
    breakeven_local = model.breakeven_demand_gb_per_month(edge_is_local=True)
    return rows, breakeven_remote, breakeven_local


def test_economics_sweep(benchmark, emit):
    rows, breakeven_remote, breakeven_local = benchmark.pedantic(
        _sweep, rounds=1, iterations=1
    )
    table = format_table(
        ("demand (region)", "SpaceCDN $/GB", "terr CDN $/GB", "origin $/GB", "cheapest"),
        rows,
        float_fmt="{:.4f}",
    )
    emit(
        "Ablation: delivery cost per GB",
        table
        + f"\nbreak-even demand: remote region {breakeven_remote:,.0f} GB/mo, "
        + f"served region {breakeven_local:,.0f} GB/mo",
    )

    # The paper's economics intuition: SpaceCDN pays off first in regions
    # with poor terrestrial infrastructure.
    assert breakeven_remote < breakeven_local
    cheapest_high_remote = rows[-2][4]
    assert cheapest_high_remote == "spacecdn"
    cheapest_low_served = rows[1][4]
    assert cheapest_low_served == "terrestrial-cdn"
