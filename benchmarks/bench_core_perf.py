"""Micro-benchmarks of the simulation core.

These measure throughput of the hot paths (propagation, snapshot builds,
routing) so performance regressions in the substrate are visible. The
routing benchmarks cover both the vectorised CSR kernels (the production
path) and the networkx reference implementation, so the speedup ratio the
refactor claims stays measurable release over release.

Input streams cycle endlessly: pytest-benchmark calibrates its own round
count, so a finite iterator of "enough" draws would eventually raise
StopIteration mid-measurement on a fast machine.
"""

import itertools

import numpy as np

from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import starlink_shell1
from repro.orbits.visibility import nearest_visible_satellites, visible_satellites
from repro.orbits.walker import build_walker_delta
from repro.topology import fastcore
from repro.topology.graph import build_snapshot
from repro.topology.routing import (
    latency_by_hop_count,
    latency_by_hop_count_reference,
)


def test_propagate_shell1(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    times = itertools.cycle(np.linspace(0.0, 5700.0, 1024))

    result = benchmark(lambda: constellation.positions_ecef(next(times)))
    assert result.shape == (1584, 3)


def test_visibility_query(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    point = GeoPoint(10.0, 20.0)

    result = benchmark(lambda: visible_satellites(constellation, point, 0.0))
    assert result


def test_visibility_batch(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    rng = np.random.default_rng(7)
    points = [
        GeoPoint(float(lat), float(lon))
        for lat, lon in zip(rng.uniform(-55, 55, 64), rng.uniform(-180, 179, 64))
    ]

    indices, ranges = benchmark(
        lambda: nearest_visible_satellites(constellation, points, 0.0)
    )
    assert indices.shape == ranges.shape == (64,)


def test_build_snapshot_shell1(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    times = itertools.cycle(np.linspace(0.0, 5700.0, 1024))

    snapshot = benchmark(lambda: build_snapshot(constellation, float(next(times))))
    assert snapshot.core.topology.num_links == 2 * 1584


def test_hop_ladder_query(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    snapshot = build_snapshot(constellation, 0.0)
    sources = itertools.cycle(np.random.default_rng(0).integers(0, 1584, size=1024))

    ladder = benchmark(lambda: latency_by_hop_count(snapshot, int(next(sources)), 10))
    assert set(ladder) == set(range(11))


def test_hop_ladder_query_reference(benchmark):
    """The pre-refactor networkx path, kept for the speedup ratio."""
    constellation = build_walker_delta(starlink_shell1())
    snapshot = build_snapshot(constellation, 0.0)
    sources = itertools.cycle(np.random.default_rng(0).integers(0, 1584, size=1024))

    ladder = benchmark(
        lambda: latency_by_hop_count_reference(snapshot, int(next(sources)), 10)
    )
    assert set(ladder) == set(range(11))


def test_latency_batch_64_sources(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    core = build_snapshot(constellation, 0.0).core
    sources = np.random.default_rng(1).integers(0, 1584, size=64)

    latencies = benchmark(lambda: fastcore.latency_batch(core, sources))
    assert latencies.shape == (64, 1584)
    assert np.all(np.isfinite(latencies))


def test_hop_distances_batch_64_sources(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    core = build_snapshot(constellation, 0.0).core
    sources = np.random.default_rng(2).integers(0, 1584, size=64)

    hops = benchmark(lambda: fastcore.hop_distances_batch(core, sources))
    assert hops.shape == (64, 1584)
    assert np.all(hops >= 0)


def test_aim_city_generation(benchmark):
    from repro.geo.datasets import city_by_name
    from repro.measurements.aim import STARLINK, AimGenerator

    generator = AimGenerator(seed=0)
    city = city_by_name("Maputo")

    tests = benchmark(lambda: generator.generate_city_tests(city, STARLINK, 10))
    assert len(tests) == 10
