"""Micro-benchmarks of the simulation core.

These measure throughput of the hot paths (propagation, snapshot builds,
routing) so performance regressions in the substrate are visible.
"""

import numpy as np

from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import starlink_shell1
from repro.orbits.visibility import visible_satellites
from repro.orbits.walker import build_walker_delta
from repro.topology.graph import build_snapshot
from repro.topology.routing import latency_by_hop_count


def test_propagate_shell1(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    times = iter(np.linspace(0.0, 5700.0, 100000))

    result = benchmark(lambda: constellation.positions_ecef(next(times)))
    assert result.shape == (1584, 3)


def test_visibility_query(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    point = GeoPoint(10.0, 20.0)

    result = benchmark(lambda: visible_satellites(constellation, point, 0.0))
    assert result


def test_build_snapshot_shell1(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    times = iter(np.linspace(0.0, 5700.0, 100000))

    snapshot = benchmark(lambda: build_snapshot(constellation, float(next(times))))
    assert snapshot.graph.number_of_edges() == 2 * 1584


def test_hop_ladder_query(benchmark):
    constellation = build_walker_delta(starlink_shell1())
    snapshot = build_snapshot(constellation, 0.0)
    sources = iter(np.random.default_rng(0).integers(0, 1584, size=100000))

    ladder = benchmark(lambda: latency_by_hop_count(snapshot, int(next(sources)), 10))
    assert set(ladder) == set(range(11))


def test_aim_city_generation(benchmark):
    from repro.geo.datasets import city_by_name
    from repro.measurements.aim import STARLINK, AimGenerator

    generator = AimGenerator(seed=0)
    city = city_by_name("Maputo")

    tests = benchmark(lambda: generator.generate_city_tests(city, STARLINK, 10))
    assert len(tests) == 10
