"""Ablation: demand-aware vs random duty cycling at the same cache fraction.

With 30% of satellites caching, the random scheduler spreads caches over
oceans and the night side; the demand-aware scheduler concentrates them
over the longitudes where it is prime time. Users in the demand band see
closer caches.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.experiments.common import shell1_constellation, shell1_snapshot
from repro.geo.coordinates import GeoPoint
from repro.simulation.sampler import seeded_rng
from repro.spacecdn.demand import DemandAwareDutyCycle, DiurnalDemand
from repro.spacecdn.dutycycle import DutyCycleScheduler
from repro.spacecdn.lookup import SpaceCdnLookup

FRACTION = 0.3
T_S = 0.0  # UTC midnight: prime time (21:00 local) sits near 45W


def _prime_time_users(count: int) -> list[GeoPoint]:
    """Users in the prime-time longitude band (the Americas at this epoch)."""
    rng = seeded_rng(7, 0xDE3A)
    users = []
    for _ in range(count):
        lat = float(rng.uniform(-45.0, 45.0))
        lon = float(rng.uniform(-90.0, 0.0))  # around the 45W demand peak
        users.append(GeoPoint(lat, lon, 0.0))
    return users


def _median_rtt(active: frozenset[int], users: list[GeoPoint]) -> float:
    lookup = SpaceCdnLookup(snapshot=shell1_snapshot(T_S), max_hops=64)
    rtts = [
        2.0 * lookup.lookup_from_point(u, active).one_way_ms + CDN_SERVER_THINK_TIME_MS
        for u in users
    ]
    return float(np.median(rtts))


def _sweep():
    constellation = shell1_constellation()
    users = _prime_time_users(25)

    random_sched = DutyCycleScheduler(
        total_satellites=len(constellation), cache_fraction=FRACTION, seed=7
    )
    demand_sched = DemandAwareDutyCycle(
        constellation=constellation, cache_fraction=FRACTION, demand=DiurnalDemand()
    )
    rows = [
        ("random 30%", _median_rtt(random_sched.active_caches_at(T_S), users)),
        ("demand-aware 30%", _median_rtt(demand_sched.active_caches_at(T_S), users)),
    ]
    return rows


def test_demand_aware_sweep(benchmark, emit):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "Ablation: duty-cycle scheduling policy (prime-time users, 30% caches)",
        format_table(("scheduler", "median RTT (ms)"), rows),
    )

    by_name = dict(rows)
    # Same thermal budget, better placement: demand-aware wins.
    assert by_name["demand-aware 30%"] <= by_name["random 30%"]
