"""Benchmarks and the speedup guard for the batched serve path.

Two jobs:

* ``pytest benchmarks/bench_serve_batch.py`` — guard that cohort serving
  through :meth:`SpaceCdnSystem.serve_batch` stays >= 20x faster than the
  scalar reference loop under a chaos schedule (the workload the batching
  was built for), and that the healthy Shell-1 path clears the 10^6
  requests/minute single-core target.
* ``python benchmarks/bench_serve_batch.py --emit BENCH_serve_batch.json``
  — measure both modes on the healthy and chaos workloads and dump the
  throughput/speedup summary as JSON (what CI uploads as an artifact).
"""

from __future__ import annotations

import json
import sys
import time

import numpy as np

from repro.cdn.content import build_catalog
from repro.errors import UnavailableError
from repro.faults import FaultSchedule, OutageWindow, TransientAttemptLoss
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import starlink_shell1
from repro.orbits.walker import build_walker_delta
from repro.spacecdn.system import SpaceCdnSystem

CONSTELLATION = build_walker_delta(starlink_shell1())
CATALOG = build_catalog(
    np.random.default_rng(1),
    60,
    regions=("africa", "europe"),
    kind_weights={"web": 1.0},
)
OBJECTS = sorted(o.object_id for o in CATALOG)

HEALTHY_COHORT = 20_000
HEALTHY_SCALAR_SAMPLE = 1_500
CHAOS_COHORT = 2_400
TARGET_REQUESTS_PER_MIN = 1e6
TARGET_CHAOS_SPEEDUP = 20.0


def _users(count: int, rng: np.random.Generator) -> list[GeoPoint]:
    """Ground points under the shell's coverage band (|lat| <= 52)."""
    return [
        GeoPoint(float(lat), float(lon), 0.0)
        for lat, lon in zip(
            rng.uniform(-52.0, 52.0, count), rng.uniform(-180.0, 180.0, count)
        )
    ]


def _workload(num_requests: int, num_users: int, seed: int):
    """One single-slot cohort: shared users, Zipf-ish object popularity."""
    rng = np.random.default_rng(seed)
    users = _users(num_users, rng)
    ranks = np.arange(1, len(OBJECTS) + 1, dtype=float)
    weights = 1.0 / ranks
    weights /= weights.sum()
    user_picks = rng.integers(len(users), size=num_requests)
    object_picks = rng.choice(len(OBJECTS), size=num_requests, p=weights)
    return (
        [users[i] for i in user_picks],
        [OBJECTS[i] for i in object_picks],
        0.0,
    )


def _make_system(schedule: FaultSchedule | None = None) -> SpaceCdnSystem:
    system = SpaceCdnSystem(
        constellation=CONSTELLATION,
        catalog=CATALOG,
        cache_bytes_per_satellite=10**8,
        max_hops=6,
        fault_schedule=schedule,
    )
    system.preload(
        {
            oid: frozenset(
                {(i * 11) % len(CONSTELLATION), (i * 29 + 3) % len(CONSTELLATION)}
            )
            for i, oid in enumerate(OBJECTS[:20])
        }
    )
    return system


def _chaos_schedule() -> FaultSchedule:
    """Fleet-wide outage slice — the chaos sweep's dominant fault.

    Attempt-level loss is left to the equivalence test below: its cost is
    per-attempt RNG draws paid identically by both paths, so it dilutes
    the routing-work ratio this guard is meant to pin.
    """
    return FaultSchedule().add(
        OutageWindow(satellites=frozenset(range(0, len(CONSTELLATION), 9)))
    )


def _time_batch(schedule_factory, cohort) -> float:
    system = _make_system(schedule_factory())
    users, oids, t = cohort
    start = time.perf_counter()
    system.serve_batch(users, oids, t, continue_on_unavailable=True)
    return time.perf_counter() - start


def _time_scalar(schedule_factory, cohort, limit: int | None = None) -> float:
    system = _make_system(schedule_factory())
    users, oids, t = cohort
    if limit is not None:
        users, oids = users[:limit], oids[:limit]
    start = time.perf_counter()
    for user, oid in zip(users, oids):
        try:
            system.serve(user, oid, t)
        except UnavailableError:
            pass
    return time.perf_counter() - start


def measure() -> dict:
    """Both modes on both workloads; one core, wall-clock."""
    healthy = _workload(HEALTHY_COHORT, num_users=64, seed=2)
    healthy_batch_s = _time_batch(lambda: None, healthy)
    healthy_scalar_s = _time_scalar(
        lambda: None, healthy, limit=HEALTHY_SCALAR_SAMPLE
    )
    chaos = _workload(CHAOS_COHORT, num_users=48, seed=3)
    chaos_batch_s = _time_batch(_chaos_schedule, chaos)
    chaos_scalar_s = _time_scalar(_chaos_schedule, chaos)

    per_min = HEALTHY_COHORT / healthy_batch_s * 60.0
    scalar_per_min = HEALTHY_SCALAR_SAMPLE / healthy_scalar_s * 60.0
    return {
        "shell": "shell1",
        "healthy": {
            "requests": HEALTHY_COHORT,
            "batch_seconds": healthy_batch_s,
            "requests_per_min": per_min,
            "scalar_sample_requests": HEALTHY_SCALAR_SAMPLE,
            "scalar_requests_per_min": scalar_per_min,
            "speedup": per_min / scalar_per_min,
        },
        "chaos": {
            "requests": CHAOS_COHORT,
            "batch_seconds": chaos_batch_s,
            "scalar_seconds": chaos_scalar_s,
            "speedup": chaos_scalar_s / chaos_batch_s,
        },
    }


def test_healthy_throughput_clears_target():
    """Shell-1, one core: a batched cohort serves >= 10^6 requests/min."""
    cohort = _workload(HEALTHY_COHORT, num_users=64, seed=2)
    best = min(_time_batch(lambda: None, cohort) for _ in range(3))
    per_min = HEALTHY_COHORT / best * 60.0
    assert per_min >= TARGET_REQUESTS_PER_MIN, (
        f"batched healthy serving at {per_min:,.0f} requests/min "
        f"misses the {TARGET_REQUESTS_PER_MIN:,.0f} target"
    )


def test_chaos_batch_at_least_20x_scalar():
    """The chaos workload — where scalar serving pays a masked routing
    pass per request — must come out >= 20x faster batched."""
    cohort = _workload(CHAOS_COHORT, num_users=48, seed=3)
    batch_s = min(_time_batch(_chaos_schedule, cohort) for _ in range(3))
    scalar_s = _time_scalar(_chaos_schedule, cohort)
    speedup = scalar_s / batch_s
    assert speedup >= TARGET_CHAOS_SPEEDUP, (
        f"batch only {speedup:.1f}x scalar under chaos "
        f"({scalar_s:.3f}s vs {batch_s:.3f}s for {CHAOS_COHORT} requests)"
    )


def test_batch_results_match_scalar_on_bench_workload():
    """The bench workload itself double-checks equivalence end to end."""
    cohort = _workload(300, num_users=24, seed=4)
    users, oids, t = cohort

    def schedule() -> FaultSchedule:
        return _chaos_schedule().add(TransientAttemptLoss(probability=0.2, seed=5))

    scalar_system = _make_system(schedule())
    batch_system = _make_system(schedule())
    expected = []
    for user, oid in zip(users, oids):
        try:
            expected.append(scalar_system.serve(user, oid, t))
        except UnavailableError:
            expected.append(None)
    actual = batch_system.serve_batch(users, oids, t, continue_on_unavailable=True)
    assert actual == expected
    assert batch_system.stats == scalar_system.stats


def main(argv: list[str]) -> int:
    if len(argv) == 2 and argv[0] == "--emit":
        summary = measure()
        with open(argv[1], "w") as handle:
            json.dump(summary, handle, indent=1, sort_keys=True)
            handle.write("\n")
        healthy = summary["healthy"]["requests_per_min"]
        chaos = summary["chaos"]["speedup"]
        print(
            f"wrote {argv[1]}: healthy {healthy:,.0f} requests/min, "
            f"chaos speedup {chaos:.1f}x"
        )
        return 0
    print("usage: python benchmarks/bench_serve_batch.py --emit BENCH_serve_batch.json")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
