#!/usr/bin/env python3
"""Video striping across successive satellites (paper §4).

Plans a 90-minute live-sports stream for a viewer in Buenos Aires: each
3-minute stripe is pinned to a satellite that will be overhead while the
stripe plays, later stripes preload while earlier ones stream, and any
stripe a pass cannot fully cover is served over ISLs from a neighbour.

Run:  python examples/video_striping.py
"""

from repro import build_walker_delta, starlink_shell1
from repro.analysis.tables import format_table
from repro.geo.datasets import city_by_name
from repro.spacecdn.striping import plan_stripes, stripe_coverage_gaps


def main() -> None:
    constellation = build_walker_delta(starlink_shell1())
    viewer = city_by_name("Buenos Aires").location

    plan = plan_stripes(
        constellation=constellation,
        viewer=viewer,
        start_s=0.0,
        video_duration_s=90 * 60.0,
        stripe_duration_s=180.0,
        pass_step_s=15.0,
    )

    rows = []
    for assignment in plan.assignments[:12]:
        rows.append(
            (
                assignment.stripe_index,
                assignment.satellite,
                f"{assignment.playback_start_s / 60:.0f}-"
                f"{assignment.playback_end_s / 60:.0f} min",
                assignment.slack_before_s,
            )
        )
    print(format_table(
        ("stripe", "satellite", "playback", "preload slack (s)"), rows
    ))
    print(f"... ({plan.num_stripes} stripes total)")

    chain = plan.distinct_satellites()
    print(f"\nserving chain: {len(chain)} distinct satellites over 90 minutes")

    gaps = stripe_coverage_gaps(plan)
    gap_total = sum(g for _, g in gaps)
    print(f"coverage gaps: {len(gaps)} stripes need ISL assist for "
          f"{gap_total:.0f} s total ({gap_total / (90 * 60) * 100:.1f}% of playback)")

    preloadable = sum(1 for a in plan.assignments if a.slack_before_s > 0)
    print(f"preloadable stripes: {preloadable}/{plan.num_stripes} can be uploaded "
          "to their satellite before playback reaches them (hiding the bent pipe)")


if __name__ == "__main__":
    main()
