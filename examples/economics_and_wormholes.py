#!/usr/bin/env python3
"""The §5 business case: delivery economics, MetaCDN tenancy, wormholing.

1. Where does SpaceCDN beat a terrestrial CDN on cost per GB?
2. How does a MetaCDN-style operator split capacity across tenants?
3. When does carrying content on a satellite ("wormholing") beat the WAN?

Run:  python examples/economics_and_wormholes.py
"""

from repro import build_walker_delta, starlink_shell1
from repro.analysis.tables import format_table
from repro.economics.costs import DeliveryCostModel
from repro.economics.metacdn import MetaCdnOperator
from repro.geo.datasets import city_by_name
from repro.spacecdn.wormhole import WormholePlanner


def main() -> None:
    # 1. Cost per GB across demand levels, remote vs served regions.
    model = DeliveryCostModel()
    rows = []
    for demand in (1e5, 1e6, 1e7):
        for local, label in ((False, "remote"), (True, "served")):
            b = model.breakdown(demand, edge_is_local=local)
            rows.append(
                (f"{demand:,.0f} GB/mo ({label})",
                 b.spacecdn_usd_per_gb, b.terrestrial_cdn_usd_per_gb, b.cheapest())
            )
    print(format_table(
        ("demand (region)", "SpaceCDN $/GB", "terr CDN $/GB", "cheapest"),
        rows, float_fmt="{:.4f}",
    ))
    print(f"break-even (remote region): "
          f"{model.breakeven_demand_gb_per_month(False):,.0f} GB/month\n")

    # 2. MetaCDN tenancy over the fleet's ~900 PB.
    operator = MetaCdnOperator(total_cache_bytes=900 * 10**15)
    operator.commit("streaming-service", 600_000.0)
    operator.commit("news-network", 300_000.0)
    operator.commit("game-publisher", 100_000.0)
    for allocation in operator.allocations(demand_gb_per_month=5e6):
        print(f"  {allocation.tenant:18s} {allocation.allocated_bytes / 1e15:6.0f} PB "
              f"at ${allocation.price_usd_per_gb:.4f}/GB")

    # 3. Wormholing: ship 100 GB of match highlights from the US east coast
    #    to Iberia on a passing satellite vs a thin WAN pipe.
    planner = WormholePlanner(
        constellation=build_walker_delta(starlink_shell1()), scan_step_s=30.0
    )
    src = city_by_name("New York").location
    dst = city_by_name("Madrid").location
    plan = planner.plan(src, dst, bundle_gb=100.0)
    wan = planner.wan_delivery_time_s(src, dst, bundle_gb=100.0, wan_gbps=0.2)
    print(f"\nwormhole: satellite {plan.satellite} loads for "
          f"{plan.load_end_s - plan.load_start_s:.0f}s, carries the bundle "
          f"{plan.carry_time_s / 60:.1f} min, delivers in "
          f"{plan.delivery_time_s / 60:.1f} min total")
    print(f"WAN at 0.2 Gbps would take {wan / 60:.1f} min — "
          f"{'wormhole wins' if plan.delivery_time_s < wan else 'WAN wins'}")


if __name__ == "__main__":
    main()
