#!/usr/bin/env python3
"""Fault injection and degraded-mode serving: what failures cost SpaceCDN.

Sweeps satellite-outage fractions over the request-level system (via
``repro.faults``) and reports availability, latency inflation and
hit-ratio degradation; then walks one request through the fallback ladder
by hand to show the retry machinery.

Run:  python examples/chaos_sweep.py
"""

import numpy as np

from repro.cdn.content import build_catalog
from repro.errors import UnavailableError
from repro.experiments import chaos
from repro.experiments.common import small_constellation
from repro.faults import (
    FaultSchedule,
    GroundStationOutage,
    OutageWindow,
    RetryPolicy,
    TransientAttemptLoss,
)
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.system import SpaceCdnSystem


def main() -> None:
    print("chaos sweep (small 6x8 shell, smoke scale):")
    result = chaos.run(shell="small", num_requests=60, fractions=(0.0, 0.1, 0.3))
    print(chaos.format_result(result))

    # One request through the degraded path, by hand.
    constellation = small_constellation()
    catalog = build_catalog(
        np.random.default_rng(0), 50, regions=("africa",), kind_weights={"web": 1.0}
    )
    user = GeoPoint(0.0, 0.0, 0.0)
    schedule = (
        FaultSchedule()
        .add(OutageWindow(satellites=frozenset({20})))
        .add(TransientAttemptLoss(probability=0.6, seed=1))
    )
    system = SpaceCdnSystem(
        constellation=constellation,
        catalog=catalog,
        cache_bytes_per_satellite=10**9,
        fault_schedule=schedule,
        retry_policy=RetryPolicy(max_attempts=5),
    )
    system.preload({"obj-000002": frozenset({20})})
    served = system.serve(user, "obj-000002", 0.0)
    print(
        f"\ndegraded serve: replica holder failed (cache wiped), 60% transient "
        f"loss ->\n  source={served.source.value} attempts={served.attempts} "
        f"fallback_reason={served.fallback_reason} rtt={served.rtt_ms:.1f} ms"
    )

    # With the ground segment down too, the ladder can genuinely run dry.
    dark = FaultSchedule().add(TransientAttemptLoss(probability=1.0)).add(
        GroundStationOutage()
    )
    dark_system = SpaceCdnSystem(
        constellation=constellation, catalog=catalog, fault_schedule=dark
    )
    try:
        dark_system.serve(user, "obj-000002", 0.0)
    except UnavailableError as exc:
        print(f"\ntotal loss + ground outage -> UnavailableError: {exc}")
    print(
        f"availability after the failed request: "
        f"{dark_system.stats.availability:.1f} "
        f"({dark_system.stats.unavailable} unavailable)"
    )


if __name__ == "__main__":
    main()
