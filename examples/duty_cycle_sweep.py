#!/usr/bin/env python3
"""Duty-cycled SpaceCDN caching (paper §5, Fig. 8) plus the thermal budget.

Sweeps the fraction of satellites acting as caches and reports the latency
distribution users see, then cross-checks the fraction against what the
passive-cooling thermal model can actually sustain.

Run:  python examples/duty_cycle_sweep.py
"""

from repro.analysis.tables import format_table
from repro.experiments import figure8
from repro.spacecdn.capacity import ThermalModel, constellation_storage_pb, videos_storable


def main() -> None:
    result = figure8.run(seed=7, users_per_epoch=15, num_epochs=3)
    print(figure8.format_result(result))

    thermal = ThermalModel()
    sustainable = thermal.max_sustainable_duty_fraction(slot_s=600.0)
    print(f"\nthermal model: continuous caching crosses the "
          f"{thermal.limit_c:.0f} C ceiling after "
          f"{thermal.time_to_limit_s() / 3600:.1f} h;")
    print(f"duty-cycling at {sustainable:.0%} or below keeps steady-state "
          "peaks inside the passive-cooling envelope")

    competitive = result.competitive_fractions()
    feasible = [f for f in competitive if f <= sustainable]
    print(f"fractions both latency-competitive and thermally sustainable: "
          f"{[f'{f:.0%}' for f in feasible] or 'none'}")

    storage = constellation_storage_pb(6000)
    print(f"\nfleet storage check (paper §5): 6000 satellites x 150 TB = "
          f"{storage:.0f} PB (> {videos_storable(storage) / 1e6:.0f}M two-hour "
          "1080p videos)")


if __name__ == "__main__":
    main()
