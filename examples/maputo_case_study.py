#!/usr/bin/env python3
"""The Maputo case study (paper §3.2, Fig. 3) as a runnable walkthrough.

Shows, for a client in Maputo, Mozambique:
  1. which CDN site each ISP class maps them to and at what median RTT;
  2. why — the resolved Starlink path exits at the Frankfurt PoP;
  3. the geo-blocking side effect: locally licensed content 403s over
     Starlink because the IP geolocates to Germany.

Run:  python examples/maputo_case_study.py
"""

from repro.cdn.geoblock import GeoBlockPolicy
from repro.experiments import figure3
from repro.geo.datasets import city_by_name
from repro.measurements.aim import STARLINK, TERRESTRIAL, AimGenerator


def main() -> None:
    maputo = city_by_name("Maputo")

    # 1. Per-site median RTTs over both ISP classes (Fig. 3 data).
    result = figure3.run(seed=7, samples_per_site=25)
    print(figure3.format_result(result))

    # 2. Why: resolve the structural Starlink path.
    generator = AimGenerator(seed=7)
    path = generator.starlink.resolve_path(maputo)
    print(f"\nStarlink path: assigned PoP = {path.pop.name} "
          f"({path.pop.site.iso2}); nearest gateway = {path.gateway.name}, "
          f"{path.gateway_distance_km:.0f} km away over {path.isl_hops} ISL hops")
    terr_site, _ = generator.optimal_site(maputo, TERRESTRIAL)
    star_site, _ = generator.optimal_site(maputo, STARLINK)
    print(f"anycast maps the terrestrial client to {terr_site.name}, "
          f"the Starlink client to {star_site.name}")

    # 3. Geo-blocking: Mozambican-licensed sports stream.
    policy = GeoBlockPolicy()
    policy.license_object("mozambique-league-stream", {"MZ", "ZA"})
    terrestrial = policy.check_terrestrial("mozambique-league-stream", maputo)
    starlink = policy.check_starlink("mozambique-league-stream", maputo)
    print(f"\ngeo-block check (licensed for MZ, ZA):")
    print(f"  terrestrial client: allowed={terrestrial.allowed} "
          f"(appears in {terrestrial.apparent_iso2})")
    print(f"  Starlink client:    allowed={starlink.allowed} "
          f"(appears in {starlink.apparent_iso2}; misblocked={starlink.misblocked})")


if __name__ == "__main__":
    main()
