#!/usr/bin/env python3
"""Quickstart: from constellation to SpaceCDN lookup in ~40 lines.

Builds Starlink Shell 1, places a content object with 4 replicas per orbital
plane, and compares the RTT of fetching it from the SpaceCDN against the RTT
the same user pays today (Starlink bent-pipe/ISL path to a ground CDN).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import build_walker_delta, build_snapshot, starlink_shell1
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.geo.datasets import cdn_site_by_name, city_by_name
from repro.network.bentpipe import StarlinkPathModel
from repro.network.latency import LatencyNoise
from repro.spacecdn.lookup import SpaceCdnLookup
from repro.spacecdn.placement import KPerPlanePlacement


def main() -> None:
    # 1. The space segment: Shell 1 (72 planes x 22 satellites, 550 km).
    shell = starlink_shell1()
    constellation = build_walker_delta(shell)
    snapshot = build_snapshot(constellation, t_s=0.0)
    print(f"constellation: {len(constellation)} satellites, "
          f"period {shell.period_s / 60:.1f} min")

    # 2. Place one object: 4 replicas per plane (the paper's §4 sizing).
    placement = KPerPlanePlacement(copies_per_plane=4)
    holders = placement.place_object("breaking-news-video", shell)
    print(f"placement: {len(holders)} replicas across {shell.num_planes} planes")

    # 3. A user in Maputo fetches it from space.
    maputo = city_by_name("Maputo")
    lookup = SpaceCdnLookup(snapshot=snapshot, max_hops=5)
    result = lookup.lookup_from_point(maputo.location, holders)
    space_rtt = 2 * result.one_way_ms + CDN_SERVER_THINK_TIME_MS
    print(f"SpaceCDN: served from satellite {result.serving_satellite} "
          f"({result.isl_hops} ISL hops), RTT {space_rtt:.1f} ms")

    # 4. The same user today: Starlink routes to Frankfurt first.
    model = StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(0)))
    path = model.resolve_path(maputo)
    frankfurt = cdn_site_by_name("Frankfurt")
    today_rtt = model.min_rtt_floor_ms(maputo, frankfurt.location, frankfurt.iso2)
    print(f"today:    exits at PoP {path.pop.name} over {path.isl_hops} ISL hops "
          f"({path.gateway_distance_km:.0f} km to gateway), "
          f"best-case RTT {today_rtt:.1f} ms")

    print(f"\nSpaceCDN cuts the RTT by "
          f"{(1.0 - space_rtt / today_rtt) * 100.0:.0f}% for this user.")


if __name__ == "__main__":
    main()
