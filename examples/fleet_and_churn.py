#!/usr/bin/env python3
"""Multi-shell fleets and access-satellite churn.

1. Combine Shell 1 with the 70-degree Shell 3 and a VLEO shell and compare
   coverage at different latitudes (Shell 1 alone cannot serve 64 N).
2. Measure how often a fixed terminal's serving satellite changes — the
   churn the striping and prediction layers are built to absorb.

Run:  python examples/fleet_and_churn.py
"""

from repro.analysis.tables import format_table
from repro.geo.coordinates import GeoPoint
from repro.orbits.churn import access_churn
from repro.orbits.elements import starlink_shell1, starlink_shell3, starlink_vleo
from repro.orbits.multi import MultiShellConstellation
from repro.orbits.walker import build_walker_delta


def main() -> None:
    fleet = MultiShellConstellation(
        shells=(starlink_shell1(), starlink_shell3(), starlink_vleo())
    )
    print(f"fleet: {len(fleet)} satellites across {len(fleet.shells)} shells\n")

    rows = []
    for name, lat in (("equator", 0.0), ("mid-latitude", 45.0), ("far north", 64.0)):
        counts = fleet.coverage_by_shell(GeoPoint(lat, 10.0), t_s=0.0)
        rows.append((f"{name} ({lat:.0f}N)", *counts.values()))
    print(format_table(
        ("location", *(s.name for s in fleet.shells)), rows
    ))

    sat, visible = fleet.nearest_visible(GeoPoint(64.0, 10.0), 0.0)
    print(f"\nat 64N the nearest usable satellite is {sat.shell_name} "
          f"#{sat.local_index} at {visible.slant_range_km:.0f} km")

    # Churn for a Shell-1 terminal on the equator.
    constellation = build_walker_delta(starlink_shell1())
    report = access_churn(
        constellation, GeoPoint(0.0, 0.0, 0.0), duration_s=1800.0
    )
    print(f"\naccess churn over 30 min (15 s scheduling intervals):")
    print(f"  satellite switches:  {report.switches}")
    print(f"  distinct satellites: {report.distinct_satellites}")
    print(f"  mean dwell:          {report.mean_dwell_s:.0f} s "
          f"({report.switch_rate_per_minute:.2f} switches/min)")
    print("\nevery switch invalidates 'content is on the satellite overhead' —"
          "\nwhich is why stripes ride passes and caches prefetch predictively.")


if __name__ == "__main__":
    main()
