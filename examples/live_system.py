#!/usr/bin/env python3
"""Run the full SpaceCDN system under live traffic.

Ten simulated minutes of Zipf-distributed, regionally skewed requests from
five cities in underserved regions hit a Shell-1 fleet whose satellites
each carry a real byte-bounded cache. The operator preloads each region's
head content; everything else arrives by pull-through as misses return
from the ground.

Run:  python examples/live_system.py
"""

import numpy as np

from repro import build_walker_delta, starlink_shell1
from repro.analysis.stats import summarize
from repro.cdn.content import build_catalog
from repro.geo.datasets import city_by_name
from repro.spacecdn.bubbles import RegionalPopularity
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.system import SpaceCdnSystem
from repro.workloads.regional import RegionalRequestMixer
from repro.workloads.requests import RequestGenerator

CITIES = ("Maputo", "Nairobi", "Lagos", "Sao Paulo", "Jakarta")


def main() -> None:
    shell = starlink_shell1()
    catalog = build_catalog(
        np.random.default_rng(0),
        300,
        regions=("africa", "south-america", "asia"),
        global_fraction=0.2,
        kind_weights={"web": 0.6, "news": 0.4},
    )
    system = SpaceCdnSystem(
        constellation=build_walker_delta(shell),
        catalog=catalog,
        cache_bytes_per_satellite=8_000_000,
        max_hops=5,
        ground_rtt_ms=140.0,  # the Maputo-class bent-pipe fallback
    )

    popularity = RegionalPopularity(catalog=catalog, seed=1)
    placement = KPerPlanePlacement(copies_per_plane=2)
    preload = {
        object_id: placement.place_object(object_id, shell)
        for region in popularity.regions()
        for object_id in popularity.top_objects(region, 10)
    }
    stored = system.preload(preload)
    print(f"preloaded {len(preload)} head objects ({stored} replica stores)")

    mixer = RegionalRequestMixer(popularity=popularity, rng=np.random.default_rng(2))
    generator = RequestGenerator(
        cities=tuple(city_by_name(c) for c in CITIES),
        mixer=mixer,
        requests_per_second_total=1.5,
        rng=np.random.default_rng(3),
    )
    requests = generator.generate_list(600.0)
    system.run(requests)

    stats = system.stats
    summary = summarize(stats.rtt_samples_ms)
    print(f"\nserved {stats.requests} requests over 10 simulated minutes:")
    print(f"  access-satellite hits: {stats.access_hits}")
    print(f"  direct-visible hits:   {stats.direct_hits}")
    print(f"  ISL-neighbour hits:    {stats.isl_hits}")
    print(f"  ground fetches:        {stats.ground_fetches}")
    print(f"  space hit ratio:       {stats.space_hit_ratio:.2f}")
    print(f"  RTT p25/median/p95:    {summary.p25:.1f} / {summary.median:.1f} / "
          f"{summary.p95:.1f} ms (ground fallback would be 140 ms flat)")


if __name__ == "__main__":
    main()
