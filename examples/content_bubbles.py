#!/usr/bin/env python3
"""Content bubbles: geo-predictive prefetch on a moving satellite (paper §5).

A satellite's footprint sweeps from Europe over Africa to South America every
orbit. This example builds a regionally skewed catalog ("a Boca Juniors game
is popular in Argentina"), drives one satellite cache across the regions,
and compares the content-bubble policy (prefetch on approach + content-aware
eviction) against a plain reactive LRU.

Run:  python examples/content_bubbles.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.cdn.content import build_catalog
from repro.spacecdn.bubbles import RegionalPopularity, simulate_orbit_requests

REGIONS = ("europe", "africa", "south-america")


def main() -> None:
    catalog = build_catalog(
        np.random.default_rng(0),
        600,
        regions=REGIONS,
        global_fraction=0.2,
        kind_weights={"web": 0.5, "news": 0.5},
    )
    popularity = RegionalPopularity(catalog=catalog, seed=1)

    print("top-3 objects per region (what the bubble prefetches):")
    for region in REGIONS:
        print(f"  {region}: {popularity.top_objects(region, 3)}")

    # Three full orbits across the three regions.
    sequence = list(REGIONS) * 3
    rows = []
    for cache_mb in (1, 3, 6):
        result = simulate_orbit_requests(
            catalog=catalog,
            popularity=popularity,
            region_sequence=sequence,
            requests_per_region=200,
            cache_bytes=cache_mb * 1_000_000,
        )
        rows.append(
            (
                f"{cache_mb} MB cache",
                result.bubble_hit_ratio,
                result.plain_hit_ratio,
                result.improvement,
            )
        )

    print("\nhit ratios over", len(sequence) * 200, "requests:")
    print(format_table(
        ("cache size", "content bubbles", "plain LRU", "gain"),
        rows,
        float_fmt="{:.3f}",
    ))
    print("\nthe bubble cache starts each region pass warm; the LRU relearns "
          "the region's catalog from misses every single orbit.")


if __name__ == "__main__":
    main()
