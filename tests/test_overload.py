"""Overload protection: capacity, admission, breakers, deadlines, sweep.

Unit coverage for :mod:`repro.overload` (the admission/queueing model and
the circuit-breaker state machine), the overloaded serve path through
:class:`~repro.spacecdn.system.SpaceCdnSystem` (shed accounting, priority
validation, the no-model byte-identical guarantee), the ``overload``
experiment (graceful degradation, registry round-trip, merge equivalence),
its CLI surface (eager exit-4 validation, the ``overloaded`` exit code),
and the obs integration (summarize section, serial-vs-parallel counter
reconciliation).
"""

import json
import re

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.cli import EXIT_FAULT_CONFIG, EXIT_OVERLOADED, main
from repro.errors import (
    ConfigurationError,
    FaultConfigError,
    OverloadedError,
    UnavailableError,
)
from repro.experiments import overload as overload_experiment
from repro.faults import FaultSchedule, FlashCrowdProcess, OutageWindow
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import ShellConfig
from repro.orbits.walker import build_walker_delta
from repro.overload import (
    GROUND_TARGET,
    CircuitBreaker,
    CircuitBreakerConfig,
    OverloadModel,
)
from repro.runner.registry import plan_from_config
from repro.spacecdn.capacity import ThermalModel
from repro.spacecdn.system import SpaceCdnSystem

CONSTELLATION = build_walker_delta(
    ShellConfig(
        altitude_km=550.0,
        inclination_deg=53.0,
        num_planes=6,
        sats_per_plane=8,
        phase_offset=3,
        name="overload-shell",
    )
)
CATALOG = build_catalog(
    np.random.default_rng(0), 30, regions=("africa",), kind_weights={"web": 1.0}
)
OBJECTS = sorted(o.object_id for o in CATALOG)
USERS = [
    GeoPoint(0.0, 0.0, 0.0),
    GeoPoint(-25.9, 32.6, 0.0),  # Maputo
    GeoPoint(-1.3, 36.8, 0.0),  # Nairobi
]


def make_system(model=None, schedule=None):
    system = SpaceCdnSystem(
        constellation=CONSTELLATION,
        catalog=CATALOG,
        cache_bytes_per_satellite=10**8,
        max_hops=6,
        fault_schedule=schedule,
        overload=model,
    )
    system.preload(
        {
            oid: frozenset(
                {(i * 7) % len(CONSTELLATION), (i * 13 + 5) % len(CONSTELLATION)}
            )
            for i, oid in enumerate(OBJECTS[:12])
        }
    )
    return system


class TestCircuitBreakerConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(cooldown_s=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(cooldown_jitter_s=-1.0)
        with pytest.raises(ConfigurationError):
            CircuitBreakerConfig(half_open_probes=0)


class TestCircuitBreaker:
    @staticmethod
    def breaker(**kwargs):
        config = CircuitBreakerConfig(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            cooldown_s=kwargs.pop("cooldown_s", 60.0),
            cooldown_jitter_s=kwargs.pop("cooldown_jitter_s", 0.0),
            half_open_probes=kwargs.pop("half_open_probes", 1),
        )
        return CircuitBreaker(config, seed=7, target=4, **kwargs)

    def test_trips_after_threshold_consecutive_failures(self):
        b = self.breaker()
        for _ in range(2):
            b.record_failure(0.0)
        assert b.state == "closed" and b.allow(1.0)
        b.record_failure(2.0)
        assert b.state == "open"
        assert not b.allow(3.0)

    def test_success_resets_the_consecutive_count(self):
        b = self.breaker()
        b.record_failure(0.0)
        b.record_failure(1.0)
        b.record_success(2.0)
        b.record_failure(3.0)
        b.record_failure(4.0)
        assert b.state == "closed"

    def test_half_opens_after_cooldown_and_probe_closes_it(self):
        b = self.breaker()
        for t in range(3):
            b.record_failure(float(t))
        assert not b.allow(10.0)  # still cooling down
        assert b.allow(2.0 + 60.0)  # cooldown elapsed: the probe slot
        assert b.state == "half-open"
        b.record_success(63.0)
        assert b.state == "closed"

    def test_half_open_exhausts_its_probe_budget(self):
        b = self.breaker(half_open_probes=2)
        for t in range(3):
            b.record_failure(float(t))
        t = 2.0 + 60.0
        assert b.allow(t) and b.allow(t)
        assert not b.allow(t)  # third concurrent probe refused

    def test_failed_probe_reopens_with_a_fresh_cooldown(self):
        b = self.breaker()
        for t in range(3):
            b.record_failure(float(t))
        first_reopen = b._reopen_at
        assert b.allow(first_reopen)
        b.record_failure(first_reopen)
        assert b.state == "open"
        assert b._reopen_at == pytest.approx(first_reopen + 60.0)

    def test_failure_while_open_is_a_noop(self):
        b = self.breaker()
        for t in range(3):
            b.record_failure(float(t))
        reopen = b._reopen_at
        b.record_failure(5.0)
        assert b.state == "open" and b._reopen_at == reopen

    def test_cooldown_jitter_is_seeded_and_bounded(self):
        def tripped():
            b = self.breaker(cooldown_jitter_s=30.0)
            for t in range(3):
                b.record_failure(float(t))
            return b

        a, b = tripped(), tripped()
        assert a._reopen_at == b._reopen_at  # same (seed, target, open) stream
        assert 2.0 + 60.0 <= a._reopen_at <= 2.0 + 60.0 + 30.0

    def test_transition_hook_sees_every_edge(self):
        edges = []
        b = self.breaker(
            on_transition=lambda target, old, new, t: edges.append((old, new))
        )
        for t in range(3):
            b.record_failure(float(t))
        b.allow(2.0 + 60.0)
        b.record_success(63.0)
        assert edges == [
            ("closed", "open"), ("open", "half-open"), ("half-open", "closed"),
        ]


class TestOverloadModel:
    def test_rejects_inconsistent_config(self):
        with pytest.raises(ConfigurationError):
            OverloadModel(capacity_per_slot=0.0)
        with pytest.raises(ConfigurationError):
            OverloadModel(max_utilisation=1.0)
        with pytest.raises(ConfigurationError):
            OverloadModel(shed_thresholds=(0.5, 0.9), priority_weights=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            OverloadModel(shed_thresholds=(1.0,), priority_weights=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            OverloadModel(priority_weights=(0.7, 0.2, 0.0))
        with pytest.raises(ConfigurationError):
            OverloadModel(deadline_ms=0.0)
        with pytest.raises(ConfigurationError):
            OverloadModel(seed=-1)

    @staticmethod
    def model(**kwargs):
        kwargs.setdefault("capacity_per_slot", 10.0)
        kwargs.setdefault("shed_thresholds", (1.0, 0.5))
        kwargs.setdefault("priority_weights", (0.8, 0.2))
        model = OverloadModel(**kwargs)
        model.begin_slot(0, 0.0, 8, kwargs.get("schedule"))
        return model

    def test_admission_thresholds_are_per_class(self):
        model = self.model()
        for _ in range(4):
            model.note_served(3)
        assert model.admit(3, 0)  # 4+1 <= 10
        assert model.admit(3, 1)  # 4+1 <= 5
        model.note_served(3)
        assert model.admit(3, 0)
        assert not model.admit(3, 1)  # class 1 sheds above 50% utilisation
        for _ in range(4):
            model.note_served(3)
        assert model.admit(3, 0)  # the tenth request exactly fills the slot
        model.note_served(3)
        assert not model.admit(3, 0)  # hard capacity

    def test_ground_budget_is_separate(self):
        model = self.model(ground_capacity_per_slot=2.0)
        model.note_served(None)
        assert model.admit(None, 0)
        model.note_served(None)
        assert not model.admit(None, 0)
        assert model.admit(0, 0)  # satellites untouched

    def test_queue_delay_rises_smoothly_and_caps(self):
        model = self.model(queue_service_ms=4.0, max_queue_delay_ms=50.0)
        assert model.queue_delay_ms(2) == 0.0
        model.note_served(2)
        low = model.queue_delay_ms(2)
        for _ in range(7):
            model.note_served(2)
        high = model.queue_delay_ms(2)
        assert 0.0 < low < high
        for _ in range(20):
            model.note_served(2)
        assert model.queue_delay_ms(2) == 50.0  # rho clamp + cap

    def test_flash_crowd_background_consumes_budget(self):
        schedule = FaultSchedule().add(
            FlashCrowdProcess(extra_requests_per_slot=9.0, start_s=0.0)
        )
        model = OverloadModel(
            capacity_per_slot=10.0,
            shed_thresholds=(1.0,),
            priority_weights=(1.0,),
        )
        model.begin_slot(0, 0.0, 8, schedule)
        assert model.admit(5, 0)  # 9+1 <= 10
        model.note_served(5)
        assert not model.admit(5, 0)
        assert model.utilisation(5) == pytest.approx(1.0)

    def test_begin_slot_resets_load_and_is_idempotent(self):
        model = self.model()
        model.note_served(1)
        model.begin_slot(0, 0.0, 8, None)  # same slot: keeps the load
        assert model.utilisation(1) > 0.0
        model.begin_slot(1, 600.0, 8, None)  # new slot: fresh budget
        assert model.utilisation(1) == 0.0

    def test_priority_draws_are_seeded_and_in_range(self):
        model = self.model()
        draws = [model.priority_of(i) for i in range(64)]
        assert draws == [model.priority_of(i) for i in range(64)]
        assert set(draws) <= {0, 1}
        assert draws.count(0) > draws.count(1)  # weight 0.8 vs 0.2
        with pytest.raises(ConfigurationError):
            model.validate_priority(2)

    def test_from_thermal_uses_the_duty_budget(self):
        thermal = ThermalModel()
        model = OverloadModel.from_thermal(
            thermal, peak_requests_per_slot=100.0
        )
        assert model.capacity_per_slot == float(
            thermal.sustainable_requests_per_slot(100.0)
        )

    def test_breakers_are_lazy_and_per_target(self):
        model = self.model()
        assert model.breaker_for(3) is model.breaker_for(3)
        assert model.breaker_for(3) is not model.breaker_for(GROUND_TARGET)
        assert self.model(breaker=None).breaker_for(3) is None


class TestFlashCrowdSchedule:
    def test_inert_outside_the_window(self):
        crowd = FlashCrowdProcess(
            extra_requests_per_slot=4.0, start_s=100.0, end_s=200.0
        )
        assert crowd.background_load(99.0, 8) is None
        assert crowd.background_load(200.0, 8) is None
        load = crowd.background_load(150.0, 8)
        assert load is not None and np.all(load == 4.0)

    def test_ramp_shapes_the_edges(self):
        crowd = FlashCrowdProcess(
            extra_requests_per_slot=10.0, start_s=0.0, end_s=100.0, ramp_s=20.0
        )
        assert float(crowd.background_load(10.0, 4)[0]) == pytest.approx(5.0)
        assert float(crowd.background_load(50.0, 4)[0]) == pytest.approx(10.0)
        assert float(crowd.background_load(95.0, 4)[0]) == pytest.approx(2.5)

    def test_targeted_satellites_and_out_of_range_indices(self):
        crowd = FlashCrowdProcess(
            extra_requests_per_slot=3.0, satellites=frozenset({1, 99})
        )
        load = crowd.background_load(0.0, 4)
        assert load.tolist() == [0.0, 3.0, 0.0, 0.0]

    def test_schedule_compiles_and_sums_load(self):
        schedule = (
            FaultSchedule()
            .add(FlashCrowdProcess(extra_requests_per_slot=2.0))
            .add(
                FlashCrowdProcess(
                    extra_requests_per_slot=5.0, satellites=frozenset({0})
                )
            )
        )
        load = schedule.compile_load_at(0.0, 3)
        assert load.tolist() == [7.0, 2.0, 2.0]
        with pytest.raises(FaultConfigError):
            schedule.compile_load_at(-1.0, 3)

    def test_load_only_schedule_counts_as_empty(self):
        """Without an overload model, flash crowds have nothing to saturate:
        the healthy fast path must stay in force."""
        schedule = FaultSchedule().add(
            FlashCrowdProcess(extra_requests_per_slot=2.0)
        )
        assert schedule.is_empty
        plain = make_system()
        loaded = make_system(schedule=schedule)
        for oid in OBJECTS[:4]:
            assert loaded.serve(USERS[0], oid, 0.0) == plain.serve(
                USERS[0], oid, 0.0
            )
        assert loaded.stats == plain.stats

    def test_flash_crowd_validation(self):
        with pytest.raises(FaultConfigError):
            FlashCrowdProcess(extra_requests_per_slot=-1.0)
        with pytest.raises(FaultConfigError):
            FlashCrowdProcess(extra_requests_per_slot=1.0, satellites=frozenset())
        with pytest.raises(FaultConfigError):
            FlashCrowdProcess(
                extra_requests_per_slot=1.0, start_s=10.0, end_s=5.0
            )


class TestOverloadedServe:
    def test_shed_raises_overloaded_with_reason_and_class(self):
        model = OverloadModel(
            capacity_per_slot=1.0,
            ground_capacity_per_slot=1.0,
            shed_thresholds=(1.0,),
            priority_weights=(1.0,),
            breaker=None,
        )
        system = make_system(model)
        served = 0
        sheds = []
        for _ in range(12):  # one object: two holders + ground = 3 slots
            try:
                system.serve(USERS[0], OBJECTS[0], 0.0)
                served += 1
            except OverloadedError as exc:
                sheds.append(exc)
            except UnavailableError:
                pass
        assert sheds, "1-request budgets must shed most of a 12-request burst"
        assert all(exc.reason == "admission" for exc in sheds)
        assert all(exc.priority_class == 0 for exc in sheds)
        assert system.stats.shed == len(sheds)
        assert system.stats.requests == 12
        assert system.stats.shed_fraction == pytest.approx(len(sheds) / 12)

    def test_overloaded_is_a_kind_of_unavailable(self):
        assert issubclass(OverloadedError, UnavailableError)

    def test_tight_deadline_sheds_with_deadline_reason(self):
        model = OverloadModel(
            capacity_per_slot=100.0,
            deadline_ms=1e-6,
            shed_thresholds=(1.0,),
            priority_weights=(1.0,),
            breaker=None,
        )
        system = make_system(model)
        with pytest.raises(OverloadedError) as excinfo:
            system.serve(USERS[0], OBJECTS[0], 0.0)
        assert excinfo.value.reason == "deadline"
        assert system.stats.deadline_exhausted == 1
        assert system.stats.shed == 1

    def test_breaker_open_sheds_once_all_rungs_trip(self):
        model = OverloadModel(
            capacity_per_slot=0.25,  # admits nothing: every attempt fails
            ground_capacity_per_slot=0.25,
            shed_thresholds=(1.0,),
            priority_weights=(1.0,),
            breaker=CircuitBreakerConfig(
                failure_threshold=1, cooldown_s=1e6, cooldown_jitter_s=0.0
            ),
        )
        system = make_system(model)
        reasons = set()
        for i in range(12):
            try:
                system.serve(USERS[0], OBJECTS[i % 6], 0.0)
            except OverloadedError as exc:
                reasons.add(exc.reason)
            except UnavailableError:
                pass
        assert "breaker-open" in reasons

    def test_priority_without_model_is_refused(self):
        system = make_system()
        with pytest.raises(ConfigurationError):
            system.serve(USERS[0], OBJECTS[0], 0.0, priority=1)
        with pytest.raises(ConfigurationError):
            system.serve_batch([USERS[0]], [OBJECTS[0]], 0.0, priorities=[1])

    def test_out_of_range_priority_is_refused(self):
        system = make_system(OverloadModel())
        with pytest.raises(ConfigurationError):
            system.serve(USERS[0], OBJECTS[0], 0.0, priority=99)

    def test_generous_model_changes_nothing(self):
        """Capacity far above demand: the overloaded walk must reproduce the
        plain serve results (modulo the priority annotation)."""
        model = OverloadModel(capacity_per_slot=1e9,
                              ground_capacity_per_slot=1e9,
                              deadline_ms=None)
        plain, guarded = make_system(), make_system(model)
        for i in range(6):
            expected = plain.serve(USERS[0], OBJECTS[i], float(i))
            actual = guarded.serve(USERS[0], OBJECTS[i], float(i))
            assert actual.priority is not None
            assert (actual.object_id, actual.source, actual.serving_satellite,
                    actual.rtt_ms) == (
                expected.object_id, expected.source,
                expected.serving_satellite, expected.rtt_ms,
            )

    def test_served_priority_is_echoed(self):
        system = make_system(OverloadModel())
        result = system.serve(USERS[0], OBJECTS[0], 0.0, priority=2)
        assert result.priority == 2


class TestOverloadExperiment:
    TUNED = dict(
        shell="small", num_requests=45, capacity=1.0, ground_capacity=3.0,
        loads=(0.5, 2.0, 4.0),
    )

    def test_graceful_degradation_no_cliff(self):
        result = overload_experiment.run(**self.TUNED)
        availability = [p.availability for p in result.points]
        shed = [p.shed_fraction for p in result.points]
        assert all(a is not None for a in availability)
        # Monotone-ish decline with rising shedding, never a cliff to zero.
        for lighter, heavier in zip(availability, availability[1:]):
            assert heavier <= lighter + 0.05
        assert availability[-1] > 0.0
        assert shed[-1] > shed[0]
        assert result.points[-1].goodput_rps > 0.0
        assert result.baseline.load == 0.5

    def test_flash_crowd_deepens_the_sweep(self):
        calm = overload_experiment.run(**self.TUNED)
        crowded = overload_experiment.run(
            **self.TUNED, flash_crowd=(60.0, 240.0, 1.0)
        )
        assert crowded.points[-1].shed_fraction > calm.points[-1].shed_fraction

    def test_parse_flash_crowd_rejects_malformed_specs(self):
        assert overload_experiment.parse_flash_crowd("60:240:1.5") == (
            60.0, 240.0, 1.5,
        )
        for bad in ("60:240", "a:b:c", "240:60:1", "0:100:-2"):
            with pytest.raises(FaultConfigError):
                overload_experiment.parse_flash_crowd(bad)

    def test_plan_round_trips_through_the_registry(self):
        plan = overload_experiment.build_plan(
            **self.TUNED, flash_crowd=(60.0, 240.0, 1.0)
        )
        wire = json.loads(json.dumps(plan.config))  # the manifest round trip
        assert plan_from_config(wire).config == plan.config
        assert len(plan.shard_ids) == len(self.TUNED["loads"])

    def test_sharded_merge_matches_monolithic_run(self):
        small = dict(self.TUNED, num_requests=20, loads=(0.5, 2.0))
        plan = overload_experiment.build_plan(**small)
        merged = plan.merge(
            {shard: plan.run_shard(shard) for shard in plan.shard_ids}
        )
        assert merged == overload_experiment.run(**small)

    def test_config_is_validated_eagerly(self):
        with pytest.raises(ConfigurationError):
            overload_experiment.build_plan(num_requests=0)
        with pytest.raises(ConfigurationError):
            overload_experiment.build_plan(loads=())
        with pytest.raises(ConfigurationError):
            overload_experiment.build_plan(capacity=-1.0)
        with pytest.raises(ConfigurationError):
            overload_experiment.build_plan(shell="mega")


class TestOverloadCli:
    def test_smoke_run(self, capsys):
        code = main(
            [
                "run", "overload", "--shell", "small", "--requests", "20",
                "--loads", "0.5,2.0", "--capacity", "1.0",
                "--ground-capacity", "3.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out and "shed frac" in out

    def test_bad_loads_exit_4(self, capsys):
        for loads in ("abc", "", "0.5,-1"):
            assert main(
                ["run", "overload", "--loads", loads]
            ) == EXIT_FAULT_CONFIG
        assert "bad fault configuration" in capsys.readouterr().err

    def test_bad_flash_crowd_exits_4(self, capsys):
        assert main(
            ["run", "overload", "--flash-crowd", "60:240"]
        ) == EXIT_FAULT_CONFIG
        assert main(
            ["run", "overload", "--flash-crowd", "240:60:1"]
        ) == EXIT_FAULT_CONFIG
        assert "bad fault configuration" in capsys.readouterr().err

    def test_overloaded_error_exits_10(self, capsys, monkeypatch):
        import repro.cli as cli_module

        def raise_overloaded(name, args):
            error = OverloadedError("shed by admission control")
            raise error

        monkeypatch.setattr(cli_module, "_run_experiment", raise_overloaded)
        code = main(["run", "overload", "--shell", "small"])
        assert code == EXIT_OVERLOADED == 10
        assert "shed under overload" in capsys.readouterr().err


def _sum_overload_counters(prom_text: str) -> dict:
    """Aggregate repro_overload_* counters over shard/worker labels."""
    totals: dict = {}
    pattern = re.compile(r"^(repro_overload_\w+)\{([^}]*)\} (\S+)$")
    for line in prom_text.splitlines():
        match = pattern.match(line)
        if not match:
            continue
        name, raw_labels, value = match.groups()
        if name.endswith("_bucket"):
            continue
        labels = tuple(
            sorted(
                pair for pair in raw_labels.split(",")
                if pair and not pair.startswith(("shard=", "worker="))
            )
        )
        key = (name, labels)
        totals[key] = totals.get(key, 0.0) + float(value)
    return totals


class TestOverloadObs:
    ARGS = [
        "run", "overload", "--shell", "small", "--requests", "30",
        "--loads", "0.5,1.0,2.0", "--capacity", "1.0",
        "--ground-capacity", "3.0", "--flash-crowd", "60:240:1.0",
    ]

    def _run(self, tmp_path, name, jobs):
        out_dir = tmp_path / name
        code = main(
            self.ARGS
            + ["--out-dir", str(out_dir), "--jobs", str(jobs), "--obs"]
        )
        assert code == 0
        return out_dir

    def test_counters_reconcile_serial_vs_parallel(self, tmp_path, capsys):
        serial = self._run(tmp_path, "serial", jobs=1)
        parallel = self._run(tmp_path, "parallel", jobs=2)
        capsys.readouterr()
        a = _sum_overload_counters((serial / "obs-metrics.prom").read_text())
        b = _sum_overload_counters((parallel / "obs-metrics.prom").read_text())
        shed_keys = [k for k in a if k[0] == "repro_overload_shed_total"]
        assert shed_keys and sum(a[k] for k in shed_keys) > 0
        assert a == b

    def test_summarize_renders_the_overload_section(self, tmp_path, capsys):
        run_dir = self._run(tmp_path, "summ", jobs=1)
        capsys.readouterr()
        assert main(
            ["obs", "summarize", str(run_dir / "obs-trace.jsonl")]
        ) == 0
        out = capsys.readouterr().out
        assert "Overload protection:" in out
        assert "(shed)" in out
        assert "circuit breakers at end of trace" in out
        assert re.search(r"class\s+reason\s+shed", out)
        # The shed table reconciles exactly with the metrics counters.
        counters = _sum_overload_counters(
            (run_dir / "obs-metrics.prom").read_text()
        )
        for (name, labels), value in counters.items():
            if name != "repro_overload_shed_total":
                continue
            cls = dict(pair.split("=") for pair in labels)["class"].strip('"')
            reason = dict(pair.split("=") for pair in labels)["reason"].strip('"')
            assert re.search(
                rf"^{re.escape(cls)}\s+{re.escape(reason)}\s+{int(value)}\s*$",
                out,
                re.MULTILINE,
            )
