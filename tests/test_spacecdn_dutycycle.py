"""Tests for duty-cycled satellite caching."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.dutycycle import DutyCycleLatencyModel, DutyCycleScheduler


class TestScheduler:
    def test_caches_per_slot(self):
        scheduler = DutyCycleScheduler(total_satellites=100, cache_fraction=0.3)
        assert scheduler.caches_per_slot == 30

    def test_at_least_one_cache(self):
        scheduler = DutyCycleScheduler(total_satellites=100, cache_fraction=0.001)
        assert scheduler.caches_per_slot == 1

    def test_active_set_size(self):
        scheduler = DutyCycleScheduler(total_satellites=200, cache_fraction=0.5)
        assert len(scheduler.active_caches(0)) == 100

    def test_deterministic_per_slot(self):
        a = DutyCycleScheduler(total_satellites=100, cache_fraction=0.5, seed=3)
        b = DutyCycleScheduler(total_satellites=100, cache_fraction=0.5, seed=3)
        assert a.active_caches(7) == b.active_caches(7)

    def test_different_slots_differ(self):
        scheduler = DutyCycleScheduler(total_satellites=500, cache_fraction=0.5)
        assert scheduler.active_caches(0) != scheduler.active_caches(1)

    def test_different_seeds_differ(self):
        a = DutyCycleScheduler(total_satellites=500, cache_fraction=0.5, seed=1)
        b = DutyCycleScheduler(total_satellites=500, cache_fraction=0.5, seed=2)
        assert a.active_caches(0) != b.active_caches(0)

    def test_slot_index(self):
        scheduler = DutyCycleScheduler(
            total_satellites=10, cache_fraction=1.0, slot_duration_s=600.0
        )
        assert scheduler.slot_index(0.0) == 0
        assert scheduler.slot_index(599.9) == 0
        assert scheduler.slot_index(600.0) == 1

    def test_active_caches_at_uses_slot(self):
        scheduler = DutyCycleScheduler(total_satellites=100, cache_fraction=0.5)
        assert scheduler.active_caches_at(0.0) == scheduler.active_caches(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_satellites": 0},
            {"cache_fraction": 0.0},
            {"cache_fraction": 1.5},
            {"slot_duration_s": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        base = dict(total_satellites=10, cache_fraction=0.5, slot_duration_s=600.0)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            DutyCycleScheduler(**base)

    def test_negative_slot_rejected(self):
        scheduler = DutyCycleScheduler(total_satellites=10, cache_fraction=0.5)
        with pytest.raises(ConfigurationError):
            scheduler.active_caches(-1)
        with pytest.raises(ConfigurationError):
            scheduler.slot_index(-1.0)


class TestLatencyModel:
    def test_full_fleet_serves_directly(self, shell1_snapshot):
        model = DutyCycleLatencyModel(
            snapshot=shell1_snapshot,
            scheduler=DutyCycleScheduler(
                total_satellites=len(shell1_snapshot.constellation),
                cache_fraction=1.0,
            ),
        )
        result = model.lookup(GeoPoint(0.0, 0.0))
        assert result.isl_hops == 0

    def test_latency_decreases_with_cache_fraction(self, shell1_snapshot):
        import numpy as np

        from repro.simulation.sampler import seeded_rng, user_sample_points

        users = user_sample_points(seeded_rng(1, 2), 12)

        def median_latency(fraction: float) -> float:
            model = DutyCycleLatencyModel(
                snapshot=shell1_snapshot,
                scheduler=DutyCycleScheduler(
                    total_satellites=len(shell1_snapshot.constellation),
                    cache_fraction=fraction,
                    seed=9,
                ),
            )
            return float(np.median([model.one_way_ms(u) for u in users]))

        assert median_latency(0.1) > median_latency(0.9)

    def test_mismatched_fleet_size_rejected(self, shell1_snapshot):
        with pytest.raises(ConfigurationError):
            DutyCycleLatencyModel(
                snapshot=shell1_snapshot,
                scheduler=DutyCycleScheduler(total_satellites=10, cache_fraction=0.5),
            )

    def test_requests_always_served_in_space(self, shell1_snapshot):
        # With unbounded hops and a non-empty cache set, Fig. 8's premise is
        # that no request falls back to the ground.
        from repro.spacecdn.lookup import LookupSource

        model = DutyCycleLatencyModel(
            snapshot=shell1_snapshot,
            scheduler=DutyCycleScheduler(
                total_satellites=len(shell1_snapshot.constellation),
                cache_fraction=0.3,
            ),
        )
        for lon in (-120.0, -60.0, 0.0, 60.0, 120.0):
            result = model.lookup(GeoPoint(20.0, lon))
            assert result.source is not LookupSource.GROUND


class TestFaultsOverDutyCycle:
    def test_exited_caches_between_slots(self):
        scheduler = DutyCycleScheduler(
            total_satellites=48, cache_fraction=0.5, seed=3
        )
        exited = scheduler.exited_caches(0, 1)
        assert exited == scheduler.active_caches(0) - scheduler.active_caches(1)
        assert exited.isdisjoint(scheduler.active_caches(1))

    def test_failed_satellites_leave_cache_rotation(self, shell1_snapshot):
        scheduler = DutyCycleScheduler(
            total_satellites=len(shell1_snapshot.constellation),
            cache_fraction=0.5,
            seed=0,
        )
        failed = frozenset(scheduler.active_caches_at(0.0))
        model = DutyCycleLatencyModel(
            snapshot=shell1_snapshot, scheduler=scheduler, failed=failed
        )
        # Every slot-0 cache failed: the active set must be disjoint from it.
        assert model._active_caches() == frozenset()

    def test_failed_access_satellite_rehomes_user(self, shell1_snapshot):
        import numpy as np

        from repro.orbits.visibility import nearest_visible_satellite

        user = GeoPoint(0.0, 0.0, 0.0)
        nearest = nearest_visible_satellite(
            shell1_snapshot.constellation, user, 0.0
        )
        scheduler = DutyCycleScheduler(
            total_satellites=len(shell1_snapshot.constellation),
            cache_fraction=0.9,
            seed=0,
        )
        model = DutyCycleLatencyModel(
            snapshot=shell1_snapshot,
            scheduler=scheduler,
            failed=frozenset({nearest.index}),
        )
        result = model.lookup(user)
        assert result.serving_satellite != nearest.index or result.isl_hops > 0
        batch = model.one_way_ms_batch([user])
        assert np.isfinite(batch).all()
