"""Tests for the full request-level SpaceCDN system."""

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.errors import ConfigurationError, ContentNotFoundError
from repro.geo.coordinates import GeoPoint
from repro.geo.datasets import city_by_name
from repro.spacecdn.lookup import LookupSource
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.system import SpaceCdnSystem


@pytest.fixture
def catalog():
    return build_catalog(
        np.random.default_rng(0),
        100,
        regions=("africa", "europe"),
        kind_weights={"web": 1.0},
    )


@pytest.fixture
def system(shell1_constellation, catalog):
    return SpaceCdnSystem(
        constellation=shell1_constellation,
        catalog=catalog,
        cache_bytes_per_satellite=50_000_000,
        max_hops=5,
        ground_rtt_ms=140.0,
    )


EQUATOR = GeoPoint(0.0, 0.0, 0.0)


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cache_bytes_per_satellite": 0},
            {"max_hops": -1},
            {"snapshot_interval_s": 0.0},
            {"ground_rtt_ms": 0.0},
        ],
    )
    def test_invalid_config_rejected(self, shell1_constellation, catalog, kwargs):
        base = dict(constellation=shell1_constellation, catalog=catalog)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            SpaceCdnSystem(**base)

    def test_unknown_object_rejected(self, system):
        with pytest.raises(ContentNotFoundError):
            system.serve(EQUATOR, "ghost", 0.0)

    def test_out_of_range_satellite_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.cache_of(99999)


class TestColdStart:
    def test_first_request_goes_to_ground(self, system):
        result = system.serve(EQUATOR, "obj-000001", 0.0)
        assert result.source is LookupSource.GROUND
        assert result.rtt_ms == 140.0

    def test_ground_fetch_populates_access_cache(self, system):
        first = system.serve(EQUATOR, "obj-000001", 0.0)
        assert first.source is LookupSource.GROUND
        second = system.serve(EQUATOR, "obj-000001", 1.0)
        assert second.source is LookupSource.ACCESS_SATELLITE
        assert second.rtt_ms < first.rtt_ms

    def test_index_tracks_pull_through(self, system):
        system.serve(EQUATOR, "obj-000002", 0.0)
        assert len(system.holders_of("obj-000002")) == 1


class TestPreload:
    def test_preloaded_content_served_from_space(self, system, shell1_constellation):
        shell = shell1_constellation.config
        holders = KPerPlanePlacement(copies_per_plane=4).place_object(
            "obj-000003", shell
        )
        system.preload({"obj-000003": holders})
        result = system.serve(EQUATOR, "obj-000003", 0.0)
        assert result.source is not LookupSource.GROUND
        assert result.isl_hops <= 5
        assert result.rtt_ms < 80.0

    def test_preload_returns_store_count(self, system):
        count = system.preload({"obj-000004": frozenset({1, 2, 3})})
        assert count == 3
        assert system.holders_of("obj-000004") == frozenset({1, 2, 3})


class TestIslServing:
    def test_neighbor_cache_served_over_isl(self, system):
        snapshot = system.snapshot_at(0.0)
        from repro.orbits.visibility import nearest_visible_satellite

        access = nearest_visible_satellite(system.constellation, EQUATOR, 0.0).index
        neighbor = next(n for n in snapshot.graph[access] if isinstance(n, int))
        system.preload({"obj-000005": frozenset({neighbor})})
        result = system.serve(EQUATOR, "obj-000005", 0.0)
        assert result.source is LookupSource.ISL_NEIGHBOR
        assert result.serving_satellite == neighbor
        assert result.isl_hops == 1

    def test_holder_beyond_max_hops_triggers_ground(self, system, shell1_constellation):
        from repro.orbits.visibility import nearest_visible_satellite
        from repro.topology.routing import hop_distances

        snapshot = system.snapshot_at(0.0)
        access = nearest_visible_satellite(system.constellation, EQUATOR, 0.0).index
        hops = hop_distances(snapshot, access)
        far = next(s for s, h in hops.items() if h == 12)
        system.preload({"obj-000006": frozenset({far})})
        result = system.serve(EQUATOR, "obj-000006", 0.0)
        assert result.source is LookupSource.GROUND


class TestEvictionIndexConsistency:
    def test_eviction_removes_from_index(self, shell1_constellation, catalog):
        # A cache only big enough for one typical object forces churn.
        sizes = sorted(o.size_bytes for o in catalog)
        system = SpaceCdnSystem(
            constellation=shell1_constellation,
            catalog=catalog,
            cache_bytes_per_satellite=max(sizes) + 1,
        )
        ids = [o.object_id for o in list(catalog)[:10]]
        for object_id in ids:
            system._store(5, object_id)
        # Index must exactly mirror cache contents for satellite 5.
        cached = system.cache_of(5).object_ids()
        indexed = {oid for oid in ids if 5 in system.holders_of(oid)}
        assert indexed == cached

    def test_oversized_object_served_pass_through(self, shell1_constellation):
        from repro.cdn.content import Catalog, ContentObject

        catalog = Catalog()
        catalog.add(ContentObject("huge", 10**12, kind="video-segment"))
        system = SpaceCdnSystem(
            constellation=shell1_constellation,
            catalog=catalog,
            cache_bytes_per_satellite=10**6,
        )
        first = system.serve(EQUATOR, "huge", 0.0)
        second = system.serve(EQUATOR, "huge", 1.0)
        assert first.source is LookupSource.GROUND
        assert second.source is LookupSource.GROUND  # never cached


class TestTimeDynamics:
    def test_snapshot_quantisation(self, system):
        a = system.snapshot_at(0.0)
        b = system.snapshot_at(30.0)
        c = system.snapshot_at(61.0)
        assert a is b  # same 60 s slot
        assert c is not a
        assert c.t_s == 60.0

    def test_negative_time_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.snapshot_at(-1.0)

    def test_access_satellite_changes_over_time(self, system):
        """After several minutes the original access satellite has moved on,
        so a cached object migrates from access-hit to ISL-hit (or ground)."""
        system.serve(EQUATOR, "obj-000007", 0.0)  # pull-through
        immediate = system.serve(EQUATOR, "obj-000007", 1.0)
        assert immediate.source is LookupSource.ACCESS_SATELLITE
        later = system.serve(EQUATOR, "obj-000007", 600.0)
        # 10 minutes later the pass is over (paper: 5-10 min visibility).
        assert later.source is not LookupSource.ACCESS_SATELLITE or (
            later.serving_satellite != immediate.serving_satellite
        )


class TestRunStream:
    def test_run_workload_stream(self, system, catalog):
        from repro.spacecdn.bubbles import RegionalPopularity
        from repro.workloads.regional import RegionalRequestMixer
        from repro.workloads.requests import RequestGenerator

        mixer = RegionalRequestMixer(
            popularity=RegionalPopularity(catalog=catalog, seed=3),
            rng=np.random.default_rng(4),
        )
        generator = RequestGenerator(
            cities=(city_by_name("Maputo"), city_by_name("Nairobi")),
            mixer=mixer,
            requests_per_second_total=2.0,
            rng=np.random.default_rng(5),
        )
        requests = generator.generate_list(60.0)
        results = system.run(requests)
        assert len(results) == len(requests)
        assert system.stats.requests == len(requests)
        # Zipf + pull-through: the space tier must absorb a good share.
        assert system.stats.space_hit_ratio > 0.2

    def test_unordered_stream_rejected(self, system, catalog):
        from repro.workloads.requests import Request

        city = city_by_name("Maputo")
        requests = [
            Request(t_s=10.0, city=city, object_id="obj-000001"),
            Request(t_s=5.0, city=city, object_id="obj-000001"),
        ]
        with pytest.raises(ConfigurationError):
            system.run(requests)


class TestStats:
    def test_counters_sum(self, system):
        for i, t in enumerate((0.0, 1.0, 2.0, 3.0)):
            system.serve(EQUATOR, f"obj-{i % 2:06d}", t)
        stats = system.stats
        assert stats.requests == 4
        assert stats.access_hits + stats.isl_hits + stats.ground_fetches == 4
        assert len(stats.rtt_samples_ms) == 4

    def test_empty_ratio_zero(self, system):
        assert system.stats.space_hit_ratio == 0.0
