"""Tests for video striping across successive satellites."""

import pytest

from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.striping import plan_stripes, stripe_coverage_gaps


@pytest.fixture(scope="module")
def plan(shell1_constellation):
    # A two-hour movie in 3-minute stripes, viewer on the equator. At the
    # 25 deg elevation mask a pass lasts ~2-4 minutes, so 3-minute stripes
    # are the regime where single passes can cover whole stripes.
    return plan_stripes(
        constellation=shell1_constellation,
        viewer=GeoPoint(0.0, 0.0, 0.0),
        start_s=0.0,
        video_duration_s=7200.0,
        stripe_duration_s=180.0,
        pass_step_s=15.0,
    )


class TestPlanStripes:
    def test_stripe_count(self, plan):
        assert plan.num_stripes == 40

    def test_stripes_cover_whole_video(self, plan):
        assert plan.assignments[0].playback_start_s == 0.0
        assert plan.assignments[-1].playback_end_s == 7200.0
        for a, b in zip(plan.assignments, plan.assignments[1:]):
            assert a.playback_end_s == b.playback_start_s

    def test_each_stripe_overlaps_its_pass(self, plan):
        for assignment in plan.assignments:
            overlap = min(assignment.pass_window.end_s, assignment.playback_end_s) - max(
                assignment.pass_window.start_s, assignment.playback_start_s
            )
            assert overlap > 0

    def test_uses_multiple_satellites(self, plan):
        # Passes last 5-10 minutes, so a 2-hour video must hop satellites.
        assert len(set(a.satellite for a in plan.assignments)) >= 8

    def test_satellite_for_time(self, plan):
        first = plan.assignments[0]
        assert plan.satellite_for_time(0.0) == first.satellite
        assert plan.satellite_for_time(first.playback_end_s - 1.0) == first.satellite

    def test_satellite_for_time_outside_session_raises(self, plan):
        with pytest.raises(ConfigurationError):
            plan.satellite_for_time(10_000.0)

    def test_distinct_satellites_dedup_consecutive(self, plan):
        chain = plan.distinct_satellites()
        assert all(a != b for a, b in zip(chain, chain[1:]))

    def test_invalid_durations_rejected(self, shell1_constellation):
        with pytest.raises(ConfigurationError):
            plan_stripes(shell1_constellation, GeoPoint(0.0, 0.0), 0.0, -10.0)
        with pytest.raises(ConfigurationError):
            plan_stripes(
                shell1_constellation, GeoPoint(0.0, 0.0), 0.0, 100.0, stripe_duration_s=0.0
            )

    def test_uncovered_viewer_raises(self, shell1_constellation):
        with pytest.raises(VisibilityError):
            plan_stripes(
                shell1_constellation,
                GeoPoint(78.2, 15.6, 0.0),  # above the inclination limit
                0.0,
                600.0,
                pass_step_s=30.0,
            )


class TestUploadSlack:
    def test_later_stripes_can_preload(self, plan):
        # Paper: "while Stripe 1 is being streamed ... subsequent stripes can
        # be uploaded onto the caches of the satellites that follow". At
        # least some assignments must have positive pre-visibility slack.
        positive_slack = [a for a in plan.assignments if a.slack_before_s > 0]
        assert len(positive_slack) >= plan.num_stripes // 3


class TestCoverageGaps:
    def test_gaps_are_small_fraction(self, plan):
        gaps = stripe_coverage_gaps(plan)
        total_gap = sum(g for _, g in gaps)
        assert total_gap < 0.25 * 7200.0

    def test_gap_entries_reference_valid_stripes(self, plan):
        for stripe_index, gap_s in stripe_coverage_gaps(plan):
            assert 0 <= stripe_index < plan.num_stripes
            assert gap_s > 0
