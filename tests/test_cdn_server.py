"""Tests for CDN and origin servers."""

import numpy as np
import pytest

from repro.cdn.cache import LruCache
from repro.cdn.content import build_catalog
from repro.cdn.server import CdnServer, OriginServer
from repro.errors import ContentNotFoundError
from repro.geo.coordinates import GeoPoint
from repro.geo.datasets import cdn_site_by_name


@pytest.fixture
def origin() -> OriginServer:
    catalog = build_catalog(np.random.default_rng(0), 50)
    return OriginServer(catalog=catalog, location=GeoPoint(39.04, -77.49))


@pytest.fixture
def server(origin) -> CdnServer:
    return CdnServer(
        site=cdn_site_by_name("Frankfurt"),
        origin=origin,
        cache=LruCache(capacity_bytes=10**9),
    )


class TestOriginServer:
    def test_fetch_known(self, origin):
        assert origin.fetch("obj-000001").object_id == "obj-000001"

    def test_fetch_unknown_raises(self, origin):
        with pytest.raises(ContentNotFoundError):
            origin.fetch("missing")

    def test_fetch_latency_grows_with_distance(self, origin):
        near = origin.fetch_latency_ms(GeoPoint(40.71, -74.01))  # New York
        far = origin.fetch_latency_ms(GeoPoint(35.68, 139.69))  # Tokyo
        assert far > near
        assert near >= origin.think_time_ms


class TestCdnServer:
    def test_first_request_is_miss_with_origin_fill(self, server):
        result = server.serve("obj-000003")
        assert not result.hit
        assert result.origin_distance_km > 0
        assert result.server_latency_ms > server.think_time_ms

    def test_second_request_is_hit(self, server):
        server.serve("obj-000003")
        result = server.serve("obj-000003")
        assert result.hit
        assert result.server_latency_ms == server.think_time_ms
        assert result.origin_distance_km == 0.0

    def test_unknown_object_propagates(self, server):
        with pytest.raises(ContentNotFoundError):
            server.serve("missing")

    def test_miss_latency_exceeds_hit_latency(self, server):
        miss = server.serve("obj-000007")
        hit = server.serve("obj-000007")
        assert miss.server_latency_ms > hit.server_latency_ms + 10.0

    def test_warm_loads_objects(self, server):
        loaded = server.warm(["obj-000001", "obj-000002", "missing"])
        assert loaded == 2
        assert server.serve("obj-000001").hit

    def test_cache_stats_reflect_traffic(self, server):
        server.serve("obj-000001")
        server.serve("obj-000001")
        server.serve("obj-000002")
        assert server.cache.stats.hits == 1
        assert server.cache.stats.misses == 2

    def test_eviction_under_small_cache(self, origin):
        # A cache big enough for only a few objects keeps churning.
        sizes = sorted(o.size_bytes for o in origin.catalog)
        server = CdnServer(
            site=cdn_site_by_name("Frankfurt"),
            origin=origin,
            cache=LruCache(capacity_bytes=max(sizes) * 2),
        )
        for content in origin.catalog:
            server.serve(content.object_id)
        assert server.cache.used_bytes <= server.cache.capacity_bytes
        assert server.cache.stats.evictions > 0
