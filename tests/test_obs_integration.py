"""Integration tests: observability wired through the serve path, the
runner, and the CLI.

The two load-bearing guarantees:

* disabled (the default) — every instrumented path produces byte-identical
  results to an uninstrumented run;
* enabled — the trace's per-attempt spans reconstruct each request's RTT
  exactly, and interrupted runs still flush complete (never truncated)
  artifacts through the atomic-write path.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.cli import EXIT_INTERRUPTED, main
from repro.errors import UnavailableError
from repro.faults import (
    FaultSchedule,
    OutageWindow,
    RetryPolicy,
    TransientAttemptLoss,
)
from repro.geo.coordinates import GeoPoint
from repro.obs import ObsRecorder, read_events, recording, reset_recorder
from repro.obs.tracing import read_trace
from repro.spacecdn.system import SpaceCdnSystem

EQUATOR = GeoPoint(0.0, 0.0, 0.0)
OBJ = "obj-000002"
FAR_HOLDER = 20


@pytest.fixture(autouse=True)
def _clean_recorder():
    yield
    reset_recorder()


@pytest.fixture
def catalog():
    return build_catalog(
        np.random.default_rng(0), 50, regions=("africa",), kind_weights={"web": 1.0}
    )


def make_system(small_constellation, catalog, schedule=None, policy=None):
    kwargs = dict(
        constellation=small_constellation,
        catalog=catalog,
        cache_bytes_per_satellite=10**9,
        fault_schedule=schedule,
    )
    if policy is not None:
        kwargs["retry_policy"] = policy
    return SpaceCdnSystem(**kwargs)


def _attempt_sums(spans):
    """Map each serve span to the sum of its children's RTT contributions."""
    roots = {s["span_id"]: s for s in spans if s["kind"] == "serve"}
    sums = {span_id: 0.0 for span_id in roots}
    for span in spans:
        if span["kind"] == "attempt" and span["parent_id"] in sums:
            sums[span["parent_id"]] += span["rtt_contribution_ms"]
    return roots, sums


class TestServeTracing:
    def test_healthy_serve_emits_root_and_attempt(
        self, small_constellation, catalog
    ):
        system = make_system(small_constellation, catalog)
        system.preload({OBJ: frozenset({FAR_HOLDER})})
        recorder = ObsRecorder()
        with recording(recorder):
            served = system.serve(EQUATOR, OBJ, 0.0)
        spans = recorder.trace.spans()
        roots = [s for s in spans if s["kind"] == "serve"]
        attempts = [s for s in spans if s["kind"] == "attempt"]
        assert len(roots) == 1 and len(attempts) == 1
        assert roots[0]["outcome"] == "served"
        assert roots[0]["rtt_ms"] == pytest.approx(served.rtt_ms)
        assert attempts[0]["parent_id"] == roots[0]["span_id"]
        assert attempts[0]["rtt_contribution_ms"] == pytest.approx(served.rtt_ms)
        assert recorder.metrics.counter_value(
            "repro_serve_total", (("tier", "isl"),)
        ) == 1.0

    def test_retry_span_contributions_sum_to_rtt(
        self, small_constellation, catalog
    ):
        # seed 0: request 0 loses attempt 1, attempt 2 goes through, so the
        # serve span carries one backoff child plus the served rung.
        schedule = FaultSchedule().add(TransientAttemptLoss(probability=0.5, seed=0))
        system = make_system(
            small_constellation, catalog, schedule, RetryPolicy(max_attempts=4)
        )
        system.preload({OBJ: frozenset({0, FAR_HOLDER})})
        recorder = ObsRecorder()
        with recording(recorder):
            served = system.serve(EQUATOR, OBJ, 0.0)
        assert served.attempts == 2
        roots, sums = _attempt_sums(recorder.trace.spans())
        (span_id,) = roots
        assert roots[span_id]["attempts"] == 2
        assert sums[span_id] == pytest.approx(served.rtt_ms)
        assert recorder.metrics.counter_value(
            "repro_retry_backoff_total"
        ) == 1.0

    def test_unavailable_serve_traced_with_reason(
        self, small_constellation, catalog
    ):
        schedule = FaultSchedule().add(OutageWindow(satellites=frozenset({0})))
        system = make_system(small_constellation, catalog, schedule)
        system.preload({OBJ: frozenset({0})})
        recorder = ObsRecorder()
        with recording(recorder):
            with pytest.raises(UnavailableError):
                system.serve(EQUATOR, OBJ, 0.0)
        (root,) = [s for s in recorder.trace.spans() if s["kind"] == "serve"]
        assert root["outcome"] == "unavailable"
        assert root["fallback_reason"] == "no-sky"
        assert recorder.metrics.counter_value(
            "repro_serve_unavailable_total", (("reason", "no-sky"),)
        ) == 1.0

    def test_recording_does_not_change_serving(
        self, small_constellation, catalog
    ):
        schedule = FaultSchedule().add(TransientAttemptLoss(probability=0.5, seed=0))
        plain = make_system(
            small_constellation, catalog, schedule, RetryPolicy(max_attempts=4)
        )
        plain.preload({OBJ: frozenset({0, FAR_HOLDER})})
        baseline = plain.serve(EQUATOR, OBJ, 0.0)

        observed = make_system(
            small_constellation, catalog, schedule, RetryPolicy(max_attempts=4)
        )
        observed.preload({OBJ: frozenset({0, FAR_HOLDER})})
        with recording(ObsRecorder()):
            traced = observed.serve(EQUATOR, OBJ, 0.0)
        assert traced == baseline

    def test_cache_and_kernel_instrumentation_record(
        self, small_constellation, catalog
    ):
        system = make_system(small_constellation, catalog)
        recorder = ObsRecorder()
        with recording(recorder):
            system.preload({OBJ: frozenset({FAR_HOLDER})})
            system.serve(EQUATOR, OBJ, 0.0)
        assert recorder.metrics.counter_value(
            "repro_cache_ops_total", (("op", "insert"),)
        ) >= 1.0
        sites = recorder.profile.sites
        assert any(site.startswith("fastcore.") for site in sites)


class TestCliObs:
    CHAOS = [
        "run", "chaos",
        "--shell", "small",
        "--requests", "30",
        "--fractions", "0.0,0.3",
        "--seed", "5",
    ]

    def test_obs_run_writes_artifacts_and_summarizes(self, tmp_path, capsys):
        # --no-batch keeps the scalar per-request trace shape, whose
        # per-attempt spans must reconstruct each served RTT exactly.
        run_dir = tmp_path / "chaos"
        assert (
            main(self.CHAOS + ["--no-batch", "--obs", "--out-dir", str(run_dir)])
            == 0
        )
        capsys.readouterr()

        metrics_text = (run_dir / "obs-metrics.prom").read_text()
        assert "# TYPE repro_serve_total counter" in metrics_text
        assert "repro_serve_rtt_ms_bucket" in metrics_text
        assert 'repro_profile_calls{site="runner.shard"} 2' in metrics_text

        spans = list(read_trace(run_dir / "obs-trace.jsonl"))
        roots, sums = _attempt_sums(spans)
        served = {
            sid: root for sid, root in roots.items()
            if root["outcome"] == "served"
        }
        assert served
        for span_id, root in served.items():
            assert sums[span_id] == pytest.approx(root["rtt_ms"]), root

        assert main(["obs", "summarize", str(run_dir / "obs-trace.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "Per-tier serving outcomes:" in out
        assert "Per-tier ladder attempts:" in out

        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert set(manifest["obs"]["shard_seconds"]) == {
            "fraction-00", "fraction-01"
        }

    def test_obs_run_batched_emits_cohort_spans(self, tmp_path, capsys):
        """The default (batched) run traces one span per cohort, and
        ``obs summarize`` renders them without per-request RTT columns."""
        run_dir = tmp_path / "chaos-batched"
        assert main(self.CHAOS + ["--obs", "--out-dir", str(run_dir)]) == 0
        capsys.readouterr()

        spans = list(read_trace(run_dir / "obs-trace.jsonl"))
        cohorts = [s for s in spans if s["kind"] == "serve_cohort"]
        assert cohorts
        assert not [s for s in spans if s["kind"] == "serve"]
        rungs = [s for s in spans if s["kind"] == "rung"]
        served = sum(r["count"] for r in rungs if r["outcome"] == "served")
        assert served == sum(c["served"] for c in cohorts)

        assert main(["obs", "summarize", str(run_dir / "obs-trace.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "Per-tier serving outcomes:" in out
        total = sum(c["size"] for c in cohorts)
        assert f"{total} requests" in out

    def test_metrics_out_implies_obs(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        metrics = tmp_path / "m.prom"
        assert main(self.CHAOS + ["--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert "repro_serve_total" in metrics.read_text()
        # Asking for only the metrics file must not drop a default trace
        # artifact into the working directory.
        assert not (tmp_path / "obs-trace.jsonl").exists()

    def test_disabled_run_writes_no_artifacts(self, tmp_path, capsys):
        run_dir = tmp_path / "plain"
        assert main(self.CHAOS + ["--out-dir", str(run_dir)]) == 0
        capsys.readouterr()
        assert not (run_dir / "obs-metrics.prom").exists()
        assert not (run_dir / "obs-trace.jsonl").exists()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert "obs" not in manifest

    def test_output_identical_with_and_without_obs(self, tmp_path, capsys):
        plain_dir = tmp_path / "plain"
        obs_dir = tmp_path / "obs"
        assert main(self.CHAOS + ["--out-dir", str(plain_dir)]) == 0
        assert main(self.CHAOS + ["--obs", "--out-dir", str(obs_dir)]) == 0
        capsys.readouterr()
        assert (plain_dir / "result.txt").read_bytes() == (
            obs_dir / "result.txt"
        ).read_bytes()


class TestInterruptionFlush:
    BASE = [
        "run", "chaos",
        "--shell", "small",
        "--requests", "30",
        "--fractions", "0.0,0.3",
        "--seed", "5",
    ]

    def test_interrupted_run_flushes_complete_artifacts(self, tmp_path, capsys):
        """--max-shards raises through the same path as the first SIGINT;
        the obs buffers must land on disk complete, never truncated."""
        run_dir = tmp_path / "partial"
        code = main(
            self.BASE + ["--obs", "--out-dir", str(run_dir), "--max-shards", "1"]
        )
        assert code == EXIT_INTERRUPTED
        capsys.readouterr()

        trace_path = run_dir / "obs-trace.jsonl"
        # Every line parses: an interrupted flush is complete or absent.
        spans = list(read_trace(trace_path))
        assert spans
        for line in trace_path.read_text().splitlines():
            json.loads(line)
        assert trace_path.read_text().endswith("\n")
        assert "repro_serve_total" in (run_dir / "obs-metrics.prom").read_text()

        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert list(manifest["obs"]["shard_seconds"]) == ["fraction-00"]

    def test_resume_after_obs_interrupt(self, tmp_path, capsys):
        """The manifest's obs section never blocks --resume, with or
        without --obs on the resuming invocation; a resumed instrumented
        run carries the interrupted run's shard timings forward."""
        clean_dir = tmp_path / "clean"
        assert main(self.BASE + ["--out-dir", str(clean_dir)]) == 0
        capsys.readouterr()

        run_dir = tmp_path / "partial"
        assert main(
            self.BASE + ["--obs", "--out-dir", str(run_dir), "--max-shards", "1"]
        ) == EXIT_INTERRUPTED
        capsys.readouterr()
        assert main(
            self.BASE + ["--obs", "--out-dir", str(run_dir), "--resume"]
        ) == 0
        capsys.readouterr()
        assert (run_dir / "result.txt").read_bytes() == (
            clean_dir / "result.txt"
        ).read_bytes()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert set(manifest["obs"]["shard_seconds"]) == {
            "fraction-00", "fraction-01"
        }

        # Resuming an instrumented run dir *without* --obs also works.
        other = tmp_path / "partial2"
        assert main(
            self.BASE + ["--obs", "--out-dir", str(other), "--max-shards", "1"]
        ) == EXIT_INTERRUPTED
        capsys.readouterr()
        assert main(self.BASE + ["--out-dir", str(other), "--resume"]) == 0
        capsys.readouterr()


class TestFleetInterruption:
    """Obs artifact integrity when a parallel run stops early: the merged
    metrics, trace, and event log land complete and parseable, and no
    worker sidecar survives the sweep."""

    WIDE = [
        "run", "chaos",
        "--shell", "small",
        "--requests", "30",
        "--fractions", "0.0,0.1,0.2,0.3",
        "--seed", "5",
    ]

    def test_interrupted_parallel_run_flushes_parseable_artifacts(
        self, tmp_path, capsys
    ):
        """--max-shards stops a --jobs run through the same drain path as
        the first SIGINT; every obs artifact must still parse."""
        run_dir = tmp_path / "partial"
        code = main(
            self.WIDE
            + [
                "--obs", "--jobs", "2",
                "--out-dir", str(run_dir),
                "--max-shards", "1",
            ]
        )
        assert code == EXIT_INTERRUPTED
        capsys.readouterr()

        assert list(read_trace(run_dir / "obs-trace.jsonl"))
        assert "repro_serve_total" in (run_dir / "obs-metrics.prom").read_text()
        names = [e["event"] for e in read_events(run_dir / "events.jsonl")]
        assert names[0] == "run_start"
        assert "drain" in names
        assert "run_interrupted" in names
        # Every worker delta was merged or salvaged; nothing left behind.
        assert not (run_dir / "obs").exists()

    def test_sigint_mid_parallel_run_leaves_parseable_artifacts(self, tmp_path):
        """A real SIGINT delivered to a live --jobs 4 supervisor: whether it
        lands mid-run (exit 5) or after completion (exit 0), the metrics,
        trace, and event log on disk are complete and parseable."""
        import repro

        run_dir = tmp_path / "sigint"
        cmd = [
            sys.executable, "-m", "repro",
            "run", "chaos",
            "--shell", "small",
            "--requests", "120",
            "--fractions", "0.0,0.1,0.2,0.3,0.4,0.5",
            "--seed", "5",
            "--obs", "--jobs", "4",
            "--out-dir", str(run_dir),
        ]
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        try:
            events_path = run_dir / "events.jsonl"
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not events_path.exists():
                time.sleep(0.01)
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert code in (0, EXIT_INTERRUPTED)

        names = [e["event"] for e in read_events(run_dir / "events.jsonl")]
        assert names[0] == "run_start"
        if code == EXIT_INTERRUPTED:
            assert "run_interrupted" in names
        else:
            assert "run_completed" in names
        # The flush is complete-or-absent, never truncated.
        trace_path = run_dir / "obs-trace.jsonl"
        if trace_path.exists():
            list(read_trace(trace_path))
        metrics_path = run_dir / "obs-metrics.prom"
        if metrics_path.exists():
            text = metrics_path.read_text()
            assert text == "" or text.endswith("\n")
        assert not (run_dir / "obs").exists()


class TestCohortTracing:
    """Batched serving folds tracing into one span per cohort while keeping
    every per-request counter and histogram identical to scalar serving."""

    def _spec(self):
        return [(EQUATOR, OBJ, 0.0), (EQUATOR, OBJ, 1.0),
                (EQUATOR, "obj-000003", 2.0)]

    def test_cohort_emits_one_span_with_rung_counts(
        self, small_constellation, catalog
    ):
        system = make_system(small_constellation, catalog)
        system.preload({OBJ: frozenset({FAR_HOLDER})})
        recorder = ObsRecorder()
        spec = self._spec()
        with recording(recorder):
            results = system.serve_batch(
                [u for u, _, _ in spec],
                [o for _, o, _ in spec],
                [t for _, _, t in spec],
            )
        spans = recorder.trace.spans()
        assert not [s for s in spans if s["kind"] == "serve"]
        (cohort,) = [s for s in spans if s["kind"] == "serve_cohort"]
        assert cohort["size"] == 3
        assert cohort["served"] == 3
        assert cohort["unavailable"] == 0
        assert cohort["mode"] == "healthy"
        rungs = [s for s in spans if s["kind"] == "rung"]
        assert all(r["parent_id"] == cohort["span_id"] for r in rungs)
        assert sum(r["count"] for r in rungs) == len(results)

    def test_counters_identical_to_scalar(self, small_constellation, catalog):
        spec = self._spec()

        def metrics(batched):
            system = make_system(small_constellation, catalog)
            system.preload({OBJ: frozenset({FAR_HOLDER})})
            recorder = ObsRecorder()
            with recording(recorder):
                if batched:
                    system.serve_batch(
                        [u for u, _, _ in spec],
                        [o for _, o, _ in spec],
                        [t for _, _, t in spec],
                    )
                else:
                    for u, o, t in spec:
                        system.serve(u, o, t)
            reset_recorder()
            return recorder.metrics

        scalar, batched = metrics(False), metrics(True)
        for name in (
            "repro_serve_total",
            "repro_serve_attempts_total",
            "repro_serve_fallback_total",
        ):
            assert {
                k: v for k, v in batched._counters.items() if k[0] == name
            } == {k: v for k, v in scalar._counters.items() if k[0] == name}
        for (name, labels), histogram in scalar._histograms.items():
            if name != "repro_serve_rtt_ms":
                continue
            other = batched.histogram(name, labels)
            assert other is not None
            assert other.total == histogram.total
            assert other.count == histogram.count

    def test_degraded_cohort_span_counts_unavailable(
        self, small_constellation, catalog
    ):
        schedule = FaultSchedule().add(
            OutageWindow(satellites=frozenset(range(len(small_constellation))))
        )
        system = make_system(small_constellation, catalog, schedule)
        recorder = ObsRecorder()
        with recording(recorder):
            results = system.serve_batch(
                [EQUATOR], [OBJ], 0.0, continue_on_unavailable=True
            )
        assert results == [None]
        (cohort,) = [
            s for s in recorder.trace.spans() if s["kind"] == "serve_cohort"
        ]
        assert cohort["mode"] == "degraded"
        assert cohort["unavailable"] == 1
        assert recorder.metrics.counter_value(
            "repro_serve_unavailable_total", (("reason", "no-sky"),)
        ) == 1.0
