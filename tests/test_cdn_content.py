"""Tests for content objects and catalogs."""

import numpy as np
import pytest

from repro.cdn.content import Catalog, ContentObject, build_catalog
from repro.errors import ConfigurationError, ContentNotFoundError


class TestContentObject:
    def test_valid_object(self):
        obj = ContentObject("a", 100, "web", "europe")
        assert obj.size_bytes == 100

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ContentObject("a", 0)
        with pytest.raises(ConfigurationError):
            ContentObject("a", -5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ContentObject("a", 100, kind="hologram")

    def test_frozen(self):
        obj = ContentObject("a", 100)
        with pytest.raises(AttributeError):
            obj.size_bytes = 200


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog()
        obj = ContentObject("a", 100)
        catalog.add(obj)
        assert catalog.get("a") is obj
        assert "a" in catalog
        assert len(catalog) == 1

    def test_duplicate_id_rejected(self):
        catalog = Catalog()
        catalog.add(ContentObject("a", 100))
        with pytest.raises(ConfigurationError):
            catalog.add(ContentObject("a", 200))

    def test_missing_raises(self):
        with pytest.raises(ContentNotFoundError):
            Catalog().get("nope")

    def test_by_region_includes_global(self, small_catalog):
        europe = small_catalog.by_region("europe")
        ids = {o.object_id for o in europe}
        assert any(i.startswith("eu-") for i in ids)
        assert any(i.startswith("g-") for i in ids)
        assert not any(i.startswith("af-") for i in ids)

    def test_total_bytes(self):
        catalog = Catalog()
        catalog.add(ContentObject("a", 100))
        catalog.add(ContentObject("b", 250))
        assert catalog.total_bytes() == 350

    def test_iteration(self, small_catalog):
        assert len(list(small_catalog)) == len(small_catalog)


class TestBuildCatalog:
    def test_size(self):
        rng = np.random.default_rng(0)
        catalog = build_catalog(rng, 100)
        assert len(catalog) == 100

    def test_regions_assigned(self):
        rng = np.random.default_rng(1)
        catalog = build_catalog(
            rng, 300, regions=("europe", "africa"), global_fraction=0.3
        )
        regions = {o.region for o in catalog}
        assert regions == {"europe", "africa", "global"}

    def test_global_fraction_roughly_respected(self):
        rng = np.random.default_rng(2)
        catalog = build_catalog(rng, 1000, regions=("x",), global_fraction=0.4)
        global_count = sum(1 for o in catalog if o.region == "global")
        assert 320 < global_count < 480

    def test_all_sizes_positive(self):
        rng = np.random.default_rng(3)
        assert all(o.size_bytes > 0 for o in build_catalog(rng, 200))

    def test_video_segments_bigger_than_web_on_median(self):
        rng = np.random.default_rng(4)
        catalog = build_catalog(rng, 2000)
        webs = [o.size_bytes for o in catalog if o.kind == "web"]
        videos = [o.size_bytes for o in catalog if o.kind == "video-segment"]
        assert np.median(videos) > np.median(webs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_objects": 0},
            {"global_fraction": 1.5},
            {"regions": ()},
        ],
    )
    def test_invalid_args_rejected(self, kwargs):
        base = dict(num_objects=10, regions=("x",), global_fraction=0.5)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            build_catalog(np.random.default_rng(0), **base)

    def test_deterministic_for_seed(self):
        a = build_catalog(np.random.default_rng(7), 50)
        b = build_catalog(np.random.default_rng(7), 50)
        assert [o.size_bytes for o in a] == [o.size_bytes for o in b]
