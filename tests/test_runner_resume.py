"""Resume determinism on the real experiment plans.

The acceptance contract: a run interrupted after some shards and resumed
must produce output byte-identical to an uninterrupted run of the same
plan — including every checkpoint file, not just ``result.txt``. Exercised
here on small parameterisations of the real experiments through the
runner, plus the CLI ``--out-dir`` surface.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ManifestMismatchError, RunInterruptedError
from repro.experiments import chaos, figure3, figure8, geoblocking, table1
from repro.runner import ExperimentRunner, RunnerOptions


def _figure8_plan():
    return figure8.build_plan(seed=11, users_per_epoch=4, num_epochs=3)


def _run_dir_bytes(run_dir):
    """Every checkpoint and result file's bytes, keyed by relative path."""
    return {
        str(p.relative_to(run_dir)): p.read_bytes()
        for p in sorted(run_dir.rglob("*"))
        if p.is_file() and p.suffix in (".json", ".txt")
    }


class TestResumeByteIdentity:
    def test_interrupted_then_resumed_matches_clean_run(self, tmp_path):
        clean_dir = tmp_path / "clean"
        clean_text = ExperimentRunner(_figure8_plan(), clean_dir).execute()

        resumed_dir = tmp_path / "resumed"
        with pytest.raises(RunInterruptedError):
            ExperimentRunner(
                _figure8_plan(), resumed_dir, RunnerOptions(max_shards=2)
            ).execute()
        # Partial state on disk: manifest plus exactly two shards, no result.
        assert not (resumed_dir / "result.txt").exists()
        assert len(list((resumed_dir / "shards").iterdir())) == 2

        resumed_text = ExperimentRunner(
            _figure8_plan(), resumed_dir, RunnerOptions(resume=True)
        ).execute()
        assert resumed_text == clean_text
        assert _run_dir_bytes(resumed_dir) == _run_dir_bytes(clean_dir)

    def test_double_interruption_still_converges(self, tmp_path):
        clean_dir = tmp_path / "clean"
        clean_text = ExperimentRunner(_figure8_plan(), clean_dir).execute()

        run_dir = tmp_path / "run"
        for _ in range(2):  # 4 shards total: 2 + 1 + final resume
            with pytest.raises(RunInterruptedError):
                ExperimentRunner(
                    _figure8_plan(),
                    run_dir,
                    RunnerOptions(resume=run_dir.exists(), max_shards=1),
                ).execute()
        text = ExperimentRunner(
            _figure8_plan(), run_dir, RunnerOptions(resume=True)
        ).execute()
        assert text == clean_text
        assert _run_dir_bytes(run_dir) == _run_dir_bytes(clean_dir)

    def test_corrupted_checkpoint_quarantined_and_recomputed(self, tmp_path):
        clean_dir = tmp_path / "clean"
        clean_text = ExperimentRunner(_figure8_plan(), clean_dir).execute()

        run_dir = tmp_path / "run"
        ExperimentRunner(_figure8_plan(), run_dir).execute()
        victim = run_dir / "shards" / "epoch-0001.json"
        victim.write_bytes(victim.read_bytes()[:40])  # truncate mid-record
        (run_dir / "result.txt").unlink()

        text = ExperimentRunner(
            _figure8_plan(), run_dir, RunnerOptions(resume=True)
        ).execute()
        assert text == clean_text
        assert (run_dir / "quarantine" / "epoch-0001.json.0").exists()
        # The recomputed checkpoint matches the clean run's bytes exactly.
        assert victim.read_bytes() == (
            clean_dir / "shards" / "epoch-0001.json"
        ).read_bytes()

    def test_resume_refuses_different_parameters(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(RunInterruptedError):
            ExperimentRunner(
                _figure8_plan(), run_dir, RunnerOptions(max_shards=1)
            ).execute()
        other_plan = figure8.build_plan(seed=12, users_per_epoch=4, num_epochs=3)
        with pytest.raises(ManifestMismatchError, match="config_hash"):
            ExperimentRunner(
                other_plan, run_dir, RunnerOptions(resume=True)
            ).execute()


class TestPlanDeterminism:
    """Running the same plan twice in fresh directories is byte-identical."""

    @pytest.mark.parametrize(
        "make_plan",
        [
            pytest.param(
                lambda: table1.build_plan(seed=5, tests_per_city=4), id="table1"
            ),
            pytest.param(
                lambda: figure3.build_plan(seed=5, samples_per_site=4),
                id="figure3",
            ),
            pytest.param(
                lambda: chaos.build_plan(
                    seed=5, num_requests=8, fractions=(0.0, 0.3), shell="small"
                ),
                id="chaos",
            ),
            pytest.param(lambda: geoblocking.build_plan(), id="geoblocking"),
        ],
    )
    def test_rerun_is_byte_identical(self, tmp_path, make_plan):
        first = ExperimentRunner(make_plan(), tmp_path / "one").execute()
        second = ExperimentRunner(make_plan(), tmp_path / "two").execute()
        assert first == second
        assert _run_dir_bytes(tmp_path / "one") == _run_dir_bytes(tmp_path / "two")


class TestCliOutDir:
    def test_run_with_out_dir_writes_result(self, tmp_path, capsys):
        run_dir = tmp_path / "f8"
        code = main(
            [
                "run", "figure8",
                "--users", "3",
                "--epochs", "2",
                "--out-dir", str(run_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "terrestrial median" in out
        assert (run_dir / "result.txt").read_text() in out

    def test_second_run_without_resume_exits_2(self, tmp_path, capsys):
        run_dir = tmp_path / "f8"
        argv = [
            "run", "figure8",
            "--users", "3",
            "--epochs", "2",
            "--out-dir", str(run_dir),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "pass --resume" in capsys.readouterr().err

    def test_max_shards_then_resume_matches_clean(self, tmp_path, capsys):
        base = [
            "run", "figure8",
            "--users", "3",
            "--epochs", "2",
            "--seed", "9",
        ]
        clean_dir = tmp_path / "clean"
        assert main(base + ["--out-dir", str(clean_dir)]) == 0
        capsys.readouterr()

        run_dir = tmp_path / "partial"
        code = main(base + ["--out-dir", str(run_dir), "--max-shards", "1"])
        assert code == 5
        assert "resume with --resume" in capsys.readouterr().err

        assert main(base + ["--out-dir", str(run_dir), "--resume"]) == 0
        capsys.readouterr()
        assert (run_dir / "result.txt").read_bytes() == (
            clean_dir / "result.txt"
        ).read_bytes()
