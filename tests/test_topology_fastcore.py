"""Property tests pinning the vectorised CSR routing core to networkx.

The fastcore kernels are only trustworthy if they agree with the original
per-query ``networkx`` traversals on *every* input — random shells, random
epochs, random sources and random failure sets — so the equivalence is
asserted property-style with hypothesis rather than on a few hand-picked
cases. Hop counts must match exactly; latencies to 1e-9 ms (the backends
may sum path weights in different orders).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import ShellConfig
from repro.orbits.visibility import (
    nearest_visible_satellite,
    nearest_visible_satellites,
)
from repro.orbits.walker import build_walker_delta
from repro.topology import fastcore
from repro.topology.graph import build_snapshot
from repro.topology.routing import (
    hop_distances,
    hop_distances_reference,
    latency_by_hop_count,
    latency_by_hop_count_reference,
    satellite_latencies,
    satellite_latencies_reference,
)

LATENCY_ATOL = 1e-9


def _shell(num_planes: int, sats_per_plane: int, phase_offset: int) -> ShellConfig:
    return ShellConfig(
        altitude_km=550.0,
        inclination_deg=53.0,
        num_planes=num_planes,
        sats_per_plane=sats_per_plane,
        phase_offset=phase_offset % (num_planes * sats_per_plane),
        name=f"prop-{num_planes}x{sats_per_plane}-{phase_offset}",
    )


@st.composite
def snapshot_cases(draw):
    """A random (snapshot, source, failed-set) routing scenario."""
    num_planes = draw(st.integers(3, 7))
    sats_per_plane = draw(st.integers(3, 8))
    phase_offset = draw(st.integers(0, 10))
    t_s = draw(st.floats(0.0, 5700.0, allow_nan=False, allow_infinity=False))
    n = num_planes * sats_per_plane
    source = draw(st.integers(0, n - 1))
    failed = draw(
        st.sets(st.integers(0, n - 1), max_size=max(0, n // 4)).filter(
            lambda s: source not in s
        )
    )
    config = _shell(num_planes, sats_per_plane, phase_offset)
    snapshot = build_snapshot(build_walker_delta(config), t_s)
    if failed:
        from repro.spacecdn.resilience import fail_satellites

        snapshot = fail_satellites(snapshot, failed)
    return snapshot, source, failed


class TestEquivalenceWithNetworkx:
    @settings(max_examples=30, deadline=None)
    @given(snapshot_cases())
    def test_hop_distances_exact(self, case):
        snapshot, source, _ = case
        assert hop_distances(snapshot, source) == hop_distances_reference(
            snapshot, source
        )

    @settings(max_examples=30, deadline=None)
    @given(snapshot_cases())
    def test_satellite_latencies_close(self, case):
        snapshot, source, _ = case
        fast = satellite_latencies(snapshot, source)
        ref = satellite_latencies_reference(snapshot, source)
        assert fast.keys() == ref.keys()
        for node, latency in ref.items():
            assert fast[node] == pytest.approx(latency, abs=LATENCY_ATOL)

    @settings(max_examples=30, deadline=None)
    @given(snapshot_cases(), st.integers(0, 12))
    def test_hop_ladder_close(self, case, max_hops):
        snapshot, source, _ = case
        fast = latency_by_hop_count(snapshot, source, max_hops)
        ref = latency_by_hop_count_reference(snapshot, source, max_hops)
        assert fast.keys() == ref.keys()
        for h, latency in ref.items():
            assert fast[h] == pytest.approx(latency, abs=LATENCY_ATOL)

    @settings(max_examples=15, deadline=None)
    @given(snapshot_cases(), st.data())
    def test_nearest_hops_matches_multi_source_bfs(self, case, data):
        snapshot, source, failed = case
        alive = sorted(snapshot.satellite_nodes())
        targets = data.draw(
            st.sets(st.sampled_from(alive), min_size=1, max_size=5)
        )
        got = fastcore.nearest_hops(
            snapshot.core, targets, snapshot.active_mask
        )
        # Reference: min over per-target BFS dicts.
        per_target = [hop_distances_reference(snapshot, t) for t in targets]
        for node in range(snapshot.core.num_nodes):
            best = min(
                (d[node] for d in per_target if node in d), default=None
            )
            if best is None:
                assert got[node] == fastcore.HOP_UNREACHABLE
            else:
                assert got[node] == best


class TestBackendAgreement:
    @pytest.mark.skipif(not fastcore.HAVE_SCIPY, reason="scipy not importable")
    @settings(max_examples=20, deadline=None)
    @given(snapshot_cases())
    def test_numpy_and_scipy_agree(self, case):
        snapshot, source, _ = case
        core, mask = snapshot.core, snapshot.active_mask
        sources = [source, 0] if snapshot.has_satellite(0) else [source]
        np.testing.assert_array_equal(
            fastcore.hop_distances_batch(core, sources, mask, method="numpy"),
            fastcore.hop_distances_batch(core, sources, mask, method="scipy"),
        )
        np.testing.assert_allclose(
            fastcore.latency_batch(core, sources, mask, method="numpy"),
            fastcore.latency_batch(core, sources, mask, method="scipy"),
            atol=LATENCY_ATOL,
        )


class TestBatchedVisibility:
    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-55.0, 55.0, allow_nan=False),
                st.floats(-180.0, 179.0, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(0.0, 5700.0, allow_nan=False),
    )
    def test_matches_per_point_lookup(self, shell1_constellation, coords, t_s):
        points = [GeoPoint(lat, lon) for lat, lon in coords]
        indices, ranges = nearest_visible_satellites(
            shell1_constellation, points, t_s
        )
        for point, idx, rng_km in zip(points, indices, ranges):
            single = nearest_visible_satellite(shell1_constellation, point, t_s)
            assert int(idx) == single.index
            assert rng_km == pytest.approx(single.slant_range_km, abs=1e-9)


class TestValidationAndEdgeCases:
    def test_unknown_source_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            fastcore.latency_batch(small_snapshot.core, [9999])

    def test_negative_source_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            fastcore.hop_distances_batch(small_snapshot.core, [-1])

    def test_failed_source_raises(self, small_snapshot):
        mask = np.ones(small_snapshot.core.num_nodes, dtype=bool)
        mask[3] = False
        with pytest.raises(RoutingError):
            fastcore.latency_batch(small_snapshot.core, [3], active=mask)

    def test_empty_sources_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            fastcore.latency_batch(small_snapshot.core, [])

    def test_bad_mask_shape_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            fastcore.latency_batch(
                small_snapshot.core, [0], active=np.ones(3, dtype=bool)
            )

    def test_unknown_backend_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            fastcore.latency_batch(small_snapshot.core, [0], method="cuda")

    def test_negative_ladder_hops_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            fastcore.hop_ladder_batch(small_snapshot.core, [0], -1)

    def test_isl_incapable_shell_has_no_routes(self):
        """OneWeb-style shells carry no ISLs: everything is unreachable."""
        config = ShellConfig(
            altitude_km=1200.0,
            inclination_deg=87.9,
            num_planes=4,
            sats_per_plane=5,
            phase_offset=0,
            name="bent-pipe-only",
            isl_capable=False,
        )
        core = fastcore.build_core(build_walker_delta(config), 0.0)
        assert core.topology.num_links == 0
        hops = fastcore.hop_distances_batch(core, [0], method="numpy")[0]
        assert hops[0] == 0
        assert np.all(hops[1:] == fastcore.HOP_UNREACHABLE)

    def test_failed_columns_are_masked(self, small_snapshot):
        mask = np.ones(small_snapshot.core.num_nodes, dtype=bool)
        mask[7] = False
        lats = fastcore.latency_batch(small_snapshot.core, [0], active=mask)[0]
        hops = fastcore.hop_distances_batch(small_snapshot.core, [0], active=mask)[0]
        assert np.isinf(lats[7])
        assert hops[7] == fastcore.HOP_UNREACHABLE

    def test_single_source_memoised(self, small_constellation):
        core = fastcore.build_core(small_constellation, 0.0)
        first = fastcore.single_source(core, 5)
        again = fastcore.single_source(core, 5)
        assert first[0] is again[0] and first[1] is again[1]

    def test_snapshot_copy_shares_core(self, small_snapshot):
        clone = small_snapshot.copy()
        assert clone.core is small_snapshot.core
        assert clone.positions is small_snapshot.positions
        clone.attach_ground_node("gs:test", GeoPoint(0.0, 0.0))
        assert "gs:test" not in small_snapshot.graph
