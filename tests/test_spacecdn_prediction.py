"""Tests for learned popularity prediction."""

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.errors import ConfigurationError
from repro.spacecdn.bubbles import RegionalPopularity
from repro.spacecdn.prediction import LearnedPrefetcher, PopularityPredictor


class TestPredictor:
    def test_observe_and_score(self):
        predictor = PopularityPredictor()
        predictor.observe("africa", "a")
        predictor.observe("africa", "a")
        predictor.observe("africa", "b")
        assert predictor.score("africa", "a") == 2.0
        assert predictor.score("africa", "b") == 1.0
        assert predictor.score("africa", "never") == 0.0

    def test_predict_top_ranked(self):
        predictor = PopularityPredictor()
        for _ in range(5):
            predictor.observe("europe", "hot")
        predictor.observe("europe", "warm")
        assert predictor.predict_top("europe", 2) == ["hot", "warm"]

    def test_predict_top_cold_region_empty(self):
        assert PopularityPredictor().predict_top("nowhere", 3) == []

    def test_decay_fades_old_trends(self):
        predictor = PopularityPredictor(decay=0.5)
        for _ in range(4):
            predictor.observe("africa", "old-hit")
        for _ in range(4):
            predictor.end_epoch("africa")
        predictor.observe("africa", "new-hit")
        predictor.observe("africa", "new-hit")
        assert predictor.predict_top("africa", 1) == ["new-hit"]

    def test_scores_garbage_collected(self):
        predictor = PopularityPredictor(decay=0.1)
        predictor.observe("africa", "x")
        for _ in range(10):
            predictor.end_epoch()
        assert predictor.score("africa", "x") == 0.0
        assert predictor.regions_seen() == []

    def test_regions_isolated(self):
        predictor = PopularityPredictor()
        predictor.observe("africa", "a")
        assert predictor.score("europe", "a") == 0.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            PopularityPredictor(decay=0.0)
        with pytest.raises(ConfigurationError):
            PopularityPredictor().observe("r", "x", weight=0.0)
        with pytest.raises(ConfigurationError):
            PopularityPredictor().predict_top("r", 0)

    def test_deterministic_tie_break(self):
        predictor = PopularityPredictor()
        predictor.observe("r", "b")
        predictor.observe("r", "a")
        assert predictor.predict_top("r", 2) == ["a", "b"]


class TestLearnedPrefetcher:
    @pytest.fixture
    def setup(self):
        catalog = build_catalog(
            np.random.default_rng(0),
            300,
            regions=("africa", "europe"),
            global_fraction=0.1,
            kind_weights={"web": 1.0},
        )
        oracle = RegionalPopularity(catalog=catalog, seed=1)
        return catalog, oracle

    def test_learns_oracle_head_from_traffic(self, setup):
        # Feed the learner real oracle-driven traffic over several passes;
        # its predicted top-20 must substantially overlap the true top-20.
        _, oracle = setup
        prefetcher = LearnedPrefetcher()
        for _ in range(6):  # six passes over the region
            for _ in range(400):
                prefetcher.observe_request("africa", oracle.sample("africa"))
            prefetcher.on_pass_complete("africa")
        overlap = prefetcher.hit_rate_vs_oracle(
            "africa", oracle.top_objects("africa", 20)
        )
        assert overlap >= 0.6

    def test_cold_start_predicts_nothing(self, setup):
        prefetcher = LearnedPrefetcher()
        assert prefetcher.prefetch_list("africa", 10) == []

    def test_oracle_comparison_rejects_empty(self, setup):
        with pytest.raises(ConfigurationError):
            LearnedPrefetcher().hit_rate_vs_oracle("africa", [])

    def test_prefetch_list_bounded(self, setup):
        _, oracle = setup
        prefetcher = LearnedPrefetcher()
        for _ in range(50):
            prefetcher.observe_request("europe", oracle.sample("europe"))
        assert len(prefetcher.prefetch_list("europe", 10)) <= 10
