"""Property-based tests (hypothesis) on the windowed time-series merge.

The fleet contract rests on ``TimeSeriesBuffer.merge_delta`` being a
commutative, associative fold over integer cells: shard deltas may land
in any completion order, any grouping, and any interleaving, and the
merged series must stay byte-identical to the single-pass build. These
properties are exactly what the supervised parallel runner relies on, so
hypothesis hammers them directly on generated event streams.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.timeseries import TimeSeriesBuffer, timeseries_diff

WINDOW_S = 10.0
BUCKETS = (1.0, 5.0, 25.0)

# One observation: (timestamp, metric index, value, is_histogram).
events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.booleans(),
    ),
    max_size=60,
)


def build(stream):
    ts = TimeSeriesBuffer(window_s=WINDOW_S)
    for t_s, index, value, is_histogram in stream:
        if is_histogram:
            ts.observe(t_s, f"hist{index}", value, buckets=BUCKETS)
        else:
            ts.inc(t_s, f"ctr{index}", (("k", str(index)),), value)
    return ts


def merged(*deltas):
    ts = TimeSeriesBuffer(window_s=WINDOW_S)
    for delta in deltas:
        ts.merge_delta(delta)
    return ts


def canonical(ts):
    return json.dumps(ts.to_json(), sort_keys=True)


class TestMergeAlgebra:
    @given(a=events, b=events)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_commutative(self, a, b):
        da, db = build(a).snapshot_delta(), build(b).snapshot_delta()
        assert canonical(merged(da, db)) == canonical(merged(db, da))

    @given(a=events, b=events, c=events)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        da, db, dc = (build(s).snapshot_delta() for s in (a, b, c))
        left = merged(dc)
        left.merge_delta(merged(da, db).snapshot_delta())
        right = merged(da)
        right.merge_delta(merged(db, dc).snapshot_delta())
        assert canonical(left) == canonical(right)

    @given(stream=events, cut=st.integers(min_value=0, max_value=60))
    @settings(max_examples=50, deadline=None)
    def test_sharded_build_equals_single_pass(self, stream, cut):
        cut = min(cut, len(stream))
        fleet = merged(
            build(stream[:cut]).snapshot_delta(),
            build(stream[cut:]).snapshot_delta(),
        )
        serial = build(stream)
        assert timeseries_diff(fleet, serial) == []
        assert canonical(fleet) == canonical(serial)

    @given(stream=events, seed=st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_event_order_is_irrelevant(self, stream, seed):
        shuffled = list(stream)
        seed.shuffle(shuffled)
        assert canonical(build(shuffled)) == canonical(build(stream))

    @given(t_s=st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_window_assignment_is_pure_floor_division(self, t_s):
        ts = TimeSeriesBuffer(window_s=WINDOW_S)
        window = ts.window_of(t_s)
        assert window == int(t_s // WINDOW_S)
        assert window * WINDOW_S <= t_s
