"""Tests for the embedded gazetteer: structural facts the paper relies on."""

import pytest

from repro.errors import DatasetError
from repro.geo.coordinates import great_circle_km
from repro.geo.datasets import (
    all_cdn_sites,
    all_cities,
    all_countries,
    all_ground_stations,
    all_pops,
    assigned_pop,
    cdn_site_by_name,
    cities_in_country,
    city_by_name,
    country_by_iso2,
    pop_by_name,
    starlink_covered_countries,
)


class TestCountries:
    def test_iso_codes_unique(self):
        codes = [c.iso2 for c in all_countries()]
        assert len(codes) == len(set(codes))

    def test_lookup_known_country(self):
        assert country_by_iso2("MZ").name == "Mozambique"

    def test_lookup_unknown_raises(self):
        with pytest.raises(DatasetError):
            country_by_iso2("XX")

    def test_tiers_valid(self):
        assert all(c.infra_tier in (1, 2, 3) for c in all_countries())

    def test_starlink_coverage_count_matches_paper_scale(self):
        # The paper analyses Starlink measurements from 55 countries; our
        # gazetteer models a comparable majority-covered world.
        covered = starlink_covered_countries()
        assert 40 <= len(covered) <= 70

    def test_table1_countries_all_covered(self):
        for iso2 in ("GT", "MZ", "CY", "SZ", "HT", "KE", "ZM", "RW", "LT", "ES", "JP"):
            assert country_by_iso2(iso2).starlink

    def test_south_africa_not_covered(self):
        # ZA had no consumer Starlink service in the paper's timeframe.
        assert not country_by_iso2("ZA").starlink


class TestCities:
    def test_names_unique(self):
        names = [c.name for c in all_cities()]
        assert len(names) == len(set(names))

    def test_every_city_country_exists(self):
        for city in all_cities():
            country_by_iso2(city.iso2)

    def test_city_lookup(self):
        maputo = city_by_name("Maputo")
        assert maputo.iso2 == "MZ"
        assert maputo.lat_deg < 0  # southern hemisphere

    def test_unknown_city_raises(self):
        with pytest.raises(DatasetError):
            city_by_name("Atlantis")

    def test_cities_in_country(self):
        de = cities_in_country("DE")
        assert {c.name for c in de} == {"Berlin", "Frankfurt", "Munich"}

    def test_cities_in_unknown_country_raises(self):
        with pytest.raises(DatasetError):
            cities_in_country("QQ")

    def test_population_positive(self):
        assert all(c.population_m > 0 for c in all_cities())

    def test_scale_of_gazetteer(self):
        assert len(all_cities()) >= 100


class TestPops:
    def test_exactly_22_pops_as_in_paper(self):
        assert len(all_pops()) == 22

    def test_pop_lookup(self):
        frankfurt = pop_by_name("Frankfurt")
        assert frankfurt.iso2 == "DE"

    def test_unknown_pop_raises(self):
        with pytest.raises(DatasetError):
            pop_by_name("Pyongyang")

    def test_no_pop_in_southern_or_eastern_africa(self):
        # The structural gap that drives the paper's Africa findings.
        african_pops = [p for p in all_pops() if country_by_iso2(p.iso2).region == "africa"]
        assert [p.name for p in african_pops] == ["Lagos"]


class TestAssignedPop:
    def test_mozambique_exits_at_frankfurt(self):
        assert assigned_pop("MZ").name == "Frankfurt"

    def test_kenya_exits_at_frankfurt(self):
        assert assigned_pop("KE").name == "Frankfurt"

    def test_spain_exits_locally(self):
        assert assigned_pop("ES").name == "Madrid"

    def test_japan_exits_locally(self):
        assert assigned_pop("JP").name == "Tokyo"

    def test_us_city_assignment_uses_proximity(self):
        seattle = city_by_name("Seattle")
        pop = assigned_pop("US", seattle.lat_deg, seattle.lon_deg)
        assert pop.name == "Seattle"

    def test_different_us_cities_get_different_pops(self):
        miami = city_by_name("Miami")
        seattle = city_by_name("Seattle")
        pop_miami = assigned_pop("US", miami.lat_deg, miami.lon_deg)
        pop_seattle = assigned_pop("US", seattle.lat_deg, seattle.lon_deg)
        assert pop_miami.name != pop_seattle.name

    def test_unknown_country_raises(self):
        with pytest.raises(DatasetError):
            assigned_pop("XX")

    def test_assignment_distance_for_mozambique_is_intercontinental(self):
        maputo = city_by_name("Maputo")
        pop = assigned_pop("MZ", maputo.lat_deg, maputo.lon_deg)
        assert great_circle_km(maputo.location, pop.location) > 8000


class TestGroundStations:
    def test_every_station_has_valid_pop(self):
        for gs in all_ground_stations():
            pop_by_name(gs.pop_name)

    def test_names_unique(self):
        names = [g.name for g in all_ground_stations()]
        assert len(names) == len(set(names))

    def test_no_stations_in_southern_africa(self):
        southern = [
            g
            for g in all_ground_stations()
            if g.iso2 in ("MZ", "ZM", "ZA", "SZ", "KE", "RW", "MW", "BW")
        ]
        assert southern == []

    def test_nigeria_has_a_station(self):
        assert any(g.iso2 == "NG" for g in all_ground_stations())

    def test_station_near_its_pop_mostly(self):
        # Gateways backhaul over fiber; the vast majority sit within ~2500 km
        # of their PoP (long exceptions exist, e.g. Alaska).
        distances = [
            great_circle_km(g.location, g.pop.location) for g in all_ground_stations()
        ]
        within = sum(1 for d in distances if d < 2500)
        assert within / len(distances) > 0.9

    def test_scale(self):
        assert len(all_ground_stations()) >= 40


class TestCdnSites:
    def test_names_unique(self):
        names = [s.name for s in all_cdn_sites()]
        assert len(names) == len(set(names))

    def test_lookup(self):
        assert cdn_site_by_name("Maputo").iso2 == "MZ"

    def test_unknown_site_raises(self):
        with pytest.raises(DatasetError):
            cdn_site_by_name("Gotham")

    def test_cdn_present_in_key_underserved_capitals(self):
        # The paper's point: CDNs are *already* near these users; the
        # satellite path just cannot reach them.
        for name in ("Maputo", "Kigali", "Guatemala City", "Port-au-Prince", "Nairobi"):
            cdn_site_by_name(name)

    def test_no_cdn_site_in_lusaka_or_mbabane(self):
        # Matches the paper's Table 1: Zambian/Eswatini clients travel to
        # Johannesburg-area CDNs even terrestrially.
        names = {s.name for s in all_cdn_sites()}
        assert "Lusaka" not in names
        assert "Mbabane" not in names

    def test_scale_spans_regions(self):
        sites = all_cdn_sites()
        assert len(sites) >= 80
        regions = {country_by_iso2(s.iso2).region for s in sites}
        assert {"africa", "europe", "asia", "north-america", "south-america"} <= regions
