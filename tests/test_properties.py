"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.cache import FifoCache, LfuCache, LruCache
from repro.cdn.content import ContentObject
from repro.constants import EARTH_RADIUS_KM
from repro.geo.coordinates import (
    GeoPoint,
    destination_point,
    great_circle_km,
    normalize_longitude,
    slant_range_km,
)

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, latitudes, longitudes, st.just(0.0))


class TestGeodesyProperties:
    @given(points, points)
    def test_great_circle_symmetric(self, a, b):
        assert great_circle_km(a, b) == great_circle_km(b, a)

    @given(points, points)
    def test_great_circle_bounded_by_half_circumference(self, a, b):
        assert 0.0 <= great_circle_km(a, b) <= math.pi * EARTH_RADIUS_KM + 1e-6

    @given(points)
    def test_great_circle_identity(self, a):
        assert great_circle_km(a, a) == 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        ab = great_circle_km(a, b)
        bc = great_circle_km(b, c)
        ac = great_circle_km(a, c)
        assert ac <= ab + bc + 1e-6

    @given(points, points)
    def test_chord_below_arc(self, a, b):
        # Straight line through the Earth can never exceed the surface arc.
        assert slant_range_km(a, b) <= great_circle_km(a, b) + 1e-6

    @given(
        points,
        st.floats(min_value=0.0, max_value=360.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
    )
    def test_destination_distance_preserved(self, start, bearing, distance):
        there = destination_point(start, bearing, distance)
        assert great_circle_km(start, there) <= distance + 1e-6
        # Equality except when the path crosses a pole and wraps.
        if abs(start.lat_deg) < 80.0 and distance < 1000.0:
            assert math.isclose(
                great_circle_km(start, there), distance, rel_tol=1e-6, abs_tol=1e-6
            )

    @given(st.floats(min_value=-10_000.0, max_value=10_000.0, allow_nan=False))
    def test_normalize_longitude_range(self, lon):
        wrapped = normalize_longitude(lon)
        assert -180.0 <= wrapped < 180.0


object_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),  # id pool (collisions intended)
        st.integers(min_value=1, max_value=500),  # size
    ),
    min_size=1,
    max_size=80,
)


class TestCacheProperties:
    @given(object_entries, st.sampled_from([LruCache, LfuCache, FifoCache]))
    @settings(max_examples=60, deadline=None)
    def test_capacity_invariant(self, entries, cache_cls):
        cache = cache_cls(capacity_bytes=1000)
        for object_id, size in entries:
            cache.put(ContentObject(f"o{object_id}", size))
            assert 0 <= cache.used_bytes <= cache.capacity_bytes

    @given(object_entries, st.sampled_from([LruCache, LfuCache, FifoCache]))
    @settings(max_examples=60, deadline=None)
    def test_used_bytes_equals_sum_of_cached(self, entries, cache_cls):
        cache = cache_cls(capacity_bytes=1000)
        inserted: dict[str, int] = {}
        for object_id, size in entries:
            name = f"o{object_id}"
            if name in cache:
                continue  # re-insert refreshes, does not resize
            cache.put(ContentObject(name, size))
            inserted[name] = size
        expected = sum(inserted[oid] for oid in cache.object_ids())
        assert cache.used_bytes == expected

    @given(object_entries)
    @settings(max_examples=60, deadline=None)
    def test_lru_get_after_put_hits(self, entries):
        cache = LruCache(capacity_bytes=100_000)  # never evicts at this size
        for object_id, size in entries:
            name = f"o{object_id}"
            if name not in cache:
                cache.put(ContentObject(name, size))
            assert cache.get(name) is not None

    @given(object_entries, st.sampled_from([LruCache, LfuCache, FifoCache]))
    @settings(max_examples=60, deadline=None)
    def test_stats_accounting(self, entries, cache_cls):
        cache = cache_cls(capacity_bytes=1000)
        for object_id, size in entries:
            cache.get(f"o{object_id}")
            name = f"o{object_id}"
            if name not in cache:
                cache.put(ContentObject(name, size))
        stats = cache.stats
        assert stats.requests == len(entries)
        assert stats.hits + stats.misses == stats.requests
        assert 0.0 <= stats.hit_ratio <= 1.0


class TestZipfProperties:
    @given(
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.1, max_value=2.5, allow_nan=False),
    )
    def test_pmf_normalised(self, n, s):
        from repro.workloads.zipf import ZipfDistribution

        zipf = ZipfDistribution(n=n, s=s)
        assert math.isclose(
            sum(zipf.pmf(k) for k in range(1, n + 1)), 1.0, rel_tol=1e-9
        )

    @given(
        st.integers(min_value=2, max_value=200),
        st.floats(min_value=0.1, max_value=2.5, allow_nan=False),
    )
    def test_head_mass_monotone(self, n, s):
        from repro.workloads.zipf import ZipfDistribution

        zipf = ZipfDistribution(n=n, s=s)
        masses = [zipf.head_mass(k) for k in range(1, n + 1)]
        assert all(b >= a for a, b in zip(masses, masses[1:]))


class TestPlacementProperties:
    @given(
        st.integers(min_value=1, max_value=22),
        st.integers(min_value=0, max_value=21),
    )
    def test_spaced_slots_distinct_and_in_range(self, copies, offset):
        from repro.spacecdn.placement import spaced_slots

        slots = spaced_slots(22, copies, offset)
        assert len(set(slots)) == copies
        assert all(0 <= s < 22 for s in slots)

    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_k_per_plane_deterministic_per_object(self, object_id):
        from repro.orbits.elements import starlink_shell1
        from repro.spacecdn.placement import KPerPlanePlacement

        shell = starlink_shell1()
        placement = KPerPlanePlacement(copies_per_plane=3)
        a = placement.place_object(object_id, shell)
        b = placement.place_object(object_id, shell)
        assert a == b
        assert len(a) == 3 * shell.num_planes


class TestCdfProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_cdf_monotone_and_bounded(self, samples):
        from repro.analysis.stats import Cdf

        cdf = Cdf.from_samples(samples)
        xs = sorted(samples)
        probs = [cdf.at(x) for x in xs]
        assert all(b >= a for a, b in zip(probs, probs[1:]))
        assert cdf.at(xs[-1]) == 1.0
        assert cdf.at(xs[0] - 1.0) == 0.0

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=100,
        )
    )
    def test_quantile_within_sample_range(self, samples):
        from repro.analysis.stats import Cdf

        cdf = Cdf.from_samples(samples)
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = cdf.quantile(q)
            assert min(samples) <= value <= max(samples)
