"""Tests for geo-blocking on apparent (PoP) locations."""

import pytest

from repro.cdn.geoblock import GeoBlockPolicy
from repro.errors import ConfigurationError
from repro.geo.datasets import cities_in_country, city_by_name


@pytest.fixture
def policy() -> GeoBlockPolicy:
    p = GeoBlockPolicy()
    p.license_object("mz-news", {"MZ", "ZA"})
    p.license_object("de-stream", {"DE"})
    return p


class TestLicensing:
    def test_empty_allowlist_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.license_object("x", set())

    def test_unknown_country_rejected(self, policy):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            policy.license_object("x", {"XX"})

    def test_is_restricted(self, policy):
        assert policy.is_restricted("mz-news")
        assert not policy.is_restricted("open-content")


class TestTerrestrialChecks:
    def test_local_user_allowed(self, policy):
        decision = policy.check_terrestrial("mz-news", city_by_name("Maputo"))
        assert decision.allowed
        assert not decision.misblocked

    def test_foreign_user_blocked(self, policy):
        decision = policy.check_terrestrial("mz-news", city_by_name("Berlin"))
        assert not decision.allowed
        # Blocked *correctly*: physically outside the licence area.
        assert not decision.misblocked

    def test_unrestricted_object_always_allowed(self, policy):
        assert policy.check_terrestrial("open-content", city_by_name("Berlin")).allowed


class TestStarlinkChecks:
    def test_maputo_starlink_user_misblocked(self, policy):
        # Physically in MZ (licensed) but the IP geolocates to Frankfurt.
        decision = policy.check_starlink("mz-news", city_by_name("Maputo"))
        assert not decision.allowed
        assert decision.apparent_iso2 == "DE"
        assert decision.physical_iso2 == "MZ"
        assert decision.misblocked

    def test_maputo_starlink_user_unlocks_german_content(self, policy):
        # The mirror-image anomaly: German geo-fenced content becomes
        # reachable from Mozambique over Starlink.
        decision = policy.check_starlink("de-stream", city_by_name("Maputo"))
        assert decision.allowed

    def test_berlin_starlink_user_fine(self, policy):
        decision = policy.check_starlink("de-stream", city_by_name("Berlin"))
        assert decision.allowed


class TestMisblockRate:
    def test_rate_for_mozambique_cities_is_total(self, policy):
        cities = list(cities_in_country("MZ"))
        assert policy.misblock_rate("mz-news", cities) == 1.0

    def test_rate_zero_for_unrestricted(self, policy):
        cities = list(cities_in_country("MZ"))
        assert policy.misblock_rate("open-content", cities) == 0.0

    def test_rate_zero_when_no_eligible_city(self, policy):
        cities = list(cities_in_country("JP"))
        assert policy.misblock_rate("mz-news", cities) == 0.0

    def test_empty_cities_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.misblock_rate("mz-news", [])

    def test_rate_mixed_population(self, policy):
        # Spanish cities are licensed and exit locally -> never misblocked;
        # Mozambican cities are licensed but exit at Frankfurt -> always
        # misblocked (DE is not in the licence).
        policy.license_object("both", {"ES", "MZ"})
        cities = list(cities_in_country("ES")) + list(cities_in_country("MZ"))
        rate = policy.misblock_rate("both", cities)
        expected = len(cities_in_country("MZ")) / len(cities)
        assert rate == pytest.approx(expected)
