"""Tests for the SpaceCDN economics models."""

import pytest

from repro.economics.costs import (
    DeliveryCostModel,
    SpaceCdnCostParams,
    TerrestrialCostParams,
)
from repro.economics.metacdn import MetaCdnOperator
from repro.errors import ConfigurationError


@pytest.fixture
def model() -> DeliveryCostModel:
    return DeliveryCostModel()


class TestCostParams:
    def test_amortisation(self):
        params = SpaceCdnCostParams(
            payload_capex_usd=100_000.0,
            payload_lifetime_years=5.0,
            payload_power_opex_usd_per_year=5_000.0,
        )
        assert params.amortised_usd_per_year == pytest.approx(25_000.0)

    def test_invalid_lifetime(self):
        with pytest.raises(ConfigurationError):
            SpaceCdnCostParams(payload_lifetime_years=0.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            SpaceCdnCostParams(payload_capex_usd=-1.0)
        with pytest.raises(ConfigurationError):
            TerrestrialCostParams(edge_egress_usd_per_gb=-0.01)


class TestSpaceCdnCost:
    def test_cost_falls_with_demand(self, model):
        low = model.spacecdn_usd_per_gb(demand_gb_per_month=10_000.0)
        high = model.spacecdn_usd_per_gb(demand_gb_per_month=10_000_000.0)
        assert high < low

    def test_cost_rises_with_isl_hops(self, model):
        near = model.spacecdn_usd_per_gb(1_000_000.0, mean_isl_hops=1.0)
        far = model.spacecdn_usd_per_gb(1_000_000.0, mean_isl_hops=8.0)
        assert far > near

    def test_misses_cost_wan_fill(self, model):
        perfect = model.spacecdn_usd_per_gb(1_000_000.0, space_hit_ratio=1.0)
        leaky = model.spacecdn_usd_per_gb(1_000_000.0, space_hit_ratio=0.5)
        assert leaky > perfect

    def test_invalid_args(self, model):
        with pytest.raises(ConfigurationError):
            model.spacecdn_usd_per_gb(0.0)
        with pytest.raises(ConfigurationError):
            model.spacecdn_usd_per_gb(1.0, space_hit_ratio=1.5)
        with pytest.raises(ConfigurationError):
            model.spacecdn_usd_per_gb(1.0, mean_isl_hops=-1.0)


class TestTerrestrialCost:
    def test_remote_region_penalty(self, model):
        local = model.terrestrial_cdn_usd_per_gb(edge_is_local=True)
        remote = model.terrestrial_cdn_usd_per_gb(edge_is_local=False)
        assert remote > local + 0.05

    def test_invalid_hit_ratio(self, model):
        with pytest.raises(ConfigurationError):
            model.terrestrial_cdn_usd_per_gb(True, cache_hit_ratio=-0.1)


class TestBreakdown:
    def test_remote_high_volume_favours_spacecdn(self, model):
        # The paper's thesis region: poor terrestrial connectivity, once
        # demand is pooled over the footprint.
        breakdown = model.breakdown(
            demand_gb_per_month=50_000_000.0, edge_is_local=False
        )
        assert breakdown.cheapest() == "spacecdn"

    def test_local_edge_low_volume_favours_terrestrial(self, model):
        breakdown = model.breakdown(
            demand_gb_per_month=20_000.0, edge_is_local=True
        )
        assert breakdown.cheapest() == "terrestrial-cdn"

    def test_origin_never_cheapest_at_scale(self, model):
        breakdown = model.breakdown(
            demand_gb_per_month=10_000_000.0, edge_is_local=False
        )
        assert breakdown.cheapest() != "origin"


class TestBreakeven:
    def test_breakeven_lower_for_remote_regions(self, model):
        remote = model.breakeven_demand_gb_per_month(edge_is_local=False)
        local = model.breakeven_demand_gb_per_month(edge_is_local=True)
        assert remote < local

    def test_breakeven_is_actual_crossover(self, model):
        demand = model.breakeven_demand_gb_per_month(edge_is_local=False)
        below = model.breakdown(demand * 0.5, edge_is_local=False)
        above = model.breakdown(demand * 2.0, edge_is_local=False)
        assert below.spacecdn_usd_per_gb > below.terrestrial_cdn_usd_per_gb
        assert above.spacecdn_usd_per_gb < above.terrestrial_cdn_usd_per_gb

    def test_infinite_when_variable_cost_dominates(self):
        expensive_space = DeliveryCostModel(
            space=SpaceCdnCostParams(downlink_opportunity_usd_per_gb=10.0)
        )
        assert expensive_space.breakeven_demand_gb_per_month(True) == float("inf")


class TestMetaCdn:
    @pytest.fixture
    def operator(self) -> MetaCdnOperator:
        op = MetaCdnOperator(total_cache_bytes=900 * 10**15)  # the fleet's 900 PB
        op.commit("streaming-service", 600_000.0)
        op.commit("news-network", 300_000.0)
        op.commit("game-publisher", 100_000.0)
        return op

    def test_allocation_proportional(self, operator):
        allocations = {a.tenant: a for a in operator.allocations(1_000_000.0)}
        assert allocations["streaming-service"].allocated_bytes == pytest.approx(
            0.6 * 900e15, rel=1e-6
        )
        assert allocations["news-network"].allocated_bytes == pytest.approx(
            0.3 * 900e15, rel=1e-6
        )

    def test_uniform_price(self, operator):
        allocations = operator.allocations(1_000_000.0)
        prices = {a.price_usd_per_gb for a in allocations}
        assert len(prices) == 1

    def test_price_includes_margin(self, operator):
        price = operator.delivery_price_usd_per_gb(1_000_000.0)
        cost = operator.cost_model.spacecdn_usd_per_gb(1_000_000.0)
        assert price == pytest.approx(cost * 1.35)

    def test_no_tenants_no_allocations(self):
        op = MetaCdnOperator(total_cache_bytes=10**12)
        assert op.allocations(1_000.0) == []

    def test_withdraw(self, operator):
        operator.withdraw("game-publisher")
        assert "game-publisher" not in operator.tenants()
        with pytest.raises(ConfigurationError):
            operator.withdraw("game-publisher")

    def test_revenue(self, operator):
        revenue = operator.monthly_revenue_usd(
            {"streaming-service": 800_000.0, "news-network": 200_000.0}
        )
        price = operator.delivery_price_usd_per_gb(1_000_000.0)
        assert revenue == pytest.approx(price * 1_000_000.0)

    def test_revenue_unknown_tenant_rejected(self, operator):
        with pytest.raises(ConfigurationError):
            operator.monthly_revenue_usd({"pirate-tv": 10.0})

    def test_zero_traffic_zero_revenue(self, operator):
        assert operator.monthly_revenue_usd({}) == 0.0

    def test_invalid_commitment(self, operator):
        with pytest.raises(ConfigurationError):
            operator.commit("freeloader", 0.0)

    def test_invalid_operator_config(self):
        with pytest.raises(ConfigurationError):
            MetaCdnOperator(total_cache_bytes=0)
        with pytest.raises(ConfigurationError):
            MetaCdnOperator(total_cache_bytes=10, margin=-0.1)
