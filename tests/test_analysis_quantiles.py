"""Golden tests for the shared quantile helpers.

:mod:`repro.analysis.quantiles` is the single home of percentile
arithmetic — the exact-sample estimator backing ``analysis.stats`` and
the trace summaries, and the bucket-resolved estimator backing the
scalar and windowed histograms. These tests pin both estimators to
hand-computed values so any drift in a consolidation refactor is loud.
"""

import math

import pytest

from repro.analysis.quantiles import (
    histogram_quantile,
    sample_quantile,
    sample_quantiles,
)


class TestSampleQuantile:
    def test_median_of_odd_sample(self):
        assert sample_quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_median_interpolates_even_sample(self):
        assert sample_quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes_are_min_and_max(self):
        data = [5.0, 1.0, 9.0]
        assert sample_quantile(data, 0.0) == 1.0
        assert sample_quantile(data, 1.0) == 9.0

    def test_linear_interpolation_golden(self):
        # Hyndman-Fan type 7 on 0..10: quantile q lands at index 10 * q.
        data = list(range(11))
        assert sample_quantile(data, 0.25) == 2.5
        assert sample_quantile(data, 0.95) == pytest.approx(9.5)

    def test_empty_sample_is_nan(self):
        assert math.isnan(sample_quantile([], 0.5))

    def test_single_sample_everywhere(self):
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert sample_quantile([7.0], q) == 7.0

    def test_order_free(self):
        data = [9.0, 2.0, 11.0, 4.0, 7.0]
        assert sample_quantile(data, 0.75) == sample_quantile(sorted(data), 0.75)


class TestSampleQuantiles:
    def test_matches_scalar_helper(self):
        data = [4.0, 8.0, 15.0, 16.0, 23.0, 42.0]
        qs = (0.25, 0.5, 0.75, 0.95)
        assert sample_quantiles(data, qs) == tuple(
            sample_quantile(data, q) for q in qs
        )

    def test_empty_sample_is_all_nan(self):
        out = sample_quantiles([], (0.5, 0.9))
        assert len(out) == 2
        assert all(math.isnan(v) for v in out)


class TestHistogramQuantile:
    CUMULATIVE = [(1.0, 10), (5.0, 70), (10.0, 90), (math.inf, 100)]

    def test_returns_first_bound_reaching_rank(self):
        assert histogram_quantile(self.CUMULATIVE, 100, 0.5) == 5.0

    def test_rank_exactly_on_bucket_edge(self):
        # Rank 10 is satisfied by the first bucket itself.
        assert histogram_quantile(self.CUMULATIVE, 100, 0.10) == 1.0

    def test_tail_falls_into_overflow_bucket(self):
        assert histogram_quantile(self.CUMULATIVE, 100, 0.99) == math.inf

    def test_empty_histogram_is_nan(self):
        assert math.isnan(histogram_quantile([], 0, 0.5))

    def test_agrees_with_obs_histogram(self):
        """Histogram.quantile is now a thin wrapper over this helper."""
        from repro.obs.metrics import Histogram

        histogram = Histogram((10.0, 100.0))
        for _ in range(9):
            histogram.observe(5.0)
        histogram.observe(50.0)
        assert histogram.quantile(0.5) == histogram_quantile(
            histogram.cumulative(), histogram.count, 0.5
        )

    def test_agrees_with_cdf_quantile(self):
        """Cdf.quantile is now a thin wrapper over sample_quantile."""
        from repro.analysis.stats import Cdf

        cdf = Cdf.from_samples([3.0, 1.0, 4.0, 1.0, 5.0])
        assert cdf.quantile(0.5) == sample_quantile([3.0, 1.0, 4.0, 1.0, 5.0], 0.5)
