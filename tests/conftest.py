"""Shared fixtures for the test suite.

Orbit/topology tests use a small 6x8 shell so graph algorithms stay
instantaneous; tests that must exercise Shell-1 geometry build it explicitly
(module-scoped, cached).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdn.content import Catalog, ContentObject
from repro.geo.coordinates import GeoPoint
from repro.network.latency import LatencyNoise
from repro.orbits.elements import ShellConfig, starlink_shell1
from repro.orbits.walker import build_walker_delta
from repro.topology.graph import build_snapshot


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def noise(rng) -> LatencyNoise:
    return LatencyNoise(rng=rng)


@pytest.fixture
def small_shell() -> ShellConfig:
    """A 6-plane x 8-satellite shell: big enough for routing, tiny to build."""
    return ShellConfig(
        altitude_km=550.0,
        inclination_deg=53.0,
        num_planes=6,
        sats_per_plane=8,
        phase_offset=3,
        name="test-shell",
    )


@pytest.fixture
def small_constellation(small_shell):
    return build_walker_delta(small_shell)


@pytest.fixture
def small_snapshot(small_constellation):
    return build_snapshot(small_constellation, t_s=0.0)


@pytest.fixture(scope="session")
def shell1():
    return starlink_shell1()


@pytest.fixture(scope="session")
def shell1_constellation(shell1):
    return build_walker_delta(shell1)


@pytest.fixture(scope="session")
def shell1_snapshot(shell1_constellation):
    return build_snapshot(shell1_constellation, t_s=0.0)


@pytest.fixture
def equator_point() -> GeoPoint:
    return GeoPoint(0.0, 0.0, 0.0)


@pytest.fixture
def small_catalog() -> Catalog:
    """A hand-built catalog with two regions plus global objects."""
    catalog = Catalog()
    for i in range(10):
        catalog.add(
            ContentObject(
                object_id=f"eu-{i}", size_bytes=1000 + i, kind="web", region="europe"
            )
        )
        catalog.add(
            ContentObject(
                object_id=f"af-{i}", size_bytes=2000 + i, kind="news", region="africa"
            )
        )
    for i in range(5):
        catalog.add(
            ContentObject(
                object_id=f"g-{i}", size_bytes=500 + i, kind="image", region="global"
            )
        )
    return catalog
