"""Tests for content wormholing (orbital bulk relay)."""

import pytest

from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.wormhole import WormholePlanner


@pytest.fixture(scope="module")
def planner(shell1_constellation) -> WormholePlanner:
    return WormholePlanner(constellation=shell1_constellation, scan_step_s=30.0)


# Two same-latitude regions ~7500 km apart (roughly US east coast -> Iberia).
SOURCE = GeoPoint(39.0, -77.0, 0.0)
DESTINATION = GeoPoint(40.0, -4.0, 0.0)


class TestConfiguration:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"footprint_radius_km": 0.0},
            {"uplink_gbps": 0.0},
            {"downlink_gbps": -1.0},
            {"scan_step_s": 0.0},
        ],
    )
    def test_invalid_config(self, shell1_constellation, kwargs):
        base = dict(constellation=shell1_constellation)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            WormholePlanner(**base)

    def test_transfer_time(self, planner):
        # 100 GB at 4 Gbps = 200 s.
        assert planner.transfer_time_s(100.0, 4.0) == pytest.approx(200.0)

    def test_invalid_bundle(self, planner):
        with pytest.raises(ConfigurationError):
            planner.transfer_time_s(0.0, 4.0)


class TestPlan:
    def test_plan_found_within_one_orbit(self, planner):
        plan = planner.plan(SOURCE, DESTINATION, bundle_gb=50.0)
        assert plan.load_end_s > plan.load_start_s
        assert plan.unload_start_s >= plan.load_end_s
        assert plan.unload_end_s > plan.unload_start_s
        assert plan.carry_time_s >= 0.0

    def test_carry_time_physically_plausible(self, planner):
        # ~7500 km at ~7.6 km/s ground-track speed: the carry leg must take
        # at least ~10 minutes and at most one orbit.
        plan = planner.plan(SOURCE, DESTINATION, bundle_gb=50.0)
        assert 400.0 < plan.carry_time_s < 5700.0

    def test_bigger_bundle_takes_longer_or_equal(self, planner):
        small = planner.plan(SOURCE, DESTINATION, bundle_gb=10.0)
        big = planner.plan(SOURCE, DESTINATION, bundle_gb=100.0)
        assert big.unload_end_s >= small.unload_end_s

    def test_impossible_bundle_raises(self, planner):
        # A bundle too large to uplink within any single pass.
        with pytest.raises(VisibilityError):
            planner.plan(SOURCE, DESTINATION, bundle_gb=50_000.0, horizon_s=2000.0)

    def test_uncovered_destination_raises(self, planner):
        svalbard = GeoPoint(78.2, 15.6, 0.0)
        with pytest.raises(VisibilityError):
            planner.plan(SOURCE, svalbard, bundle_gb=10.0, horizon_s=2000.0)


class TestWanComparison:
    def test_wan_time(self, planner):
        t = planner.wan_delivery_time_s(SOURCE, DESTINATION, bundle_gb=100.0, wan_gbps=1.0)
        # 800 s serialisation + ~55 ms propagation.
        assert 800.0 < t < 810.0

    def test_wormhole_beats_thin_wan_for_bulk(self, planner):
        # The wormholing pitch: for bundles that fit in one pass's uplink
        # budget but would crawl over a thin-pipe WAN into the destination
        # region, the orbital relay wins despite the carry latency.
        bundle = 100.0  # 100 GB: ~200 s of uplink, well within one pass
        plan = planner.plan(SOURCE, DESTINATION, bundle_gb=bundle, horizon_s=5700.0)
        wan = planner.wan_delivery_time_s(SOURCE, DESTINATION, bundle, wan_gbps=0.2)
        assert plan.delivery_time_s < wan

    def test_wan_invalid_rate(self, planner):
        with pytest.raises(ConfigurationError):
            planner.wan_delivery_time_s(SOURCE, DESTINATION, 1.0, wan_gbps=0.0)


class TestShellPresets:
    def test_all_presets_valid(self):
        from repro.orbits.elements import all_shell_presets

        presets = all_shell_presets()
        assert len(presets) == 5
        names = {p.name for p in presets}
        assert len(names) == 5
        for preset in presets:
            assert preset.total_satellites > 500

    def test_oneweb_has_no_isls(self):
        from repro.orbits.elements import oneweb_phase1
        from repro.topology.isl import plus_grid_links

        shell = oneweb_phase1()
        assert not shell.isl_capable
        assert plus_grid_links(shell) == ()

    def test_oneweb_spacecdn_only_serves_overhead(self):
        """Without ISLs, a lookup can only hit the access satellite."""
        from repro.geo.coordinates import GeoPoint
        from repro.orbits.elements import oneweb_phase1
        from repro.orbits.walker import build_walker_delta
        from repro.spacecdn.lookup import LookupSource, SpaceCdnLookup
        from repro.topology.graph import build_snapshot

        constellation = build_walker_delta(oneweb_phase1())
        snapshot = build_snapshot(constellation, 0.0)
        lookup = SpaceCdnLookup(snapshot=snapshot, max_hops=10)
        user = GeoPoint(0.0, 0.0)
        everywhere = frozenset(range(len(constellation)))
        hit = lookup.lookup_from_point(user, everywhere)
        assert hit.source is LookupSource.ACCESS_SATELLITE
        # Content on any OTHER satellite is unreachable in space.
        other = frozenset({(hit.access_satellite + 1) % len(constellation)})
        miss = lookup.lookup_from_point(user, other)
        assert miss.source is LookupSource.GROUND

    def test_vleo_lower_than_shell1(self):
        from repro.orbits.elements import starlink_shell1, starlink_vleo

        assert starlink_vleo().altitude_km < starlink_shell1().altitude_km

    def test_shell3_reaches_higher_latitudes(self):
        from repro.orbits.elements import starlink_shell3
        from repro.orbits.walker import build_walker_delta

        constellation = build_walker_delta(starlink_shell3())
        lats = constellation.subsatellite_points(0.0)[:, 0]
        assert abs(lats).max() > 60.0
