"""Tests for snapshot graph construction."""

import pytest

from repro.constants import SPEED_OF_LIGHT_KM_S
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.topology.graph import access_latency_ms, isl_latency_ms


class TestLatencyFunctions:
    def test_isl_latency_zero_distance_is_processing_only(self):
        from repro.constants import ISL_HOP_PROCESSING_MS

        assert isl_latency_ms(0.0) == ISL_HOP_PROCESSING_MS

    def test_isl_latency_linear_in_distance(self):
        base = isl_latency_ms(0.0)
        assert isl_latency_ms(2997.92458) == pytest.approx(base + 10.0)

    def test_isl_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            isl_latency_ms(-1.0)

    def test_access_latency_includes_overheads(self):
        prop_only = 550.0 / SPEED_OF_LIGHT_KM_S * 1000.0
        assert access_latency_ms(550.0) > prop_only + 4.0

    def test_access_negative_range_rejected(self):
        with pytest.raises(ConfigurationError):
            access_latency_ms(-5.0)


class TestBuildSnapshot:
    def test_node_count(self, small_snapshot, small_shell):
        assert len(small_snapshot.satellite_nodes()) == small_shell.total_satellites

    def test_edge_count(self, small_snapshot, small_shell):
        assert small_snapshot.graph.number_of_edges() == 2 * small_shell.total_satellites

    def test_edges_have_positive_latency(self, small_snapshot):
        for _, _, data in small_snapshot.graph.edges(data=True):
            assert data["latency_ms"] > 0.0
            assert data["distance_km"] > 0.0

    def test_edge_latency_matches_distance(self, small_snapshot):
        for a, b, data in small_snapshot.graph.edges(data=True):
            assert data["latency_ms"] == pytest.approx(
                isl_latency_ms(data["distance_km"])
            )

    def test_graph_is_connected(self, small_snapshot):
        import networkx as nx

        assert nx.is_connected(small_snapshot.graph)

    def test_shell1_graph_connected(self, shell1_snapshot):
        import networkx as nx

        assert nx.is_connected(shell1_snapshot.graph)

    def test_edge_latency_accessor(self, small_snapshot):
        a, b = next(iter(small_snapshot.graph.edges))
        assert small_snapshot.edge_latency_ms(a, b) > 0


class TestAttachGroundNode:
    def test_attach_links_to_visible_satellites(self, shell1_snapshot):
        linked = shell1_snapshot.attach_ground_node("ut:test", GeoPoint(10.0, 10.0))
        assert linked
        for sat in linked:
            data = shell1_snapshot.graph["ut:test"][sat]
            assert data["kind"] == "access"
            assert data["latency_ms"] > 0
        # Clean up the shared session fixture.
        shell1_snapshot.graph.remove_node("ut:test")
        del shell1_snapshot.ground_nodes["ut:test"]

    def test_attach_twice_rejected(self, small_snapshot):
        small_snapshot.attach_ground_node("ut:x", GeoPoint(0.0, 0.0))
        with pytest.raises(ConfigurationError):
            small_snapshot.attach_ground_node("ut:x", GeoPoint(0.0, 0.0))

    def test_attach_outside_coverage_raises(self, shell1_snapshot):
        with pytest.raises(VisibilityError):
            shell1_snapshot.attach_ground_node("ut:svalbard", GeoPoint(78.2, 15.6))

    def test_max_links_respected(self, shell1_snapshot):
        linked = shell1_snapshot.attach_ground_node(
            "ut:limited", GeoPoint(-10.0, 40.0), max_links=2
        )
        assert len(linked) <= 2
        shell1_snapshot.graph.remove_node("ut:limited")
        del shell1_snapshot.ground_nodes["ut:limited"]
