"""Smoke tests: every example script must run and tell its story.

Examples are executed in-process (not via subprocess) so they share the
session's warm caches and the suite stays fast; each is checked for the
key line of its narrative.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

# (script, substring that must appear in its stdout)
EXAMPLES = [
    ("quickstart.py", "SpaceCDN cuts the RTT"),
    ("maputo_case_study.py", "misblocked=True"),
    ("video_striping.py", "serving chain"),
    ("duty_cycle_sweep.py", "thermal model"),
    ("content_bubbles.py", "plain LRU"),
    ("live_system.py", "space hit ratio"),
    ("economics_and_wormholes.py", "wormhole"),
    ("fleet_and_churn.py", "access churn"),
    ("chaos_sweep.py", "degraded serve"),
]


def _run_example(name: str, capsys) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example: {script}"
    argv = sys.argv
    try:
        sys.argv = [str(script)]
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name,expected", EXAMPLES)
def test_example_runs_and_reports(name, expected, capsys):
    out = _run_example(name, capsys)
    assert expected in out, f"{name} output missing {expected!r}"
    assert len(out.splitlines()) >= 5  # every example narrates, not one-liners


def test_every_example_file_is_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {name for name, _ in EXAMPLES}
    assert scripts == covered
