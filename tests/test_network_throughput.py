"""Tests for the TCP throughput model."""

import pytest

from repro.errors import ConfigurationError
from repro.network.throughput import (
    effective_download_mbps,
    mathis_throughput_mbps,
    starlink_profile,
    terrestrial_profile,
)


class TestMathis:
    def test_known_value(self):
        # MSS 1460 B, RTT 100 ms, loss 1e-4: ~14.3 Mbps.
        assert mathis_throughput_mbps(100.0, 1e-4) == pytest.approx(14.3, rel=0.05)

    def test_throughput_falls_with_rtt(self):
        fast = mathis_throughput_mbps(20.0, 1e-4)
        slow = mathis_throughput_mbps(160.0, 1e-4)
        assert fast == pytest.approx(8 * slow, rel=1e-9)

    def test_throughput_falls_with_loss(self):
        clean = mathis_throughput_mbps(50.0, 1e-5)
        lossy = mathis_throughput_mbps(50.0, 1e-3)
        assert clean == pytest.approx(10 * lossy, rel=1e-9)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rtt_ms": 0.0},
            {"loss_rate": 0.0},
            {"loss_rate": 1.0},
            {"mss_bytes": 0},
        ],
    )
    def test_invalid_args(self, kwargs):
        base = dict(rtt_ms=50.0, loss_rate=1e-4, mss_bytes=1460)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            mathis_throughput_mbps(**base)


class TestEffectiveDownload:
    def test_capacity_caps_short_paths(self):
        # A 5 ms clean path is Mathis-bound above 500 Mbps, so the link
        # capacity is the binding constraint.
        assert effective_download_mbps(5.0, 2e-5, 500.0) == 500.0

    def test_mathis_caps_long_paths(self):
        speed = effective_download_mbps(150.0, 8e-4, 500.0)
        assert speed < 100.0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            effective_download_mbps(50.0, 1e-4, 0.0)


class TestProfiles:
    def test_isl_paths_lossier(self):
        assert starlink_profile(True).loss_rate > starlink_profile(False).loss_rate

    def test_terrestrial_tiers_ordered(self):
        assert (
            terrestrial_profile(1).loss_rate
            < terrestrial_profile(2).loss_rate
            < terrestrial_profile(3).loss_rate
        )

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            terrestrial_profile(9)

    def test_paper_speed_asymmetry(self):
        """A Maputo-class user (ISL path, ~150 ms) gets a far slower single
        flow than a Madrid-class user (bent pipe, ~40 ms)."""
        maputo_like = starlink_profile(True).download_mbps(150.0)
        madrid_like = starlink_profile(False).download_mbps(40.0)
        assert madrid_like > 3.0 * maputo_like


class TestUploadProfiles:
    def test_starlink_upload_far_below_download(self):
        from repro.network.throughput import starlink_upload_profile

        up = starlink_upload_profile(False).download_mbps(40.0)
        down = starlink_profile(False).download_mbps(40.0)
        assert up < down / 2

    def test_terrestrial_upload_tiers_ordered(self):
        from repro.network.throughput import terrestrial_upload_profile

        t1 = terrestrial_upload_profile(1).link_capacity_mbps
        t3 = terrestrial_upload_profile(3).link_capacity_mbps
        assert t1 > t3

    def test_unknown_tier_rejected(self):
        from repro.network.throughput import terrestrial_upload_profile

        with pytest.raises(ConfigurationError):
            terrestrial_upload_profile(9)


class TestAimIntegration:
    def test_speed_tests_carry_download(self):
        from repro.geo.datasets import city_by_name
        from repro.measurements.aim import STARLINK, AimGenerator

        generator = AimGenerator(seed=11)
        tests = generator.generate_city_tests(city_by_name("Maputo"), STARLINK, 10)
        assert all(t.download_mbps > 0 for t in tests)
        assert all(0 < t.upload_mbps < t.download_mbps * 3 for t in tests)

    def test_starlink_download_slower_in_isl_countries(self):
        import numpy as np

        from repro.geo.datasets import city_by_name
        from repro.measurements.aim import STARLINK, AimGenerator

        generator = AimGenerator(seed=12)
        maputo = generator.generate_city_tests(city_by_name("Maputo"), STARLINK, 20)
        madrid = generator.generate_city_tests(city_by_name("Madrid"), STARLINK, 20)
        assert np.median([t.download_mbps for t in maputo]) < np.median(
            [t.download_mbps for t in madrid]
        )
