"""Tests for the windowed time-series buffer (repro.obs.timeseries).

The load-bearing property is merge determinism: window assignment is a
pure function of simulated time, every per-window cell is an integer,
and exports sort everything — so a ``--jobs N`` fleet merging shard
deltas in any completion order lands byte-identical to the serial run.
"""

import json
import math

import pytest

from repro.errors import ObsError
from repro.obs.timeseries import (
    DEFAULT_WINDOW_S,
    FIXED_POINT_SCALE,
    TS_FORMAT_VERSION,
    TimeSeriesBuffer,
    read_timeseries,
    timeseries_diff,
)


class TestWindowAssignment:
    def test_window_of_is_floor_division(self):
        ts = TimeSeriesBuffer(window_s=60.0)
        assert ts.window_of(0.0) == 0
        assert ts.window_of(59.999) == 0
        assert ts.window_of(60.0) == 1
        assert ts.window_of(3600.0) == 60

    def test_default_window_is_one_snapshot_slot(self):
        assert TimeSeriesBuffer().window_s == DEFAULT_WINDOW_S

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ObsError):
            TimeSeriesBuffer(window_s=0.0)
        with pytest.raises(ObsError):
            TimeSeriesBuffer(window_s=-1.0)


class TestCounters:
    def test_inc_accumulates_per_window(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.inc(1.0, "served")
        ts.inc(9.0, "served")
        ts.inc(11.0, "served", value=3.0)
        assert ts.counter_value("served", 0) == 2.0
        assert ts.counter_value("served", 1) == 3.0
        assert ts.counter_value("served", 2) == 0.0

    def test_labels_partition_series(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.inc(0.0, "served", (("tier", "access"),))
        ts.inc(0.0, "served", (("tier", "core"),), value=2.0)
        assert ts.counter_value("served", 0, (("tier", "access"),)) == 1.0
        assert ts.counter_value("served", 0, (("tier", "core"),)) == 2.0

    def test_values_are_fixed_point_integers(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.inc(0.0, "load", value=0.1)
        ts.inc(0.0, "load", value=0.2)
        stored = ts._counters[("load", ())][0]
        assert isinstance(stored, int)
        assert stored == round(0.1 * FIXED_POINT_SCALE) + round(
            0.2 * FIXED_POINT_SCALE
        )
        # 0.1 + 0.2 != 0.3 in floats; in micro-units it is exact.
        assert ts.counter_value("load", 0) == 0.3


class TestHistograms:
    def test_observe_buckets_and_counts(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.observe(0.0, "rtt", 0.5, buckets=(1.0, 5.0))
        ts.observe(0.0, "rtt", 3.0, buckets=(1.0, 5.0))
        ts.observe(0.0, "rtt", 50.0, buckets=(1.0, 5.0))
        cell = ts.histogram_cell("rtt", 0)
        assert cell.bucket_counts == [1, 1, 1]
        assert cell.count == 3
        assert cell.total_fp == round(53.5 * FIXED_POINT_SCALE)

    def test_bound_is_inclusive(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.observe(0.0, "rtt", 5.0, buckets=(5.0, 10.0))
        assert ts.histogram_cell("rtt", 0).bucket_counts == [1, 0, 0]

    def test_bucket_bounds_pin_on_first_use(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.observe(0.0, "rtt", 1.0, buckets=(1.0, 5.0))
        with pytest.raises(ObsError):
            ts.observe(0.0, "rtt", 1.0, buckets=(2.0, 6.0))

    def test_windows_lists_union_of_series(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.inc(35.0, "served")
        ts.observe(5.0, "rtt", 1.0, buckets=(1.0,))
        assert ts.windows() == [0, 3]


class TestDeltaMerge:
    def build(self, offsets):
        ts = TimeSeriesBuffer(window_s=10.0)
        for offset in offsets:
            ts.inc(offset, "served", (("tier", "access"),))
            ts.observe(offset, "rtt", offset % 7.0, buckets=(1.0, 5.0))
        return ts

    def test_merged_shards_equal_single_pass(self):
        serial = self.build(range(40))
        merged = TimeSeriesBuffer(window_s=10.0)
        # Interleaved shards arriving out of order.
        for shard in (range(1, 40, 3), range(2, 40, 3), range(0, 40, 3)):
            merged.merge_delta(self.build(shard).snapshot_delta())
        assert timeseries_diff(merged, serial) == []
        assert merged.to_json() == serial.to_json()

    def test_drain_empties_but_keeps_bucket_pins(self):
        ts = self.build(range(5))
        delta = ts.snapshot_delta(drain=True)
        assert ts.is_empty
        assert delta["counters"]
        # Pins survive the drain: drifted buckets still rejected.
        with pytest.raises(ObsError):
            ts.observe(0.0, "rtt", 1.0, buckets=(9.0,))

    def test_delta_round_trips_through_json(self):
        ts = self.build(range(10))
        wire = json.loads(json.dumps(ts.snapshot_delta()))
        merged = TimeSeriesBuffer(window_s=10.0)
        merged.merge_delta(wire)
        assert timeseries_diff(merged, ts) == []

    def test_window_width_drift_rejected(self):
        delta = TimeSeriesBuffer(window_s=30.0).snapshot_delta()
        with pytest.raises(ObsError):
            TimeSeriesBuffer(window_s=60.0).merge_delta(delta)

    def test_bucket_drift_rejected(self):
        left = TimeSeriesBuffer(window_s=10.0)
        left.observe(0.0, "rtt", 1.0, buckets=(1.0, 5.0))
        right = TimeSeriesBuffer(window_s=10.0)
        right.observe(0.0, "rtt", 1.0, buckets=(2.0, 6.0))
        with pytest.raises(ObsError):
            left.merge_delta(right.snapshot_delta())


class TestExport:
    def test_to_json_is_insertion_order_free(self):
        forward = TimeSeriesBuffer(window_s=10.0)
        backward = TimeSeriesBuffer(window_s=10.0)
        events = [(t, f"m{t % 3}") for t in range(30)]
        for t, name in events:
            forward.inc(float(t), name)
            forward.observe(float(t), "rtt", float(t), buckets=(10.0, 20.0))
        for t, name in reversed(events):
            backward.inc(float(t), name)
            backward.observe(float(t), "rtt", float(t), buckets=(10.0, 20.0))
        assert json.dumps(forward.to_json(), sort_keys=True) == json.dumps(
            backward.to_json(), sort_keys=True
        )

    def test_document_shape(self):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.inc(15.0, "served", value=2.0)
        ts.observe(15.0, "rtt", 3.0, buckets=(1.0, 5.0))
        doc = ts.to_json()
        assert doc["format_version"] == TS_FORMAT_VERSION
        assert doc["window_s"] == 10.0
        assert doc["windows"] == [1]
        assert doc["counters"] == [
            {"name": "served", "labels": {}, "points": [[1, 2.0]]}
        ]
        (hist,) = doc["histograms"]
        assert hist["bounds"] == [1.0, 5.0]
        assert hist["points"] == [
            {"window": 1, "bucket_counts": [0, 1, 0], "count": 1, "sum": 3.0}
        ]

    def test_write_and_read_round_trip(self, tmp_path):
        ts = TimeSeriesBuffer(window_s=10.0)
        ts.inc(0.0, "served")
        path = tmp_path / "obs-timeseries.json"
        ts.write_json(path)
        assert read_timeseries(path) == ts.to_json()

    def test_read_rejects_missing_and_garbage(self, tmp_path):
        with pytest.raises(ObsError):
            read_timeseries(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ObsError):
            read_timeseries(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"windows": [], "format_version": 999}))
        with pytest.raises(ObsError):
            read_timeseries(wrong)


class TestDiff:
    def test_equal_buffers_diff_empty(self):
        a = TimeSeriesBuffer(window_s=10.0)
        b = TimeSeriesBuffer(window_s=10.0)
        for ts in (a, b):
            ts.inc(0.0, "served")
            ts.observe(5.0, "rtt", 2.0, buckets=(1.0, 5.0))
        assert timeseries_diff(a, b) == []

    def test_differences_are_named(self):
        a = TimeSeriesBuffer(window_s=10.0)
        b = TimeSeriesBuffer(window_s=10.0)
        a.inc(0.0, "served")
        b.inc(0.0, "served", value=2.0)
        b.inc(0.0, "shed")
        problems = timeseries_diff(a, b)
        assert any("served" in p for p in problems)
        assert any("shed" in p for p in problems)


class TestRecorderIntegration:
    def test_recorder_routes_windowed_calls_and_flushes(self, tmp_path):
        from repro.obs import ObsRecorder

        recorder = ObsRecorder()
        recorder.window_inc(30.0, "repro_serve_total")
        recorder.window_observe(30.0, "repro_serve_rtt_ms", 12.0)
        path = tmp_path / "obs-timeseries.json"
        recorder.flush(timeseries_path=path)
        doc = read_timeseries(path)
        assert doc["windows"] == [0]
        assert doc["counters"][0]["name"] == "repro_serve_total"

    def test_noop_recorder_accepts_windowed_calls(self):
        from repro.obs import NOOP_RECORDER

        NOOP_RECORDER.window_inc(0.0, "anything")
        NOOP_RECORDER.window_observe(0.0, "anything", 1.0)

    def test_fleet_delta_carries_timeseries(self):
        from repro.obs import ObsRecorder, merge_delta, snapshot_delta

        worker = ObsRecorder()
        worker.window_inc(90.0, "repro_serve_total", value=4.0)
        parent = ObsRecorder()
        merge_delta(parent, snapshot_delta(worker))
        assert parent.timeseries.counter_value("repro_serve_total", 1) == 4.0
