"""Tests for the two-tier CDN hierarchy."""

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.cdn.hierarchy import CdnHierarchy
from repro.cdn.server import OriginServer
from repro.errors import ConfigurationError, ContentNotFoundError, DatasetError
from repro.geo.coordinates import GeoPoint
from repro.geo.datasets import cdn_site_by_name


@pytest.fixture
def hierarchy():
    catalog = build_catalog(np.random.default_rng(0), 40, kind_weights={"web": 1.0})
    origin = OriginServer(catalog=catalog, location=GeoPoint(39.0, -77.5))
    h = CdnHierarchy(origin=origin)
    for name in ("Frankfurt", "London", "Maputo", "Johannesburg"):
        h.add_edge(cdn_site_by_name(name))
    return h


class TestTopology:
    def test_edges_registered(self, hierarchy):
        assert hierarchy.edge_names() == [
            "Frankfurt",
            "Johannesburg",
            "London",
            "Maputo",
        ]

    def test_duplicate_edge_rejected(self, hierarchy):
        with pytest.raises(ConfigurationError):
            hierarchy.add_edge(cdn_site_by_name("Frankfurt"))

    def test_region_grouping(self, hierarchy):
        assert hierarchy.region_of(cdn_site_by_name("Frankfurt")) == "europe"
        assert hierarchy.region_of(cdn_site_by_name("Maputo")) == "africa"

    def test_invalid_capacities(self):
        catalog = build_catalog(np.random.default_rng(1), 5)
        origin = OriginServer(catalog=catalog, location=GeoPoint(0.0, 0.0))
        with pytest.raises(ConfigurationError):
            CdnHierarchy(origin=origin, edge_cache_bytes=0)


class TestServePath:
    def test_cold_request_hits_origin(self, hierarchy):
        result = hierarchy.serve("Frankfurt", "obj-000001")
        assert result.level == "origin"

    def test_second_request_same_edge_hits_edge(self, hierarchy):
        hierarchy.serve("Frankfurt", "obj-000001")
        result = hierarchy.serve("Frankfurt", "obj-000001")
        assert result.level == "edge"

    def test_sibling_edge_hits_parent(self, hierarchy):
        hierarchy.serve("Frankfurt", "obj-000001")
        result = hierarchy.serve("London", "obj-000001")
        assert result.level == "parent"  # same europe parent, different edge

    def test_cross_region_edge_misses_parent(self, hierarchy):
        # The PoP mis-mapping effect: content warm in Europe does not help
        # the Africa parent tier.
        hierarchy.serve("Frankfurt", "obj-000001")
        result = hierarchy.serve("Maputo", "obj-000001")
        assert result.level == "origin"

    def test_latency_ordering(self, hierarchy):
        origin_result = hierarchy.serve("Frankfurt", "obj-000002")
        parent_result = hierarchy.serve("London", "obj-000002")
        edge_result = hierarchy.serve("London", "obj-000002")
        assert (
            edge_result.latency_ms
            < parent_result.latency_ms
            < origin_result.latency_ms
        )

    def test_unknown_edge_rejected(self, hierarchy):
        with pytest.raises(DatasetError):
            hierarchy.serve("Atlantis", "obj-000001")

    def test_unknown_object_propagates(self, hierarchy):
        with pytest.raises(ContentNotFoundError):
            hierarchy.serve("Frankfurt", "ghost")


class TestWanOffload:
    def test_zero_before_traffic(self, hierarchy):
        assert hierarchy.wan_offload_ratio() == 0.0

    def test_offload_grows_with_locality(self, hierarchy):
        # Zipf-ish repeated requests to one edge: most served locally.
        ids = [f"obj-{i % 5:06d}" for i in range(50)]
        for object_id in ids:
            hierarchy.serve("Frankfurt", object_id)
        assert hierarchy.wan_offload_ratio() > 0.85

    def test_stats_sum(self, hierarchy):
        for i in range(10):
            hierarchy.serve("Maputo", f"obj-{i:06d}")
        assert sum(hierarchy.stats.values()) == 10
