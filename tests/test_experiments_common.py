"""Tests for the shared experiment infrastructure."""

import pytest

from repro.experiments import common


class TestShell1Caches:
    def test_constellation_cached(self):
        assert common.shell1_constellation() is common.shell1_constellation()

    def test_snapshot_cached_per_epoch(self):
        a = common.shell1_snapshot(0.0)
        b = common.shell1_snapshot(0.0)
        c = common.shell1_snapshot(60.0)
        # The expensive arrays are cached and shared per epoch ...
        assert a.core is b.core
        assert a.positions is b.positions
        assert c.core is not a.core

    def test_snapshot_copies_are_isolated(self):
        # ... but each call returns a defensive copy: mutations (ground
        # attachment) never leak into later experiments via the cache.
        from repro.geo.coordinates import GeoPoint

        a = common.shell1_snapshot(0.0)
        a.attach_ground_node("ut:cache-hazard", GeoPoint(10.0, 10.0))
        b = common.shell1_snapshot(0.0)
        assert "ut:cache-hazard" not in b.graph
        # Attaching the same name to the fresh copy must not raise.
        b.attach_ground_node("ut:cache-hazard", GeoPoint(10.0, 10.0))

    def test_snapshot_matches_constellation(self):
        snapshot = common.shell1_snapshot(0.0)
        assert len(snapshot.satellite_nodes()) == len(common.shell1_constellation())


class TestAimCache:
    def test_dataset_cached_per_args(self):
        a = common.aim_dataset(1, 2)
        b = common.aim_dataset(1, 2)
        c = common.aim_dataset(2, 2)
        assert a is b
        assert c is not a

    def test_dataset_has_both_isps(self):
        from repro.measurements.aim import STARLINK, TERRESTRIAL

        dataset = common.aim_dataset(3, 1)
        assert dataset.countries(TERRESTRIAL)
        assert dataset.countries(STARLINK)


class TestEpochs:
    def test_count_and_range(self):
        epochs = common.shell1_epochs(6, seed=1)
        period = common.shell1_constellation().config.period_s
        assert len(epochs) == 6
        assert all(0.0 <= e < period for e in epochs)

    def test_deterministic(self):
        assert common.shell1_epochs(4, seed=2) == common.shell1_epochs(4, seed=2)

    def test_seed_changes_epochs(self):
        assert common.shell1_epochs(4, seed=1) != common.shell1_epochs(4, seed=3)


class TestFigureArgValidation:
    def test_figure7_invalid_args(self):
        from repro.errors import ConfigurationError
        from repro.experiments.figure7 import spacecdn_rtt_samples

        with pytest.raises(ConfigurationError):
            spacecdn_rtt_samples(users_per_epoch=0)
        with pytest.raises(ConfigurationError):
            spacecdn_rtt_samples(num_epochs=0)

    def test_figure8_invalid_args(self):
        from repro.errors import ConfigurationError
        from repro.experiments import figure8

        with pytest.raises(ConfigurationError):
            figure8.run(users_per_epoch=0)

    def test_figure4_invalid_rounds(self):
        from repro.errors import ConfigurationError
        from repro.experiments import figure4

        with pytest.raises(ConfigurationError):
            figure4.run(rounds=0)

    def test_figure5_invalid_rounds(self):
        from repro.errors import ConfigurationError
        from repro.experiments import figure5

        with pytest.raises(ConfigurationError):
            figure5.run(rounds=0)
