"""Tests for analysis helpers."""

import math

import numpy as np
import pytest

from repro.analysis.stats import Cdf, delta_by_group, median_or_nan, summarize
from repro.analysis.tables import format_cdf_points, format_table
from repro.errors import ConfigurationError


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.minimum == 1.0
        assert summary.median == 3.0
        assert summary.maximum == 5.0
        assert summary.mean == 3.0

    def test_percentile_order(self):
        rng = np.random.default_rng(0)
        summary = summarize(rng.lognormal(3.0, 1.0, size=500))
        assert (
            summary.minimum
            <= summary.p25
            <= summary.median
            <= summary.p75
            <= summary.p95
            <= summary.maximum
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestMedianOrNan:
    def test_median(self):
        assert median_or_nan([1.0, 3.0, 2.0]) == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(median_or_nan([]))


class TestCdf:
    def test_at(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(10.0) == 1.0

    def test_quantile(self):
        cdf = Cdf.from_samples(list(range(101)))
        assert cdf.quantile(0.0) == 0.0
        assert cdf.quantile(0.5) == 50.0
        assert cdf.quantile(1.0) == 100.0

    def test_quantile_out_of_range(self):
        cdf = Cdf.from_samples([1.0])
        with pytest.raises(ConfigurationError):
            cdf.quantile(1.5)

    def test_points_monotone(self):
        cdf = Cdf.from_samples(np.random.default_rng(0).normal(size=200))
        points = cdf.points(20)
        values = [v for v, _ in points]
        probs = [q for _, q in points]
        assert values == sorted(values)
        assert probs == sorted(probs)

    def test_points_too_few_rejected(self):
        with pytest.raises(ConfigurationError):
            Cdf.from_samples([1.0]).points(1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Cdf.from_samples([])

    def test_len(self):
        assert len(Cdf.from_samples([1.0, 2.0])) == 2


class TestDeltaByGroup:
    def test_paper_arithmetic(self):
        starlink = {"MZ": [100.0, 160.0, 120.0], "ES": [33.0, 35.0]}
        terrestrial = {"MZ": [20.0, 22.0], "ES": [14.0, 15.0], "ZA": [30.0]}
        deltas = delta_by_group(starlink, terrestrial)
        assert set(deltas) == {"MZ", "ES"}  # ZA unmeasured on Starlink
        assert deltas["MZ"] == pytest.approx(120.0 - 21.0)
        assert deltas["ES"] == pytest.approx(34.0 - 14.5)

    def test_empty_groups_skipped(self):
        assert delta_by_group({"A": []}, {"A": [1.0]}) == {}


class TestFormatTable:
    def test_renders_aligned(self):
        table = format_table(("name", "value"), [("a", 1.5), ("bb", 22.25)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "22.2" in lines[3]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(("one",), [("a", "b")])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table((), [])

    def test_empty_rows_ok(self):
        table = format_table(("a", "b"), [])
        assert "a" in table


class TestFormatCdfPoints:
    def test_renders_series(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0])
        text = format_cdf_points({"starlink": cdf.points(5)})
        assert "starlink" in text
        assert "q=0.50" in text

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            format_cdf_points({})
