"""Tests for simulation utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.clock import SimulationClock
from repro.simulation.sampler import EpochSampler, seeded_rng, user_sample_points


class TestClock:
    def test_advance(self):
        clock = SimulationClock()
        assert clock.advance(10.0) == 10.0
        assert clock.advance(5.0) == 15.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimulationClock()
        clock.advance_to(100.0)
        assert clock.now_s == 100.0

    def test_advance_to_past_rejected(self):
        clock = SimulationClock(now_s=50.0)
        with pytest.raises(ConfigurationError):
            clock.advance_to(49.0)

    def test_ticks(self):
        clock = SimulationClock(now_s=10.0)
        assert clock.ticks(30.0, 10.0) == [10.0, 20.0, 30.0, 40.0]
        assert clock.now_s == 10.0  # schedule helper does not advance

    def test_ticks_invalid(self):
        with pytest.raises(ConfigurationError):
            SimulationClock().ticks(0.0, 1.0)


class TestSeededRng:
    def test_reproducible(self):
        a = seeded_rng(7, 1).normal(size=5)
        b = seeded_rng(7, 1).normal(size=5)
        assert np.allclose(a, b)

    def test_streams_independent(self):
        a = seeded_rng(7, 1).normal(size=5)
        b = seeded_rng(7, 2).normal(size=5)
        assert not np.allclose(a, b)


class TestEpochSampler:
    def test_count(self):
        sampler = EpochSampler(period_s=5700.0, num_epochs=5, seed=1)
        assert len(sampler.epochs()) == 5

    def test_epochs_within_period(self):
        sampler = EpochSampler(period_s=5700.0, num_epochs=8, seed=1)
        assert all(0.0 <= e < 5700.0 for e in sampler.epochs())

    def test_stratified_one_per_stratum(self):
        sampler = EpochSampler(period_s=100.0, num_epochs=4, seed=2)
        epochs = sampler.epochs()
        for i, epoch in enumerate(epochs):
            assert i * 25.0 <= epoch < (i + 1) * 25.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            EpochSampler(period_s=0.0, num_epochs=3)
        with pytest.raises(ConfigurationError):
            EpochSampler(period_s=100.0, num_epochs=0)


class TestUserSamplePoints:
    def test_count_and_bounds(self):
        rng = np.random.default_rng(0)
        points = user_sample_points(rng, 200, max_abs_latitude_deg=53.0)
        assert len(points) == 200
        assert all(abs(p.lat_deg) <= 53.0 for p in points)
        assert all(-180.0 <= p.lon_deg <= 180.0 for p in points)

    def test_area_uniformity_not_pole_biased(self):
        # Uniform-in-sin(lat): roughly half the samples fall within the
        # band |lat| < 23.6 deg (sin 53 deg ~ 0.8, half-mass at sin ~ 0.4).
        rng = np.random.default_rng(1)
        points = user_sample_points(rng, 4000, max_abs_latitude_deg=53.0)
        inner = sum(1 for p in points if abs(p.lat_deg) < 23.6)
        assert 0.42 < inner / len(points) < 0.58

    def test_invalid_args(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ConfigurationError):
            user_sample_points(rng, 0)
        with pytest.raises(ConfigurationError):
            user_sample_points(rng, 5, max_abs_latitude_deg=0.0)
