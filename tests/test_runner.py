"""Unit tests for the crash-safe runner building blocks.

Covers :mod:`repro.atomicio`, the checkpoint store (round-trip, corruption
quarantine, manifest compatibility), deadlines/watchdog, the interrupt
guard, and the retry/exhaustion semantics of the engine — all on cheap toy
plans so the suite stays fast.
"""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.atomicio import atomic_open, atomic_write_text
from repro.errors import (
    CheckpointError,
    DeadlineExceededError,
    ManifestMismatchError,
    RunInterruptedError,
    RunnerError,
    ShardExhaustedError,
    ShardTimeoutError,
)
from repro.faults.retry import RetryPolicy
from repro.runner import (
    CheckpointStore,
    Deadline,
    ExperimentPlan,
    ExperimentRunner,
    InterruptGuard,
    RunnerOptions,
    build_manifest,
    shard_watchdog,
)
from repro.runner.interrupt import BACKOFF_SLICE_S
from repro.runner.store import canonical_json, check_resume_compatible, config_hash


def toy_plan(shard_ids=("a", "b", "c"), run_shard=None):
    """A minimal plan: each shard yields its id's length."""
    if run_shard is None:
        run_shard = lambda sid: {"value": len(sid)}  # noqa: E731
    return ExperimentPlan(
        experiment="toy",
        config={"experiment": "toy", "seed": 1},
        shard_ids=tuple(shard_ids),
        run_shard=run_shard,
        merge=lambda payloads: sum(p["value"] for p in payloads.values()),
        format=lambda total: f"total={total}",
    )


def fast_options(**kwargs):
    """RunnerOptions whose retry backoff never really sleeps."""
    kwargs.setdefault("sleep", lambda _s: None)
    return RunnerOptions(**kwargs)


class TestAtomicIo:
    def test_write_text_round_trip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"

    def test_overwrite_replaces_whole_file(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "a much longer first version\n")
        atomic_write_text(path, "v2\n")
        assert path.read_text() == "v2\n"

    def test_exception_leaves_destination_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "original")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as handle:
                handle.write("partial garbage")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "original"

    def test_exception_leaves_no_tmp_file_behind(self, tmp_path):
        path = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_open(path) as handle:
                handle.write("doomed")
                raise RuntimeError("crash")
        assert list(tmp_path.iterdir()) == []

    def test_no_tmp_file_survives_success(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_config_hash_is_stable(self):
        assert config_hash({"x": 1}) == config_hash({"x": 1})
        assert config_hash({"x": 1}) != config_hash({"x": 2})

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1 / 3, 123456.789012345, float("nan")]
        text = json.dumps(values)
        loaded = json.loads(text)
        assert loaded[0] == values[0]
        assert loaded[1] == values[1]
        assert loaded[2] == values[2]
        assert loaded[3] != loaded[3]  # NaN survives the trip


class TestCheckpointStore:
    def test_shard_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.write_shard("epoch-0001", {"samples": [1.5, 2.5]})
        assert store.load_shard("epoch-0001") == {"samples": [1.5, 2.5]}

    def test_missing_shard_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        assert store.load_shard("absent") is None

    def test_unsafe_shard_id_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        with pytest.raises(CheckpointError):
            store.write_shard("../evil", {})

    def test_truncated_checkpoint_is_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.write_shard("s1", {"v": 1})
        path = store.shard_dir / "s1.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load_shard("s1") is None
        assert not path.exists()
        assert (store.quarantine_dir / "s1.json.0").exists()

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.write_shard("s1", {"v": 1})
        path = store.shard_dir / "s1.json"
        record = json.loads(path.read_text())
        record["payload"]["v"] = 999  # tampered, checksum now stale
        path.write_text(json.dumps(record))
        assert store.load_shard("s1") is None
        assert (store.quarantine_dir / "s1.json.0").exists()

    def test_torn_write_quarantined_at_every_cut_point(self, tmp_path):
        """A shard file cut off mid-byte anywhere — inside the JSON framing,
        the checksum hex, or the payload — is quarantine-and-recompute, never
        a crash and never a silently-accepted partial payload."""
        store = CheckpointStore(tmp_path / "run")
        store.write_shard("s1", {"samples": [1.5, 2.5], "note": "complete"})
        path = store.shard_dir / "s1.json"
        whole = path.read_bytes()
        for frac in (0.1, 0.35, 0.6, 0.9):
            cut = max(1, int(len(whole) * frac))
            path.write_bytes(whole[:cut])
            assert store.load_shard("s1") is None, f"cut at {cut}/{len(whole)}"
            assert not path.exists()
        quarantined = sorted(p.name for p in store.quarantine_dir.iterdir())
        assert quarantined == [f"s1.json.{i}" for i in range(4)]
        # A rewrite after the torn reads round-trips normally again.
        store.write_shard("s1", {"v": 2})
        assert store.load_shard("s1") == {"v": 2}

    def test_valid_json_with_wrong_schema_is_quarantined(self, tmp_path):
        """Parseable JSON that is not a checkpoint record (a concurrent
        writer's leftovers, a hand-edited file) is rejected like corruption."""
        store = CheckpointStore(tmp_path / "run")
        for i, text in enumerate(
            ['[1, 2, 3]', '{"payload": {"v": 1}}', '{"checksum": "abc"}', '"str"']
        ):
            (store.shard_dir / "s1.json").write_text(text)
            assert store.load_shard("s1") is None, f"schema case {i}: {text}"
        assert len(list(store.quarantine_dir.iterdir())) == 4

    def test_repeated_quarantine_numbers_files(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        for _ in range(2):
            (store.shard_dir / "s1.json").write_text("{broken")
            assert store.load_shard("s1") is None
        names = sorted(p.name for p in store.quarantine_dir.iterdir())
        assert names == ["s1.json.0", "s1.json.1"]

    def test_corrupt_manifest_is_a_hard_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.manifest_path.write_text("{broken")
        with pytest.raises(RunnerError):
            store.load_manifest()


class TestManifest:
    def test_build_manifest_pins_plan(self):
        manifest = build_manifest(toy_plan())
        assert manifest["experiment"] == "toy"
        assert manifest["shard_ids"] == ["a", "b", "c"]
        assert manifest["config_hash"] == config_hash({"experiment": "toy", "seed": 1})

    def test_identical_manifests_are_compatible(self):
        manifest = build_manifest(toy_plan())
        check_resume_compatible(manifest, build_manifest(toy_plan()))

    def test_config_change_is_incompatible(self):
        plan_b = ExperimentPlan(
            experiment="toy",
            config={"experiment": "toy", "seed": 2},
            shard_ids=("a",),
            run_shard=lambda sid: {},
            merge=lambda p: 0,
            format=str,
        )
        with pytest.raises(ManifestMismatchError):
            check_resume_compatible(build_manifest(toy_plan()), build_manifest(plan_b))


class TestPlanValidation:
    def test_empty_shard_ids_rejected(self):
        with pytest.raises(RunnerError):
            toy_plan(shard_ids=())

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(RunnerError):
            toy_plan(shard_ids=("a", "a"))


class TestDeadline:
    def test_unbounded_never_raises(self):
        deadline = Deadline(None)
        assert deadline.remaining_s() is None
        deadline.check()

    def test_fresh_budget_passes(self):
        Deadline(60.0).check()

    def test_spent_budget_raises(self):
        deadline = Deadline(60.0)
        object.__setattr__(deadline, "_started", deadline._started - 61.0)
        with pytest.raises(DeadlineExceededError):
            deadline.check()

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(RunnerError):
            Deadline(0.0)


class TestShardWatchdog:
    def test_no_budget_is_a_no_op(self):
        with shard_watchdog("s", None, Deadline(None)):
            pass

    def test_hung_shard_raises_timeout(self):
        import time

        with pytest.raises(ShardTimeoutError):
            with shard_watchdog("s", 0.05, Deadline(None)):
                time.sleep(5.0)

    def test_run_deadline_wins_when_sooner(self):
        import time

        deadline = Deadline(120.0)
        object.__setattr__(deadline, "_started", deadline._started - 119.99)
        with pytest.raises(DeadlineExceededError):
            with shard_watchdog("s", 30.0, deadline):
                time.sleep(5.0)

    def test_alarm_cleared_after_fast_shard(self):
        import time

        with shard_watchdog("s", 0.2, Deadline(None)):
            pass
        time.sleep(0.3)  # would deliver a stray SIGALRM if not cancelled


class TestShardWatchdogFallback:
    """Off the main thread SIGALRM cannot fire; the watchdog must fall back
    to checking budgets when the shard completes — and say so, once."""

    @pytest.fixture(autouse=True)
    def _reset_warning(self):
        import repro.runner.deadline as deadline_mod

        before = deadline_mod._fallback_warned
        deadline_mod._fallback_warned = False
        yield
        deadline_mod._fallback_warned = before

    @staticmethod
    def _in_thread(fn):
        """Run ``fn`` on a non-main thread, returning its exception (or None)."""
        outcome: list[BaseException | None] = []

        def target():
            try:
                fn()
                outcome.append(None)
            except BaseException as exc:  # noqa: BLE001 - relayed to assert
                outcome.append(exc)

        worker = threading.Thread(target=target)
        worker.start()
        worker.join()
        return outcome[0]

    def test_overrun_detected_at_completion(self):
        import time

        def overrun():
            with shard_watchdog("s", 0.01, Deadline(None)):
                time.sleep(0.05)

        exc = self._in_thread(overrun)
        assert isinstance(exc, ShardTimeoutError)
        assert "detected at completion" in str(exc)

    def test_within_budget_passes(self):
        def fine():
            with shard_watchdog("s", 30.0, Deadline(None)):
                pass

        assert self._in_thread(fine) is None

    def test_run_deadline_checked_at_completion(self):
        deadline = Deadline(120.0)
        object.__setattr__(deadline, "_started", deadline._started - 121.0)

        def over_deadline():
            with shard_watchdog("s", None, deadline):
                pass

        exc = self._in_thread(over_deadline)
        assert isinstance(exc, DeadlineExceededError)

    def test_warns_once_per_process(self, capsys):
        def fine():
            with shard_watchdog("s", 30.0, Deadline(None)):
                pass

        self._in_thread(fine)
        self._in_thread(fine)
        err = capsys.readouterr().err
        assert err.count("SIGALRM unavailable") == 1

    def test_no_budget_stays_silent(self, capsys):
        def unbudgeted():
            with shard_watchdog("s", None, Deadline(None)):
                pass

        assert self._in_thread(unbudgeted) is None
        assert "SIGALRM" not in capsys.readouterr().err


class TestInterruptGuard:
    def test_clean_run_restores_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        with InterruptGuard() as guard:
            assert not guard.interrupted
            guard.check()
        assert signal.getsignal(signal.SIGTERM) is before

    def test_signal_sets_flag_and_check_raises(self):
        with InterruptGuard() as guard:
            os.kill(os.getpid(), signal.SIGTERM)
            assert guard.interrupted
            with pytest.raises(RunInterruptedError) as excinfo:
                guard.check()
        assert "resume with --resume" in str(excinfo.value)


class TestEngine:
    def test_full_run_writes_everything(self, tmp_path):
        run_dir = tmp_path / "run"
        text = ExperimentRunner(toy_plan(), run_dir, fast_options()).execute()
        assert text == "total=3"
        assert (run_dir / "result.txt").read_text() == "total=3"
        assert (run_dir / "manifest.json").exists()
        assert sorted(p.stem for p in (run_dir / "shards").iterdir()) == [
            "a", "b", "c"
        ]

    def test_existing_dir_without_resume_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        ExperimentRunner(toy_plan(), run_dir, fast_options()).execute()
        with pytest.raises(RunnerError, match="pass --resume"):
            ExperimentRunner(toy_plan(), run_dir, fast_options()).execute()

    def test_resume_skips_completed_shards(self, tmp_path):
        run_dir = tmp_path / "run"
        calls: list[str] = []

        def counting(sid):
            calls.append(sid)
            return {"value": len(sid)}

        with pytest.raises(RunInterruptedError):
            ExperimentRunner(
                toy_plan(run_shard=counting), run_dir, fast_options(max_shards=2)
            ).execute()
        assert calls == ["a", "b"]
        text = ExperimentRunner(
            toy_plan(run_shard=counting), run_dir, fast_options(resume=True)
        ).execute()
        assert calls == ["a", "b", "c"]
        assert text == "total=3"

    def test_resume_with_different_config_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        ExperimentRunner(toy_plan(), run_dir, fast_options()).execute()
        other = ExperimentPlan(
            experiment="toy",
            config={"experiment": "toy", "seed": 99},
            shard_ids=("a", "b", "c"),
            run_shard=lambda sid: {"value": 1},
            merge=lambda p: 0,
            format=str,
        )
        with pytest.raises(ManifestMismatchError):
            ExperimentRunner(other, run_dir, fast_options(resume=True)).execute()

    def test_flaky_shard_retried_to_success(self, tmp_path):
        failures = {"b": 2}

        def flaky(sid):
            if failures.get(sid, 0) > 0:
                failures[sid] -= 1
                raise ValueError("transient wobble")
            return {"value": len(sid)}

        text = ExperimentRunner(
            toy_plan(run_shard=flaky), tmp_path / "run", fast_options()
        ).execute()
        assert text == "total=3"
        assert failures["b"] == 0

    def test_persistent_failure_exhausts_retries(self, tmp_path):
        attempts: list[int] = []

        def broken(sid):
            if sid == "b":
                attempts.append(1)
                raise ValueError("hard failure")
            return {"value": len(sid)}

        runner = ExperimentRunner(
            toy_plan(run_shard=broken),
            tmp_path / "run",
            fast_options(retry_policy=RetryPolicy(max_attempts=3)),
        )
        with pytest.raises(ShardExhaustedError, match="hard failure"):
            runner.execute()
        assert len(attempts) == 3
        # Shard 'a' completed before the failure and is checkpointed.
        store = CheckpointStore(tmp_path / "run")
        assert store.load_shard("a") == {"value": 1}
        assert store.load_shard("b") is None

    def test_backoff_sleeps_between_attempts(self, tmp_path):
        sleeps: list[float] = []

        def broken(sid):
            raise ValueError("always")

        runner = ExperimentRunner(
            toy_plan(shard_ids=("a",), run_shard=broken),
            tmp_path / "run",
            RunnerOptions(
                retry_policy=RetryPolicy(max_attempts=3, backoff_base_ms=100.0),
                sleep=sleeps.append,
            ),
        )
        with pytest.raises(ShardExhaustedError):
            runner.execute()
        # 100ms then 200ms exponential backoff, sliced so a signal during
        # the wait is noticed within one BACKOFF_SLICE_S-sized step.
        assert sum(sleeps) == pytest.approx(0.3)
        assert all(step <= BACKOFF_SLICE_S + 1e-9 for step in sleeps)

    def test_signal_during_backoff_exits_promptly(self, tmp_path):
        """A first SIGTERM that lands mid-backoff ends the wait after the
        current slice instead of sleeping out the rest of the budget."""
        sleeps: list[float] = []

        def signal_during_sleep(seconds):
            sleeps.append(seconds)
            os.kill(os.getpid(), signal.SIGTERM)

        def broken(sid):
            raise ValueError("always")

        runner = ExperimentRunner(
            toy_plan(shard_ids=("a",), run_shard=broken),
            tmp_path / "run",
            RunnerOptions(
                retry_policy=RetryPolicy(max_attempts=5, backoff_base_ms=60_000.0),
                sleep=signal_during_sleep,
            ),
        )
        with pytest.raises(RunInterruptedError, match="SIGTERM"):
            runner.execute()
        assert len(sleeps) == 1  # one slice, not the whole 60s backoff

    def test_sigterm_mid_run_checkpoints_completed_shards(self, tmp_path):
        run_dir = tmp_path / "run"

        def shard_then_signal(sid):
            if sid == "b":
                os.kill(os.getpid(), signal.SIGTERM)
            return {"value": len(sid)}

        with pytest.raises(RunInterruptedError, match="SIGTERM"):
            ExperimentRunner(
                toy_plan(run_shard=shard_then_signal), run_dir, fast_options()
            ).execute()
        store = CheckpointStore(run_dir)
        # The in-flight shard was finished and flushed before exiting.
        assert store.load_shard("a") == {"value": 1}
        assert store.load_shard("b") == {"value": 1}
        assert store.load_shard("c") is None

    def test_corrupt_checkpoint_recomputed_on_resume(self, tmp_path):
        run_dir = tmp_path / "run"
        ExperimentRunner(toy_plan(), run_dir, fast_options()).execute()
        (run_dir / "shards" / "b.json").write_text("{truncated")
        text = ExperimentRunner(
            toy_plan(), run_dir, fast_options(resume=True)
        ).execute()
        assert text == "total=3"
        assert (run_dir / "quarantine" / "b.json.0").exists()
        assert CheckpointStore(run_dir).load_shard("b") == {"value": 1}

    def test_torn_shard_write_recomputed_on_resume(self, tmp_path):
        """A shard checkpoint cut off mid-record (torn write under a crash
        without atomicio) costs one recompute on resume, not the run."""
        run_dir = tmp_path / "run"
        ExperimentRunner(toy_plan(), run_dir, fast_options()).execute()
        path = run_dir / "shards" / "b.json"
        path.write_bytes(path.read_bytes()[:17])
        text = ExperimentRunner(
            toy_plan(), run_dir, fast_options(resume=True)
        ).execute()
        assert text == "total=3"
        assert (run_dir / "quarantine" / "b.json.0").exists()
        assert CheckpointStore(run_dir).load_shard("b") == {"value": 1}

    def test_options_validation(self):
        with pytest.raises(RunnerError):
            RunnerOptions(deadline_s=-1.0)
        with pytest.raises(RunnerError):
            RunnerOptions(shard_deadline_s=0.0)
        with pytest.raises(RunnerError):
            RunnerOptions(max_shards=0)
        with pytest.raises(RunnerError):
            RunnerOptions(jobs=0)
        with pytest.raises(RunnerError):
            RunnerOptions(mp_start_method="threads")
