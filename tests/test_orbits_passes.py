"""Tests for pass prediction."""

import pytest

from repro.errors import VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.passes import next_pass, predict_passes


@pytest.fixture(scope="module")
def equator_passes(shell1_constellation):
    point = GeoPoint(0.0, 0.0, 0.0)
    return predict_passes(
        shell1_constellation, point, start_s=0.0, duration_s=1800.0, step_s=15.0
    )


class TestPredictPasses:
    def test_passes_exist(self, equator_passes):
        assert len(equator_passes) > 0

    def test_sorted_by_start(self, equator_passes):
        starts = [p.start_s for p in equator_passes]
        assert starts == sorted(starts)

    def test_durations_match_paper_window(self, equator_passes):
        # The paper: a satellite leaves line-of-sight within 5-10 minutes.
        # Count only passes fully inside the scan window (not clipped).
        interior = [
            p for p in equator_passes if p.start_s > 0.0 and p.end_s < 1800.0 - 15.0
        ]
        assert interior, "expected at least one unclipped pass"
        for p in interior:
            assert p.duration_s <= 11 * 60

    def test_max_elevation_at_least_threshold(self, equator_passes):
        assert all(p.max_elevation_deg >= 25.0 for p in equator_passes)

    def test_contains(self, equator_passes):
        window = equator_passes[0]
        mid = (window.start_s + window.end_s) / 2.0
        assert window.contains(mid)
        assert not window.contains(window.end_s + 1.0)

    def test_invalid_duration_raises(self, shell1_constellation):
        with pytest.raises(VisibilityError):
            predict_passes(shell1_constellation, GeoPoint(0.0, 0.0), 0.0, -5.0)

    def test_no_passes_outside_coverage(self, shell1_constellation):
        svalbard = GeoPoint(78.2, 15.6, 0.0)
        passes = predict_passes(shell1_constellation, svalbard, 0.0, 600.0, step_s=60.0)
        assert passes == []


class TestNextPass:
    def test_finds_pass_of_named_satellite(self, shell1_constellation, equator_passes):
        satellite = equator_passes[0].satellite
        window = next_pass(
            shell1_constellation,
            GeoPoint(0.0, 0.0, 0.0),
            satellite,
            after_s=0.0,
            horizon_s=1800.0,
            step_s=15.0,
        )
        assert window.satellite == satellite
        assert window.end_s > 0.0

    def test_raises_when_no_pass_in_horizon(self, shell1_constellation):
        # Pick the satellite currently farthest from the point: it cannot
        # complete a pass within a 30-second horizon.
        from repro.orbits.visibility import slant_ranges_km

        point = GeoPoint(0.0, 0.0, 0.0)
        farthest = int(slant_ranges_km(shell1_constellation, point, 0.0).argmax())
        with pytest.raises(VisibilityError):
            next_pass(
                shell1_constellation,
                point,
                satellite=farthest,
                after_s=0.0,
                horizon_s=30.0,
                step_s=10.0,
            )
