"""End-to-end tests for the supervised parallel shard executor.

The self-chaos harness (:mod:`repro.runner.selfchaos`) injects every
failure shape a real worker fleet exhibits — ordinary exceptions, hard
crashes, SIGKILL, hangs, and garbage payloads — on scheduled attempts, and
each test asserts the supervisor's contract: retried runs end byte-identical
to a clean serial run, repeat offenders are quarantined with evidence while
the rest of the run completes, signals drain in-flight work, and ``--jobs``
never enters the manifest (so any run resumes at any width).

The test plans are registered in the process-global registry at import
time; under the default ``fork`` start method workers inherit them.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.errors import (
    DeadlineExceededError,
    RunInterruptedError,
    RunnerError,
    ShardQuarantinedError,
)
from repro.faults.retry import RetryPolicy
from repro.runner import (
    CheckpointStore,
    ExperimentPlan,
    ExperimentRunner,
    RunnerOptions,
    plan_from_config,
    register_plan_builder,
    selfchaos,
)


def build_ptoy(seed=1, width=6):
    """A cheap deterministic plan the registry can rebuild in workers."""
    ids = tuple(f"s{i:02d}" for i in range(width))
    return ExperimentPlan(
        experiment="ptoy",
        config={"experiment": "ptoy", "seed": seed, "width": width},
        shard_ids=ids,
        run_shard=lambda sid: {"value": int(sid[1:]) * seed},
        merge=lambda payloads: sum(p["value"] for p in payloads.values()),
        format=lambda total: f"total={total}\n",
    )


def build_sigtoy(seed=5, width=4, signal_shard="s00", linger_s=0.3):
    """Like ptoy, but one shard SIGTERMs the supervisor mid-shard and then
    finishes normally — the drain-on-first-signal scenario."""
    base = build_ptoy(seed=seed, width=width)

    def run_shard(sid):
        if sid == signal_shard:
            os.kill(os.getppid(), signal.SIGTERM)
            time.sleep(linger_s)
        return base.run_shard(sid)

    return ExperimentPlan(
        experiment="sigtoy",
        config={
            "experiment": "sigtoy",
            "seed": seed,
            "width": width,
            "signal_shard": signal_shard,
            "linger_s": linger_s,
        },
        shard_ids=base.shard_ids,
        run_shard=run_shard,
        merge=base.merge,
        format=base.format,
    )


def build_obstoy(seed=1, width=6):
    """ptoy plus deterministic per-shard instrumentation: every metric kind
    the fleet-obs merge must aggregate (counters, histogram, gauge, span,
    profile timer), recorded identically whichever process runs the shard."""
    base = build_ptoy(seed, width)

    def run_shard(sid):
        from repro.obs.recorder import get_recorder

        rec = get_recorder()
        index = int(sid[1:])
        rec.inc("repro_obstoy_shards_total")
        rec.inc("repro_obstoy_value_total", value=float(index * seed))
        rec.observe("repro_obstoy_index", float(index), buckets=(2.0, 4.0))
        rec.set_gauge("repro_obstoy_last_index", float(index))
        # Windowed series keyed by deterministic simulated time: 45 s
        # apart, so neighbouring shards share 60 s windows and the merge
        # must re-aggregate cells, not just concatenate them.
        t_s = float(index) * 45.0
        rec.window_inc(
            t_s, "repro_obstoy_windowed_total", value=float(index * seed)
        )
        rec.window_observe(
            t_s, "repro_obstoy_windowed_ms", float(index), buckets=(2.0, 4.0)
        )
        with rec.timer("obstoy.shard"):
            pass
        rec.record_span("obstoy_shard", shard=sid)
        return base.run_shard(sid)

    return ExperimentPlan(
        experiment="obstoy",
        config={"experiment": "obstoy", "seed": seed, "width": width},
        shard_ids=base.shard_ids,
        run_shard=run_shard,
        merge=base.merge,
        format=base.format,
    )


register_plan_builder("ptoy", lambda: build_ptoy)
register_plan_builder("sigtoy", lambda: build_sigtoy)
register_plan_builder("obstoy", lambda: build_obstoy)

PTOY_CONFIG = {"experiment": "ptoy", "seed": 3, "width": 6}
OBSTOY_CONFIG = {"experiment": "obstoy", "seed": 3, "width": 6}


def fast_policy(max_attempts=3):
    return RetryPolicy(
        max_attempts=max_attempts, backoff_base_ms=10.0, backoff_cap_ms=50.0
    )


def run_output(run_dir):
    return (run_dir / "result.txt").read_bytes()


def shard_files(run_dir):
    return {
        path.name: path.read_bytes() for path in (run_dir / "shards").iterdir()
    }


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """One clean jobs=1 ptoy run every parallel run must byte-match."""
    run_dir = tmp_path_factory.mktemp("reference") / "run"
    text = ExperimentRunner(build_ptoy(3, 6), run_dir).execute()
    return text, run_output(run_dir), shard_files(run_dir)


class TestParallelMatchesSerial:
    def test_result_and_checkpoints_byte_identical(
        self, tmp_path, serial_reference
    ):
        text, result_bytes, shards = serial_reference
        run_dir = tmp_path / "run"
        out = ExperimentRunner(
            build_ptoy(3, 6), run_dir, RunnerOptions(jobs=3)
        ).execute()
        assert out == text
        assert run_output(run_dir) == result_bytes
        assert shard_files(run_dir) == shards

    def test_more_workers_than_shards(self, tmp_path, serial_reference):
        text, _, _ = serial_reference
        out = ExperimentRunner(
            build_ptoy(3, 6), tmp_path / "run", RunnerOptions(jobs=8)
        ).execute()
        assert out == text

    def test_unregistered_plan_refused_before_spawning(self, tmp_path):
        plan = ExperimentPlan(
            experiment="not-registered-anywhere",
            config={"experiment": "not-registered-anywhere"},
            shard_ids=("a",),
            run_shard=lambda sid: {"v": 1},
            merge=lambda p: 0,
            format=str,
        )
        with pytest.raises(RunnerError, match="no plan builder"):
            ExperimentRunner(
                plan, tmp_path / "run", RunnerOptions(jobs=2)
            ).execute()


class TestSelfChaos:
    """Each injected failure mode is survived: detected, retried on a fresh
    worker, and the final output is byte-identical to the clean run."""

    @pytest.mark.parametrize("mode", ["raise", "crash", "kill", "garbage"])
    def test_single_failure_retried_to_identical_output(
        self, tmp_path, serial_reference, mode
    ):
        text, result_bytes, shards = serial_reference
        plan = selfchaos.build_plan(PTOY_CONFIG, {"s02": {1: mode}})
        run_dir = tmp_path / "run"
        out = ExperimentRunner(
            run_dir=run_dir,
            plan=plan,
            options=RunnerOptions(jobs=3, retry_policy=fast_policy()),
        ).execute()
        assert out == text
        assert run_output(run_dir) == result_bytes
        assert shard_files(run_dir) == shards

    def test_hung_shard_killed_by_watchdog_and_retried(
        self, tmp_path, serial_reference
    ):
        text, result_bytes, _ = serial_reference
        plan = selfchaos.build_plan(PTOY_CONFIG, {"s01": {1: "hang"}}, hang_s=60.0)
        run_dir = tmp_path / "run"
        started = time.monotonic()
        out = ExperimentRunner(
            run_dir=run_dir,
            plan=plan,
            options=RunnerOptions(
                jobs=2, shard_deadline_s=0.75, retry_policy=fast_policy()
            ),
        ).execute()
        assert out == text
        assert run_output(run_dir) == result_bytes
        # The watchdog acted on its deadline, not on the 60s sleep.
        assert time.monotonic() - started < 30.0

    def test_failures_on_different_shards_all_recovered(
        self, tmp_path, serial_reference
    ):
        text, _, _ = serial_reference
        plan = selfchaos.build_plan(
            PTOY_CONFIG,
            {
                "s01": {1: "crash"},
                "s02": {1: "kill"},
                "s03": {1: "garbage"},
                "s04": {1: "raise", 2: "raise"},  # two bad attempts, third ok
            },
        )
        out = ExperimentRunner(
            run_dir=tmp_path / "run",
            plan=plan,
            options=RunnerOptions(jobs=3, retry_policy=fast_policy()),
        ).execute()
        assert out == text


class TestQuarantine:
    def _always_crashing_plan(self):
        return selfchaos.build_plan(
            PTOY_CONFIG, {"s01": {1: "crash", 2: "crash", 3: "crash"}}
        )

    def test_repeat_offender_quarantined_rest_completes(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ShardQuarantinedError, match="s01"):
            ExperimentRunner(
                run_dir=run_dir,
                plan=self._always_crashing_plan(),
                options=RunnerOptions(jobs=3, retry_policy=fast_policy()),
            ).execute()
        store = CheckpointStore(run_dir)
        # Every healthy shard finished and was checkpointed...
        for sid in ("s00", "s02", "s03", "s04", "s05"):
            assert store.load_shard(sid) is not None, sid
        # ...the offender was not, and no result was merged from a hole.
        assert store.load_shard("s01") is None
        assert not (run_dir / "result.txt").exists()

    def test_quarantine_record_holds_the_evidence(self, tmp_path):
        run_dir = tmp_path / "run"
        with pytest.raises(ShardQuarantinedError):
            ExperimentRunner(
                run_dir=run_dir,
                plan=self._always_crashing_plan(),
                options=RunnerOptions(jobs=2, retry_policy=fast_policy()),
            ).execute()
        record = json.loads((run_dir / "quarantine.json").read_text())
        assert record["experiment"] == "selfchaos"
        assert record["max_attempts"] == 3
        entry = record["shards"]["s01"]
        assert entry["attempts"] == 3
        assert [f["kind"] for f in entry["failures"]] == ["crash"] * 3
        assert all(
            f"exit code {selfchaos.CRASH_EXIT_CODE}" in f["detail"]
            for f in entry["failures"]
        )

    def test_resume_past_fixed_cause_clears_the_record(
        self, tmp_path, serial_reference
    ):
        text, result_bytes, _ = serial_reference
        run_dir = tmp_path / "run"
        with pytest.raises(ShardQuarantinedError):
            ExperimentRunner(
                run_dir=run_dir,
                plan=self._always_crashing_plan(),
                options=RunnerOptions(jobs=2, retry_policy=fast_policy()),
            ).execute()
        assert (run_dir / "quarantine.json").exists()
        # Same plan, one more attempt in the budget: attempt 4 has no
        # scheduled failure, so the resume completes and the verdict clears.
        out = ExperimentRunner(
            run_dir=run_dir,
            plan=self._always_crashing_plan(),
            options=RunnerOptions(
                jobs=2, resume=True, retry_policy=fast_policy(max_attempts=4)
            ),
        ).execute()
        assert out == text
        assert run_output(run_dir) == result_bytes
        assert not (run_dir / "quarantine.json").exists()


class TestSignalsAndDeadlines:
    def test_first_signal_drains_inflight_then_stops(self, tmp_path):
        """A SIGTERM mid-run lets the in-flight shard finish and flush."""
        run_dir = tmp_path / "run"
        with pytest.raises(RunInterruptedError, match="SIGTERM"):
            ExperimentRunner(
                run_dir=run_dir,
                plan=build_sigtoy(seed=5, width=4, linger_s=0.3),
                options=RunnerOptions(jobs=2, retry_policy=fast_policy()),
            ).execute()
        # The signalling shard kept running through the drain and its
        # payload landed on disk before the supervisor exited.
        assert CheckpointStore(run_dir).load_shard("s00") == {"value": 0}

    def test_interrupted_wide_run_resumes_serially_byte_identical(
        self, tmp_path
    ):
        interrupted = tmp_path / "interrupted"
        with pytest.raises(RunInterruptedError):
            ExperimentRunner(
                run_dir=interrupted,
                plan=build_sigtoy(seed=5, width=4, linger_s=0.2),
                options=RunnerOptions(jobs=2, retry_policy=fast_policy()),
            ).execute()
        resumed = ExperimentRunner(
            run_dir=interrupted,
            plan=build_sigtoy(seed=5, width=4, linger_s=0.2),
            options=RunnerOptions(resume=True),  # jobs=1: the serial path
        ).execute()
        clean_dir = tmp_path / "clean"
        clean = ExperimentRunner(build_ptoy(seed=5, width=4), clean_dir).execute()
        assert resumed == clean
        assert run_output(interrupted) == run_output(clean_dir)

    def test_run_deadline_kills_a_hung_pool(self, tmp_path):
        """--deadline-s is enforced across workers even when every worker
        is wedged and no shard will ever complete."""
        plan = selfchaos.build_plan(
            PTOY_CONFIG, {"s00": {1: "hang"}, "s01": {1: "hang"}}, hang_s=60.0
        )
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            ExperimentRunner(
                run_dir=tmp_path / "run",
                plan=plan,
                options=RunnerOptions(jobs=2, deadline_s=0.5),
            ).execute()
        assert time.monotonic() - started < 30.0


class TestResumeCompatibility:
    def test_jobs_never_enters_the_manifest(self, tmp_path):
        run_dir = tmp_path / "run"
        ExperimentRunner(
            build_ptoy(3, 6), run_dir, RunnerOptions(jobs=4)
        ).execute()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert "jobs" not in json.dumps(manifest)

    def test_wide_partial_run_resumes_at_any_width(
        self, tmp_path, serial_reference
    ):
        text, result_bytes, shards = serial_reference
        run_dir = tmp_path / "run"
        with pytest.raises(RunInterruptedError, match="max-shards"):
            ExperimentRunner(
                run_dir=run_dir,
                plan=build_ptoy(3, 6),
                options=RunnerOptions(jobs=2, max_shards=2),
            ).execute()
        done = CheckpointStore(run_dir).completed_shards(
            build_ptoy(3, 6).shard_ids
        )
        assert 0 < len(done) < 6
        out = ExperimentRunner(
            build_ptoy(3, 6), run_dir, RunnerOptions(resume=True)
        ).execute()
        assert out == text
        assert run_output(run_dir) == result_bytes
        assert shard_files(run_dir) == shards

    def test_serial_partial_run_resumes_wide(self, tmp_path, serial_reference):
        text, result_bytes, shards = serial_reference
        run_dir = tmp_path / "run"
        with pytest.raises(RunInterruptedError):
            ExperimentRunner(
                run_dir=run_dir,
                plan=build_ptoy(3, 6),
                options=RunnerOptions(max_shards=2),
            ).execute()
        out = ExperimentRunner(
            build_ptoy(3, 6), run_dir, RunnerOptions(resume=True, jobs=3)
        ).execute()
        assert out == text
        assert run_output(run_dir) == result_bytes
        assert shard_files(run_dir) == shards


class TestRegistryRoundTrip:
    def test_ptoy_round_trips(self):
        plan = build_ptoy(3, 6)
        rebuilt = plan_from_config(plan.config)
        assert rebuilt.config == plan.config
        assert rebuilt.shard_ids == plan.shard_ids

    def test_selfchaos_round_trips(self):
        plan = selfchaos.build_plan(PTOY_CONFIG, {"s01": {1: "crash"}})
        rebuilt = plan_from_config(plan.config)
        assert rebuilt.config == plan.config
        assert rebuilt.shard_ids == plan.shard_ids

    def test_in_tree_experiment_round_trips(self):
        from repro.experiments import figure8

        plan = figure8.build_plan(seed=11, users_per_epoch=4, num_epochs=3)
        rebuilt = plan_from_config(plan.config)
        assert rebuilt.config == plan.config
        assert rebuilt.shard_ids == plan.shard_ids

    def test_unknown_experiment_refused(self):
        with pytest.raises(RunnerError, match="no registered plan builder"):
            plan_from_config({"experiment": "nonesuch"})

    def test_unknown_config_key_refused(self):
        with pytest.raises(RunnerError, match="does not accept"):
            plan_from_config({"experiment": "ptoy", "bogus": 1})

    def test_selfchaos_rejects_unknown_shard_and_mode(self):
        with pytest.raises(RunnerError, match="not a shard"):
            selfchaos.build_plan(PTOY_CONFIG, {"zz": {1: "crash"}})
        with pytest.raises(RunnerError, match="unknown failure mode"):
            selfchaos.build_plan(PTOY_CONFIG, {"s01": {1: "meteor"}})


class TestObservability:
    def test_manifest_obs_records_worker_attribution(self, tmp_path):
        from repro.obs import ObsRecorder, recording

        run_dir = tmp_path / "run"
        with recording(ObsRecorder()):
            ExperimentRunner(
                build_ptoy(3, 6), run_dir, RunnerOptions(jobs=2)
            ).execute()
        manifest = json.loads((run_dir / "manifest.json").read_text())
        obs = manifest["obs"]
        assert set(obs["shard_seconds"]) == set(build_ptoy(3, 6).shard_ids)
        assert set(obs["shard_workers"]) == set(build_ptoy(3, 6).shard_ids)


class TestFleetObservability:
    """The fleet-obs contract: a ``--jobs N`` run's merged registry is
    indistinguishable from the serial run's (counters sum, histograms merge
    bucket-wise), whatever failures the fleet survived along the way."""

    def run_with_obs(self, run_dir, jobs, plan=None, **options):
        from repro.obs import ObsRecorder, recording

        recorder = ObsRecorder()
        if plan is None:
            plan = build_obstoy(3, 6)
        with recording(recorder):
            out = ExperimentRunner(
                run_dir=run_dir,
                plan=plan,
                options=RunnerOptions(
                    jobs=jobs, retry_policy=fast_policy(), **options
                ),
            ).execute()
        if recorder.events is not None:
            recorder.events.close()
        return out, recorder

    def test_parallel_aggregates_equal_serial(self, tmp_path):
        from repro.obs import registry_diff

        serial_out, serial = self.run_with_obs(tmp_path / "serial", 1)
        fleet_out, fleet = self.run_with_obs(tmp_path / "fleet", 4)
        assert fleet_out == serial_out
        assert registry_diff(fleet.metrics, serial.metrics) == []

    def test_parallel_window_series_equal_serial(self, tmp_path):
        """The windowed time series of a ``--jobs 4`` run is byte-identical
        to the serial run's: window assignment keys on simulated time and
        cells are integers, so shard completion order cannot leak in."""
        from repro.obs import timeseries_diff

        _, serial = self.run_with_obs(tmp_path / "serial", 1)
        _, fleet = self.run_with_obs(tmp_path / "fleet", 4)
        assert timeseries_diff(fleet.timeseries, serial.timeseries) == []
        assert json.dumps(
            fleet.timeseries.to_json(), sort_keys=True
        ) == json.dumps(serial.timeseries.to_json(), sort_keys=True)

    def test_chaos_run_window_series_equal_clean_serial(self, tmp_path):
        """Crashed and killed attempts ship no windowed deltas either, so
        the merged series of a chaos fleet still equals the clean serial
        run's — the windowed analogue of the registry contract."""
        from repro.obs import timeseries_diff

        _, serial = self.run_with_obs(tmp_path / "serial", 1)
        plan = selfchaos.build_plan(
            OBSTOY_CONFIG, {"s01": {1: "crash"}, "s02": {1: "kill"}}
        )
        _, fleet = self.run_with_obs(tmp_path / "fleet", 4, plan=plan)
        assert timeseries_diff(fleet.timeseries, serial.timeseries) == []

    def test_chaos_run_aggregates_equal_clean_serial(self, tmp_path):
        """Crashed and killed attempts ship no obs, so the merged registry
        of a chaos run still equals the clean serial run's."""
        from repro.obs import registry_diff
        from repro.obs.merge import FLEET_SERIES_PREFIXES

        serial_out, serial = self.run_with_obs(tmp_path / "serial", 1)
        plan = selfchaos.build_plan(
            OBSTOY_CONFIG, {"s01": {1: "crash"}, "s02": {1: "kill"}}
        )
        fleet_out, fleet = self.run_with_obs(tmp_path / "fleet", 4, plan=plan)
        assert fleet_out == serial_out
        # The supervisor's own retry backoff is fleet bookkeeping, not
        # plan obs — only the chaos run has any.
        ignore = FLEET_SERIES_PREFIXES + ("repro_retry_",)
        diff = registry_diff(fleet.metrics, serial.metrics, ignore_prefixes=ignore)
        assert diff == []

    def test_post_completion_death_salvaged_from_sidecar(
        self, tmp_path, monkeypatch
    ):
        """A worker dying after its sidecar lands but before the result
        message sends loses the pipe copy; the parent recovers the delta
        from the sidecar and the retried attempt is counted too (the shard
        genuinely ran twice)."""
        from repro.runner import parallel as parallel_mod

        serial_out, _ = self.run_with_obs(tmp_path / "serial", 1)

        def die_after_sidecar(shard_id, attempt):
            if shard_id == "s02" and attempt == 1:
                os._exit(77)

        monkeypatch.setattr(
            parallel_mod, "_post_sidecar_test_hook", die_after_sidecar
        )
        fleet_out, fleet = self.run_with_obs(tmp_path / "fleet", 3)
        assert fleet_out == serial_out
        metrics = fleet.metrics
        assert metrics.counter_value("repro_obs_deltas_salvaged_total") == 1.0
        # 6 shards, s02 executed twice: once salvaged, once via the retry.
        assert metrics.counter_value("repro_obstoy_shards_total") == 7.0
        assert metrics.counter_value("repro_obstoy_value_total") == 51.0
        # No sidecars left behind once the run ends.
        assert not (tmp_path / "fleet" / "obs").exists()

    def test_event_log_records_the_run_lifecycle(self, tmp_path):
        from repro.obs import read_events

        run_dir = tmp_path / "run"
        self.run_with_obs(run_dir, 3)
        events = list(read_events(run_dir / "events.jsonl"))
        names = [event["event"] for event in events]
        assert names[0] == "run_start"
        assert names[-1] == "run_completed"
        assert "worker_spawned" in names
        completed = {
            event["shard"]
            for event in events
            if event["event"] == "shard_completed"
        }
        assert completed == set(build_obstoy(3, 6).shard_ids)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_per_shard_progress_quiet_by_default(self, tmp_path, capsys, jobs):
        self.run_with_obs(tmp_path / "run", jobs)
        err = capsys.readouterr().err
        assert "obs: shard" not in err
        assert "shards on disk after" in err  # the final summary always lands

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_progress_every_rate_limits_the_heartbeat(
        self, tmp_path, capsys, jobs
    ):
        self.run_with_obs(tmp_path / "run", jobs, progress_every=2)
        err = capsys.readouterr().err
        assert err.count("obs: shard") == 3  # 6 shards, every 2nd reported

    def test_progress_every_must_be_positive(self):
        with pytest.raises(RunnerError, match="progress-every"):
            RunnerOptions(progress_every=0)


class TestCliExitCodes:
    def test_quarantine_has_its_own_exit_code(self, monkeypatch, capsys):
        from repro import cli
        from repro.runner.engine import ExperimentRunner as EngineRunner

        def boom(self):
            raise ShardQuarantinedError("2 shard(s) quarantined")

        monkeypatch.setattr(EngineRunner, "execute", boom)
        code = cli.main(
            ["run", "figure8", "--out-dir", "ignored-by-stub", "--jobs", "2"]
        )
        assert code == cli.EXIT_QUARANTINED == 8
        assert "quarantined" in capsys.readouterr().err

    def test_jobs_requires_out_dir(self, capsys):
        from repro import cli

        assert cli.main(["run", "figure8", "--jobs", "2"]) == cli.EXIT_ERROR
        assert "--jobs requires --out-dir" in capsys.readouterr().err
