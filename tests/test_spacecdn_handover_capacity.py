"""Tests for space-VM handover and capacity/thermal arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.capacity import ThermalModel, constellation_storage_pb, videos_storable
from repro.spacecdn.handover import VmHandoverPlanner


class TestCapacityArithmetic:
    def test_paper_storage_figure(self):
        # Paper §5: 6000 satellites -> > 900 PB.
        assert constellation_storage_pb(6000) == pytest.approx(900.0)

    def test_paper_video_count(self):
        # Paper §5: > 300M two-hour 1080p videos.
        total = constellation_storage_pb(6000)
        assert videos_storable(total) > 300_000_000

    def test_zero_satellites(self):
        assert constellation_storage_pb(0) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            constellation_storage_pb(-1)
        with pytest.raises(ConfigurationError):
            videos_storable(-1.0)
        with pytest.raises(ConfigurationError):
            videos_storable(1.0, video_hours=0.0)


class TestThermalModel:
    def test_step_towards_active_equilibrium(self):
        model = ThermalModel()
        warm = model.step(20.0, active=True, dt_s=10_000.0)
        assert warm > 20.0
        assert warm <= model.active_equilibrium_c

    def test_step_cools_when_idle(self):
        model = ThermalModel()
        cool = model.step(29.0, active=False, dt_s=10_000.0)
        assert cool < 29.0

    def test_continuous_operation_exceeds_limit_after_hours(self):
        # Paper §5 (Xing et al.): the threshold is crossed only "after hours
        # of continuous computation".
        model = ThermalModel()
        t = model.time_to_limit_s()
        assert 1.0 * 3600 < t < 12.0 * 3600

    def test_time_to_limit_infinite_when_equilibrium_below(self):
        model = ThermalModel(active_equilibrium_c=25.0, idle_equilibrium_c=15.0)
        assert model.time_to_limit_s() == float("inf")

    def test_time_to_limit_zero_when_already_over(self):
        model = ThermalModel()
        assert model.time_to_limit_s(start_c=35.0) == 0.0

    def test_sustainable_duty_fraction_below_one(self):
        model = ThermalModel()
        fraction = model.max_sustainable_duty_fraction()
        assert 0.0 < fraction < 1.0

    def test_duty_cycling_keeps_temperature_bounded(self):
        model = ThermalModel()
        fraction = model.max_sustainable_duty_fraction(slot_s=600.0)
        temperature = model.idle_equilibrium_c
        peak = temperature
        for _ in range(300):
            temperature = model.step(temperature, True, fraction * 600.0)
            peak = max(peak, temperature)
            temperature = model.step(temperature, False, (1 - fraction) * 600.0)
        assert peak <= model.limit_c + 0.1

    def test_cool_payload_sustains_full_duty(self):
        model = ThermalModel(active_equilibrium_c=28.0, idle_equilibrium_c=15.0)
        assert model.max_sustainable_duty_fraction() == 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(time_constant_s=0.0)
        with pytest.raises(ConfigurationError):
            ThermalModel(idle_equilibrium_c=40.0, active_equilibrium_c=30.0)

    def test_negative_step_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalModel().step(20.0, True, -1.0)


class TestVmHandover:
    def test_sync_time_for_paper_delta(self):
        planner = VmHandoverPlanner.__new__(VmHandoverPlanner)
        planner.isl_bandwidth_gbps = 10.0
        # 100 MB at 10 Gbps: 0.08 s.
        assert planner.sync_time_s(100.0) == pytest.approx(0.08)

    def test_invalid_bandwidth_rejected(self, shell1_constellation):
        with pytest.raises(ConfigurationError):
            VmHandoverPlanner(constellation=shell1_constellation, isl_bandwidth_gbps=0.0)

    def test_negative_delta_rejected(self, shell1_constellation):
        planner = VmHandoverPlanner(constellation=shell1_constellation)
        with pytest.raises(ConfigurationError):
            planner.sync_time_s(-1.0)

    def test_handover_chain_over_equator(self, shell1_constellation):
        planner = VmHandoverPlanner(constellation=shell1_constellation)
        plans = planner.plan_handovers(
            area=GeoPoint(0.0, 0.0, 0.0),
            start_s=0.0,
            duration_s=1800.0,
            delta_mb=100.0,
        )
        assert plans
        # 100 MB deltas over 10 Gbps ISLs are trivially feasible (paper §5).
        assert all(p.feasible for p in plans)

    def test_huge_state_can_be_infeasible(self, shell1_constellation):
        planner = VmHandoverPlanner(
            constellation=shell1_constellation, isl_bandwidth_gbps=0.01
        )
        plans = planner.plan_handovers(
            area=GeoPoint(0.0, 0.0, 0.0),
            start_s=0.0,
            duration_s=1800.0,
            delta_mb=500_000.0,  # half a terabyte
        )
        assert any(not p.feasible for p in plans)

    def test_chain_sorted_and_overlapping_or_gapped(self, shell1_constellation):
        planner = VmHandoverPlanner(constellation=shell1_constellation)
        chain = planner.pass_chain(GeoPoint(0.0, 0.0, 0.0), 0.0, 1800.0)
        starts = [p.start_s for p in chain]
        assert starts == sorted(starts)
