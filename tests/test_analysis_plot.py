"""Tests for ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis.plot import ascii_cdf, ascii_histogram
from repro.analysis.stats import Cdf
from repro.errors import ConfigurationError


class TestAsciiCdf:
    @pytest.fixture
    def series(self):
        rng = np.random.default_rng(0)
        return {
            "starlink": Cdf.from_samples(rng.normal(100.0, 10.0, 300)),
            "terrestrial": Cdf.from_samples(rng.normal(30.0, 5.0, 300)),
        }

    def test_renders_dimensions(self, series):
        plot = ascii_cdf(series, width=60, height=12)
        lines = plot.splitlines()
        # height rows + axis + x-label + legend
        assert len(lines) == 12 + 3
        assert all(len(line) <= 60 + 10 for line in lines)

    def test_legend_contains_names(self, series):
        plot = ascii_cdf(series)
        assert "s=starlink" in plot
        assert "t=terrestrial" in plot

    def test_faster_series_appears_left(self, series):
        plot = ascii_cdf(series, width=60, height=12)
        rows = plot.splitlines()[:3]  # high-probability region of the plot

        def leftmost(marker: str) -> int:
            return min(
                (row.index(marker) for row in rows if marker in row),
                default=10**9,
            )

        # Terrestrial reaches high cumulative probability at smaller x.
        assert leftmost("t") < leftmost("s")

    def test_explicit_x_max(self, series):
        plot = ascii_cdf(series, x_max=200.0)
        assert "200.0" in plot

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_cdf({})

    def test_tiny_dimensions_rejected(self, series):
        with pytest.raises(ConfigurationError):
            ascii_cdf(series, width=5, height=2)

    def test_invalid_x_max_rejected(self, series):
        with pytest.raises(ConfigurationError):
            ascii_cdf(series, x_max=0.0)


class TestAsciiHistogram:
    def test_renders_bins(self):
        samples = list(np.random.default_rng(1).exponential(10.0, 500))
        plot = ascii_histogram(samples, bins=8)
        assert len(plot.splitlines()) == 8
        assert "#" in plot

    def test_counts_sum(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        plot = ascii_histogram(samples, bins=5)
        counts = [int(line.rsplit(" ", 1)[1]) for line in plot.splitlines()]
        assert sum(counts) == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([])

    def test_invalid_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([1.0], bins=1)
