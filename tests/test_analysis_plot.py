"""Tests for ASCII plotting helpers."""

import numpy as np
import pytest

from repro.analysis.plot import ascii_cdf, ascii_histogram
from repro.analysis.stats import Cdf
from repro.errors import ConfigurationError


class TestAsciiCdf:
    @pytest.fixture
    def series(self):
        rng = np.random.default_rng(0)
        return {
            "starlink": Cdf.from_samples(rng.normal(100.0, 10.0, 300)),
            "terrestrial": Cdf.from_samples(rng.normal(30.0, 5.0, 300)),
        }

    def test_renders_dimensions(self, series):
        plot = ascii_cdf(series, width=60, height=12)
        lines = plot.splitlines()
        # height rows + axis + x-label + legend
        assert len(lines) == 12 + 3
        assert all(len(line) <= 60 + 10 for line in lines)

    def test_legend_contains_names(self, series):
        plot = ascii_cdf(series)
        assert "s=starlink" in plot
        assert "t=terrestrial" in plot

    def test_faster_series_appears_left(self, series):
        plot = ascii_cdf(series, width=60, height=12)
        rows = plot.splitlines()[:3]  # high-probability region of the plot

        def leftmost(marker: str) -> int:
            return min(
                (row.index(marker) for row in rows if marker in row),
                default=10**9,
            )

        # Terrestrial reaches high cumulative probability at smaller x.
        assert leftmost("t") < leftmost("s")

    def test_explicit_x_max(self, series):
        plot = ascii_cdf(series, x_max=200.0)
        assert "200.0" in plot

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_cdf({})

    def test_tiny_dimensions_rejected(self, series):
        with pytest.raises(ConfigurationError):
            ascii_cdf(series, width=5, height=2)

    def test_invalid_x_max_rejected(self, series):
        with pytest.raises(ConfigurationError):
            ascii_cdf(series, x_max=0.0)


class TestCdfBinningGolden:
    """Pin the exact column->x and probability->row binning arithmetic."""

    def test_step_function_marker_placement(self):
        # One sample at 10: P(X <= x) steps 0 -> 1 at exactly x = 10.
        plot = ascii_cdf(
            {"s": Cdf.from_samples([10.0])}, width=20, height=5, x_max=20.0
        )
        rows = plot.splitlines()
        # Column c samples x = (c + 0.5) / 20 * 20 = c + 0.5, so columns
        # 0..9 (x < 10) sit on the p=0.00 row and columns 10..19 on p=1.00.
        assert rows[0] == "1.00 |" + " " * 10 + "s" * 10
        assert rows[4] == "0.00 |" + "s" * 10 + " " * 10
        for row in rows[1:4]:
            assert row[6:] == " " * 20

    def test_quartile_staircase_golden_grid(self):
        # Four equal-mass samples: the CDF climbs in exact 0.25 steps, and
        # with height 5 every step owns its own row of the grid.
        cdf = Cdf.from_samples([2.0, 4.0, 6.0, 8.0])
        plot = ascii_cdf({"q": cdf}, width=20, height=5, x_max=10.0)
        rows = [line[6:] for line in plot.splitlines()[:5]]
        assert rows == [
            " " * 16 + "q" * 4,  # p=1.00: columns with x > 8
            " " * 12 + "q" * 4 + " " * 4,  # p=0.75: x in (6, 8)
            " " * 8 + "q" * 4 + " " * 8,  # p=0.50: x in (4, 6)
            " " * 4 + "q" * 4 + " " * 12,  # p=0.25: x in (2, 4)
            "q" * 4 + " " * 16,  # p=0.00: x < 2
        ]

    def test_histogram_golden_bars(self):
        # Edges [0, 1, 2]; numpy's half-open bins put 0.0 and 0.5 in the
        # first bin and 2.0 (the closed right edge) in the second, so the
        # bars scale 2:1 against a peak of 2.
        plot = ascii_histogram([0.0, 0.5, 2.0], bins=2, width=10)
        assert plot.splitlines() == [
            "     0.0..     1.0 |########## 2",
            "     1.0..     2.0 |##### 1",
        ]


class TestAsciiHistogram:
    def test_renders_bins(self):
        samples = list(np.random.default_rng(1).exponential(10.0, 500))
        plot = ascii_histogram(samples, bins=8)
        assert len(plot.splitlines()) == 8
        assert "#" in plot

    def test_counts_sum(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        plot = ascii_histogram(samples, bins=5)
        counts = [int(line.rsplit(" ", 1)[1]) for line in plot.splitlines()]
        assert sum(counts) == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([])

    def test_invalid_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([1.0], bins=1)
