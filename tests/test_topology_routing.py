"""Tests for routing over snapshot graphs."""

import pytest

from repro.errors import RoutingError
from repro.topology.routing import (
    hop_distances,
    latency_by_hop_count,
    min_latency_at_hops,
    satellite_latencies,
    shortest_path,
)


class TestShortestPath:
    def test_path_to_self(self, small_snapshot):
        route = shortest_path(small_snapshot, 0, 0)
        assert route.path == (0,)
        assert route.latency_ms == 0.0
        assert route.hops == 0

    def test_neighbor_path(self, small_snapshot):
        neighbor = next(iter(small_snapshot.graph[0]))
        route = shortest_path(small_snapshot, 0, neighbor)
        assert route.hops == 1
        assert route.latency_ms == pytest.approx(
            small_snapshot.edge_latency_ms(0, neighbor)
        )

    def test_latency_is_sum_of_edges(self, small_snapshot):
        route = shortest_path(small_snapshot, 0, 20)
        total = sum(
            small_snapshot.edge_latency_ms(a, b)
            for a, b in zip(route.path, route.path[1:])
        )
        assert route.latency_ms == pytest.approx(total)

    def test_unknown_node_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            shortest_path(small_snapshot, 0, 10_000)

    def test_triangle_inequality_vs_direct_edges(self, small_snapshot):
        # Shortest path latency can never exceed any single concatenation.
        for target in (5, 17, 33):
            direct = shortest_path(small_snapshot, 0, target).latency_ms
            via = (
                shortest_path(small_snapshot, 0, 8).latency_ms
                + shortest_path(small_snapshot, 8, target).latency_ms
            )
            assert direct <= via + 1e-9


class TestHopDistances:
    def test_source_at_zero(self, small_snapshot):
        assert hop_distances(small_snapshot, 0)[0] == 0

    def test_neighbors_at_one(self, small_snapshot):
        hops = hop_distances(small_snapshot, 0)
        for neighbor in small_snapshot.graph[0]:
            assert hops[neighbor] == 1

    def test_all_satellites_reachable(self, small_snapshot, small_shell):
        hops = hop_distances(small_snapshot, 0)
        assert len(hops) == small_shell.total_satellites

    def test_unknown_source_raises(self, small_snapshot):
        with pytest.raises(RoutingError):
            hop_distances(small_snapshot, 9999)

    def test_shell1_diameter_reasonable(self, shell1_snapshot):
        # A 72x22 torus has a hop diameter around (72+22)/2; sanity-bound it.
        hops = hop_distances(shell1_snapshot, 0)
        diameter = max(hops.values())
        assert 20 <= diameter <= 60


class TestSatelliteLatencies:
    def test_source_zero(self, small_snapshot):
        assert satellite_latencies(small_snapshot, 0)[0] == 0.0

    def test_consistent_with_shortest_path(self, small_snapshot):
        latencies = satellite_latencies(small_snapshot, 0)
        for target in (3, 11, 40):
            assert latencies[target] == pytest.approx(
                shortest_path(small_snapshot, 0, target).latency_ms
            )


class TestLatencyByHopCount:
    def test_hop_zero_is_free(self, small_snapshot):
        ladder = latency_by_hop_count(small_snapshot, 0, 5)
        assert ladder[0] == 0.0

    def test_monotone_nondecreasing(self, shell1_snapshot):
        ladder = latency_by_hop_count(shell1_snapshot, 100, 10)
        values = [ladder[h] for h in sorted(ladder)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_every_hop_count_present_in_plus_grid(self, shell1_snapshot):
        ladder = latency_by_hop_count(shell1_snapshot, 100, 10)
        assert set(ladder) == set(range(11))

    def test_negative_max_hops_rejected(self, small_snapshot):
        with pytest.raises(RoutingError):
            latency_by_hop_count(small_snapshot, 0, -1)

    def test_min_latency_at_hops_matches_ladder(self, small_snapshot):
        ladder = latency_by_hop_count(small_snapshot, 0, 4)
        assert min_latency_at_hops(small_snapshot, 0, 3) == pytest.approx(ladder[3])

    def test_min_latency_at_unreachable_hops_raises(self, small_snapshot, small_shell):
        huge = small_shell.total_satellites  # farther than any BFS distance
        with pytest.raises(RoutingError):
            min_latency_at_hops(small_snapshot, 0, huge)

    def test_hop_one_is_cheapest_edge(self, shell1_snapshot):
        ladder = latency_by_hop_count(shell1_snapshot, 0, 1)
        cheapest = min(
            shell1_snapshot.edge_latency_ms(0, n) for n in shell1_snapshot.graph[0]
        )
        assert ladder[1] == pytest.approx(cheapest)
