"""Tests for Walker-delta construction and propagation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.orbits.elements import starlink_shell1
from repro.orbits.walker import Constellation, build_walker_delta


class TestConstruction:
    def test_total_satellites(self, small_constellation, small_shell):
        assert len(small_constellation) == small_shell.total_satellites

    def test_raan_per_plane(self, small_constellation, small_shell):
        per = small_shell.sats_per_plane
        raan = small_constellation.raan_rad
        # All satellites of one plane share a RAAN.
        for plane in range(small_shell.num_planes):
            plane_raans = raan[plane * per : (plane + 1) * per]
            assert np.allclose(plane_raans, plane_raans[0])

    def test_raan_spacing(self, small_constellation, small_shell):
        per = small_shell.sats_per_plane
        raan0 = small_constellation.raan_rad[0]
        raan1 = small_constellation.raan_rad[per]
        expected = np.radians(small_shell.raan_spacing_deg)
        assert raan1 - raan0 == pytest.approx(expected)

    def test_phase_offset_between_planes(self, small_constellation, small_shell):
        per = small_shell.sats_per_plane
        phase0 = small_constellation.phase_rad[0]
        phase1 = small_constellation.phase_rad[per]
        expected = np.radians(small_shell.inter_plane_phase_deg)
        assert phase1 - phase0 == pytest.approx(expected)

    def test_mismatched_arrays_rejected(self, small_shell):
        with pytest.raises(ConfigurationError):
            Constellation(
                config=small_shell,
                raan_rad=np.zeros(3),
                phase_rad=np.zeros(small_shell.total_satellites),
            )


class TestPropagation:
    def test_orbit_radius_constant(self, small_constellation):
        for t in (0.0, 100.0, 3000.0):
            positions = small_constellation.positions_ecef(t)
            radii = np.linalg.norm(positions, axis=1)
            assert np.allclose(radii, small_constellation.orbit_radius_km)

    def test_period_returns_to_start_in_inertial_frame(self, small_constellation):
        # After one period the satellite returns to the same inertial spot;
        # in ECEF it is offset by Earth rotation, so compare latitude only.
        period = small_constellation.config.period_s
        lat0 = small_constellation.subsatellite_points(0.0)[:, 0]
        lat1 = small_constellation.subsatellite_points(period)[:, 0]
        assert np.allclose(lat0, lat1, atol=0.05)

    def test_satellites_move_between_snapshots(self, small_constellation):
        p0 = small_constellation.positions_ecef(0.0)
        p1 = small_constellation.positions_ecef(60.0)
        moved = np.linalg.norm(p1 - p0, axis=1)
        # ~7.6 km/s ground-frame speed -> roughly 450 km/minute.
        assert moved.min() > 200.0

    def test_latitude_bounded_by_inclination(self, small_constellation):
        for t in np.linspace(0.0, small_constellation.config.period_s, 17):
            lats = small_constellation.subsatellite_points(float(t))[:, 0]
            assert np.all(np.abs(lats) <= small_constellation.config.inclination_deg + 0.1)

    def test_position_geodetic_altitude(self, small_constellation):
        point = small_constellation.position_geodetic(0, 0.0)
        assert point.alt_km == pytest.approx(550.0, abs=1e-6)

    def test_shell1_inclination_bound(self, shell1_constellation):
        lats = shell1_constellation.subsatellite_points(1234.0)[:, 0]
        assert np.max(np.abs(lats)) <= 53.0 + 0.1
        # With 1584 satellites some are always near the inclination limit.
        assert np.max(np.abs(lats)) > 50.0


class TestNeighbors:
    def test_intra_plane_neighbors_wrap(self, small_constellation, small_shell):
        per = small_shell.sats_per_plane
        ahead, behind = small_constellation.intra_plane_neighbors(0)
        assert ahead == 1
        assert behind == per - 1

    def test_intra_plane_neighbors_stay_in_plane(self, small_constellation, small_shell):
        per = small_shell.sats_per_plane
        for index in range(len(small_constellation)):
            ahead, behind = small_constellation.intra_plane_neighbors(index)
            assert ahead // per == index // per
            assert behind // per == index // per

    def test_cross_plane_neighbors_in_adjacent_planes(
        self, small_constellation, small_shell
    ):
        per = small_shell.sats_per_plane
        planes = small_shell.num_planes
        for index in (0, 7, 19):
            east, west = small_constellation.cross_plane_neighbors(index)
            plane = index // per
            assert east // per == (plane + 1) % planes
            assert west // per == (plane - 1) % planes

    def test_cross_plane_neighbor_is_nearby(self, shell1_constellation):
        # The whole point of nearest-slot wiring: the cross-plane partner
        # must be far closer than the in-plane spacing.
        positions = shell1_constellation.positions_ecef(0.0)
        east, _ = shell1_constellation.cross_plane_neighbors(0)
        distance = float(np.linalg.norm(positions[east] - positions[0]))
        in_plane = shell1_constellation.config.in_plane_neighbor_distance_km()
        assert distance < in_plane * 0.8


class TestBuildWalkerShell1:
    def test_build_full_shell1(self):
        constellation = build_walker_delta(starlink_shell1())
        assert len(constellation) == 1584
        positions = constellation.positions_ecef(0.0)
        assert positions.shape == (1584, 3)
        # All satellites are distinct points.
        unique_rows = np.unique(np.round(positions, 3), axis=0)
        assert unique_rows.shape[0] == 1584
