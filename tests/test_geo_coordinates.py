"""Tests for geodesy primitives."""

import math

import pytest

from repro.constants import EARTH_RADIUS_KM
from repro.errors import GeodesyError
from repro.geo.coordinates import (
    EcefPoint,
    GeoPoint,
    destination_point,
    elevation_angle_deg,
    great_circle_km,
    initial_bearing_deg,
    normalize_longitude,
    slant_range_km,
    subsatellite_point,
)


class TestGeoPointValidation:
    def test_valid_point(self):
        point = GeoPoint(45.0, 90.0, 10.0)
        assert point.lat_deg == 45.0

    @pytest.mark.parametrize("lat", [-90.1, 90.1, 180.0])
    def test_invalid_latitude_rejected(self, lat):
        with pytest.raises(GeodesyError):
            GeoPoint(lat, 0.0)

    @pytest.mark.parametrize("lon", [-180.1, 180.1, 360.0])
    def test_invalid_longitude_rejected(self, lon):
        with pytest.raises(GeodesyError):
            GeoPoint(0.0, lon)

    def test_poles_are_valid(self):
        GeoPoint(90.0, 0.0)
        GeoPoint(-90.0, 179.99)

    def test_surface_strips_altitude(self):
        point = GeoPoint(10.0, 20.0, 550.0)
        assert point.surface().alt_km == 0.0
        assert point.surface().lat_deg == 10.0

    def test_surface_of_surface_point_is_identity(self):
        point = GeoPoint(10.0, 20.0, 0.0)
        assert point.surface() is point


class TestEcefConversion:
    def test_origin_meridian_equator(self):
        ecef = GeoPoint(0.0, 0.0, 0.0).to_ecef()
        assert ecef.x == pytest.approx(EARTH_RADIUS_KM)
        assert ecef.y == pytest.approx(0.0, abs=1e-9)
        assert ecef.z == pytest.approx(0.0, abs=1e-9)

    def test_north_pole(self):
        ecef = GeoPoint(90.0, 0.0, 0.0).to_ecef()
        assert ecef.z == pytest.approx(EARTH_RADIUS_KM)
        assert math.hypot(ecef.x, ecef.y) == pytest.approx(0.0, abs=1e-6)

    def test_altitude_extends_radius(self):
        ecef = GeoPoint(0.0, 0.0, 550.0).to_ecef()
        assert ecef.norm_km() == pytest.approx(EARTH_RADIUS_KM + 550.0)

    def test_ecef_distance_symmetry(self):
        a = GeoPoint(10.0, 20.0, 0.0).to_ecef()
        b = GeoPoint(-30.0, 100.0, 550.0).to_ecef()
        assert a.distance_km(b) == pytest.approx(b.distance_km(a))


class TestGreatCircle:
    def test_zero_distance(self):
        p = GeoPoint(52.0, 13.0)
        assert great_circle_km(p, p) == 0.0

    def test_quarter_circumference_pole_to_equator(self):
        pole = GeoPoint(90.0, 0.0)
        equator = GeoPoint(0.0, 0.0)
        expected = math.pi * EARTH_RADIUS_KM / 2.0
        assert great_circle_km(pole, equator) == pytest.approx(expected, rel=1e-9)

    def test_antipodal_distance_is_half_circumference(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 180.0)
        assert great_circle_km(a, b) == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-9)

    def test_known_city_pair_london_newyork(self):
        london = GeoPoint(51.51, -0.13)
        new_york = GeoPoint(40.71, -74.01)
        assert great_circle_km(london, new_york) == pytest.approx(5570, rel=0.02)

    def test_symmetry(self):
        a = GeoPoint(-25.97, 32.57)
        b = GeoPoint(50.11, 8.68)
        assert great_circle_km(a, b) == pytest.approx(great_circle_km(b, a))

    def test_ignores_altitude(self):
        a = GeoPoint(10.0, 10.0, 0.0)
        b_surface = GeoPoint(20.0, 20.0, 0.0)
        b_orbit = GeoPoint(20.0, 20.0, 550.0)
        assert great_circle_km(a, b_surface) == great_circle_km(a, b_orbit)

    def test_maputo_frankfurt_matches_paper_distance(self):
        # The paper's Table 1 reports ~8777 km for Mozambique -> best CDN
        # (Frankfurt, via the assigned PoP).
        maputo = GeoPoint(-25.97, 32.57)
        frankfurt = GeoPoint(50.11, 8.68)
        assert great_circle_km(maputo, frankfurt) == pytest.approx(8770, rel=0.02)


class TestSlantRange:
    def test_satellite_at_zenith(self):
        ground = GeoPoint(0.0, 0.0, 0.0)
        satellite = GeoPoint(0.0, 0.0, 550.0)
        assert slant_range_km(ground, satellite) == pytest.approx(550.0)

    def test_slant_exceeds_altitude_off_zenith(self):
        ground = GeoPoint(0.0, 0.0, 0.0)
        satellite = GeoPoint(5.0, 5.0, 550.0)
        assert slant_range_km(ground, satellite) > 550.0

    def test_slant_range_vs_chord_for_surface_points(self):
        # For two surface points, the slant (chord) must be below the arc.
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 90.0)
        assert slant_range_km(a, b) < great_circle_km(a, b)


class TestElevationAngle:
    def test_zenith_is_90_degrees(self):
        ground = GeoPoint(10.0, 20.0, 0.0)
        overhead = GeoPoint(10.0, 20.0, 550.0)
        assert elevation_angle_deg(ground, overhead) == pytest.approx(90.0, abs=1e-6)

    def test_far_satellite_below_horizon(self):
        ground = GeoPoint(0.0, 0.0, 0.0)
        far = GeoPoint(0.0, 170.0, 550.0)
        assert elevation_angle_deg(ground, far) < 0.0

    def test_elevation_decreases_with_ground_distance(self):
        ground = GeoPoint(0.0, 0.0, 0.0)
        near = GeoPoint(0.0, 2.0, 550.0)
        far = GeoPoint(0.0, 10.0, 550.0)
        assert elevation_angle_deg(ground, near) > elevation_angle_deg(ground, far)

    def test_coincident_points_raise(self):
        point = GeoPoint(0.0, 0.0, 0.0)
        with pytest.raises(GeodesyError):
            elevation_angle_deg(point, point)


class TestBearingAndDestination:
    def test_due_north_bearing(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(10.0, 0.0)
        assert initial_bearing_deg(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_due_east_bearing(self):
        a = GeoPoint(0.0, 0.0)
        b = GeoPoint(0.0, 10.0)
        assert initial_bearing_deg(a, b) == pytest.approx(90.0, abs=1e-9)

    def test_destination_round_trip(self):
        start = GeoPoint(48.86, 2.35)
        distance = 500.0
        bearing = 77.0
        there = destination_point(start, bearing, distance)
        assert great_circle_km(start, there) == pytest.approx(distance, rel=1e-9)

    def test_destination_zero_distance(self):
        start = GeoPoint(10.0, 10.0)
        there = destination_point(start, 123.0, 0.0)
        assert there.lat_deg == pytest.approx(start.lat_deg)
        assert there.lon_deg == pytest.approx(start.lon_deg)

    def test_destination_negative_distance_rejected(self):
        with pytest.raises(GeodesyError):
            destination_point(GeoPoint(0.0, 0.0), 0.0, -1.0)

    def test_destination_crosses_dateline(self):
        start = GeoPoint(0.0, 179.5)
        there = destination_point(start, 90.0, 200.0)
        assert -180.0 <= there.lon_deg <= 180.0
        assert there.lon_deg < 0  # wrapped into the western hemisphere


class TestNormalizeLongitude:
    @pytest.mark.parametrize(
        "given,expected",
        [(0.0, 0.0), (190.0, -170.0), (-190.0, 170.0), (360.0, 0.0), (540.0, 180.0 - 360.0)],
    )
    def test_wrapping(self, given, expected):
        assert normalize_longitude(given) == pytest.approx(expected)

    def test_result_always_in_range(self):
        for lon in range(-1000, 1000, 37):
            wrapped = normalize_longitude(float(lon))
            assert -180.0 <= wrapped < 180.0


class TestSubsatellitePoint:
    def test_projects_to_surface(self):
        satellite = GeoPoint(30.0, 60.0, 550.0)
        below = subsatellite_point(satellite)
        assert below.alt_km == 0.0
        assert below.lat_deg == satellite.lat_deg
        assert below.lon_deg == satellite.lon_deg


class TestEcefPoint:
    def test_norm(self):
        point = EcefPoint(3.0, 4.0, 0.0)
        assert point.norm_km() == pytest.approx(5.0)

    def test_distance(self):
        a = EcefPoint(0.0, 0.0, 0.0)
        b = EcefPoint(1.0, 2.0, 2.0)
        assert a.distance_km(b) == pytest.approx(3.0)
