"""Property test: requests under arbitrary fault schedules never misbehave.

Under *any* composition of fault processes, a request through the system
either terminates with a well-formed :class:`ServedRequest` inside the
retry budget, or raises :class:`~repro.errors.ContentNotFoundError` (of
which :class:`~repro.errors.UnavailableError` is a subclass) — never an
unhandled exception, never a non-finite or negative RTT.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.content import build_catalog
from repro.errors import ContentNotFoundError
from repro.faults import (
    FaultSchedule,
    GroundStationOutage,
    IslDegradation,
    OutageWindow,
    RandomIslCuts,
    RetryPolicy,
    SatelliteOutageProcess,
    TransientAttemptLoss,
)
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import ShellConfig
from repro.orbits.walker import build_walker_delta
from repro.spacecdn.resilience import random_failure_set
from repro.spacecdn.system import SpaceCdnSystem

CONSTELLATION = build_walker_delta(
    ShellConfig(
        altitude_km=550.0,
        inclination_deg=53.0,
        num_planes=6,
        sats_per_plane=8,
        phase_offset=3,
        name="prop-shell",
    )
)
CATALOG = build_catalog(
    np.random.default_rng(0), 30, regions=("africa",), kind_weights={"web": 1.0}
)
OBJECTS = sorted(o.object_id for o in CATALOG)


@st.composite
def fault_schedules(draw):
    schedule = FaultSchedule(
        wipe_caches_on_outage=draw(st.booleans())
    )
    fraction = draw(st.floats(min_value=0.0, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    schedule.add(
        OutageWindow(
            satellites=random_failure_set(
                len(CONSTELLATION), fraction, np.random.default_rng(seed)
            )
        )
    )
    if draw(st.booleans()):
        schedule.add(
            SatelliteOutageProcess(
                total_satellites=len(CONSTELLATION),
                mtbf_s=draw(st.floats(min_value=100.0, max_value=5000.0)),
                mttr_s=draw(st.floats(min_value=10.0, max_value=1000.0)),
                seed=seed,
            )
        )
    if draw(st.booleans()):
        schedule.add(
            RandomIslCuts(fraction=draw(st.floats(min_value=0.0, max_value=0.5)), seed=seed)
        )
    if draw(st.booleans()):
        schedule.add(
            IslDegradation(multiplier=draw(st.floats(min_value=1.0, max_value=10.0)))
        )
    if draw(st.booleans()):
        schedule.add(GroundStationOutage())
    loss = draw(st.floats(min_value=0.0, max_value=1.0))
    schedule.add(TransientAttemptLoss(probability=loss, seed=seed))
    return schedule


@st.composite
def policies(draw):
    return RetryPolicy(
        max_attempts=draw(st.integers(min_value=1, max_value=6)),
        attempt_budget_ms=draw(
            st.one_of(st.none(), st.floats(min_value=10.0, max_value=500.0))
        ),
        backoff_base_ms=draw(st.floats(min_value=0.0, max_value=50.0)),
    )


@settings(max_examples=30, deadline=None)
@given(
    schedule=fault_schedules(),
    policy=policies(),
    lat=st.floats(min_value=-50.0, max_value=50.0),
    lon=st.floats(min_value=-180.0, max_value=180.0),
    t_s=st.floats(min_value=0.0, max_value=3600.0),
    object_index=st.integers(min_value=0, max_value=len(OBJECTS) - 1),
    preload_seed=st.integers(min_value=0, max_value=2**16),
)
def test_serve_terminates_well_under_any_schedule(
    schedule, policy, lat, lon, t_s, object_index, preload_seed
):
    system = SpaceCdnSystem(
        constellation=CONSTELLATION,
        catalog=CATALOG,
        cache_bytes_per_satellite=10**9,
        fault_schedule=schedule,
        retry_policy=policy,
    )
    rng = np.random.default_rng(preload_seed)
    holders = frozenset(
        int(s) for s in rng.choice(len(CONSTELLATION), size=4, replace=False)
    )
    object_id = OBJECTS[object_index]
    system.preload({object_id: holders})

    user = GeoPoint(lat, lon, 0.0)
    try:
        served = system.serve(user, object_id, t_s)
    except ContentNotFoundError:
        # The only legal failure mode: unavailable under the fault state.
        assert system.stats.unavailable >= 1
        assert system.stats.availability < 1.0
        return
    assert 1 <= served.attempts <= policy.max_attempts
    assert math.isfinite(served.rtt_ms) and served.rtt_ms >= 0.0
    assert served.object_id == object_id
    assert system.stats.requests == 1
    assert system.stats.availability == 1.0


@settings(max_examples=10, deadline=None)
@given(schedule=fault_schedules(), t_s=st.floats(min_value=0.0, max_value=7200.0))
def test_compiled_views_are_reproducible(schedule, t_s):
    num_links = 2 * len(CONSTELLATION)  # +Grid: two links per satellite
    first = schedule.compile_at(t_s, num_links)
    second = schedule.compile_at(t_s, num_links)
    assert first.failed_satellites == second.failed_satellites
    assert first.cut_links == second.cut_links
    assert first.ground_segment_down == second.ground_segment_down
    if first.link_multiplier is None:
        assert second.link_multiplier is None
    else:
        np.testing.assert_array_equal(first.link_multiplier, second.link_multiplier)


def test_catalog_smoke():
    # Guards the module-level fixtures against silent shape drift.
    assert len(OBJECTS) == 30
    assert pytest.importorskip("hypothesis")
