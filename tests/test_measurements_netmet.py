"""Tests for the NetMet web-browsing model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.datasets import city_by_name
from repro.measurements.aim import STARLINK, TERRESTRIAL
from repro.measurements.netmet import NetMetProbe
from repro.measurements.webpage import WebPage, top_site_pages


class TestWebPages:
    def test_twenty_pages_like_tranco_top20(self):
        assert len(top_site_pages()) == 20

    def test_page_fields_valid(self):
        for page in top_site_pages():
            assert page.html_bytes > 0
            assert page.total_bytes >= page.html_bytes
            assert page.render_ms >= 0

    def test_invalid_page_rejected(self):
        with pytest.raises(ConfigurationError):
            WebPage("x", html_bytes=0, critical_resources=1, critical_bytes=10, render_ms=1.0)
        with pytest.raises(ConfigurationError):
            WebPage("x", html_bytes=10, critical_resources=-1, critical_bytes=10, render_ms=1.0)
        with pytest.raises(ConfigurationError):
            WebPage("x", html_bytes=10, critical_resources=1, critical_bytes=10, render_ms=-1.0)


class TestTransferModel:
    def test_slow_start_zero_for_tiny_transfer(self):
        assert NetMetProbe.slow_start_rtts(1000) == 0

    def test_slow_start_grows_then_caps(self):
        small = NetMetProbe.slow_start_rtts(50_000)
        big = NetMetProbe.slow_start_rtts(5_000_000)
        assert 0 < small <= big <= 5

    def test_slow_start_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            NetMetProbe.slow_start_rtts(-1)

    def test_transfer_time_linear(self):
        assert NetMetProbe.transfer_ms(2_000_000, 10.0) == pytest.approx(
            2 * NetMetProbe.transfer_ms(1_000_000, 10.0)
        )

    def test_transfer_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetMetProbe.transfer_ms(1000, 0.0)


class TestBandwidth:
    def test_nigeria_terrestrial_slow(self):
        probe = NetMetProbe(seed=1)
        lagos = city_by_name("Lagos")
        berlin = city_by_name("Berlin")
        ng = np.median([probe.bandwidth_mbps(lagos, TERRESTRIAL) for _ in range(300)])
        de = np.median([probe.bandwidth_mbps(berlin, TERRESTRIAL) for _ in range(300)])
        assert ng < de / 5

    def test_starlink_bandwidth_city_independent(self):
        probe = NetMetProbe(seed=2)
        lagos = city_by_name("Lagos")
        berlin = city_by_name("Berlin")
        ng = np.median([probe.bandwidth_mbps(lagos, STARLINK) for _ in range(300)])
        de = np.median([probe.bandwidth_mbps(berlin, STARLINK) for _ in range(300)])
        assert ng == pytest.approx(de, rel=0.25)

    def test_unknown_isp_rejected(self):
        probe = NetMetProbe(seed=3)
        with pytest.raises(ConfigurationError):
            probe.bandwidth_mbps(city_by_name("Berlin"), "dialup")


class TestFetchPage:
    def test_metrics_ordering(self):
        probe = NetMetProbe(seed=4)
        page = top_site_pages()[0]
        record = probe.fetch_page(city_by_name("Berlin"), TERRESTRIAL, page)
        assert record.dns_ms >= 0
        assert record.connect_ms > 0
        assert record.tls_ms > 0
        assert record.http_response_ms >= record.connect_ms  # at least one RTT
        assert record.fcp_ms > record.http_response_ms + page.render_ms

    def test_browse_round_count(self):
        probe = NetMetProbe(seed=5)
        records = probe.browse(city_by_name("Berlin"), TERRESTRIAL, rounds=2)
        assert len(records) == 40

    def test_browse_invalid_rounds(self):
        probe = NetMetProbe(seed=6)
        with pytest.raises(ConfigurationError):
            probe.browse(city_by_name("Berlin"), TERRESTRIAL, rounds=0)

    def test_starlink_fcp_higher_in_germany(self):
        # Paper Fig. 5: ~200 ms higher median FCP over Starlink in DE.
        probe = NetMetProbe(seed=7)
        berlin = city_by_name("Berlin")
        star = np.median([r.fcp_ms for r in probe.browse(berlin, STARLINK, rounds=3)])
        terr = np.median([r.fcp_ms for r in probe.browse(berlin, TERRESTRIAL, rounds=3)])
        assert 100.0 < star - terr < 400.0

    def test_nigeria_starlink_hrt_faster(self):
        # Paper Fig. 4: Nigeria is the outlier where Starlink wins.
        probe = NetMetProbe(seed=8)
        lagos = city_by_name("Lagos")
        star = np.median(
            [r.http_response_ms for r in probe.browse(lagos, STARLINK, rounds=3)]
        )
        terr = np.median(
            [r.http_response_ms for r in probe.browse(lagos, TERRESTRIAL, rounds=3)]
        )
        assert star < terr
