"""Batched serve path: element-wise equivalence with scalar serving.

``SpaceCdnSystem.serve_batch`` must be an *optimisation*, never a
behaviour change: for any cohort, results, stats, cache contents, and the
holders index must match what the scalar ``serve`` loop produces in the
same order — healthy and under fault schedules. These tests pin that
contract, plus the batch kernels it leans on (batched visibility,
batched single-source routing, the vectorised holder argmin) and the
incremental holders-index bookkeeping.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.cache import HoldersIndex
from repro.cdn.content import build_catalog
from repro.errors import ConfigurationError, UnavailableError
from repro.faults import FaultSchedule, OutageWindow, TransientAttemptLoss
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import ShellConfig
from repro.orbits.visibility import visible_satellites, visible_satellites_batch
from repro.orbits.walker import build_walker_delta
from repro.spacecdn.lookup import nearest_cached_batch, nearest_cached_from_rows
from repro.spacecdn.system import SpaceCdnSystem
from repro.topology import fastcore
from repro.topology.graph import build_snapshot

CONSTELLATION = build_walker_delta(
    ShellConfig(
        altitude_km=550.0,
        inclination_deg=53.0,
        num_planes=20,
        sats_per_plane=20,
        phase_offset=7,
        name="batch-shell",
    )
)
CATALOG = build_catalog(
    np.random.default_rng(1),
    40,
    regions=("africa", "europe"),
    kind_weights={"web": 1.0},
)
OBJECTS = sorted(o.object_id for o in CATALOG)
USERS = [
    GeoPoint(0.0, 0.0, 0.0),
    GeoPoint(-25.9, 32.6, 0.0),  # Maputo
    GeoPoint(51.5, -0.1, 0.0),  # London
    GeoPoint(40.7, -74.0, 0.0),  # New York
    GeoPoint(-1.3, 36.8, 0.0),  # Nairobi
    GeoPoint(35.7, 139.7, 0.0),  # Tokyo
]


def make_system(schedule: FaultSchedule | None = None) -> SpaceCdnSystem:
    system = SpaceCdnSystem(
        constellation=CONSTELLATION,
        catalog=CATALOG,
        cache_bytes_per_satellite=10**8,
        max_hops=6,
        fault_schedule=schedule,
    )
    system.preload(
        {
            oid: frozenset(
                {(i * 7) % len(CONSTELLATION), (i * 13 + 5) % len(CONSTELLATION)}
            )
            for i, oid in enumerate(OBJECTS[:12])
        }
    )
    return system


def run_scalar(system, spec):
    results = []
    for u, o, t in spec:
        try:
            results.append(system.serve(USERS[u], OBJECTS[o], t))
        except UnavailableError:
            results.append(None)
    return results


def run_batched(system, spec):
    """Group the spec into per-slot cohorts, exactly as run(batch=True)."""
    results = []
    group: list[tuple[int, int, float]] = []
    slot = None

    def flush():
        if not group:
            return
        results.extend(
            system.serve_batch(
                [USERS[u] for u, _, _ in group],
                [OBJECTS[o] for _, o, _ in group],
                [t for _, _, t in group],
                continue_on_unavailable=True,
            )
        )
        group.clear()

    for u, o, t in spec:
        s = int(t // system.snapshot_interval_s)
        if slot is not None and s != slot:
            flush()
        slot = s
        group.append((u, o, t))
    flush()
    return results


def cache_state(system):
    return {
        s: cache.object_ids()
        for s, cache in system._caches.items()
        if cache.object_ids()
    }


def holders_state(system):
    return {oid: system.holders_of(oid) for oid in OBJECTS}


def assert_equivalent(spec, schedule_factory=lambda: None):
    scalar = make_system(schedule_factory())
    batched = make_system(schedule_factory())
    expected = run_scalar(scalar, spec)
    actual = run_batched(batched, spec)
    assert actual == expected
    assert batched.stats == scalar.stats
    assert cache_state(batched) == cache_state(scalar)
    assert holders_state(batched) == holders_state(scalar)


def dense_spec(n, seed, max_step_s=4.0):
    rng = np.random.default_rng(seed)
    t = 0.0
    spec = []
    for _ in range(n):
        t += float(rng.uniform(0.0, max_step_s))
        spec.append(
            (int(rng.integers(len(USERS))), int(rng.integers(len(OBJECTS))), t)
        )
    return spec


class TestHealthyEquivalence:
    def test_dense_stream_matches_scalar(self):
        assert_equivalent(dense_spec(150, seed=3))

    def test_repeated_object_promotes_within_cohort(self):
        """A ground pull-through must be visible to the very next request
        of the same cohort — the second fetch hits the access cache."""
        system = make_system()
        oid = OBJECTS[-1]  # never preloaded
        results = system.serve_batch(
            [USERS[0], USERS[0]], [oid, oid], 0.0
        )
        assert results[0].source.value == "ground"
        assert results[1].source.value == "access-satellite"

    def test_eviction_churn_matches_scalar(self):
        """Caches sized for ~1 object force evictions mid-cohort; the dirty
        re-resolution must track them exactly."""
        sizes = sorted(o.size_bytes for o in CATALOG)

        def tiny():
            return SpaceCdnSystem(
                constellation=CONSTELLATION,
                catalog=CATALOG,
                cache_bytes_per_satellite=max(sizes) + 1,
                max_hops=6,
            )

        spec = dense_spec(120, seed=9, max_step_s=1.0)
        scalar, batched = tiny(), tiny()
        expected = run_scalar(scalar, spec)
        actual = run_batched(batched, spec)
        assert actual == expected
        assert cache_state(batched) == cache_state(scalar)
        assert holders_state(batched) == holders_state(scalar)


class TestDegradedEquivalence:
    @staticmethod
    def schedule():
        return (
            FaultSchedule()
            .add(
                OutageWindow(
                    satellites=frozenset(range(0, len(CONSTELLATION), 7))
                )
            )
            .add(TransientAttemptLoss(probability=0.3, seed=7))
        )

    def test_faulted_stream_matches_scalar(self):
        assert_equivalent(dense_spec(120, seed=5), self.schedule)

    def test_all_down_raises_like_scalar(self):
        schedule = FaultSchedule().add(
            OutageWindow(satellites=frozenset(range(len(CONSTELLATION))))
        )
        system = make_system(schedule)
        with pytest.raises(UnavailableError):
            system.serve_batch([USERS[0]], [OBJECTS[0]], 0.0)

    def test_all_down_continue_yields_none_slots(self):
        schedule = FaultSchedule().add(
            OutageWindow(satellites=frozenset(range(len(CONSTELLATION))))
        )
        system = make_system(schedule)
        results = system.serve_batch(
            [USERS[0], USERS[1]],
            [OBJECTS[0], OBJECTS[1]],
            0.0,
            continue_on_unavailable=True,
        )
        assert results == [None, None]
        assert system.stats.unavailable == 2


class TestBatchProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=2**16),
        st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_serve_batch_equals_scalar(self, n, seed, faulted):
        spec = dense_spec(n, seed=seed, max_step_s=6.0)
        if faulted:
            rng = np.random.default_rng(seed)
            failed = frozenset(
                int(s)
                for s in rng.choice(
                    len(CONSTELLATION), size=len(CONSTELLATION) // 5, replace=False
                )
            )

            def factory():
                return (
                    FaultSchedule(wipe_caches_on_outage=bool(seed % 2))
                    .add(OutageWindow(satellites=failed))
                    .add(
                        TransientAttemptLoss(
                            probability=0.25, seed=seed & 0xFFFF
                        )
                    )
                )

            assert_equivalent(spec, factory)
        else:
            assert_equivalent(spec)


class TestCohortValidation:
    def test_empty_cohort(self):
        assert make_system().serve_batch([], [], 0.0) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system().serve_batch([USERS[0]], [OBJECTS[0], OBJECTS[1]], 0.0)

    def test_times_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system().serve_batch([USERS[0]], [OBJECTS[0]], [0.0, 1.0])

    def test_cross_slot_cohort_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system().serve_batch(
                [USERS[0], USERS[1]], [OBJECTS[0], OBJECTS[1]], [0.0, 61.0]
            )

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            make_system().serve_batch([USERS[0]], [OBJECTS[0]], -1.0)

    def test_scalar_time_broadcasts(self):
        system = make_system()
        results = system.serve_batch(
            [USERS[0], USERS[1]], [OBJECTS[0], OBJECTS[1]], 5.0
        )
        assert [r.t_s for r in results] == [5.0, 5.0]


class TestHoldersIndexIntegrity:
    def test_eviction_never_leaves_stale_entries(self):
        sizes = sorted(o.size_bytes for o in CATALOG)
        system = SpaceCdnSystem(
            constellation=CONSTELLATION,
            catalog=CATALOG,
            cache_bytes_per_satellite=max(sizes) + 1,
        )
        for i, oid in enumerate(OBJECTS):
            system._store(i % 4, oid)
        self._assert_index_mirrors_caches(system)

    def test_wipe_never_leaves_stale_entries(self):
        failed = frozenset(range(0, len(CONSTELLATION), 3))
        schedule = FaultSchedule(wipe_caches_on_outage=True).add(
            OutageWindow(satellites=failed)
        )
        system = make_system(schedule)
        # First serve compiles the fault view and wipes the outage set.
        try:
            system.serve(USERS[0], OBJECTS[0], 0.0)
        except UnavailableError:
            pass
        for oid in OBJECTS:
            assert not (system.holders_of(oid) & failed), oid
        self._assert_index_mirrors_caches(system)

    def test_batched_churn_keeps_index_consistent(self):
        system = make_system()
        run_batched(system, dense_spec(100, seed=11, max_step_s=1.0))
        self._assert_index_mirrors_caches(system)

    @staticmethod
    def _assert_index_mirrors_caches(system):
        for satellite, cache in system._caches.items():
            for oid in cache.object_ids():
                assert satellite in system.holders_of(oid)
        for oid in OBJECTS:
            for satellite in system.holders_of(oid):
                assert oid in system.cache_of(satellite)


class TestHoldersIndexUnit:
    def test_add_discard_roundtrip(self):
        index = HoldersIndex()
        index.add("a", 3)
        index.add("a", 5)
        index.add("b", 3)
        assert index.holders("a") == frozenset({3, 5})
        assert "a" in index and len(index) == 2
        index.discard("a", 3)
        assert index.holders("a") == frozenset({5})
        index.discard("a", 5)
        assert "a" not in index
        assert index.holders("a") == frozenset()

    def test_drop_satellite(self):
        index = HoldersIndex()
        for oid in ("a", "b", "c"):
            index.add(oid, 1)
            index.add(oid, 2)
        index.drop_satellite(1, {"a", "b"})
        assert index.holders("a") == frozenset({2})
        assert index.holders("c") == frozenset({1, 2})

    def test_holders_matrix_is_live_and_tracks_dirt(self):
        index = HoldersIndex()
        index.add("a", 0)
        index.add("b", 4)
        matrix = index.holders_matrix(["a", "b"], 6)
        assert matrix.dtype == bool and matrix.shape == (2, 6)
        assert matrix[0, 0] and matrix[1, 4]
        assert index.dirty_objects == set()
        index.add("a", 2)
        index.discard("b", 4)
        assert matrix[0, 2] and not matrix[1, 4]
        assert index.dirty_objects == {"a", "b"}
        # Rebuilding the view resets the dirty set.
        index.holders_matrix(["a"], 6)
        assert index.dirty_objects == set()

    def test_release_view_stops_updates(self):
        index = HoldersIndex()
        index.add("a", 1)
        matrix = index.holders_matrix(["a"], 4)
        index.release_view()
        index.add("a", 3)
        assert not matrix[0, 3]


class TestBatchKernels:
    def test_visibility_batch_bit_equal_to_scalar(self, small_constellation):
        points = USERS[:4]
        for t in (0.0, 120.0):
            vb = visible_satellites_batch(small_constellation, points, t)
            for p, point in enumerate(points):
                scalar = visible_satellites(small_constellation, point, t)
                batch = vb.visible_list(p)
                assert [s.index for s in batch] == [s.index for s in scalar]
                assert [s.elevation_deg for s in batch] == [
                    s.elevation_deg for s in scalar
                ]
                assert [s.slant_range_km for s in batch] == [
                    s.slant_range_km for s in scalar
                ]

    def test_visibility_batch_empty_points(self, small_constellation):
        vb = visible_satellites_batch(small_constellation, [], 0.0)
        assert vb.num_points == 0

    def test_single_source_batch_rows_equal_scalar(self, small_constellation):
        snapshot = build_snapshot(small_constellation, 0.0)
        sources = [0, 5, 17]
        hops_m, lats_m = fastcore.single_source_batch(snapshot.core, sources)
        for i, source in enumerate(sources):
            hops, lats = fastcore.single_source(snapshot.core, source)
            np.testing.assert_array_equal(hops_m[i], hops)
            np.testing.assert_array_equal(lats_m[i], lats)

    def test_single_source_batch_masked_rows_equal_scalar(
        self, small_constellation
    ):
        snapshot = build_snapshot(small_constellation, 0.0)
        active = np.ones(snapshot.core.num_nodes, dtype=bool)
        active[::5] = False
        active[[1, 2]] = True
        sources = [1, 2]
        hops_m, lats_m = fastcore.single_source_batch(
            snapshot.core, sources, active
        )
        for i, source in enumerate(sources):
            hops, lats = fastcore.single_source(snapshot.core, source, active)
            np.testing.assert_array_equal(hops_m[i], hops)
            np.testing.assert_array_equal(lats_m[i], lats)

    def test_nearest_cached_batch_matches_rowwise(self):
        rng = np.random.default_rng(0)
        n, rows = 30, 12
        hops = rng.integers(0, 8, size=(rows, n)).astype(np.int32)
        hops[rng.random((rows, n)) < 0.2] = fastcore.HOP_UNREACHABLE
        lats = rng.uniform(1.0, 50.0, size=(rows, n))
        holders = rng.random((rows, n)) < 0.3
        found, best = nearest_cached_batch(hops, lats, holders, max_hops=5,
                                           min_hops=1)
        for r in range(rows):
            cache_set = {int(s) for s in np.flatnonzero(holders[r])}
            expected = nearest_cached_from_rows(
                hops[r], lats[r], cache_set, max_hops=5, min_hops=1
            )
            if expected is None:
                assert not found[r]
            else:
                assert found[r]
                assert int(best[r]) == expected[0]
