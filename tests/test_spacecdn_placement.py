"""Tests for replica placement — including the paper's 4-copies/5-hops claim."""

import numpy as np
import pytest

from repro.errors import PlacementError
from repro.spacecdn.placement import (
    KPerPlanePlacement,
    PlacementPlan,
    RandomPlacement,
    replica_hop_profile,
    spaced_slots,
)


class TestSpacedSlots:
    def test_count(self):
        assert len(spaced_slots(22, 4)) == 4

    def test_all_distinct(self):
        slots = spaced_slots(22, 4)
        assert len(set(slots)) == 4

    def test_roughly_even_spacing(self):
        slots = sorted(spaced_slots(22, 4))
        gaps = [
            (b - a) % 22 for a, b in zip(slots, slots[1:] + [slots[0] + 22])
        ]
        assert max(gaps) - min(gaps) <= 2

    def test_offset_rotates(self):
        base = spaced_slots(22, 4, offset=0)
        rotated = spaced_slots(22, 4, offset=3)
        assert set(rotated) == {(s + 3) % 22 for s in base}

    def test_full_plane(self):
        assert set(spaced_slots(8, 8)) == set(range(8))

    def test_invalid_copies_rejected(self):
        with pytest.raises(PlacementError):
            spaced_slots(22, 0)
        with pytest.raises(PlacementError):
            spaced_slots(22, 23)


class TestPlacementPlan:
    def test_place_and_lookup(self):
        plan = PlacementPlan()
        plan.place("a", frozenset({1, 2, 3}))
        assert plan.holders("a") == frozenset({1, 2, 3})
        assert plan.replica_count("a") == 3

    def test_unplaced_raises(self):
        with pytest.raises(PlacementError):
            PlacementPlan().holders("ghost")

    def test_empty_placement_rejected(self):
        with pytest.raises(PlacementError):
            PlacementPlan().place("a", frozenset())


class TestKPerPlanePlacement:
    def test_replica_count(self, shell1):
        placement = KPerPlanePlacement(copies_per_plane=4)
        holders = placement.place_object("video-1", shell1)
        assert len(holders) == 4 * shell1.num_planes

    def test_every_plane_covered(self, shell1):
        holders = KPerPlanePlacement(copies_per_plane=2).place_object("x", shell1)
        planes = {h // shell1.sats_per_plane for h in holders}
        assert planes == set(range(shell1.num_planes))

    def test_different_objects_different_satellites(self, shell1):
        placement = KPerPlanePlacement(copies_per_plane=4)
        a = placement.place_object("object-a", shell1)
        b = placement.place_object("object-b", shell1)
        assert a != b

    def test_deterministic(self, shell1):
        placement = KPerPlanePlacement(copies_per_plane=4)
        assert placement.place_object("x", shell1) == placement.place_object("x", shell1)

    def test_build_plan(self, shell1):
        plan = KPerPlanePlacement(copies_per_plane=1).build_plan(["a", "b"], shell1)
        assert plan.replica_count("a") == shell1.num_planes
        assert plan.replica_count("b") == shell1.num_planes


class TestRandomPlacement:
    def test_total_copies(self, shell1):
        placement = RandomPlacement(total_copies=50, rng=np.random.default_rng(0))
        assert len(placement.place_object("x", shell1)) == 50

    def test_invalid_copies_rejected(self, shell1):
        placement = RandomPlacement(total_copies=0)
        with pytest.raises(PlacementError):
            placement.place_object("x", shell1)


class TestReplicaHopProfile:
    def test_holders_at_zero(self, small_snapshot):
        profile = replica_hop_profile(small_snapshot, frozenset({0, 10}))
        assert profile[0] == 0
        assert profile[10] == 0

    def test_all_satellites_profiled(self, small_snapshot, small_shell):
        profile = replica_hop_profile(small_snapshot, frozenset({0}))
        assert len(profile) == small_shell.total_satellites

    def test_empty_holders_rejected(self, small_snapshot):
        with pytest.raises(PlacementError):
            replica_hop_profile(small_snapshot, frozenset())

    def test_unknown_holder_rejected(self, small_snapshot):
        with pytest.raises(PlacementError):
            replica_hop_profile(small_snapshot, frozenset({99999}))

    def test_more_replicas_never_increase_distance(self, small_snapshot):
        few = replica_hop_profile(small_snapshot, frozenset({0}))
        many = replica_hop_profile(small_snapshot, frozenset({0, 20, 40}))
        assert all(many[sat] <= few[sat] for sat in few)

    def test_paper_claim_4_copies_per_plane_within_5_hops(self, shell1_snapshot, shell1):
        # Paper §4: "with around 4 copies distributed within each plane, an
        # object can be reachable within 5 hops, even within a single orbital
        # plane; fewer copies would be needed if east-west ISLs ... are used."
        holders = KPerPlanePlacement(copies_per_plane=4).place_object(
            "popular-video", shell1
        )
        profile = replica_hop_profile(shell1_snapshot, holders)
        assert max(profile.values()) <= 5

    def test_intra_plane_only_bound(self, shell1):
        # Even ignoring cross-plane links, 4 evenly spaced copies in a
        # 22-satellite ring leave at most ceil((22/4)/2) = 3 hops.
        slots = spaced_slots(22, 4)
        worst = max(
            min(min((s - slot) % 22, (slot - s) % 22) for s in slots)
            for slot in range(22)
        )
        assert worst <= 3
