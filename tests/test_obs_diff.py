"""Unit and CLI tests for the bench-regression gate (``repro obs diff``)."""

from __future__ import annotations

import json

import pytest

from repro.cli import EXIT_ERROR, EXIT_REGRESSION, main
from repro.errors import ObsError
from repro.obs.benchdiff import (
    diff_benchmark_files,
    diff_benchmarks,
    flatten_benchmark,
    format_diff,
    has_regressions,
    metric_direction,
)

OLD = {
    "healthy": {"requests_per_min": 3.0e6, "batch_seconds": 0.40, "speedup": 11.0},
    "chaos": {"scalar_seconds": 1.6},
    "seed": 5,
    "requests": 4000,
}


def status_by_metric(diffs):
    return {diff.metric: diff.status for diff in diffs}


class TestFlatten:
    def test_numeric_leaves_to_dotted_paths(self):
        flat = flatten_benchmark(OLD)
        assert flat["healthy.requests_per_min"] == 3.0e6
        assert flat["chaos.scalar_seconds"] == 1.6
        assert flat["seed"] == 5.0

    def test_pytest_benchmark_arrays_keyed_by_name(self):
        doc = {
            "machine_info": {"cpu": {"count": 8}},
            "benchmarks": [
                {"name": "test_routing", "stats": {"mean": 0.002, "rounds": 30}},
            ],
        }
        flat = flatten_benchmark(doc)
        assert flat["benchmarks.test_routing.stats.mean"] == 0.002
        assert not any(path.startswith("machine_info") for path in flat)

    def test_anonymous_lists_and_bools_skipped(self):
        flat = flatten_benchmark({"xs": [1, 2, 3], "flag": True, "mean": 2.0})
        assert flat == {"mean": 2.0}


class TestDirection:
    @pytest.mark.parametrize(
        "key", ["mean", "min_s", "batch_seconds", "scalar_seconds", "p99_latency"]
    )
    def test_lower_is_better(self, key):
        assert metric_direction(key) == "lower"

    @pytest.mark.parametrize(
        "key", ["requests_per_min", "shards_per_second", "speedup", "ops"]
    )
    def test_higher_is_better(self, key):
        assert metric_direction(key) == "higher"

    @pytest.mark.parametrize("key", ["seed", "requests", "rounds", "cpu_count"])
    def test_undirected_keys_not_compared(self, key):
        assert metric_direction(key) is None


class TestDiffBenchmarks:
    def test_identical_documents_all_ok(self):
        diffs = diff_benchmarks(OLD, OLD)
        assert not has_regressions(diffs)
        assert set(status_by_metric(diffs).values()) == {"ok"}
        # Configuration echoes never enter the comparison.
        assert "seed" not in status_by_metric(diffs)

    def test_adverse_change_past_threshold_is_a_regression(self):
        new = json.loads(json.dumps(OLD))
        new["healthy"]["requests_per_min"] *= 0.7  # -30% throughput
        new["chaos"]["scalar_seconds"] *= 1.3  # +30% runtime
        diffs = diff_benchmarks(OLD, new, threshold_pct=20.0)
        statuses = status_by_metric(diffs)
        assert statuses["healthy.requests_per_min"] == "regression"
        assert statuses["chaos.scalar_seconds"] == "regression"
        assert has_regressions(diffs)

    def test_adverse_change_within_threshold_is_ok(self):
        new = json.loads(json.dumps(OLD))
        new["healthy"]["requests_per_min"] *= 0.9
        assert not has_regressions(diff_benchmarks(OLD, new, threshold_pct=20.0))

    def test_improvement_is_never_a_regression(self):
        new = json.loads(json.dumps(OLD))
        new["healthy"]["requests_per_min"] *= 2.0
        new["chaos"]["scalar_seconds"] *= 0.5
        diffs = diff_benchmarks(OLD, new, threshold_pct=1.0)
        assert not has_regressions(diffs)
        assert status_by_metric(diffs)["healthy.requests_per_min"] == "improved"

    def test_per_metric_override_tightens_one_budget(self):
        new = json.loads(json.dumps(OLD))
        new["healthy"]["requests_per_min"] *= 0.9  # -10%
        diffs = diff_benchmarks(
            OLD, new, threshold_pct=20.0,
            per_metric={"healthy.requests_per_min": 5.0},
        )
        assert status_by_metric(diffs)["healthy.requests_per_min"] == "regression"

    def test_unknown_override_is_refused(self):
        with pytest.raises(ObsError, match="match no metric"):
            diff_benchmarks(OLD, OLD, per_metric={"no.such.metric": 5.0})

    def test_vanished_metric_is_a_regression_new_metric_is_not(self):
        new = json.loads(json.dumps(OLD))
        del new["healthy"]["speedup"]
        new["healthy"]["shards_per_second"] = 40.0
        diffs = diff_benchmarks(OLD, new)
        statuses = status_by_metric(diffs)
        assert statuses["healthy.speedup"] == "missing"
        assert statuses["healthy.shards_per_second"] == "new"
        assert has_regressions(diffs)

    def test_format_diff_renders_table_and_verdict(self):
        new = json.loads(json.dumps(OLD))
        new["healthy"]["requests_per_min"] *= 0.5
        text = format_diff(diff_benchmarks(OLD, new))
        assert "healthy.requests_per_min" in text
        assert "-50.0%" in text
        assert "REGRESSION: 1 of" in text
        clean = format_diff(diff_benchmarks(OLD, OLD))
        assert "within budget" in clean

    def test_no_comparable_metrics_is_not_a_regression(self):
        diffs = diff_benchmarks({"seed": 1}, {"seed": 2})
        assert diffs == []
        assert not has_regressions(diffs)
        assert "no comparable" in format_diff(diffs)


class TestDiffFiles:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return path

    def test_file_round_trip(self, tmp_path):
        old = self.write(tmp_path, "old.json", OLD)
        new = self.write(tmp_path, "new.json", OLD)
        assert not has_regressions(diff_benchmark_files(old, new))

    def test_unreadable_and_malformed_files_are_obs_errors(self, tmp_path):
        good = self.write(tmp_path, "good.json", OLD)
        with pytest.raises(ObsError, match="cannot read"):
            diff_benchmark_files(tmp_path / "absent.json", good)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ObsError, match="not valid JSON"):
            diff_benchmark_files(good, bad)


class TestCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", OLD)
        assert main(["obs", "diff", old, old]) == 0
        assert "within budget" in capsys.readouterr().out

    def test_regression_exits_nine(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", OLD)
        regressed = json.loads(json.dumps(OLD))
        regressed["healthy"]["requests_per_min"] *= 0.5
        new = self.write(tmp_path, "new.json", regressed)
        assert main(["obs", "diff", old, new]) == EXIT_REGRESSION == 9
        assert "REGRESSION" in capsys.readouterr().out

    def test_threshold_flag_loosens_the_gate(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", OLD)
        regressed = json.loads(json.dumps(OLD))
        regressed["healthy"]["requests_per_min"] *= 0.7
        new = self.write(tmp_path, "new.json", regressed)
        assert main(["obs", "diff", old, new, "--threshold", "50"]) == 0
        capsys.readouterr()

    def test_metric_override_flag(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", OLD)
        regressed = json.loads(json.dumps(OLD))
        regressed["healthy"]["requests_per_min"] *= 0.9
        new = self.write(tmp_path, "new.json", regressed)
        assert (
            main(
                [
                    "obs", "diff", old, new,
                    "--metric", "healthy.requests_per_min=5",
                ]
            )
            == EXIT_REGRESSION
        )
        capsys.readouterr()

    def test_bad_metric_override_is_a_usage_error(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json", OLD)
        assert main(["obs", "diff", old, old, "--metric", "nonsense"]) == EXIT_ERROR
        assert "dotted.path=percent" in capsys.readouterr().err

    def test_missing_file_is_a_plain_error_not_a_regression(
        self, tmp_path, capsys
    ):
        old = self.write(tmp_path, "old.json", OLD)
        code = main(["obs", "diff", old, str(tmp_path / "absent.json")])
        assert code == EXIT_ERROR
        assert "cannot read" in capsys.readouterr().err
