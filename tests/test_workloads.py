"""Tests for workload generation."""

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.errors import ConfigurationError
from repro.geo.datasets import city_by_name
from repro.spacecdn.bubbles import RegionalPopularity
from repro.workloads.regional import RegionalRequestMixer, region_of_city
from repro.workloads.requests import RequestGenerator
from repro.workloads.zipf import ZipfDistribution


class TestZipf:
    def test_pmf_sums_to_one(self):
        zipf = ZipfDistribution(n=100, s=0.9)
        assert sum(zipf.pmf(k) for k in range(1, 101)) == pytest.approx(1.0)

    def test_pmf_monotone_decreasing(self):
        zipf = ZipfDistribution(n=50, s=1.0)
        probs = [zipf.pmf(k) for k in range(1, 51)]
        assert probs == sorted(probs, reverse=True)

    def test_rank_one_most_likely(self):
        zipf = ZipfDistribution(n=100, s=0.9, rng=np.random.default_rng(0))
        samples = zipf.sample_many(5000)
        counts = np.bincount(samples, minlength=101)
        assert counts[1] == counts[1:].max()

    def test_samples_in_range(self):
        zipf = ZipfDistribution(n=10, s=0.7, rng=np.random.default_rng(1))
        samples = zipf.sample_many(1000)
        assert samples.min() >= 1
        assert samples.max() <= 10

    def test_head_mass_increases(self):
        zipf = ZipfDistribution(n=100, s=0.9)
        assert zipf.head_mass(10) < zipf.head_mass(50) < zipf.head_mass(100)
        assert zipf.head_mass(100) == pytest.approx(1.0)

    def test_higher_s_more_skew(self):
        mild = ZipfDistribution(n=100, s=0.5)
        steep = ZipfDistribution(n=100, s=1.5)
        assert steep.head_mass(5) > mild.head_mass(5)

    @pytest.mark.parametrize("kwargs", [{"n": 0}, {"s": 0.0}, {"s": -1.0}])
    def test_invalid_config(self, kwargs):
        base = dict(n=10, s=0.9)
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ZipfDistribution(**base)

    def test_pmf_out_of_range(self):
        zipf = ZipfDistribution(n=10)
        with pytest.raises(ConfigurationError):
            zipf.pmf(0)
        with pytest.raises(ConfigurationError):
            zipf.pmf(11)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ZipfDistribution(n=10).sample_many(-1)


@pytest.fixture
def mixer():
    catalog = build_catalog(
        np.random.default_rng(0),
        300,
        regions=("europe", "africa"),
        global_fraction=0.2,
        kind_weights={"web": 1.0},
    )
    popularity = RegionalPopularity(catalog=catalog, seed=2)
    return RegionalRequestMixer(popularity=popularity, rng=np.random.default_rng(3))


class TestRegionalMixer:
    def test_region_of_city(self):
        assert region_of_city(city_by_name("Maputo")) == "africa"
        assert region_of_city(city_by_name("Berlin")) == "europe"

    def test_samples_for_home_region(self, mixer):
        maputo = city_by_name("Maputo")
        ids = mixer.stream_for_city(maputo, 200)
        regions = [mixer.popularity.catalog.get(i).region for i in ids]
        africa_share = sum(1 for r in regions if r in ("africa", "global")) / len(regions)
        assert africa_share > 0.85

    def test_city_without_modelled_region_falls_back(self, mixer):
        tokyo = city_by_name("Tokyo")  # "asia" is not in the 2-region catalog
        ids = mixer.stream_for_city(tokyo, 20)
        assert len(ids) == 20

    def test_negative_count_rejected(self, mixer):
        with pytest.raises(ConfigurationError):
            mixer.stream_for_city(city_by_name("Maputo"), -1)


class TestRequestGenerator:
    def test_stream_ordered_and_bounded(self, mixer):
        cities = (city_by_name("Maputo"), city_by_name("Berlin"))
        generator = RequestGenerator(
            cities=cities,
            mixer=mixer,
            requests_per_second_total=50.0,
            rng=np.random.default_rng(4),
        )
        requests = generator.generate_list(10.0)
        times = [r.t_s for r in requests]
        assert times == sorted(times)
        assert all(0.0 <= t < 10.0 for t in times)
        # ~500 expected arrivals.
        assert 350 < len(requests) < 700

    def test_population_weighting(self, mixer):
        big = city_by_name("Lagos")  # 15.4 M
        small = city_by_name("Mbabane")  # 0.1 M
        generator = RequestGenerator(
            cities=(big, small),
            mixer=mixer,
            requests_per_second_total=100.0,
            rng=np.random.default_rng(5),
        )
        requests = generator.generate_list(20.0)
        lagos = sum(1 for r in requests if r.city.name == "Lagos")
        assert lagos / len(requests) > 0.9

    def test_invalid_config(self, mixer):
        with pytest.raises(ConfigurationError):
            RequestGenerator(cities=(), mixer=mixer)
        with pytest.raises(ConfigurationError):
            RequestGenerator(
                cities=(city_by_name("Lagos"),),
                mixer=mixer,
                requests_per_second_total=0.0,
            )

    def test_invalid_duration(self, mixer):
        generator = RequestGenerator(cities=(city_by_name("Lagos"),), mixer=mixer)
        with pytest.raises(ConfigurationError):
            generator.generate_list(0.0)
