"""Tests for multi-shell fleets and access-satellite churn."""

import pytest

from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.churn import access_churn
from repro.orbits.elements import (
    ShellConfig,
    starlink_shell1,
    starlink_shell3,
    starlink_vleo,
)
from repro.orbits.multi import MultiShellConstellation


@pytest.fixture(scope="module")
def fleet() -> MultiShellConstellation:
    return MultiShellConstellation(shells=(starlink_shell1(), starlink_shell3()))


class TestFleetIndexing:
    def test_total_size(self, fleet):
        assert len(fleet) == 1584 + 720

    def test_resolve_first_shell(self, fleet):
        sat = fleet.resolve(100)
        assert sat.shell_index == 0
        assert sat.shell_name == "starlink-shell1"
        assert sat.local_index == 100

    def test_resolve_second_shell(self, fleet):
        sat = fleet.resolve(1584 + 5)
        assert sat.shell_index == 1
        assert sat.shell_name == "starlink-shell3"
        assert sat.local_index == 5

    def test_round_trip(self, fleet):
        for fleet_index in (0, 1583, 1584, 2303):
            sat = fleet.resolve(fleet_index)
            assert fleet.fleet_index(sat.shell_index, sat.local_index) == fleet_index

    def test_out_of_range_rejected(self, fleet):
        with pytest.raises(ConfigurationError):
            fleet.resolve(len(fleet))
        with pytest.raises(ConfigurationError):
            fleet.resolve(-1)
        with pytest.raises(ConfigurationError):
            fleet.fleet_index(5, 0)
        with pytest.raises(ConfigurationError):
            fleet.fleet_index(0, 99999)

    def test_duplicate_shell_names_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiShellConstellation(shells=(starlink_shell1(), starlink_shell1()))

    def test_empty_shells_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiShellConstellation(shells=())


class TestFleetGeometry:
    def test_positions_stacked(self, fleet):
        positions = fleet.positions_ecef(0.0)
        assert positions.shape == (len(fleet), 3)

    def test_visibility_merges_shells(self, fleet):
        # At 60 N, Shell 1 (53 deg) is marginal but Shell 3 (70 deg) covers.
        far_north = GeoPoint(64.0, 10.0, 0.0)
        hits = fleet.visible_satellites(far_north, 0.0)
        shells_seen = {sat.shell_name for sat, _ in hits}
        assert "starlink-shell3" in shells_seen

    def test_visibility_sorted_by_range(self, fleet):
        hits = fleet.visible_satellites(GeoPoint(0.0, 0.0), 0.0)
        ranges = [v.slant_range_km for _, v in hits]
        assert ranges == sorted(ranges)

    def test_nearest_visible(self, fleet):
        sat, visible = fleet.nearest_visible(GeoPoint(0.0, 0.0), 0.0)
        assert visible.elevation_deg >= 25.0
        assert fleet.resolve(sat.fleet_index) == sat

    def test_nearest_visible_raises_when_uncovered(self, fleet):
        with pytest.raises(VisibilityError):
            fleet.nearest_visible(GeoPoint(85.0, 0.0), 0.0)

    def test_coverage_by_shell(self, fleet):
        counts = fleet.coverage_by_shell(GeoPoint(0.0, 0.0), 0.0)
        assert set(counts) == {"starlink-shell1", "starlink-shell3"}
        assert counts["starlink-shell1"] > 0

    def test_vleo_fleet_lower_min_range(self):
        single = MultiShellConstellation(shells=(starlink_shell1(),))
        with_vleo = MultiShellConstellation(
            shells=(starlink_shell1(), starlink_vleo())
        )
        point = GeoPoint(10.0, 10.0)
        _, nearest_single = single.nearest_visible(point, 0.0)
        _, nearest_vleo = with_vleo.nearest_visible(point, 0.0)
        assert nearest_vleo.slant_range_km <= nearest_single.slant_range_km


class TestAccessChurn:
    def test_report_fields(self, shell1_constellation):
        report = access_churn(
            shell1_constellation, GeoPoint(0.0, 0.0), duration_s=600.0
        )
        assert report.observations == 40  # 600 / 15
        assert report.switches >= 1  # passes last only minutes
        assert report.distinct_satellites >= 2
        assert 0 < report.mean_dwell_s <= 600.0

    def test_dwell_consistent_with_pass_duration(self, shell1_constellation):
        # Nearest-satellite dwell times cannot exceed a pass (~5-10 min max).
        report = access_churn(
            shell1_constellation, GeoPoint(0.0, 0.0), duration_s=1800.0
        )
        assert report.mean_dwell_s < 10 * 60

    def test_switch_rate_positive(self, shell1_constellation):
        report = access_churn(
            shell1_constellation, GeoPoint(20.0, 50.0), duration_s=900.0
        )
        assert report.switch_rate_per_minute > 0.1

    def test_invalid_args(self, shell1_constellation):
        with pytest.raises(ConfigurationError):
            access_churn(shell1_constellation, GeoPoint(0.0, 0.0), duration_s=0.0)
        with pytest.raises(ConfigurationError):
            access_churn(
                shell1_constellation, GeoPoint(0.0, 0.0), duration_s=10.0, interval_s=0.0
            )

    def test_uncovered_terminal_raises(self, shell1_constellation):
        with pytest.raises(VisibilityError):
            access_churn(shell1_constellation, GeoPoint(80.0, 0.0), duration_s=60.0)
