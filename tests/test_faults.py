"""Tests for the fault-injection layer: processes, schedules, masks."""

import math

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    FaultConfigError,
    RoutingError,
)
from repro.faults import (
    FaultSchedule,
    FaultView,
    GroundStationOutage,
    IslCut,
    IslDegradation,
    KillList,
    OutageWindow,
    RandomIslCuts,
    RetryPolicy,
    SatelliteOutageProcess,
    TransientAttemptLoss,
    apply_fault_view,
)
from repro.topology import fastcore


class TestSatelliteOutageProcess:
    def test_starts_healthy(self):
        process = SatelliteOutageProcess(
            total_satellites=10, mtbf_s=1000.0, mttr_s=100.0, seed=0
        )
        assert process.failed_satellites(0.0) == frozenset()

    def test_deterministic_across_instances(self):
        kwargs = dict(total_satellites=8, mtbf_s=500.0, mttr_s=50.0, seed=3)
        a = SatelliteOutageProcess(**kwargs)
        b = SatelliteOutageProcess(**kwargs)
        for t in (0.0, 123.0, 4567.0, 99.0):
            assert a.failed_satellites(t) == b.failed_satellites(t)

    def test_query_order_independent(self):
        kwargs = dict(total_satellites=6, mtbf_s=300.0, mttr_s=30.0, seed=9)
        forward = SatelliteOutageProcess(**kwargs)
        answers = {t: forward.failed_satellites(t) for t in (10.0, 5000.0, 250.0)}
        backward = SatelliteOutageProcess(**kwargs)
        for t in (250.0, 10.0, 5000.0):
            assert backward.failed_satellites(t) == answers[t]

    def test_down_fraction_matches_mtbf_mttr(self):
        process = SatelliteOutageProcess(
            total_satellites=200, mtbf_s=900.0, mttr_s=100.0, seed=1
        )
        expected = process.expected_down_fraction()
        assert expected == pytest.approx(0.1)
        samples = [
            len(process.failed_satellites(t)) / 200.0
            for t in np.linspace(500.0, 50_000.0, 40)
        ]
        assert np.mean(samples) == pytest.approx(expected, abs=0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_satellites": 0, "mtbf_s": 10.0, "mttr_s": 1.0},
            {"total_satellites": 5, "mtbf_s": 0.0, "mttr_s": 1.0},
            {"total_satellites": 5, "mtbf_s": 10.0, "mttr_s": -1.0},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(FaultConfigError):
            SatelliteOutageProcess(**kwargs)

    def test_out_of_range_satellite_rejected(self):
        process = SatelliteOutageProcess(
            total_satellites=4, mtbf_s=10.0, mttr_s=1.0
        )
        with pytest.raises(FaultConfigError):
            process.is_down(4, 0.0)


class TestKillList:
    def test_permanent_after_kill_time(self):
        kills = KillList.at({3: 100.0, 7: 200.0})
        assert kills.failed_satellites(50.0) == frozenset()
        assert kills.failed_satellites(100.0) == frozenset({3})
        assert kills.failed_satellites(1e9) == frozenset({3, 7})

    def test_duplicate_kill_rejected(self):
        with pytest.raises(FaultConfigError):
            KillList(kills=((1, 5.0), (1, 9.0)))

    def test_invalid_entries_rejected(self):
        with pytest.raises(FaultConfigError):
            KillList.at({-1: 5.0})
        with pytest.raises(FaultConfigError):
            KillList.at({2: math.inf})


class TestOutageWindow:
    def test_active_only_inside_window(self):
        window = OutageWindow(
            satellites=frozenset({1, 2}), start_s=10.0, end_s=20.0
        )
        assert window.failed_satellites(9.9) == frozenset()
        assert window.failed_satellites(10.0) == frozenset({1, 2})
        assert window.failed_satellites(20.0) == frozenset()

    def test_empty_set_allowed(self):
        # The fraction-0.0 sweep point of the chaos experiment.
        assert OutageWindow(satellites=frozenset()).failed_satellites(0.0) == frozenset()

    def test_bad_window_rejected(self):
        with pytest.raises(FaultConfigError):
            OutageWindow(satellites=frozenset({1}), start_s=5.0, end_s=5.0)


class TestGroundStationOutage:
    def test_full_segment_outage(self):
        outage = GroundStationOutage(start_s=0.0, end_s=100.0)
        assert outage.ground_segment_down(50.0)
        assert not outage.ground_segment_down(100.0)
        assert outage.failed_grounds(50.0) == frozenset()

    def test_named_stations(self):
        outage = GroundStationOutage(stations=frozenset({"gs-1"}))
        assert outage.failed_grounds(0.0) == frozenset({"gs-1"})
        assert not outage.ground_segment_down(0.0)

    def test_empty_station_set_rejected(self):
        with pytest.raises(FaultConfigError):
            GroundStationOutage(stations=frozenset())


class TestIslFaults:
    def test_cut_active_in_window(self):
        cut = IslCut(links=frozenset({0, 5}), start_s=0.0, end_s=10.0)
        assert cut.cut_links(5.0, 100) == frozenset({0, 5})
        assert cut.cut_links(10.0, 100) == frozenset()

    def test_unknown_link_rejected(self):
        cut = IslCut(links=frozenset({999}))
        with pytest.raises(FaultConfigError):
            cut.cut_links(0.0, 10)

    def test_degradation_fleet_wide(self):
        deg = IslDegradation(multiplier=2.5)
        mult = deg.latency_multiplier(0.0, 4)
        np.testing.assert_allclose(mult, [2.5, 2.5, 2.5, 2.5])

    def test_degradation_specific_links(self):
        deg = IslDegradation(multiplier=3.0, links=frozenset({1}))
        np.testing.assert_allclose(
            deg.latency_multiplier(0.0, 3), [1.0, 3.0, 1.0]
        )

    def test_degradation_below_one_rejected(self):
        with pytest.raises(FaultConfigError):
            IslDegradation(multiplier=0.5)

    def test_random_cuts_deterministic_per_slot(self):
        a = RandomIslCuts(fraction=0.2, seed=4, rotate_every_s=100.0)
        b = RandomIslCuts(fraction=0.2, seed=4, rotate_every_s=100.0)
        assert a.cut_links(50.0, 200) == b.cut_links(99.0, 200)
        assert len(a.cut_links(0.0, 200)) == 40

    def test_random_cuts_rotate(self):
        cuts = RandomIslCuts(fraction=0.3, seed=4, rotate_every_s=100.0)
        assert cuts.cut_links(0.0, 500) != cuts.cut_links(150.0, 500)


class TestTransientAttemptLoss:
    def test_extremes(self):
        assert not TransientAttemptLoss(probability=0.0).lost(0, 1)
        assert TransientAttemptLoss(probability=1.0).lost(5, 3)

    def test_deterministic(self):
        a = TransientAttemptLoss(probability=0.5, seed=2)
        b = TransientAttemptLoss(probability=0.5, seed=2)
        assert [a.lost(i, 1) for i in range(20)] == [
            b.lost(i, 1) for i in range(20)
        ]

    def test_invalid_probability_rejected(self):
        with pytest.raises(FaultConfigError):
            TransientAttemptLoss(probability=1.5)


class TestFaultSchedule:
    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.is_empty
        view = schedule.compile_at(0.0, 10)
        assert view.is_clean

    def test_add_dispatches_by_role(self):
        schedule = (
            FaultSchedule()
            .add(OutageWindow(satellites=frozenset({1})))
            .add(IslCut(links=frozenset({0})))
            .add(GroundStationOutage())
            .add(TransientAttemptLoss(probability=0.5))
        )
        assert not schedule.is_empty
        assert len(schedule.satellite_processes) == 1
        assert len(schedule.link_processes) == 1
        assert len(schedule.ground_processes) == 1
        assert schedule.attempt_loss is not None

    def test_duplicate_attempt_loss_rejected(self):
        schedule = FaultSchedule().add(TransientAttemptLoss(probability=0.1))
        with pytest.raises(FaultConfigError):
            schedule.add(TransientAttemptLoss(probability=0.2))

    def test_unknown_process_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule().add(object())

    def test_compile_unions_processes(self):
        schedule = (
            FaultSchedule()
            .add(OutageWindow(satellites=frozenset({1})))
            .add(KillList.at({2: 0.0}))
            .add(IslCut(links=frozenset({3})))
            .add(GroundStationOutage())
        )
        view = schedule.compile_at(5.0, 10)
        assert view.failed_satellites == frozenset({1, 2})
        assert view.cut_links == frozenset({3})
        assert view.ground_segment_down

    def test_multipliers_compose(self):
        schedule = (
            FaultSchedule()
            .add(IslDegradation(multiplier=2.0))
            .add(IslDegradation(multiplier=3.0, links=frozenset({0})))
        )
        view = schedule.compile_at(0.0, 2)
        np.testing.assert_allclose(view.link_multiplier, [6.0, 2.0])

    def test_negative_time_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule().compile_at(-1.0, 10)


class TestApplyFaultView:
    def test_failed_satellites_masked(self, small_snapshot):
        view = FaultView(t_s=0.0, failed_satellites=frozenset({0, 1}))
        degraded = apply_fault_view(small_snapshot, view)
        assert not degraded.has_satellite(0)
        assert small_snapshot.has_satellite(0)  # original untouched

    def test_out_of_range_satellites_ignored(self, small_snapshot):
        view = FaultView(t_s=0.0, failed_satellites=frozenset({10_000}))
        degraded = apply_fault_view(small_snapshot, view)
        assert len(degraded.satellite_nodes()) == len(
            small_snapshot.satellite_nodes()
        )

    def test_cut_links_break_routes(self, small_snapshot):
        core = small_snapshot.core
        # Cut every link touching satellite 0: it becomes unreachable.
        topo = core.topology
        incident = frozenset(
            int(l)
            for l in topo.neighbor_link[0]
            if l >= 0
        )
        view = FaultView(t_s=0.0, cut_links=incident)
        degraded = apply_fault_view(small_snapshot, view)
        hops = fastcore.hop_distances_batch(
            degraded.core, [1], degraded.active_mask
        )
        assert hops[0, 0] == fastcore.HOP_UNREACHABLE
        # The healthy snapshot still routes to satellite 0.
        healthy = fastcore.hop_distances_batch(core, [1], small_snapshot.active_mask)
        assert healthy[0, 0] != fastcore.HOP_UNREACHABLE

    def test_multiplier_scales_latency(self, small_snapshot):
        num_links = small_snapshot.core.topology.num_links
        view = FaultView(
            t_s=0.0, link_multiplier=np.full(num_links, 2.0)
        )
        degraded = apply_fault_view(small_snapshot, view)
        base = fastcore.latency_batch(small_snapshot.core, [0])
        doubled = fastcore.latency_batch(degraded.core, [0])
        np.testing.assert_allclose(doubled, 2.0 * base)


class TestDegradeCoreBackends:
    @pytest.mark.skipif(not fastcore.HAVE_SCIPY, reason="scipy not importable")
    def test_backends_agree_on_degraded_core(self, small_snapshot):
        core = small_snapshot.core
        num_links = core.topology.num_links
        rng = np.random.default_rng(0)
        cut = tuple(int(l) for l in rng.choice(num_links, size=5, replace=False))
        mult = 1.0 + rng.random(num_links)
        degraded = fastcore.degrade_core(core, mult, cut)
        for kernel in (fastcore.hop_distances_batch, fastcore.latency_batch):
            np.testing.assert_allclose(
                kernel(degraded, [0, 3], method="numpy"),
                kernel(degraded, [0, 3], method="scipy"),
                atol=1e-9,
            )

    def test_original_core_untouched(self, small_snapshot):
        core = small_snapshot.core
        before = core.link_latency_ms.copy()
        fastcore.degrade_core(
            core, np.full(core.topology.num_links, 5.0), (0, 1)
        )
        np.testing.assert_array_equal(core.link_latency_ms, before)
        assert core.link_active is None

    def test_bad_multiplier_rejected(self, small_snapshot):
        core = small_snapshot.core
        with pytest.raises(RoutingError):
            fastcore.degrade_core(core, np.full(core.topology.num_links, 0.5))
        with pytest.raises(RoutingError):
            fastcore.degrade_core(core, np.ones(3))

    def test_bad_link_id_rejected(self, small_snapshot):
        with pytest.raises(RoutingError):
            fastcore.degrade_core(small_snapshot.core, None, (10**6,))


class TestRetryPolicy:
    def test_defaults_are_unbounded_budget(self):
        policy = RetryPolicy()
        assert policy.within_budget(1e9)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_ms=10.0, backoff_multiplier=2.0, backoff_cap_ms=35.0
        )
        assert policy.backoff_ms(1) == pytest.approx(10.0)
        assert policy.backoff_ms(2) == pytest.approx(20.0)
        assert policy.backoff_ms(3) == pytest.approx(35.0)  # capped

    def test_budget_enforced(self):
        policy = RetryPolicy(attempt_budget_ms=50.0)
        assert policy.within_budget(49.9)
        assert not policy.within_budget(50.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"attempt_budget_ms": -1.0},
            {"backoff_base_ms": -1.0},
            {"backoff_multiplier": 0.5},
            {"backoff_cap_ms": -1.0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(FaultConfigError):
            RetryPolicy(**kwargs)


class TestErrorHierarchy:
    def test_fault_config_is_configuration_error(self):
        assert issubclass(FaultConfigError, ConfigurationError)
