"""Tests for demand-aware duty cycling."""

import pytest

from repro.errors import ConfigurationError
from repro.spacecdn.demand import DemandAwareDutyCycle, DiurnalDemand


class TestDiurnalDemand:
    def test_peak_at_peak_hour(self):
        demand = DiurnalDemand(peak_hour=21.0)
        # Longitude 0 at t such that local time is 21:00.
        t_peak = 21.0 * 3600.0
        assert demand.weight(0.0, t_peak) == pytest.approx(1.0)

    def test_trough_twelve_hours_away(self):
        demand = DiurnalDemand(peak_hour=21.0, floor=0.25)
        t_trough = 9.0 * 3600.0
        assert demand.weight(0.0, t_trough) == pytest.approx(0.25)

    def test_longitude_shifts_local_time(self):
        demand = DiurnalDemand(peak_hour=21.0)
        # 90E is 6 hours ahead: local 21:00 happens at UTC 15:00.
        assert demand.weight(90.0, 15.0 * 3600.0) == pytest.approx(1.0)

    def test_weight_bounded(self):
        demand = DiurnalDemand(floor=0.3)
        for lon in (-180.0, -90.0, 0.0, 90.0, 180.0):
            for hour in range(24):
                w = demand.weight(lon, hour * 3600.0)
                assert 0.3 <= w <= 1.0

    def test_local_hour_wraps(self):
        demand = DiurnalDemand()
        assert 0.0 <= demand.local_hour(180.0, 23.5 * 3600.0) < 24.0

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DiurnalDemand(peak_hour=24.0)
        with pytest.raises(ConfigurationError):
            DiurnalDemand(floor=1.0)

    def test_invalid_longitude(self):
        with pytest.raises(ConfigurationError):
            DiurnalDemand().weight(200.0, 0.0)


class TestDemandAwareDutyCycle:
    @pytest.fixture
    def scheduler(self, shell1_constellation):
        return DemandAwareDutyCycle(
            constellation=shell1_constellation, cache_fraction=0.3
        )

    def test_active_set_size(self, scheduler, shell1_constellation):
        active = scheduler.active_caches_at(0.0)
        assert len(active) == round(0.3 * len(shell1_constellation))

    def test_deterministic(self, scheduler):
        assert scheduler.active_caches_at(100.0) == scheduler.active_caches_at(100.0)

    def test_active_set_follows_the_sun(self, scheduler):
        # Six hours later, demand has moved ~90 degrees west, so the active
        # set must change substantially.
        morning = scheduler.active_caches_at(0.0)
        later = scheduler.active_caches_at(6.0 * 3600.0)
        overlap = len(morning & later) / len(morning)
        assert overlap < 0.8

    def test_active_set_has_above_average_demand(self, scheduler):
        for t in (0.0, 3 * 3600.0, 12 * 3600.0):
            scores = scheduler.satellite_scores(t)
            assert scheduler.mean_active_demand(t) > float(scores.mean())

    def test_active_satellites_concentrate_on_demand_side(
        self, scheduler, shell1_constellation
    ):
        t = 0.0  # UTC midnight: peak (21:00 local) sits near 45W
        active = scheduler.active_caches_at(t)
        tracks = shell1_constellation.subsatellite_points(t)
        active_lons = [float(tracks[i][1]) for i in active]
        # Most active satellites sit within 90 degrees of the demand peak.
        peak_lon = -45.0
        near_peak = sum(
            1
            for lon in active_lons
            if min(abs(lon - peak_lon), 360 - abs(lon - peak_lon)) < 90.0
        )
        assert near_peak / len(active_lons) > 0.6

    def test_invalid_config(self, shell1_constellation):
        with pytest.raises(ConfigurationError):
            DemandAwareDutyCycle(constellation=shell1_constellation, cache_fraction=0.0)
        with pytest.raises(ConfigurationError):
            DemandAwareDutyCycle(
                constellation=shell1_constellation,
                cache_fraction=0.5,
                populated_band_deg=0.0,
            )

    def test_negative_time_rejected(self, scheduler):
        with pytest.raises(ConfigurationError):
            scheduler.active_caches_at(-1.0)
