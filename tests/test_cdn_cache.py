"""Tests for cache policies."""

import pytest

from repro.cdn.cache import FifoCache, LfuCache, LruCache, TtlCache
from repro.cdn.content import ContentObject
from repro.errors import CacheError


def obj(object_id: str, size: int = 100) -> ContentObject:
    return ContentObject(object_id, size)


class TestCacheBasics:
    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_put_get(self, cache_cls):
        cache = cache_cls(1000)
        cache.put(obj("a"))
        assert cache.get("a").object_id == "a"
        assert "a" in cache
        assert len(cache) == 1

    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_miss_returns_none(self, cache_cls):
        cache = cache_cls(1000)
        assert cache.get("nope") is None
        assert cache.stats.misses == 1

    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_capacity_never_exceeded(self, cache_cls):
        cache = cache_cls(350)
        for i in range(10):
            cache.put(obj(f"o{i}", 100))
            assert cache.used_bytes <= 350

    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_oversized_object_rejected(self, cache_cls):
        cache = cache_cls(100)
        with pytest.raises(CacheError):
            cache.put(obj("big", 101))

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(CacheError):
            LruCache(0)

    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_remove(self, cache_cls):
        cache = cache_cls(1000)
        cache.put(obj("a"))
        assert cache.remove("a")
        assert "a" not in cache
        assert cache.used_bytes == 0
        assert not cache.remove("a")

    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_clear_preserves_stats(self, cache_cls):
        cache = cache_cls(1000)
        cache.put(obj("a"))
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_peek_does_not_touch_stats(self, cache_cls):
        cache = cache_cls(1000)
        cache.put(obj("a"))
        cache.peek("a")
        cache.peek("missing")
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    @pytest.mark.parametrize("cache_cls", [LruCache, LfuCache, FifoCache])
    def test_reinsert_same_id_no_duplicate(self, cache_cls):
        cache = cache_cls(1000)
        cache.put(obj("a", 100))
        cache.put(obj("a", 100))
        assert len(cache) == 1
        assert cache.used_bytes == 100


class TestLruEviction:
    def test_evicts_least_recently_used(self):
        cache = LruCache(300)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.put(obj("c"))
        cache.get("a")  # refresh a
        cache.put(obj("d"))  # must evict b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache and "d" in cache

    def test_eviction_returns_victims(self):
        cache = LruCache(200)
        cache.put(obj("a"))
        cache.put(obj("b"))
        evicted = cache.put(obj("c", 200))
        assert set(evicted) == {"a", "b"}
        assert cache.stats.evictions == 2


class TestFifoEviction:
    def test_access_does_not_save_fifo_victim(self):
        cache = FifoCache(300)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.put(obj("c"))
        cache.get("a")  # irrelevant for FIFO
        cache.put(obj("d"))
        assert "a" not in cache


class TestLfuEviction:
    def test_evicts_least_frequent(self):
        cache = LfuCache(300)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.put(obj("c"))
        cache.get("a")
        cache.get("a")
        cache.get("c")
        cache.put(obj("d"))  # b has the lowest count
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_tie_breaks_by_arrival(self):
        cache = LfuCache(300)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.put(obj("c"))
        cache.put(obj("d"))  # all count 1 -> evict oldest (a)
        assert "a" not in cache


class TestTtlCache:
    def test_expires_after_ttl(self):
        cache = TtlCache(1000, ttl_s=10.0)
        cache.put(obj("a"))
        cache.advance_to(5.0)
        assert cache.get("a") is not None
        cache.advance_to(10.0)
        assert cache.get("a") is None

    def test_eager_expire(self):
        cache = TtlCache(1000, ttl_s=10.0)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.advance_to(20.0)
        expired = cache.expire()
        assert set(expired) == {"a", "b"}
        assert len(cache) == 0

    def test_clock_cannot_go_backwards(self):
        cache = TtlCache(1000, ttl_s=10.0)
        cache.advance_to(5.0)
        with pytest.raises(CacheError):
            cache.advance_to(4.0)

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(CacheError):
            TtlCache(1000, ttl_s=0.0)

    def test_still_lru_within_ttl(self):
        cache = TtlCache(200, ttl_s=100.0)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.get("a")
        cache.put(obj("c"))
        assert "b" not in cache
        assert "a" in cache


class TestStats:
    def test_hit_ratio(self):
        cache = LruCache(1000)
        cache.put(obj("a"))
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)

    def test_hit_ratio_no_requests(self):
        assert LruCache(10).stats.hit_ratio == 0.0

    def test_insertions_counted(self):
        cache = LruCache(1000)
        cache.put(obj("a"))
        cache.put(obj("b"))
        assert cache.stats.insertions == 2
