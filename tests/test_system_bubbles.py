"""Tests for region lookup and bubble prefetch inside the live system."""

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.errors import ConfigurationError, DatasetError
from repro.geo.datasets.cities import region_under
from repro.spacecdn.bubbles import RegionalPopularity
from repro.spacecdn.lookup import LookupSource
from repro.spacecdn.system import SpaceCdnSystem


class TestRegionUnder:
    def test_known_land_points(self):
        assert region_under(-25.97, 32.57) == "africa"  # Maputo
        assert region_under(50.1, 8.7) == "europe"  # Frankfurt
        assert region_under(35.7, 139.7) == "asia"  # Tokyo

    def test_open_ocean_is_none(self):
        # Mid South Pacific, thousands of km from any vantage city.
        assert region_under(-40.0, -120.0) is None

    def test_distance_cap_widens_coverage(self):
        # A point ~2000 km from the nearest city flips with the cap.
        assert region_under(-40.0, -120.0, max_distance_km=20_000.0) is not None

    def test_invalid_cap_rejected(self):
        with pytest.raises(DatasetError):
            region_under(0.0, 0.0, max_distance_km=0.0)


class TestBubblePrefetch:
    @pytest.fixture
    def setup(self, shell1_constellation):
        catalog = build_catalog(
            np.random.default_rng(0),
            200,
            regions=("africa", "europe", "south-america"),
            global_fraction=0.1,
            kind_weights={"web": 1.0},
        )
        system = SpaceCdnSystem(
            constellation=shell1_constellation,
            catalog=catalog,
            cache_bytes_per_satellite=20_000_000,
            max_hops=5,
        )
        popularity = RegionalPopularity(catalog=catalog, seed=1)
        return system, popularity

    def test_prefetch_stores_content(self, setup):
        system, popularity = setup
        stored = system.bubble_prefetch(popularity, t_s=0.0, objects_per_region=5)
        assert stored > 0

    def test_prefetch_improves_first_request(self, setup):
        system, popularity = setup
        system.bubble_prefetch(popularity, t_s=0.0, objects_per_region=10)
        # The hottest African object should now be served from space for a
        # user in Africa, with zero prior traffic.
        from repro.geo.datasets import city_by_name

        maputo = city_by_name("Maputo")
        hot = popularity.top_objects("africa", 1)[0]
        result = system.serve(maputo.location, hot, 0.0)
        assert result.source is not LookupSource.GROUND

    def test_prefetch_idempotent_per_instant(self, setup):
        system, popularity = setup
        first = system.bubble_prefetch(popularity, t_s=0.0, objects_per_region=5)
        second = system.bubble_prefetch(popularity, t_s=0.0, objects_per_region=5)
        assert first > 0
        assert second == 0  # everything already cached

    def test_satellites_over_ocean_left_alone(self, setup):
        system, popularity = setup
        system.bubble_prefetch(popularity, t_s=0.0, objects_per_region=5)
        tracks = system.constellation.subsatellite_points(0.0)
        for satellite, (lat, lon) in enumerate(tracks):
            if region_under(float(lat), float(lon)) is None:
                assert len(system.cache_of(satellite)) == 0

    def test_invalid_count_rejected(self, setup):
        system, popularity = setup
        with pytest.raises(ConfigurationError):
            system.bubble_prefetch(popularity, t_s=0.0, objects_per_region=0)

    def test_index_consistent_after_prefetch(self, setup):
        system, popularity = setup
        system.bubble_prefetch(popularity, t_s=0.0, objects_per_region=5)
        for region in popularity.regions():
            for object_id in popularity.top_objects(region, 5):
                for satellite in system.holders_of(object_id):
                    assert object_id in system.cache_of(satellite)
