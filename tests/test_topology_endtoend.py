"""Tests for graph-routed end-to-end paths (and analytic-model validation)."""

import numpy as np
import pytest

from repro.geo.datasets import city_by_name
from repro.network.bentpipe import StarlinkPathModel
from repro.network.latency import LatencyNoise
from repro.orbits.elements import starlink_shell1
from repro.orbits.walker import build_walker_delta
from repro.topology.endtoend import GraphPathRouter
from repro.topology.graph import build_snapshot


@pytest.fixture
def router():
    # Fresh snapshot per test module run: the router attaches ground nodes.
    constellation = build_walker_delta(starlink_shell1())
    return GraphPathRouter(snapshot=build_snapshot(constellation, 0.0))


class TestRouting:
    def test_madrid_routes_to_madrid_pop(self, router):
        path = router.route_city(city_by_name("Madrid"))
        assert path.pop_name == "Madrid"
        assert path.one_way_ms < 25.0
        assert path.satellite_hops >= 0

    def test_maputo_routes_to_frankfurt_through_many_hops(self, router):
        path = router.route_city(city_by_name("Maputo"))
        assert path.pop_name == "Frankfurt"
        assert path.satellite_hops >= 5
        assert 30.0 < path.one_way_ms < 120.0

    def test_path_endpoints(self, router):
        path = router.route_city(city_by_name("Tokyo"))
        assert str(path.path[0]).startswith("ut:")
        assert str(path.path[-1]).startswith("gs:")

    def test_repeat_routing_is_stable(self, router):
        a = router.route_city(city_by_name("Sydney"))
        b = router.route_city(city_by_name("Sydney"))
        assert a.one_way_ms == b.one_way_ms

    def test_gateway_belongs_to_pop(self, router):
        from repro.topology.ground import GroundSegment

        segment = GroundSegment.from_gazetteer()
        path = router.route_city(city_by_name("Nairobi"))
        gateway_names = {g.name for g in segment.stations_for_pop(path.pop_name)}
        assert path.gateway_name in gateway_names


class TestAnalyticValidation:
    def test_graph_and_analytic_floors_agree_for_bent_pipe(self, router):
        """For a bent-pipe city the two models must agree within ~40%."""
        model = StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(0)))
        for name in ("Madrid", "Tokyo", "Seattle"):
            city = city_by_name(name)
            analytic = model.resolve_path(city).one_way_floor_ms
            graph = router.route_city(city).one_way_ms
            assert 0.6 < analytic / graph < 1.6, name

    def test_graph_and_analytic_agree_for_isl_city(self, router):
        """For the Maputo ISL path the calibrated analytic stretch must land
        within a factor of two of the graph route (the graph route itself
        varies with epoch geometry)."""
        model = StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(1)))
        city = city_by_name("Maputo")
        analytic = model.resolve_path(city).one_way_floor_ms
        graph = router.route_city(city).one_way_ms
        assert 0.5 < analytic / graph < 2.0

    def test_isl_city_costs_more_than_bent_pipe_city_on_graph(self, router):
        bent = router.route_city(city_by_name("Madrid")).one_way_ms
        isl = router.route_city(city_by_name("Maputo")).one_way_ms
        assert isl > 2.0 * bent
