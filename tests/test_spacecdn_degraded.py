"""Tests for the degraded-mode serving path of the SpaceCDN system."""

import numpy as np
import pytest

from repro.cdn.content import build_catalog
from repro.errors import ContentNotFoundError, UnavailableError
from repro.faults import (
    FaultSchedule,
    GroundStationOutage,
    OutageWindow,
    RetryPolicy,
    TransientAttemptLoss,
)
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.lookup import LookupSource
from repro.spacecdn.system import SpaceCdnSystem

EQUATOR = GeoPoint(0.0, 0.0, 0.0)
OBJ = "obj-000002"
# On the 6x8 shell only satellite 0 is visible from the equator at t=0.
ACCESS_SAT = 0
FAR_HOLDER = 20


@pytest.fixture
def catalog():
    return build_catalog(
        np.random.default_rng(0), 50, regions=("africa",), kind_weights={"web": 1.0}
    )


def make_system(small_constellation, catalog, schedule=None, policy=None):
    kwargs = dict(
        constellation=small_constellation,
        catalog=catalog,
        cache_bytes_per_satellite=10**9,
        fault_schedule=schedule,
    )
    if policy is not None:
        kwargs["retry_policy"] = policy
    return SpaceCdnSystem(**kwargs)


class TestHealthyPathIdentity:
    def test_empty_schedule_is_byte_identical(self, small_constellation, catalog):
        plain = make_system(small_constellation, catalog, schedule=None)
        empty = make_system(small_constellation, catalog, schedule=FaultSchedule())
        for system in (plain, empty):
            system.preload({OBJ: frozenset({FAR_HOLDER})})
        stream = [(OBJ, 0.0), ("obj-000003", 1.0), (OBJ, 2.0), ("obj-000003", 3.0)]
        served_plain = [plain.serve(EQUATOR, o, t) for o, t in stream]
        served_empty = [empty.serve(EQUATOR, o, t) for o, t in stream]
        assert served_plain == served_empty
        assert plain.stats.rtt_samples_ms == empty.stats.rtt_samples_ms

    def test_default_policy_has_no_budget(self):
        assert RetryPolicy().attempt_budget_ms is None


class TestFallbackLadder:
    def test_failed_holder_falls_back_to_ground(self, small_constellation, catalog):
        schedule = FaultSchedule().add(
            OutageWindow(satellites=frozenset({FAR_HOLDER}))
        )
        system = make_system(small_constellation, catalog, schedule)
        system.preload({OBJ: frozenset({FAR_HOLDER})})
        served = system.serve(EQUATOR, OBJ, 0.0)
        assert served.source is LookupSource.GROUND
        assert served.fallback_reason == "no-space-replica"
        # Pull-through stored the object at the access satellite.
        assert system.holders_of(OBJ) == frozenset({ACCESS_SAT})

    def test_outage_wipes_holder_cache(self, small_constellation, catalog):
        schedule = FaultSchedule().add(
            OutageWindow(satellites=frozenset({FAR_HOLDER}))
        )
        system = make_system(small_constellation, catalog, schedule)
        system.preload({OBJ: frozenset({FAR_HOLDER})})
        system.serve(EQUATOR, OBJ, 0.0)
        assert FAR_HOLDER not in system.holders_of(OBJ)
        assert len(system.cache_of(FAR_HOLDER)) == 0

    def test_wipe_can_be_disabled(self, small_constellation, catalog):
        schedule = FaultSchedule(wipe_caches_on_outage=False).add(
            OutageWindow(satellites=frozenset({FAR_HOLDER}), end_s=30.0)
        )
        system = make_system(small_constellation, catalog, schedule)
        system.preload({OBJ: frozenset({FAR_HOLDER})})
        during = system.serve(EQUATOR, OBJ, 0.0)
        assert during.source is LookupSource.GROUND
        # The failed holder kept its contents: once the outage window ends
        # the replica will serve again without a re-fetch.
        assert FAR_HOLDER in system.holders_of(OBJ)

    def test_live_holder_served_over_isl(self, small_constellation, catalog):
        schedule = FaultSchedule().add(
            OutageWindow(satellites=frozenset({30}))  # unrelated failure
        )
        system = make_system(small_constellation, catalog, schedule)
        system.preload({OBJ: frozenset({FAR_HOLDER})})
        served = system.serve(EQUATOR, OBJ, 0.0)
        assert served.source is LookupSource.ISL_NEIGHBOR
        assert served.serving_satellite == FAR_HOLDER
        assert served.attempts == 1
        assert served.fallback_reason is None

    def test_access_satellite_failure_is_unavailable(
        self, small_constellation, catalog
    ):
        # Satellite 0 is the only one visible from the equator at t=0, so
        # failing it leaves the user with no sky at all.
        schedule = FaultSchedule().add(
            OutageWindow(satellites=frozenset({ACCESS_SAT}))
        )
        system = make_system(small_constellation, catalog, schedule)
        system.preload({OBJ: frozenset({ACCESS_SAT})})
        with pytest.raises(UnavailableError):
            system.serve(EQUATOR, OBJ, 0.0)
        assert system.stats.unavailable == 1
        assert system.stats.availability == 0.0


class TestRetriesAndTimeouts:
    def test_transient_loss_retries_then_succeeds(
        self, small_constellation, catalog
    ):
        # seed 0: request 0 loses attempt 1, attempt 2 goes through.
        loss = TransientAttemptLoss(probability=0.5, seed=0)
        assert loss.lost(0, 1) and not loss.lost(0, 2)
        schedule = FaultSchedule().add(loss)
        system = make_system(
            small_constellation, catalog, schedule, RetryPolicy(max_attempts=4)
        )
        system.preload({OBJ: frozenset({ACCESS_SAT, FAR_HOLDER})})
        served = system.serve(EQUATOR, OBJ, 0.0)
        assert served.attempts == 2
        assert served.fallback_reason == "transient-loss"
        assert system.stats.retries == 1
        assert system.stats.timeouts == 1
        # Backoff is charged to the simulated RTT.
        healthy = make_system(small_constellation, catalog)
        healthy.preload({OBJ: frozenset({ACCESS_SAT, FAR_HOLDER})})
        baseline = healthy.serve(EQUATOR, OBJ, 0.0)
        assert served.rtt_ms > baseline.rtt_ms

    def test_total_loss_exhausts_retry_budget(self, small_constellation, catalog):
        schedule = FaultSchedule().add(TransientAttemptLoss(probability=1.0))
        system = make_system(
            small_constellation, catalog, schedule, RetryPolicy(max_attempts=4)
        )
        with pytest.raises(UnavailableError):
            system.serve(EQUATOR, OBJ, 0.0)
        assert system.stats.timeouts == 4
        assert system.stats.retries == 3
        assert system.stats.unavailable == 1

    def test_tight_budget_times_out_every_rung(self, small_constellation, catalog):
        # 25 ms fits neither the far ISL replica nor the 140 ms ground path.
        schedule = FaultSchedule().add(OutageWindow(satellites=frozenset({30})))
        system = make_system(
            small_constellation,
            catalog,
            schedule,
            RetryPolicy(max_attempts=3, attempt_budget_ms=25.0),
        )
        system.preload({OBJ: frozenset({FAR_HOLDER})})
        with pytest.raises(UnavailableError):
            system.serve(EQUATOR, OBJ, 0.0)
        assert system.stats.timeouts == 3

    def test_ground_outage_with_no_replica_is_unavailable(
        self, small_constellation, catalog
    ):
        schedule = FaultSchedule().add(GroundStationOutage())
        system = make_system(small_constellation, catalog, schedule)
        with pytest.raises(UnavailableError) as excinfo:
            system.serve(EQUATOR, OBJ, 0.0)
        assert "ground segment is down" in str(excinfo.value)

    def test_unavailable_is_content_not_found(self):
        assert issubclass(UnavailableError, ContentNotFoundError)


class TestRunStream:
    def test_continue_on_unavailable_skips(self, small_constellation, catalog):
        from repro.geo.datasets import all_cities
        from repro.workloads.requests import Request

        city = min(
            all_cities(),
            key=lambda c: abs(c.location.lat_deg) + abs(c.location.lon_deg),
        )
        schedule = FaultSchedule().add(TransientAttemptLoss(probability=1.0))
        system = make_system(
            small_constellation, catalog, schedule, RetryPolicy(max_attempts=2)
        )
        requests = [Request(t_s=float(i), city=city, object_id=OBJ) for i in range(3)]
        results = system.run(requests, continue_on_unavailable=True)
        assert results == []
        assert system.stats.unavailable == 3
        assert system.stats.availability == 0.0

    def test_raises_without_flag(self, small_constellation, catalog):
        from repro.geo.datasets import all_cities
        from repro.workloads.requests import Request

        city = min(
            all_cities(),
            key=lambda c: abs(c.location.lat_deg) + abs(c.location.lon_deg),
        )
        schedule = FaultSchedule().add(TransientAttemptLoss(probability=1.0))
        system = make_system(
            small_constellation, catalog, schedule, RetryPolicy(max_attempts=2)
        )
        with pytest.raises(UnavailableError):
            system.run([Request(t_s=0.0, city=city, object_id=OBJ)])


class TestStatsCounters:
    def test_requests_include_unavailable(self, small_constellation, catalog):
        schedule = (
            FaultSchedule()
            .add(TransientAttemptLoss(probability=1.0))
            .add(GroundStationOutage())
        )
        system = make_system(small_constellation, catalog, schedule)
        with pytest.raises(UnavailableError):
            system.serve(EQUATOR, OBJ, 0.0)
        assert system.stats.requests == 1
        assert system.stats.served == 0
        assert system.stats.availability == 0.0

    def test_availability_none_before_any_request(
        self, small_constellation, catalog
    ):
        # Zero requests means no denominator: availability is unknown, not
        # a perfect 1.0 (and never a ZeroDivisionError).
        system = make_system(small_constellation, catalog)
        assert system.stats.requests == 0
        assert system.stats.availability is None
