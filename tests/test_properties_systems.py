"""Property-based tests on the system-level components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.orbits.elements import ShellConfig
from repro.spacecdn.dutycycle import DutyCycleScheduler
from repro.spacecdn.prediction import PopularityPredictor
from repro.spacecdn.resilience import random_failure_set


class TestDutyCycleProperties:
    @given(
        st.integers(min_value=1, max_value=2000),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_active_set_size_and_bounds(self, total, fraction, slot):
        scheduler = DutyCycleScheduler(
            total_satellites=total, cache_fraction=fraction, seed=1
        )
        active = scheduler.active_caches(slot)
        assert len(active) == scheduler.caches_per_slot
        assert 1 <= len(active) <= total
        assert all(0 <= s < total for s in active)

    @given(
        st.integers(min_value=10, max_value=500),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_determinism(self, total, slot):
        a = DutyCycleScheduler(total_satellites=total, cache_fraction=0.4, seed=9)
        b = DutyCycleScheduler(total_satellites=total, cache_fraction=0.4, seed=9)
        assert a.active_caches(slot) == b.active_caches(slot)

    @given(st.floats(min_value=0.0, max_value=100_000.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_slot_index_consistent_with_duration(self, t):
        scheduler = DutyCycleScheduler(
            total_satellites=10, cache_fraction=0.5, slot_duration_s=600.0
        )
        slot = scheduler.slot_index(t)
        assert slot * 600.0 <= t < (slot + 1) * 600.0


class TestPredictorProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["africa", "europe", "asia"]),
                st.integers(min_value=0, max_value=20),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_scores_nonnegative_and_rankable(self, observations):
        predictor = PopularityPredictor(decay=0.7)
        for region, obj in observations:
            predictor.observe(region, f"o{obj}")
        for region in ("africa", "europe", "asia"):
            top = predictor.predict_top(region, 5)
            scores = [predictor.score(region, oid) for oid in top]
            assert scores == sorted(scores, reverse=True)
            assert all(s >= 0 for s in scores)

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=100),
        st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_decay_never_increases_scores(self, objects, epochs):
        predictor = PopularityPredictor(decay=0.5)
        for obj in objects:
            predictor.observe("r", f"o{obj}")
        before = {f"o{obj}": predictor.score("r", f"o{obj}") for obj in set(objects)}
        for _ in range(epochs):
            predictor.end_epoch()
        for name, score in before.items():
            assert predictor.score("r", name) <= score + 1e-12


class TestResilienceProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_failure_set_size_and_membership(self, total, fraction, seed):
        failed = random_failure_set(total, fraction, np.random.default_rng(seed))
        assert len(failed) == round(total * fraction)
        assert all(0 <= s < total for s in failed)


class TestShellConfigProperties:
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=200.0, max_value=2000.0, allow_nan=False),
        st.floats(min_value=30.0, max_value=98.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_shell_invariants(self, planes, per_plane, altitude, inclination):
        shell = ShellConfig(
            altitude_km=altitude,
            inclination_deg=inclination,
            num_planes=planes,
            sats_per_plane=per_plane,
        )
        assert shell.total_satellites == planes * per_plane
        assert shell.period_s > 0
        assert 0 < shell.raan_spacing_deg <= 360.0
        assert 0 < shell.in_plane_spacing_deg <= 360.0
        assert shell.in_plane_neighbor_distance_km() > 0

    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_walker_positions_on_sphere(self, planes, per_plane):
        from repro.orbits.walker import build_walker_delta

        shell = ShellConfig(
            altitude_km=550.0,
            inclination_deg=53.0,
            num_planes=planes,
            sats_per_plane=per_plane,
        )
        constellation = build_walker_delta(shell)
        positions = constellation.positions_ecef(123.0)
        radii = np.linalg.norm(positions, axis=1)
        assert np.allclose(radii, constellation.orbit_radius_km)


class TestStripingProperties:
    @given(
        st.floats(min_value=600.0, max_value=3600.0, allow_nan=False),
        st.floats(min_value=120.0, max_value=240.0, allow_nan=False),
    )
    @settings(max_examples=10, deadline=None)
    def test_plan_covers_video_exactly(self, video_s, stripe_s):
        from repro.geo.coordinates import GeoPoint
        from repro.orbits.elements import starlink_shell1
        from repro.orbits.walker import build_walker_delta
        from repro.spacecdn.striping import plan_stripes

        constellation = build_walker_delta(starlink_shell1())
        plan = plan_stripes(
            constellation,
            GeoPoint(0.0, 0.0, 0.0),
            start_s=0.0,
            video_duration_s=video_s,
            stripe_duration_s=stripe_s,
            pass_step_s=30.0,
        )
        import math

        assert plan.assignments[0].playback_start_s == 0.0
        assert math.isclose(plan.assignments[-1].playback_end_s, video_s)
        for a, b in zip(plan.assignments, plan.assignments[1:]):
            assert math.isclose(a.playback_end_s, b.playback_start_s)
            assert b.stripe_index == a.stripe_index + 1
