"""Cross-model integration tests.

The repo deliberately has two fidelity levels: the analytic Starlink path
model (fast, used for AIM-scale simulation) and the full constellation-graph
model (used for Figs. 7/8). These tests pin them to each other and exercise
full end-to-end request flows across subsystems.
"""

import numpy as np
import pytest

from repro.cdn.cache import LruCache
from repro.cdn.content import build_catalog
from repro.cdn.server import CdnServer, OriginServer
from repro.constants import CDN_SERVER_THINK_TIME_MS
from repro.geo.coordinates import GeoPoint
from repro.geo.datasets import cdn_site_by_name, city_by_name
from repro.network.bentpipe import StarlinkPathModel
from repro.network.latency import LatencyNoise
from repro.spacecdn.lookup import LookupSource, SpaceCdnLookup
from repro.spacecdn.placement import KPerPlanePlacement
from repro.topology.routing import satellite_latencies


class TestAnalyticVsGraphModel:
    def test_isl_stretch_consistent_with_graph_routing(self, shell1_snapshot):
        """The analytic model's stretched-great-circle ISL latency must sit
        within a factor of the true graph-routed latency between satellites
        over Maputo and over Frankfurt.

        The graph latency minimises over candidate access satellites on both
        ends: nearest-visible alone can land on an ascending/descending
        plane mismatch that costs 3x, which a real scheduler avoids.
        """
        from repro.orbits.visibility import visible_satellites

        constellation = shell1_snapshot.constellation
        maputo = GeoPoint(-25.97, 32.57)
        frankfurt = GeoPoint(50.11, 8.68)
        over_maputo = visible_satellites(constellation, maputo, 0.0)[:6]
        over_frankfurt = visible_satellites(constellation, frankfurt, 0.0)[:6]
        graph_ms = min(
            satellite_latencies(shell1_snapshot, a.index)[b.index]
            for a in over_maputo
            for b in over_frankfurt
        )

        model = StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(0)))
        path = model.resolve_path(city_by_name("Maputo"))
        from repro.constants import ISL_HOP_PROCESSING_MS, SPEED_OF_LIGHT_KM_S

        analytic_ms = (
            path.isl_distance_km / SPEED_OF_LIGHT_KM_S * 1000.0
            + path.isl_hops * ISL_HOP_PROCESSING_MS
        )
        # Same order of magnitude, analytic within [0.6x, 1.8x] of the graph.
        assert 0.6 * graph_ms < analytic_ms < 1.8 * graph_ms

    def test_access_latency_models_agree(self, shell1_snapshot):
        """Sampled analytic access latencies must bracket the graph model's
        access edge latency for a served point."""
        from repro.network.access import sample_access_one_way_ms
        from repro.orbits.visibility import nearest_visible_satellite
        from repro.topology.graph import access_latency_ms

        point = GeoPoint(10.0, 10.0)
        nearest = nearest_visible_satellite(
            shell1_snapshot.constellation, point, shell1_snapshot.t_s
        )
        graph_access = access_latency_ms(nearest.slant_range_km)
        rng = np.random.default_rng(1)
        samples = [sample_access_one_way_ms(rng) for _ in range(200)]
        assert min(samples) * 0.9 < graph_access < max(samples) * 1.1


class TestEndToEndSpaceCdn:
    def test_placed_content_served_within_five_hops_everywhere(
        self, shell1_snapshot, shell1
    ):
        """Placement -> lookup -> latency: the full §4 pipeline."""
        holders = KPerPlanePlacement(copies_per_plane=4).place_object("movie", shell1)
        lookup = SpaceCdnLookup(snapshot=shell1_snapshot, max_hops=5)
        rng = np.random.default_rng(2)
        from repro.simulation.sampler import user_sample_points

        for user in user_sample_points(rng, 15):
            result = lookup.lookup_from_point(user, holders)
            assert result.source is not LookupSource.GROUND
            assert result.isl_hops <= 5
            rtt = 2 * result.one_way_ms + CDN_SERVER_THINK_TIME_MS
            # Competitive regime: well under typical current Starlink RTTs.
            assert rtt < 80.0

    def test_space_rtt_beats_analytic_starlink_rtt_for_maputo(self, shell1_snapshot, shell1):
        """The headline: SpaceCDN halves Maputo's CDN latency."""
        model = StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(3)))
        frankfurt = cdn_site_by_name("Frankfurt")
        maputo = city_by_name("Maputo")
        today = model.min_rtt_floor_ms(maputo, frankfurt.location, frankfurt.iso2)

        holders = KPerPlanePlacement(copies_per_plane=4).place_object("news", shell1)
        lookup = SpaceCdnLookup(snapshot=shell1_snapshot, max_hops=5)
        result = lookup.lookup_from_point(maputo.location, holders)
        space_rtt = 2 * result.one_way_ms + CDN_SERVER_THINK_TIME_MS
        assert space_rtt < today / 2.0


class TestEndToEndTerrestrialCdn:
    def test_request_flow_through_cache_hierarchy(self):
        """Catalog -> origin -> edge server -> repeated client requests."""
        rng = np.random.default_rng(4)
        catalog = build_catalog(rng, 60, kind_weights={"web": 1.0})
        origin = OriginServer(catalog=catalog, location=GeoPoint(39.0, -77.5))
        edge = CdnServer(
            site=cdn_site_by_name("Frankfurt"),
            origin=origin,
            cache=LruCache(capacity_bytes=10**8),
        )
        from repro.workloads.zipf import ZipfDistribution

        zipf = ZipfDistribution(n=60, s=1.0, rng=rng)
        ids = [f"obj-{rank - 1:06d}" for rank in zipf.sample_many(400)]
        for object_id in ids:
            edge.serve(object_id)
        # Zipf traffic against a big cache: high hit ratio after warmup.
        assert edge.cache.stats.hit_ratio > 0.6

    def test_ground_fallback_latency_flows_into_lookup(self, shell1_snapshot):
        """SpaceCdnLookup ground fallback wired from a real resolved path."""
        model = StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(5)))
        maputo = city_by_name("Maputo")
        path = model.resolve_path(maputo)
        lookup = SpaceCdnLookup(
            snapshot=shell1_snapshot,
            max_hops=3,
            ground_fallback_one_way_ms=path.one_way_floor_ms,
        )
        result = lookup.lookup_from_point(maputo.location, frozenset())
        assert result.source is LookupSource.GROUND
        assert result.one_way_ms == pytest.approx(path.one_way_floor_ms)


class TestSeedDiscipline:
    def test_experiments_fully_reproducible(self):
        """Same seed, same figures — across independent processes-worth of state."""
        from repro.experiments import figure3

        a = figure3.run(seed=123, samples_per_site=5)
        b = figure3.run(seed=123, samples_per_site=5)
        assert a.starlink_ms == b.starlink_ms
        assert a.terrestrial_ms == b.terrestrial_ms

    def test_different_seeds_differ(self):
        from repro.experiments import figure3

        a = figure3.run(seed=1, samples_per_site=5)
        b = figure3.run(seed=2, samples_per_site=5)
        assert a.starlink_ms != b.starlink_ms
