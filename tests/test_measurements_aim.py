"""Tests for the synthetic AIM dataset generator."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.geo.datasets import city_by_name
from repro.measurements.aim import STARLINK, TERRESTRIAL, AimDataset, AimGenerator, SpeedTest


@pytest.fixture(scope="module")
def generator() -> AimGenerator:
    return AimGenerator(seed=5)


@pytest.fixture(scope="module")
def small_dataset(generator) -> AimDataset:
    cities = (
        city_by_name("Maputo"),
        city_by_name("Madrid"),
        city_by_name("Lagos"),
        city_by_name("Tokyo"),
    )
    return generator.generate(tests_per_city=15, cities=cities)


class TestGenerator:
    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AimGenerator(probes_per_site=0)
        with pytest.raises(ConfigurationError):
            AimGenerator(candidate_sites=0)

    def test_unknown_isp_rejected(self, generator):
        city = city_by_name("Madrid")
        from repro.geo.datasets import cdn_site_by_name

        site = cdn_site_by_name("Madrid")
        with pytest.raises(ConfigurationError):
            generator.sample_rtt_ms(city, site, "carrier-pigeon")

    def test_candidate_sites_starlink_anchor_is_pop(self, generator):
        # Starlink candidates for Maputo cluster around Frankfurt, not Maputo.
        candidates = generator.candidate_sites_for(city_by_name("Maputo"), STARLINK)
        names = {s.name for s in candidates}
        assert "Frankfurt" in names
        assert "Maputo" not in names

    def test_candidate_sites_terrestrial_anchor_is_client(self, generator):
        candidates = generator.candidate_sites_for(city_by_name("Maputo"), TERRESTRIAL)
        assert candidates[0].name == "Maputo"

    def test_optimal_site_maputo(self, generator):
        terr_site, terr_rtt = generator.optimal_site(city_by_name("Maputo"), TERRESTRIAL)
        star_site, star_rtt = generator.optimal_site(city_by_name("Maputo"), STARLINK)
        assert terr_site.name == "Maputo"
        assert star_site.iso2 in ("DE", "NL", "BE", "FR")  # Frankfurt region
        assert star_rtt > terr_rtt

    def test_generate_city_tests_fields(self, generator):
        tests = generator.generate_city_tests(city_by_name("Madrid"), STARLINK, 5)
        assert len(tests) == 5
        for test in tests:
            assert isinstance(test, SpeedTest)
            assert test.isp == STARLINK
            assert test.latency_ms > 0
            assert test.loaded_latency_ms > test.latency_ms * 0.5
            assert test.cdn_distance_km >= 0

    def test_generate_city_tests_invalid_count(self, generator):
        with pytest.raises(ConfigurationError):
            generator.generate_city_tests(city_by_name("Madrid"), STARLINK, 0)


class TestDataset:
    def test_both_isps_present(self, small_dataset):
        assert small_dataset.countries(TERRESTRIAL) == {"MZ", "ES", "NG", "JP"}
        assert small_dataset.countries(STARLINK) == {"MZ", "ES", "NG", "JP"}

    def test_starlink_weighting_by_tier(self, small_dataset):
        # Tier-3 countries get more Starlink tests than tier-1.
        mz_tests = len(small_dataset.filter(isp=STARLINK, iso2="MZ"))
        es_tests = len(small_dataset.filter(isp=STARLINK, iso2="ES"))
        assert mz_tests > es_tests

    def test_filter(self, small_dataset):
        subset = small_dataset.filter(isp=TERRESTRIAL, iso2="MZ")
        assert all(t.isp == TERRESTRIAL and t.iso2 == "MZ" for t in subset)
        assert subset

    def test_median_min_relationship(self, small_dataset):
        for iso2 in ("MZ", "ES"):
            for isp in (STARLINK, TERRESTRIAL):
                assert small_dataset.min_rtt_ms(iso2, isp) <= small_dataset.median_rtt_ms(
                    iso2, isp
                )

    def test_unmeasured_country_is_nan(self, small_dataset):
        assert math.isnan(small_dataset.median_rtt_ms("US", STARLINK))
        assert math.isnan(small_dataset.mean_distance_km("US", STARLINK))
        assert math.isnan(small_dataset.min_rtt_ms("US", STARLINK))

    def test_rtts_by_country(self, small_dataset):
        grouped = small_dataset.rtts_by_country(STARLINK)
        assert set(grouped) == {"MZ", "ES", "NG", "JP"}
        assert all(len(v) > 0 for v in grouped.values())

    def test_pooled_doubles_sample_count(self, small_dataset):
        idle = small_dataset.all_rtts(STARLINK)
        pooled = small_dataset.all_rtts_pooled(STARLINK)
        assert len(pooled) == 2 * len(idle)

    def test_paper_shape_starlink_worse_except_nigeria(self, small_dataset):
        for iso2 in ("MZ", "ES", "JP"):
            assert small_dataset.median_rtt_ms(iso2, STARLINK) > small_dataset.median_rtt_ms(
                iso2, TERRESTRIAL
            )
        # Nigeria: Starlink beats the congested terrestrial access.
        assert small_dataset.median_rtt_ms("NG", STARLINK) < small_dataset.median_rtt_ms(
            "NG", TERRESTRIAL
        )

    def test_starlink_distance_penalty_mozambique(self, small_dataset):
        assert small_dataset.mean_distance_km("MZ", STARLINK) > 7000
        assert small_dataset.mean_distance_km("MZ", TERRESTRIAL) < 1000


class TestReproducibility:
    def test_same_seed_same_dataset(self):
        cities = (city_by_name("Madrid"),)
        a = AimGenerator(seed=9).generate(tests_per_city=5, cities=cities)
        b = AimGenerator(seed=9).generate(tests_per_city=5, cities=cities)
        assert [t.latency_ms for t in a.tests] == [t.latency_ms for t in b.tests]

    def test_different_seed_differs(self):
        cities = (city_by_name("Madrid"),)
        a = AimGenerator(seed=1).generate(tests_per_city=5, cities=cities)
        b = AimGenerator(seed=2).generate(tests_per_city=5, cities=cities)
        assert [t.latency_ms for t in a.tests] != [t.latency_ms for t in b.tests]
