"""Tests for +Grid ISL wiring."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.orbits.elements import ShellConfig, starlink_shell1
from repro.topology.isl import (
    IslLink,
    links_for_satellite,
    nearest_cross_plane_offset,
    plus_grid_links,
)


class TestIslLink:
    def test_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            IslLink(3, 3, "intra-plane")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            IslLink(1, 2, "diagonal")

    def test_endpoints_canonical_order(self):
        assert IslLink(5, 2, "intra-plane").endpoints() == (2, 5)
        assert IslLink(2, 5, "intra-plane").endpoints() == (2, 5)


class TestPlusGrid:
    def test_link_count(self, small_shell):
        # 2 links per satellite in a P>2, S>2 grid.
        links = plus_grid_links(small_shell)
        assert len(links) == 2 * small_shell.total_satellites

    def test_every_satellite_has_degree_four(self, small_shell):
        degree = {i: 0 for i in range(small_shell.total_satellites)}
        for link in plus_grid_links(small_shell):
            degree[link.a] += 1
            degree[link.b] += 1
        assert set(degree.values()) == {4}

    def test_no_duplicate_links(self, small_shell):
        endpoints = [link.endpoints() for link in plus_grid_links(small_shell)]
        assert len(endpoints) == len(set(endpoints))

    def test_kind_split(self, small_shell):
        links = plus_grid_links(small_shell)
        intra = [l for l in links if l.kind == "intra-plane"]
        cross = [l for l in links if l.kind == "cross-plane"]
        assert len(intra) == small_shell.total_satellites
        assert len(cross) == small_shell.total_satellites

    def test_intra_plane_links_stay_in_plane(self, small_shell):
        per = small_shell.sats_per_plane
        for link in plus_grid_links(small_shell):
            if link.kind == "intra-plane":
                assert link.a // per == link.b // per

    def test_cross_plane_links_adjacent_planes(self, small_shell):
        per = small_shell.sats_per_plane
        planes = small_shell.num_planes
        for link in plus_grid_links(small_shell):
            if link.kind == "cross-plane":
                dp = (link.b // per - link.a // per) % planes
                assert dp in (1, planes - 1)

    def test_shell1_link_count(self):
        assert len(plus_grid_links(starlink_shell1())) == 2 * 1584


class TestNearestCrossPlaneOffset:
    def test_offset_in_range(self):
        shell = starlink_shell1()
        offset = nearest_cross_plane_offset(shell)
        assert 0 <= offset < shell.sats_per_plane

    def test_single_plane_offset_zero(self):
        shell = ShellConfig(
            altitude_km=550.0,
            inclination_deg=53.0,
            num_planes=1,
            sats_per_plane=8,
            name="single",
        )
        assert nearest_cross_plane_offset(shell) == 0

    def test_offset_actually_minimises_distance(self):
        # The wired neighbour must be no farther than the same-slot one.
        from repro.orbits.walker import build_walker_delta

        shell = starlink_shell1()
        constellation = build_walker_delta(shell)
        positions = constellation.positions_ecef(0.0)
        offset = nearest_cross_plane_offset(shell)
        per = shell.sats_per_plane
        wired = np.linalg.norm(positions[per + offset] - positions[0])
        same_slot = np.linalg.norm(positions[per] - positions[0])
        assert wired <= same_slot

    def test_offset_is_brute_force_argmin(self):
        from repro.orbits.walker import build_walker_delta

        shell = ShellConfig(
            altitude_km=550.0,
            inclination_deg=53.0,
            num_planes=6,
            sats_per_plane=8,
            phase_offset=0,
            name="no-phase",
        )
        constellation = build_walker_delta(shell)
        positions = constellation.positions_ecef(0.0)
        per = shell.sats_per_plane
        distances = [
            float(np.linalg.norm(positions[per + off] - positions[0]))
            for off in range(per)
        ]
        assert nearest_cross_plane_offset(shell) == distances.index(min(distances))


class TestLinksForSatellite:
    def test_four_links(self, small_shell):
        assert len(links_for_satellite(small_shell, 0)) == 4

    def test_out_of_range_rejected(self, small_shell):
        with pytest.raises(ConfigurationError):
            links_for_satellite(small_shell, small_shell.total_satellites)

    def test_links_incident(self, small_shell):
        for link in links_for_satellite(small_shell, 5):
            assert 5 in (link.a, link.b)
