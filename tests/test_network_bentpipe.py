"""Tests for the Starlink bent-pipe / ISL path model."""

import numpy as np
import pytest

from repro.geo.datasets import cdn_site_by_name, city_by_name
from repro.network.bentpipe import StarlinkModelParams, StarlinkPathModel
from repro.network.latency import LatencyNoise


@pytest.fixture
def model() -> StarlinkPathModel:
    return StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(21)))


class TestResolvePath:
    def test_maputo_routes_via_frankfurt_over_isls(self, model):
        path = model.resolve_path(city_by_name("Maputo"))
        assert path.pop.name == "Frankfurt"
        assert path.uses_isl
        assert path.isl_hops >= 4
        # Nearest Frankfurt-backhauled gateway (Lamia, GR) is ~7300 km away.
        assert path.gateway_distance_km > 7000

    def test_madrid_is_bent_pipe(self, model):
        path = model.resolve_path(city_by_name("Madrid"))
        assert path.pop.name == "Madrid"
        assert not path.uses_isl
        assert path.isl_hops == 0
        assert path.gateway_distance_km < 500

    def test_tokyo_is_bent_pipe(self, model):
        path = model.resolve_path(city_by_name("Tokyo"))
        assert path.pop.name == "Tokyo"
        assert not path.uses_isl

    def test_gateway_belongs_to_assigned_pop(self, model):
        for name in ("Maputo", "Madrid", "Nairobi", "Seattle", "Sydney"):
            path = model.resolve_path(city_by_name(name))
            assert path.gateway.site.pop_name == path.pop.name

    def test_path_cached(self, model):
        city = city_by_name("Maputo")
        assert model.resolve_path(city) is model.resolve_path(city)

    def test_isl_floor_dominated_by_distance(self, model):
        nairobi = model.resolve_path(city_by_name("Nairobi"))
        maputo = model.resolve_path(city_by_name("Maputo"))
        assert maputo.gateway_distance_km > nairobi.gateway_distance_km
        assert maputo.one_way_floor_ms > nairobi.one_way_floor_ms


class TestFloorCalibration:
    def test_madrid_floor_matches_paper_best_case(self, model):
        # Paper Table 1: Spain Starlink minRTT ~33 ms to a local CDN.
        city = city_by_name("Madrid")
        site = cdn_site_by_name("Madrid")
        floor = model.min_rtt_floor_ms(city, site.location, site.iso2)
        assert 24.0 < floor < 38.0

    def test_maputo_frankfurt_floor_matches_paper(self, model):
        # Paper Table 1: Mozambique Starlink minRTT ~139 ms.
        city = city_by_name("Maputo")
        site = cdn_site_by_name("Frankfurt")
        floor = model.min_rtt_floor_ms(city, site.location, site.iso2)
        assert 110.0 < floor < 165.0

    def test_floor_below_sampled_rtts(self, model):
        city = city_by_name("Maputo")
        site = cdn_site_by_name("Frankfurt")
        floor = model.min_rtt_floor_ms(city, site.location, site.iso2)
        samples = [
            model.idle_rtt_ms(city, site.location, site.iso2) for _ in range(100)
        ]
        assert min(samples) > floor * 0.9


class TestSampledRtts:
    def test_idle_rtt_positive(self, model):
        city = city_by_name("Seattle")
        site = cdn_site_by_name("Seattle")
        assert all(
            model.idle_rtt_ms(city, site.location, site.iso2) > 0 for _ in range(50)
        )

    def test_loaded_exceeds_idle_significantly(self, model):
        # Paper: >200 ms during active downloads from ISL-served countries.
        city = city_by_name("Nairobi")
        site = cdn_site_by_name("Frankfurt")
        idle = np.median(
            [model.idle_rtt_ms(city, site.location, site.iso2) for _ in range(200)]
        )
        loaded = np.median(
            [model.loaded_rtt_ms(city, site.location, site.iso2) for _ in range(200)]
        )
        assert loaded > idle + 80.0
        assert loaded > 200.0

    def test_maputo_frankfurt_median_matches_figure3(self, model):
        # Paper Fig. 3a: ~160 ms median from Maputo to the Frankfurt CDN.
        city = city_by_name("Maputo")
        site = cdn_site_by_name("Frankfurt")
        median = np.median(
            [model.idle_rtt_ms(city, site.location, site.iso2) for _ in range(300)]
        )
        assert 135.0 < median < 185.0

    def test_starlink_to_remote_cloud_beats_terrestrial_for_maputo(self, model):
        # Paper §3.2: "for applications that care more about connecting to
        # remote cloud servers, Starlink provides a faster alternative with
        # its fast-path to Europe" — compare Maputo -> Frankfurt both ways.
        from repro.network.terrestrial import TerrestrialPathModel

        terrestrial = TerrestrialPathModel(noise=model.noise)
        city = city_by_name("Maputo")
        site = cdn_site_by_name("Frankfurt")
        star = np.median(
            [model.idle_rtt_ms(city, site.location, site.iso2) for _ in range(200)]
        )
        terr = np.median(
            [terrestrial.idle_rtt_ms(city, site.location, site.iso2) for _ in range(200)]
        )
        assert star < terr


class TestParams:
    def test_custom_stretch_increases_floor(self):
        noise = LatencyNoise(rng=np.random.default_rng(5))
        slow = StarlinkPathModel(
            noise=noise,
            params=StarlinkModelParams(isl_path_stretch=2.5),
        )
        fast = StarlinkPathModel(
            noise=noise,
            params=StarlinkModelParams(isl_path_stretch=1.2),
        )
        city = city_by_name("Maputo")
        assert (
            slow.resolve_path(city).one_way_floor_ms
            > fast.resolve_path(city).one_way_floor_ms
        )

    def test_bent_pipe_threshold_switches_mode(self):
        noise = LatencyNoise(rng=np.random.default_rng(6))
        generous = StarlinkPathModel(
            noise=noise, params=StarlinkModelParams(bent_pipe_max_km=10_000.0)
        )
        city = city_by_name("Nairobi")
        assert not generous.resolve_path(city).uses_isl
