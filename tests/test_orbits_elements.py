"""Tests for shell configuration and satellite identity."""

import pytest

from repro.errors import ConfigurationError
from repro.orbits.elements import SatelliteId, ShellConfig, starlink_shell1


class TestShellConfig:
    def test_starlink_shell1_matches_paper(self):
        shell = starlink_shell1()
        assert shell.num_planes == 72
        assert shell.sats_per_plane == 22
        assert shell.total_satellites == 1584
        assert shell.altitude_km == 550.0
        assert shell.inclination_deg == 53.0

    def test_period_is_about_95_minutes(self):
        # The paper: satellites "revisit a location roughly every 90 minutes".
        assert 90 * 60 < starlink_shell1().period_s < 100 * 60

    def test_spacings(self):
        shell = starlink_shell1()
        assert shell.raan_spacing_deg == pytest.approx(5.0)
        assert shell.in_plane_spacing_deg == pytest.approx(360.0 / 22)

    def test_inter_plane_phase(self):
        shell = starlink_shell1()
        assert shell.inter_plane_phase_deg == pytest.approx(39 * 360.0 / 1584)

    def test_in_plane_neighbor_distance(self):
        shell = starlink_shell1()
        # 22 satellites around a 6921 km-radius orbit: chord ~1966 km.
        assert shell.in_plane_neighbor_distance_km() == pytest.approx(1966, rel=0.01)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"altitude_km": 0.0},
            {"altitude_km": -10.0},
            {"inclination_deg": 0.0},
            {"inclination_deg": 181.0},
            {"num_planes": 0},
            {"sats_per_plane": 0},
            {"phase_offset": 48},  # >= total for the small config below
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        base = dict(
            altitude_km=550.0,
            inclination_deg=53.0,
            num_planes=6,
            sats_per_plane=8,
            phase_offset=0,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ShellConfig(**base)


class TestSatelliteId:
    def test_index_round_trip(self, small_shell):
        for index in range(small_shell.total_satellites):
            sat = SatelliteId.from_index(index, small_shell)
            assert sat.index(small_shell) == index

    def test_plane_slot_layout(self, small_shell):
        sat = SatelliteId.from_index(small_shell.sats_per_plane + 3, small_shell)
        assert sat.plane == 1
        assert sat.slot == 3

    def test_out_of_range_index_rejected(self, small_shell):
        with pytest.raises(ConfigurationError):
            SatelliteId.from_index(small_shell.total_satellites, small_shell)
        with pytest.raises(ConfigurationError):
            SatelliteId.from_index(-1, small_shell)

    def test_mismatched_id_rejected(self, small_shell):
        rogue = SatelliteId(plane=99, slot=0)
        with pytest.raises(ConfigurationError):
            rogue.index(small_shell)
