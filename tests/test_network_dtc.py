"""Tests for the direct-to-cell access model."""

import pytest

from repro.errors import ConfigurationError
from repro.network.direct_to_cell import (
    DirectToCellAccess,
    dtc_vs_dishy_rtt_penalty_ms,
)


@pytest.fixture
def dtc() -> DirectToCellAccess:
    return DirectToCellAccess()


class TestLinkBudget:
    def test_link_closes_at_high_elevation(self, dtc):
        assert dtc.one_way_ms(90.0) > 0
        assert dtc.one_way_ms(45.0) > dtc.one_way_ms(90.0)

    def test_link_refuses_below_mask(self, dtc):
        with pytest.raises(ConfigurationError):
            dtc.one_way_ms(30.0)

    def test_floor_rtt_dominated_by_scheduling(self, dtc):
        # Propagation at zenith is ~1.8 ms; the 15 ms frame cycle dominates.
        floor = dtc.floor_rtt_ms()
        assert 35.0 < floor < 45.0

    def test_penalty_vs_dishy_positive(self):
        penalty = dtc_vs_dishy_rtt_penalty_ms()
        assert penalty > 15.0  # phones pay tens of ms more per RTT


class TestBeamSharing:
    def test_single_user_gets_whole_beam(self, dtc):
        assert dtc.user_share_mbps(1) == dtc.beam_capacity_mbps

    def test_share_divides(self, dtc):
        assert dtc.user_share_mbps(10) == pytest.approx(dtc.beam_capacity_mbps / 10)

    def test_zero_users_rejected(self, dtc):
        with pytest.raises(ConfigurationError):
            dtc.user_share_mbps(0)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"altitude_km": 0.0},
            {"min_elevation_deg": 95.0},
            {"scheduling_delay_ms": 0.0},
            {"beam_capacity_mbps": 0.0},
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DirectToCellAccess(**kwargs)


class TestSpaceCdnMotivation:
    def test_overhead_cache_beats_bent_pipe_for_phones(self, dtc):
        """Even with the phone's worse access link, fetching from the
        overhead satellite's cache is far better than the full bent-pipe
        path to a distant PoP — the §5 direct-to-cell argument."""
        import numpy as np

        from repro.geo.datasets import cdn_site_by_name, city_by_name
        from repro.network.bentpipe import StarlinkPathModel
        from repro.network.latency import LatencyNoise

        model = StarlinkPathModel(noise=LatencyNoise(rng=np.random.default_rng(0)))
        maputo = city_by_name("Maputo")
        frankfurt = cdn_site_by_name("Frankfurt")
        bent_pipe_rtt = model.min_rtt_floor_ms(maputo, frankfurt.location, frankfurt.iso2)
        overhead_cache_rtt = dtc.floor_rtt_ms()
        assert overhead_cache_rtt < bent_pipe_rtt / 3.0
