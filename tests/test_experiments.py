"""End-to-end tests of the per-figure experiment harnesses (small scale).

Each test asserts the *shape* the paper reports, at reduced sample sizes so
the suite stays fast. The full-scale reproductions run in benchmarks/.
"""

import math

import pytest

from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure7,
    figure8,
    table1,
)
from repro.measurements.aim import STARLINK, TERRESTRIAL

SEED = 7
TESTS_PER_CITY = 10


@pytest.fixture(scope="module")
def table1_result():
    return table1.run(seed=SEED, tests_per_city=TESTS_PER_CITY)


@pytest.fixture(scope="module")
def figure2_result():
    return figure2.run(seed=SEED, tests_per_city=TESTS_PER_CITY)


class TestTable1:
    def test_all_countries_present(self, table1_result):
        assert len(table1_result.rows) == 11

    def test_starlink_distance_penalty_where_no_pop(self, table1_result):
        rows = {r.iso2: r for r in table1_result.rows}
        for iso2 in ("MZ", "KE", "ZM", "HT", "CY"):
            assert rows[iso2].starlink_distance_km > 3 * rows[iso2].terrestrial_distance_km
            assert rows[iso2].starlink_min_rtt_ms > 2 * rows[iso2].terrestrial_min_rtt_ms

    def test_local_pop_countries_near_parity_distance(self, table1_result):
        rows = {r.iso2: r for r in table1_result.rows}
        for iso2 in ("ES", "JP"):
            assert rows[iso2].starlink_distance_km < 600
            assert rows[iso2].starlink_min_rtt_ms < 45

    def test_mozambique_matches_paper_regime(self, table1_result):
        row = next(r for r in table1_result.rows if r.iso2 == "MZ")
        assert 7500 < row.starlink_distance_km < 10000  # paper: 8776 km
        assert 100 < row.starlink_min_rtt_ms < 170  # paper: 138.7 ms

    def test_format_contains_paper_columns(self, table1_result):
        text = table1.format_result(table1_result)
        assert "paper" in text
        assert "Mozambique" in text


class TestFigure2:
    def test_terrestrial_faster_almost_everywhere(self, figure2_result):
        positive = sum(1 for d in figure2_result.deltas_ms.values() if d > 0)
        assert positive / len(figure2_result.deltas_ms) > 0.9

    def test_typical_delta_tens_of_ms(self, figure2_result):
        # Paper: "typically around 50 ms".
        assert 25.0 < figure2_result.median_delta_ms() < 70.0

    def test_african_isl_countries_worst(self, figure2_result):
        # Paper: 120-150 ms deltas in Kenya, Mozambique, Zambia.
        worst = dict(figure2_result.worst_countries(8))
        assert {"MZ", "ZM", "KE"} & set(worst)
        assert figure2_result.deltas_ms["MZ"] > 90.0
        assert figure2_result.deltas_ms["ZM"] > 70.0

    def test_nigeria_is_the_outlier(self, figure2_result):
        assert figure2_result.countries_where_starlink_faster() == ["NG"]

    def test_format(self, figure2_result):
        text = figure2.format_result(figure2_result)
        assert "delta" in text.lower()


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return figure3.run(seed=SEED, samples_per_site=12)

    def test_starlink_optimal_is_frankfurt(self, result):
        name, latency = result.optimal_site(STARLINK)
        assert name == "Frankfurt"
        assert 130.0 < latency < 190.0  # paper: ~160 ms

    def test_terrestrial_optimal_is_maputo(self, result):
        name, latency = result.optimal_site(TERRESTRIAL)
        assert name == "Maputo"
        assert 10.0 < latency < 35.0  # paper: ~20 ms

    def test_starlink_african_sites_worse_than_frankfurt(self, result):
        # Paper Fig. 3a: African CDNs exceed 250 ms over Starlink.
        for site in ("Cape Town", "Johannesburg", "Nairobi"):
            assert result.starlink_ms[site] > result.starlink_ms["Frankfurt"] + 50.0

    def test_starlink_european_sites_cheaper_than_african(self, result):
        # Paper: "we observe shorter latencies to other CDN locations in
        # Europe (e.g. Lisbon)".
        assert result.starlink_ms["Lisbon"] < result.starlink_ms["Cape Town"]

    def test_terrestrial_johannesburg_regime(self, result):
        assert 30.0 < result.terrestrial_ms["Johannesburg"] < 90.0  # paper: ~70 ms

    def test_invalid_samples_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            figure3.run(samples_per_site=0)


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(seed=SEED, rounds=2)

    def test_countries_present(self, result):
        assert set(result.differences_ms) == set(figure4.FIGURE4_COUNTRIES)

    def test_terrestrial_wins_in_pop_countries(self, result):
        for iso2 in ("US", "CA", "GB", "DE"):
            assert 10.0 < result.median_difference_ms(iso2) < 110.0

    def test_nigeria_starlink_faster(self, result):
        assert result.median_difference_ms("NG") < 0.0
        assert result.countries_where_starlink_faster() == ["NG"]

    def test_cdf_accessible(self, result):
        cdf = result.cdf("DE")
        assert 0.0 <= cdf.at(0.0) <= 0.3


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(seed=SEED, rounds=2)

    def test_gap_matches_paper_order(self, result):
        # Paper: median FCP ~200 ms higher over Starlink in DE and GB.
        for iso2 in ("DE", "GB"):
            assert 120.0 < result.median_gap_ms(iso2) < 350.0

    def test_summaries_have_both_isps(self, result):
        assert ("DE", STARLINK) in result.fcp_summaries
        assert ("GB", TERRESTRIAL) in result.fcp_summaries

    def test_fcp_magnitudes_sane(self, result):
        for summary in result.fcp_summaries.values():
            assert 100.0 < summary.median < 2000.0


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return figure7.run(seed=SEED, users_per_epoch=8, num_epochs=2)

    def test_curves_monotone_in_hops(self, result):
        medians = [result.cdf(n).quantile(0.5) for n in figure7.HOP_COUNTS]
        assert medians == sorted(medians)

    def test_first_sat_fastest(self, result):
        assert result.cdf(0).quantile(0.5) < 25.0

    def test_five_hops_beats_terrestrial_tail(self, result):
        # Paper: SpaceCDN at <=5 hops outperforms terrestrial in the tail.
        assert result.cdf(5).quantile(0.95) < result.cdf(TERRESTRIAL).quantile(0.95)

    def test_ten_hops_about_half_starlink(self, result):
        # Paper: 10 ISL hops offers ~half the (whole-CDF) Starlink latency.
        ratio = result.cdf(10).quantile(0.5) / result.cdf(STARLINK).quantile(0.5)
        assert 0.25 < ratio < 0.75

    def test_spacecdn_beats_starlink_everywhere(self, result):
        for q in (0.25, 0.5, 0.75, 0.95):
            assert result.cdf(5).quantile(q) < result.cdf(STARLINK).quantile(q)


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return figure8.run(seed=SEED, users_per_epoch=8, num_epochs=2)

    def test_all_fractions_present(self, result):
        assert set(result.rtt_summaries) == {0.3, 0.5, 0.8}

    def test_latency_decreases_with_fraction(self, result):
        assert (
            result.rtt_summaries[0.8].median
            < result.rtt_summaries[0.5].median
            < result.rtt_summaries[0.3].median
        )

    def test_half_fleet_competitive(self, result):
        # Paper: >= 50% duty-cycling caches are competitive with terrestrial.
        assert 0.5 in result.competitive_fractions()
        assert 0.8 in result.competitive_fractions()

    def test_terrestrial_reference_finite(self, result):
        assert not math.isnan(result.terrestrial_median_ms)
        assert 10.0 < result.terrestrial_median_ms < 60.0


class TestBatchFlag:
    """``--batch/--no-batch``: the scalar reference path stays one flag
    away, produces the same numbers, and is pinned in the run manifest."""

    def test_figure7_scalar_reference_matches_batch(self):
        batched = figure7.spacecdn_rtt_samples(
            users_per_epoch=5, num_epochs=2, seed=SEED, batch=True
        )
        scalar = figure7.spacecdn_rtt_samples(
            users_per_epoch=5, num_epochs=2, seed=SEED, batch=False
        )
        assert set(batched) == set(scalar)
        for n in batched:
            assert batched[n] == pytest.approx(scalar[n])

    def test_figure8_scalar_reference_matches_batch(self):
        kwargs = dict(seed=SEED, users_per_epoch=5, num_epochs=2)
        batched = figure8.run(batch=True, **kwargs)
        scalar = figure8.run(batch=False, **kwargs)
        for fraction in batched.rtt_samples_ms:
            assert batched.rtt_samples_ms[fraction] == pytest.approx(
                scalar.rtt_samples_ms[fraction]
            )

    def test_chaos_scalar_reference_matches_batch(self):
        from repro.experiments import chaos

        kwargs = dict(
            seed=SEED, num_requests=40, fractions=(0.0, 0.2), shell="small"
        )
        batched = chaos.run(batch=True, **kwargs)
        chaos._sweep_context.cache_clear()
        scalar = chaos.run(batch=False, **kwargs)
        assert chaos.format_result(batched) == chaos.format_result(scalar)

    def test_flag_recorded_in_plan_config(self):
        from repro.experiments import chaos

        for module in (chaos, figure7, figure8):
            on = module.build_plan(seed=SEED, batch=True)
            off = module.build_plan(seed=SEED, batch=False)
            assert on.config["batch"] is True
            assert off.config["batch"] is False

    def test_cli_flag_defaults_to_batch(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["run", "chaos"]).batch is True
        assert parser.parse_args(["run", "chaos", "--no-batch"]).batch is False

    def test_resumed_run_byte_identical_same_flag(self, tmp_path, capsys):
        from repro.cli import EXIT_INTERRUPTED, main

        base = [
            "run", "chaos", "--shell", "small", "--requests", "30",
            "--fractions", "0.0,0.3", "--seed", "5", "--no-batch",
        ]
        clean = tmp_path / "clean"
        assert main(base + ["--out-dir", str(clean)]) == 0
        resumed = tmp_path / "resumed"
        assert (
            main(base + ["--out-dir", str(resumed), "--max-shards", "1"])
            == EXIT_INTERRUPTED
        )
        assert main(base + ["--out-dir", str(resumed), "--resume"]) == 0
        capsys.readouterr()
        assert (clean / "result.txt").read_bytes() == (
            resumed / "result.txt"
        ).read_bytes()

    def test_resume_refuses_flag_flip(self, tmp_path, capsys):
        import json

        from repro.cli import EXIT_ERROR, main

        base = [
            "run", "chaos", "--shell", "small", "--requests", "30",
            "--fractions", "0.0,0.3", "--seed", "5",
        ]
        run_dir = tmp_path / "flip"
        assert main(base + ["--out-dir", str(run_dir)]) == 0
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["config"]["batch"] is True
        # Flipping the flag changes the config hash: --resume must refuse.
        assert (
            main(base + ["--no-batch", "--out-dir", str(run_dir), "--resume"])
            == EXIT_ERROR
        )
        capsys.readouterr()
