"""Property tests: overload protection invariants under Hypothesis.

Three contracts pinned here:

* ``serve_batch`` is an optimisation of scalar ``serve`` on *overloaded*
  cohorts too: element-wise identical results and identical stats, healthy
  and under fault schedules, for arbitrary request streams and model
  tunings (the capacity counters, breakers, deadline budgets, and seeded
  priority draws must all advance in exactly the request order).
* :class:`~repro.faults.retry.RetryPolicy` edges: backoff is monotone
  non-decreasing and capped, ``within_budget`` is inclusive at exactly the
  budget, and attempt 0 is a configuration error.
* :class:`~repro.spacecdn.capacity.ThermalModel`: the sustainable duty
  fraction lives in [0, 1] and is monotone in the thermal headroom
  (time constant and limit), and ``time_to_limit_s`` is 0 for a start
  already at/above the limit and ``inf`` when the active equilibrium
  never reaches it.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.content import build_catalog
from repro.errors import FaultConfigError, UnavailableError
from repro.faults import (
    FaultSchedule,
    FlashCrowdProcess,
    OutageWindow,
    RetryPolicy,
    TransientAttemptLoss,
)
from repro.geo.coordinates import GeoPoint
from repro.orbits.elements import ShellConfig
from repro.orbits.walker import build_walker_delta
from repro.overload import CircuitBreakerConfig, OverloadModel
from repro.spacecdn.capacity import ThermalModel
from repro.spacecdn.system import SpaceCdnSystem

CONSTELLATION = build_walker_delta(
    ShellConfig(
        altitude_km=550.0,
        inclination_deg=53.0,
        num_planes=6,
        sats_per_plane=8,
        phase_offset=3,
        name="overload-prop-shell",
    )
)
CATALOG = build_catalog(
    np.random.default_rng(0), 30, regions=("africa",), kind_weights={"web": 1.0}
)
OBJECTS = sorted(o.object_id for o in CATALOG)
USERS = [
    GeoPoint(0.0, 0.0, 0.0),
    GeoPoint(-1.3, 36.8, 0.0),  # Nairobi
    GeoPoint(6.5, 3.4, 0.0),  # Lagos
]


@st.composite
def overload_models(draw):
    """Arbitrary-but-valid model tunings, biased towards actual overload."""
    breaker = None
    if draw(st.booleans()):
        breaker = CircuitBreakerConfig(
            failure_threshold=draw(st.integers(min_value=1, max_value=4)),
            cooldown_s=draw(st.floats(min_value=1.0, max_value=300.0)),
            cooldown_jitter_s=draw(st.floats(min_value=0.0, max_value=60.0)),
            half_open_probes=draw(st.integers(min_value=1, max_value=3)),
        )
    return OverloadModel(
        capacity_per_slot=draw(st.floats(min_value=1.0, max_value=8.0)),
        ground_capacity_per_slot=draw(st.floats(min_value=1.0, max_value=20.0)),
        queue_service_ms=draw(st.floats(min_value=0.0, max_value=20.0)),
        deadline_ms=draw(
            st.one_of(st.none(), st.floats(min_value=50.0, max_value=2000.0))
        ),
        breaker=breaker,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@st.composite
def request_specs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    t = 0.0
    spec = []
    for _ in range(n):
        t += draw(st.floats(min_value=0.0, max_value=30.0))
        spec.append(
            (
                draw(st.integers(min_value=0, max_value=len(USERS) - 1)),
                draw(st.integers(min_value=0, max_value=len(OBJECTS) - 1)),
                t,
            )
        )
    return spec


def make_system(model, schedule):
    system = SpaceCdnSystem(
        constellation=CONSTELLATION,
        catalog=CATALOG,
        cache_bytes_per_satellite=10**8,
        max_hops=6,
        fault_schedule=schedule,
        overload=model,
    )
    system.preload(
        {
            oid: frozenset(
                {(i * 7) % len(CONSTELLATION), (i * 13 + 5) % len(CONSTELLATION)}
            )
            for i, oid in enumerate(OBJECTS[:12])
        }
    )
    return system


def overload_schedule(seed: int, faulted: bool) -> FaultSchedule:
    schedule = FaultSchedule().add(
        FlashCrowdProcess(
            extra_requests_per_slot=2.0, start_s=50.0, end_s=400.0, ramp_s=30.0
        )
    )
    if faulted:
        schedule.add(
            OutageWindow(satellites=frozenset(range(0, len(CONSTELLATION), 9)))
        ).add(TransientAttemptLoss(probability=0.2, seed=seed))
    return schedule


def run_scalar(system, spec):
    results = []
    for u, o, t in spec:
        try:
            results.append(system.serve(USERS[u], OBJECTS[o], t))
        except UnavailableError:  # covers OverloadedError sheds
            results.append(None)
    return results


def run_batched(system, spec):
    """Per-slot cohorts, exactly as ``run(batch=True)`` groups a stream."""
    results = []
    group: list[tuple[int, int, float]] = []
    slot = None

    def flush():
        if not group:
            return
        results.extend(
            system.serve_batch(
                [USERS[u] for u, _, _ in group],
                [OBJECTS[o] for _, o, _ in group],
                [t for _, _, t in group],
                continue_on_unavailable=True,
            )
        )
        group.clear()

    for u, o, t in spec:
        s = int(t // system.snapshot_interval_s)
        if slot is not None and s != slot:
            flush()
        slot = s
        group.append((u, o, t))
    flush()
    return results


class TestBatchEquivalenceUnderOverload:
    @given(model=overload_models(), spec=request_specs())
    @settings(max_examples=25, deadline=None)
    def test_healthy_cohorts_match_scalar(self, model, spec):
        seed = model.seed
        scalar = make_system(model, overload_schedule(seed, faulted=False))
        batched = make_system(
            eval_model_copy(model), overload_schedule(seed, faulted=False)
        )
        assert run_batched(batched, spec) == run_scalar(scalar, spec)
        assert batched.stats == scalar.stats

    @given(model=overload_models(), spec=request_specs())
    @settings(max_examples=25, deadline=None)
    def test_faulted_cohorts_match_scalar(self, model, spec):
        seed = model.seed
        scalar = make_system(model, overload_schedule(seed, faulted=True))
        batched = make_system(
            eval_model_copy(model), overload_schedule(seed, faulted=True)
        )
        assert run_batched(batched, spec) == run_scalar(scalar, spec)
        assert batched.stats == scalar.stats

    @given(spec=request_specs(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=15, deadline=None)
    def test_explicit_priorities_match_scalar(self, spec, seed):
        def model():
            return OverloadModel(capacity_per_slot=2.0,
                                 ground_capacity_per_slot=4.0, seed=seed)

        rng = np.random.default_rng(seed)
        priorities = [int(rng.integers(0, 3)) for _ in spec]
        scalar = make_system(model(), None)
        expected = []
        for (u, o, t), priority in zip(spec, priorities):
            try:
                expected.append(
                    scalar.serve(USERS[u], OBJECTS[o], t, priority=priority)
                )
            except UnavailableError:
                expected.append(None)
        batched = make_system(model(), None)
        actual = []
        group, group_p, slot = [], [], None
        for (u, o, t), priority in zip(spec, priorities):
            s = int(t // batched.snapshot_interval_s)
            if slot is not None and s != slot and group:
                actual.extend(
                    batched.serve_batch(
                        [USERS[u] for u, _, _ in group],
                        [OBJECTS[o] for _, o, _ in group],
                        [t for _, _, t in group],
                        continue_on_unavailable=True,
                        priorities=group_p,
                    )
                )
                group, group_p = [], []
            slot = s
            group.append((u, o, t))
            group_p.append(priority)
        if group:
            actual.extend(
                batched.serve_batch(
                    [USERS[u] for u, _, _ in group],
                    [OBJECTS[o] for _, o, _ in group],
                    [t for _, _, t in group],
                    continue_on_unavailable=True,
                    priorities=group_p,
                )
            )
        assert actual == expected
        assert batched.stats == scalar.stats


def eval_model_copy(model: OverloadModel) -> OverloadModel:
    """A fresh model with the same tuning (per-slot state not shared)."""
    return OverloadModel(
        capacity_per_slot=model.capacity_per_slot,
        ground_capacity_per_slot=model.ground_capacity_per_slot,
        queue_service_ms=model.queue_service_ms,
        max_utilisation=model.max_utilisation,
        max_queue_delay_ms=model.max_queue_delay_ms,
        shed_thresholds=model.shed_thresholds,
        priority_weights=model.priority_weights,
        deadline_ms=model.deadline_ms,
        breaker=model.breaker,
        seed=model.seed,
    )


class TestRetryPolicyEdges:
    @given(
        base=st.floats(min_value=0.0, max_value=100.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        cap=st.floats(min_value=0.0, max_value=500.0),
        attempts=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_backoff_is_monotone_and_capped(self, base, multiplier, cap, attempts):
        policy = RetryPolicy(
            backoff_base_ms=base, backoff_multiplier=multiplier,
            backoff_cap_ms=cap,
        )
        waits = [policy.backoff_ms(k) for k in range(1, attempts + 1)]
        assert all(w <= cap for w in waits)
        assert all(a <= b for a, b in zip(waits, waits[1:]))
        assert waits[0] == min(cap, base)

    @given(budget=st.floats(min_value=0.001, max_value=10_000.0))
    @settings(max_examples=50, deadline=None)
    def test_within_budget_is_inclusive_at_the_edge(self, budget):
        policy = RetryPolicy(attempt_budget_ms=budget)
        assert policy.within_budget(budget)
        assert policy.within_budget(math.nextafter(budget, -math.inf))
        assert not policy.within_budget(math.nextafter(budget, math.inf))

    def test_attempt_zero_is_a_config_error(self):
        policy = RetryPolicy()
        with pytest.raises(FaultConfigError):
            policy.backoff_ms(0)
        with pytest.raises(FaultConfigError):
            policy.backoff_ms(-3)

    def test_no_budget_means_every_rtt_fits(self):
        assert RetryPolicy().within_budget(float("inf"))


class TestThermalModelProperties:
    @given(
        tau=st.floats(min_value=300.0, max_value=20_000.0),
        limit=st.floats(min_value=19.0, max_value=45.0),
        slot_s=st.floats(min_value=60.0, max_value=1800.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_duty_fraction_is_a_fraction(self, tau, limit, slot_s):
        model = ThermalModel(time_constant_s=tau, limit_c=limit)
        fraction = model.max_sustainable_duty_fraction(slot_s)
        assert 0.0 <= fraction <= 1.0

    @given(
        tau_a=st.floats(min_value=300.0, max_value=20_000.0),
        tau_b=st.floats(min_value=300.0, max_value=20_000.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_slower_thermal_response_never_reduces_duty(self, tau_a, tau_b):
        """A larger time constant (slower heating per active slot) leaves at
        least as much duty headroom; tolerance covers the bisection grid."""
        slow, fast = max(tau_a, tau_b), min(tau_a, tau_b)
        duty_slow = ThermalModel(
            time_constant_s=slow
        ).max_sustainable_duty_fraction()
        duty_fast = ThermalModel(
            time_constant_s=fast
        ).max_sustainable_duty_fraction()
        assert duty_slow >= duty_fast - 1e-6

    @given(
        limit_a=st.floats(min_value=19.0, max_value=45.0),
        limit_b=st.floats(min_value=19.0, max_value=45.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_higher_limit_never_reduces_duty(self, limit_a, limit_b):
        high, low = max(limit_a, limit_b), min(limit_a, limit_b)
        duty_high = ThermalModel(limit_c=high).max_sustainable_duty_fraction()
        duty_low = ThermalModel(limit_c=low).max_sustainable_duty_fraction()
        assert duty_high >= duty_low - 1e-6

    @given(start=st.floats(min_value=30.0, max_value=80.0))
    @settings(max_examples=25, deadline=None)
    def test_time_to_limit_is_zero_at_or_past_the_limit(self, start):
        model = ThermalModel(limit_c=30.0)
        assert model.time_to_limit_s(start_c=start) == 0.0

    def test_time_to_limit_is_inf_below_active_equilibrium(self):
        model = ThermalModel(active_equilibrium_c=28.0, limit_c=30.0)
        assert model.time_to_limit_s() == math.inf

    @given(
        capacity=st.floats(min_value=1.0, max_value=500.0),
        slot_s=st.floats(min_value=60.0, max_value=1800.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_sustainable_requests_stay_within_peak(self, capacity, slot_s):
        model = ThermalModel()
        sustainable = model.sustainable_requests_per_slot(capacity, slot_s)
        assert 1 <= sustainable <= math.ceil(capacity)
