"""Unit tests for the repro.obs observability subsystem."""

import json
import math

import pytest

from repro.errors import ObsError
from repro.obs import (
    NOOP_RECORDER,
    MetricsRegistry,
    ObsRecorder,
    ProfileAccumulator,
    TraceBuffer,
    get_recorder,
    recording,
    reset_recorder,
    set_recorder,
    summarize_trace,
    summarize_trace_file,
)
from repro.obs.metrics import Histogram
from repro.obs.tracing import read_trace


@pytest.fixture(autouse=True)
def _clean_recorder():
    yield
    reset_recorder()


class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("requests_total", (("tier", "access"),))
        registry.inc("requests_total", (("tier", "access"),), 2.0)
        registry.inc("requests_total", (("tier", "ground"),))
        assert registry.counter_value("requests_total", (("tier", "access"),)) == 3.0
        assert registry.counter_value("requests_total", (("tier", "ground"),)) == 1.0
        assert registry.counter_value("requests_total", (("tier", "isl"),)) == 0.0

    def test_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 3.0)
        registry.set_gauge("depth", 7.0)
        assert registry.gauge_value("depth") == 7.0
        assert registry.gauge_value("missing") is None

    def test_histogram_observations_land_in_buckets(self):
        registry = MetricsRegistry()
        for value in (0.5, 5.0, 9.0, 100.0):
            registry.observe("rtt_ms", value, buckets=(1.0, 10.0, 50.0))
        histogram = registry.histogram("rtt_ms")
        # le semantics: a sample equal to a bound counts inside that bucket.
        assert histogram.cumulative() == [
            (1.0, 1),
            (10.0, 3),
            (50.0, 3),
            (math.inf, 4),
        ]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(114.5)

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.observe("rtt_ms", 1.0, buckets=(1.0, 10.0))
        with pytest.raises(ObsError):
            registry.observe("rtt_ms", 1.0, buckets=(2.0, 20.0))

    def test_histogram_quantile_returns_bucket_bound(self):
        histogram = Histogram((10.0, 100.0))
        for _ in range(9):
            histogram.observe(5.0)
        histogram.observe(50.0)
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(1.0) == 100.0
        assert math.isnan(Histogram((1.0,)).quantile(0.5))

    def test_invalid_buckets_raise(self):
        with pytest.raises(ObsError):
            Histogram(())
        with pytest.raises(ObsError):
            Histogram((5.0, 1.0))

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.inc("serves_total", (("tier", "access"),), 3)
        registry.set_gauge("fleet_size", 48)
        registry.observe("rtt_ms", 7.0, buckets=(5.0, 10.0))
        text = registry.render_prometheus()
        assert "# TYPE serves_total counter" in text
        assert 'serves_total{tier="access"} 3' in text
        assert "# TYPE fleet_size gauge" in text
        assert "fleet_size 48" in text
        assert "# TYPE rtt_ms histogram" in text
        assert 'rtt_ms_bucket{le="5"} 0' in text
        assert 'rtt_ms_bucket{le="10"} 1' in text
        assert 'rtt_ms_bucket{le="+Inf"} 1' in text
        assert "rtt_ms_sum 7" in text
        assert "rtt_ms_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert MetricsRegistry().is_empty

    def test_json_export_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("hits", (("op", "get"),))
        registry.observe("rtt_ms", 3.0, buckets=(5.0,))
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["counters"] == [
            {"name": "hits", "labels": {"op": "get"}, "value": 1.0}
        ]
        assert loaded["histograms"][0]["count"] == 1
        assert loaded["histograms"][0]["buckets"][-1]["le"] == "+Inf"

    def test_write_prometheus_creates_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("x")
        path = tmp_path / "metrics.prom"
        registry.write_prometheus(path)
        assert path.read_text() == "# TYPE x counter\nx 1\n"


class TestTracing:
    def test_record_and_children(self):
        buffer = TraceBuffer()
        root = buffer.open_span("serve", object_id="obj-1")
        child_id = root.child("attempt", tier="access")
        root.set(outcome="served")
        spans = buffer.spans()
        assert len(spans) == 2
        assert spans[0]["kind"] == "serve"
        assert spans[0]["outcome"] == "served"
        assert spans[1]["parent_id"] == root.span_id
        assert spans[1]["span_id"] == child_id

    def test_flush_writes_complete_jsonl(self, tmp_path):
        buffer = TraceBuffer()
        for i in range(5):
            buffer.record("attempt", index=i)
        path = tmp_path / "trace.jsonl"
        assert buffer.flush(path) == 5
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert [json.loads(line)["index"] for line in lines] == list(range(5))

    def test_reflush_rewrites_whole_trace(self, tmp_path):
        buffer = TraceBuffer()
        buffer.record("a")
        path = tmp_path / "trace.jsonl"
        buffer.flush(path)
        buffer.record("b")
        buffer.flush(path)
        kinds = [span["kind"] for span in read_trace(path)]
        assert kinds == ["a", "b"]

    def test_read_trace_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "serve", "span_id": 1}\n{not json\n')
        with pytest.raises(ObsError, match=":2:"):
            list(read_trace(path))

    def test_read_trace_rejects_non_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ObsError):
            list(read_trace(path))

    def test_read_trace_missing_file(self, tmp_path):
        with pytest.raises(ObsError):
            list(read_trace(tmp_path / "nope.jsonl"))


class TestProfiling:
    def test_timer_accumulates(self):
        profile = ProfileAccumulator()
        for _ in range(3):
            with profile.timer("region"):
                pass
        stats = profile.sites["region"]
        assert stats.calls == 3
        assert stats.total_s >= 0.0
        assert stats.min_s <= stats.max_s

    def test_summary_sorted_by_total_time(self):
        profile = ProfileAccumulator()
        profile.add("slow", 2.0)
        profile.add("fast", 0.1)
        profile.add("slow", 1.0)
        summary = profile.summary()
        assert list(summary) == ["slow", "fast"]
        assert summary["slow"]["calls"] == 2
        assert summary["slow"]["total_s"] == pytest.approx(3.0)
        assert summary["slow"]["mean_s"] == pytest.approx(1.5)

    def test_empty(self):
        assert ProfileAccumulator().is_empty
        assert ProfileAccumulator().summary() == {}


class TestRecorder:
    def test_default_is_disabled_noop(self):
        assert get_recorder() is NOOP_RECORDER
        assert not NOOP_RECORDER.enabled
        # Every operation is accepted and does nothing.
        NOOP_RECORDER.inc("x")
        NOOP_RECORDER.set_gauge("x", 1.0)
        NOOP_RECORDER.observe("x", 1.0)
        with NOOP_RECORDER.timer("site"):
            pass
        span = NOOP_RECORDER.open_span("serve")
        assert span.set(a=1) is span
        assert span.child("attempt") == 0
        NOOP_RECORDER.flush()

    def test_recording_installs_and_restores(self):
        recorder = ObsRecorder()
        with recording(recorder):
            assert get_recorder() is recorder
            get_recorder().inc("hits")
        assert get_recorder() is NOOP_RECORDER
        assert recorder.metrics.counter_value("hits") == 1.0

    def test_set_and_reset(self):
        recorder = ObsRecorder()
        set_recorder(recorder)
        assert get_recorder() is recorder
        reset_recorder()
        assert get_recorder() is NOOP_RECORDER

    def test_flush_writes_artifacts_and_profile_gauges(self, tmp_path):
        recorder = ObsRecorder()
        recorder.inc("hits")
        with recorder.timer("fastcore.kernel"):
            pass
        recorder.open_span("serve", outcome="served").child(
            "attempt", tier="access"
        )
        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.jsonl"
        recorder.flush(metrics_path=metrics_path, trace_path=trace_path)
        text = metrics_path.read_text()
        assert "hits 1" in text
        assert 'repro_profile_calls{site="fastcore.kernel"} 1' in text
        assert 'repro_profile_seconds{site="fastcore.kernel"}' in text
        assert len(list(read_trace(trace_path))) == 2
        # Reflushing is idempotent for the profile gauges.
        recorder.flush(metrics_path=metrics_path)
        assert 'repro_profile_calls{site="fastcore.kernel"} 1' in (
            metrics_path.read_text()
        )


def _span(kind, **attrs):
    record = {"kind": kind, "span_id": 0, "parent_id": None}
    record.update(attrs)
    return record


class TestSummarize:
    def test_tier_tables(self):
        spans = [
            _span("serve", outcome="served", source="access", rtt_ms=20.0,
                  fallback_reason=None),
            _span("attempt", tier="access", outcome="served",
                  rtt_contribution_ms=20.0),
            _span("serve", outcome="served", source="ground", rtt_ms=145.0,
                  fallback_reason="attempt-timeout"),
            _span("attempt", tier="isl", outcome="attempt-timeout",
                  rtt_contribution_ms=5.0),
            _span("attempt", tier="ground", outcome="served",
                  rtt_contribution_ms=140.0),
            _span("serve", outcome="unavailable"),
        ]
        text = summarize_trace(spans)
        assert "3 requests (1 unavailable)" in text
        assert "Per-tier serving outcomes:" in text
        assert "Per-tier ladder attempts:" in text
        assert "(unavailable)" in text
        # Tiers render in ladder order; ground shows its fallback arrival.
        assert text.index("access") < text.index("isl") < text.index("ground")

    def test_empty_trace_raises(self):
        with pytest.raises(ObsError):
            summarize_trace([])

    def test_summarize_file(self, tmp_path):
        buffer = TraceBuffer()
        buffer.record("serve", outcome="served", source="access", rtt_ms=10.0)
        path = tmp_path / "trace.jsonl"
        buffer.flush(path)
        assert "access" in summarize_trace_file(path)


class TestSummarizeCohort:
    """Cohort (``serve_cohort``/``rung``) traces summarize alongside — and
    mixed with — single-request ``serve`` traces, with golden values."""

    COHORT_SPANS = [
        _span("serve_cohort", size=4, served=3, unavailable=1,
              mode="healthy"),
        _span("rung", tier="access", outcome="served", count=2),
        _span("rung", tier="ground", outcome="served", count=1),
        _span("rung", tier="isl", outcome="transient-loss", count=2),
    ]

    def test_cohort_only_trace_golden(self):
        text = summarize_trace(self.COHORT_SPANS)
        assert "4 requests (1 unavailable)" in text
        # Serving table: 2 access + 1 ground served, shares over 4 requests.
        access_row = next(
            line for line in text.splitlines() if line.startswith("access")
        )
        assert access_row.split()[1] == "2"
        assert "50.0%" in access_row
        ground_row = next(
            line for line in text.splitlines() if line.startswith("ground")
        )
        assert ground_row.split()[1] == "1"
        assert "25.0%" in ground_row
        # Cohort spans carry no per-request RTTs.
        assert "n/a" in access_row
        # Attempts table: the isl rung lost both tries.
        isl_row = [
            line for line in text.splitlines() if line.startswith("isl")
        ][-1]
        assert isl_row.split()[1:4] == ["2", "0", "2"]

    def test_mixed_trace_aggregates_both_shapes(self):
        spans = [
            _span("serve", outcome="served", source="access", rtt_ms=20.0,
                  fallback_reason=None),
            _span("attempt", tier="access", outcome="served",
                  rtt_contribution_ms=20.0),
        ] + self.COHORT_SPANS
        text = summarize_trace(spans)
        assert "5 requests (1 unavailable)" in text
        access_row = next(
            line for line in text.splitlines() if line.startswith("access")
        )
        # 1 scalar + 2 cohort hits; the scalar request's RTT still quantiles.
        assert access_row.split()[1] == "3"
        assert "60.0%" in access_row
        assert "20.0" in access_row

    def test_cohort_only_unavailable_share(self):
        spans = [
            _span("serve_cohort", size=2, served=0, unavailable=2,
                  mode="degraded"),
            _span("rung", tier="ground", outcome="ground-timeout", count=2),
        ]
        text = summarize_trace(spans)
        assert "2 requests (2 unavailable)" in text
        assert "(unavailable)" in text
