"""Tests for the terrestrial ISP path model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geo.datasets import cdn_site_by_name, city_by_name
from repro.network.latency import LatencyNoise
from repro.network.terrestrial import TerrestrialPathModel


@pytest.fixture
def model() -> TerrestrialPathModel:
    return TerrestrialPathModel(noise=LatencyNoise(rng=np.random.default_rng(11)))


class TestPathTier:
    def test_same_tier(self, model):
        assert model.path_tier("DE", "GB") == 1

    def test_worst_end_dominates(self, model):
        assert model.path_tier("DE", "MZ") == 3
        assert model.path_tier("MZ", "DE") == 3


class TestCoreLatency:
    def test_zero_distance_is_hop_cost_only(self, model):
        berlin = city_by_name("Berlin")
        core = model.one_way_core_ms(berlin.location, "DE", berlin.location, "DE")
        assert 0.0 < core < 2.0

    def test_local_cdn_is_fast(self, model):
        maputo = city_by_name("Maputo")
        site = cdn_site_by_name("Maputo")
        core = model.one_way_core_ms(maputo.location, "MZ", site.location, "MZ")
        assert core < 3.0

    def test_africa_cross_country_slower_than_europe_same_distance(self, model):
        # Same geodesic distance, but tier-3 circuity vs tier-1.
        maputo = city_by_name("Maputo")
        johannesburg = cdn_site_by_name("Johannesburg")
        london = city_by_name("London")
        frankfurt = cdn_site_by_name("Frankfurt")
        africa = model.one_way_core_ms(maputo.location, "MZ", johannesburg.location, "ZA")
        europe = model.one_way_core_ms(london.location, "GB", frankfurt.location, "DE")
        # Maputo-Jo'burg (~440 km) vs London-Frankfurt (~640 km): despite the
        # shorter geodesic, the African path costs more.
        assert africa > europe


class TestIdleRtt:
    def test_maputo_local_cdn_matches_paper(self, model):
        # Paper Fig. 3b: ~20 ms median to the Maputo CDN terrestrially.
        maputo = city_by_name("Maputo")
        site = cdn_site_by_name("Maputo")
        samples = [
            model.idle_rtt_ms(maputo, site.location, site.iso2) for _ in range(300)
        ]
        assert 12.0 < np.median(samples) < 32.0

    def test_maputo_johannesburg_higher(self, model):
        maputo = city_by_name("Maputo")
        local = cdn_site_by_name("Maputo")
        joburg = cdn_site_by_name("Johannesburg")
        local_median = np.median(
            [model.idle_rtt_ms(maputo, local.location, local.iso2) for _ in range(200)]
        )
        joburg_median = np.median(
            [model.idle_rtt_ms(maputo, joburg.location, joburg.iso2) for _ in range(200)]
        )
        assert joburg_median > local_median + 5.0

    def test_rtt_always_positive(self, model):
        city = city_by_name("Tokyo")
        site = cdn_site_by_name("Tokyo")
        assert all(
            model.idle_rtt_ms(city, site.location, site.iso2) > 0 for _ in range(50)
        )

    def test_negative_think_time_rejected(self, model):
        city = city_by_name("Tokyo")
        site = cdn_site_by_name("Tokyo")
        with pytest.raises(ConfigurationError):
            model.idle_rtt_ms(city, site.location, site.iso2, server_think_ms=-1.0)

    def test_nigeria_terrestrial_is_slow_despite_local_cdn(self, model):
        # The paper's NG outlier mechanism: congested access networks.
        lagos = city_by_name("Lagos")
        site = cdn_site_by_name("Lagos")
        samples = [
            model.idle_rtt_ms(lagos, site.location, site.iso2) for _ in range(300)
        ]
        assert np.median(samples) > 40.0


class TestMinRttFloor:
    def test_floor_below_samples(self, model):
        city = city_by_name("Madrid")
        site = cdn_site_by_name("Madrid")
        floor = model.min_rtt_floor_ms(city, site.location, site.iso2)
        samples = [
            model.idle_rtt_ms(city, site.location, site.iso2) for _ in range(100)
        ]
        # The deterministic floor excludes last-mile, so nearly all samples
        # must sit above it.
        assert np.quantile(samples, 0.05) > floor
