"""Tests for content bubbles: geo-predictive prefetch and eviction."""

import numpy as np
import pytest

from repro.cdn.cache import LruCache
from repro.cdn.content import build_catalog
from repro.errors import ConfigurationError
from repro.spacecdn.bubbles import (
    ContentBubbleManager,
    RegionalPopularity,
    simulate_orbit_requests,
)


@pytest.fixture
def catalog():
    # Web/news-heavy catalog so individual objects are small relative to the
    # test cache (a 150 TB satellite cache vs a web catalog, scaled down).
    return build_catalog(
        np.random.default_rng(0),
        400,
        regions=("europe", "africa", "south-america"),
        global_fraction=0.2,
        kind_weights={"web": 0.6, "news": 0.4},
    )


@pytest.fixture
def popularity(catalog):
    return RegionalPopularity(catalog=catalog, seed=1)


class TestRegionalPopularity:
    def test_regions_listed(self, popularity):
        assert popularity.regions() == ["africa", "europe", "south-america"]

    def test_samples_belong_to_region_or_global_mostly(self, catalog, popularity):
        hits = 0
        n = 300
        for _ in range(n):
            object_id = popularity.sample("europe")
            region = catalog.get(object_id).region
            if region in ("europe", "global"):
                hits += 1
        assert hits / n > 0.9

    def test_top_objects_stable(self, popularity):
        assert popularity.top_objects("europe", 10) == popularity.top_objects("europe", 10)

    def test_zipf_skew_concentrates_requests(self, popularity):
        from collections import Counter

        counts = Counter(popularity.sample("africa") for _ in range(2000))
        top10 = sum(c for _, c in counts.most_common(10))
        assert top10 / 2000 > 0.15

    def test_unknown_region_rejected(self, popularity):
        with pytest.raises(ConfigurationError):
            popularity.top_objects("atlantis", 5)

    def test_invalid_config_rejected(self, catalog):
        with pytest.raises(ConfigurationError):
            RegionalPopularity(catalog=catalog, zipf_s=0.0)
        with pytest.raises(ConfigurationError):
            RegionalPopularity(catalog=catalog, cross_region_fraction=1.0)


class TestContentBubbleManager:
    def test_prefetch_fills_cache(self, catalog, popularity):
        manager = ContentBubbleManager(
            cache=LruCache(5_000_000),
            catalog=catalog,
            popularity=popularity,
        )
        manager.on_region_approach("europe")
        assert manager.prefetched > 0
        assert manager.cache.used_bytes > 0

    def test_foreign_content_evicted_on_transition(self, catalog, popularity):
        manager = ContentBubbleManager(
            cache=LruCache(5_000_000),
            catalog=catalog,
            popularity=popularity,
        )
        manager.on_region_approach("europe")
        europe_ids = set(manager.cache.object_ids())
        manager.on_region_approach("africa")
        survivors = manager.cache.object_ids() & europe_ids
        # Only global objects may survive the transition.
        assert all(catalog.get(oid).region == "global" for oid in survivors)
        assert manager.evicted_for_bubble > 0

    def test_request_fills_on_miss(self, catalog, popularity):
        manager = ContentBubbleManager(
            cache=LruCache(5_000_000), catalog=catalog, popularity=popularity
        )
        some_id = next(iter(catalog)).object_id
        obj = manager.request(some_id)
        assert obj.object_id == some_id
        assert some_id in manager.cache

    def test_invalid_prefetch_fraction_rejected(self, catalog, popularity):
        with pytest.raises(ConfigurationError):
            ContentBubbleManager(
                cache=LruCache(100),
                catalog=catalog,
                popularity=popularity,
                prefetch_fraction=0.0,
            )


class TestOrbitSimulation:
    def test_bubbles_beat_plain_lru(self, catalog, popularity):
        # The paper's §5 hypothesis: predictive prefetch + content-aware
        # eviction beats a reactive cache when regions rotate beneath.
        result = simulate_orbit_requests(
            catalog=catalog,
            popularity=popularity,
            region_sequence=["europe", "africa", "south-america"] * 3,
            requests_per_region=150,
            cache_bytes=4_000_000,
        )
        assert result.requests == 9 * 150
        assert result.improvement > 0.05

    def test_hit_ratios_valid(self, catalog, popularity):
        result = simulate_orbit_requests(
            catalog=catalog,
            popularity=popularity,
            region_sequence=["europe", "africa"],
            requests_per_region=50,
            cache_bytes=4_000_000,
        )
        assert 0.0 <= result.plain_hit_ratio <= 1.0
        assert 0.0 <= result.bubble_hit_ratio <= 1.0

    def test_invalid_args_rejected(self, catalog, popularity):
        with pytest.raises(ConfigurationError):
            simulate_orbit_requests(catalog, popularity, [], 10, 1000)
        with pytest.raises(ConfigurationError):
            simulate_orbit_requests(catalog, popularity, ["europe"], 0, 1000)
