"""Tests for dataset export/import and the CLI."""

import json

import pytest

from repro.cli import (
    EXIT_DEADLINE,
    EXIT_ERROR,
    EXIT_FAULT_CONFIG,
    EXIT_INTERRUPTED,
    EXIT_SHARD_FAILED,
    EXIT_UNAVAILABLE,
    build_parser,
    main,
)
from repro.errors import DatasetError, UnavailableError
from repro.geo.datasets import city_by_name
from repro.measurements.aim import AimGenerator
from repro.measurements.export import (
    read_aim_csv,
    read_aim_json,
    write_aim_csv,
    write_aim_json,
    write_netmet_csv,
)


@pytest.fixture(scope="module")
def dataset():
    cities = (city_by_name("Madrid"), city_by_name("Maputo"))
    return AimGenerator(seed=3).generate(tests_per_city=5, cities=cities)


class TestCsvRoundTrip:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "aim.csv"
        count = write_aim_csv(dataset, path)
        assert count == len(dataset.tests)
        loaded = read_aim_csv(path)
        assert loaded.tests == dataset.tests

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_aim_csv(tmp_path / "nope.csv")

    def test_wrong_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(DatasetError):
            read_aim_csv(path)

    def test_malformed_row_reports_path_and_row_number(self, dataset, tmp_path):
        path = tmp_path / "aim.csv"
        write_aim_csv(dataset, path)
        lines = path.read_text().splitlines(keepends=True)
        fields = lines[3].rstrip("\r\n").split(",")
        fields[5] = "not-a-float"
        lines[3] = ",".join(fields) + "\r\n"
        path.write_text("".join(lines))
        with pytest.raises(DatasetError) as excinfo:
            read_aim_csv(path)
        message = str(excinfo.value)
        assert "row 4" in message
        assert str(path) in message


class TestJsonRoundTrip:
    def test_round_trip(self, dataset, tmp_path):
        path = tmp_path / "aim.json"
        count = write_aim_json(dataset, path)
        assert count == len(dataset.tests)
        loaded = read_aim_json(path)
        assert loaded.tests == dataset.tests

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError):
            read_aim_json(path)

    def test_non_array_raises(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text('{"a": 1}')
        with pytest.raises(DatasetError):
            read_aim_json(path)

    def test_missing_field_raises(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps([{"city": "Madrid"}]))
        with pytest.raises(DatasetError) as excinfo:
            read_aim_json(path)
        message = str(excinfo.value)
        assert "record 1" in message
        assert str(path) in message

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            read_aim_json(tmp_path / "nope.json")


class TestNetmetExport:
    def test_write_records(self, tmp_path):
        from repro.measurements.aim import TERRESTRIAL
        from repro.measurements.netmet import NetMetProbe

        probe = NetMetProbe(seed=1)
        records = probe.browse(city_by_name("Madrid"), TERRESTRIAL, rounds=1)
        path = tmp_path / "netmet.csv"
        assert write_netmet_csv(records, path) == 20
        header = path.read_text().splitlines()[0]
        assert "fcp_ms" in header


class TestCliParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure7" in out

    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "figure99"])

    def test_run_table1_small(self, capsys):
        assert main(["run", "table1", "--tests-per-city", "5"]) == 0
        out = capsys.readouterr().out
        assert "Mozambique" in out

    def test_run_figure3_small(self, capsys):
        assert main(["run", "figure3", "--samples", "5"]) == 0
        out = capsys.readouterr().out
        assert "Frankfurt" in out

    def test_run_figure2_small(self, capsys):
        assert main(["run", "figure2", "--tests-per-city", "5"]) == 0
        out = capsys.readouterr().out
        assert "delta" in out.lower()

    def test_run_figure4_small(self, capsys):
        assert main(["run", "figure4", "--rounds", "1"]) == 0
        assert "NG" in capsys.readouterr().out

    def test_run_figure5_small(self, capsys):
        assert main(["run", "figure5", "--rounds", "1"]) == 0
        assert "FCP" in capsys.readouterr().out

    def test_run_figure7_small(self, capsys):
        assert main(["run", "figure7", "--users", "4", "--epochs", "1"]) == 0
        assert "1st/Sat" in capsys.readouterr().out

    def test_run_figure8_small(self, capsys):
        assert main(["run", "figure8", "--users", "4", "--epochs", "1"]) == 0
        assert "terrestrial median" in capsys.readouterr().out

    def test_run_chaos_smoke(self, capsys):
        assert main(
            [
                "run", "chaos",
                "--shell", "small",
                "--requests", "10",
                "--fractions", "0.0,0.3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "availability" in out
        assert "30%" in out

    def test_missing_command_exits(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            main([])

    def test_aim_export_csv(self, tmp_path, capsys):
        out_file = tmp_path / "aim.csv"
        code = main(
            ["aim", "--tests-per-city", "1", "--format", "csv", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        loaded = read_aim_csv(out_file)
        assert len(loaded.tests) > 100  # every gazetteer city contributes

    def test_aim_export_json(self, tmp_path):
        out_file = tmp_path / "aim.json"
        assert main(
            ["aim", "--tests-per-city", "1", "--format", "json", "--out", str(out_file)]
        ) == 0
        assert json.loads(out_file.read_text())


class TestExitCodes:
    """Fault-layer failures map to distinct non-zero exit codes."""

    def test_fault_config_error_exits_4(self, capsys):
        # max_attempts=0 is an invalid RetryPolicy -> FaultConfigError.
        code = main(
            [
                "run", "chaos",
                "--shell", "small",
                "--requests", "5",
                "--fractions", "0.0",
                "--max-attempts", "0",
            ]
        )
        assert code == EXIT_FAULT_CONFIG == 4
        assert "bad fault configuration" in capsys.readouterr().err

    def test_unavailable_error_exits_3(self, capsys, monkeypatch):
        import repro.cli as cli_module

        def raise_unavailable(name, args):
            raise UnavailableError("no serving path survives")

        monkeypatch.setattr(cli_module, "_run_experiment", raise_unavailable)
        code = main(["run", "chaos", "--shell", "small"])
        assert code == EXIT_UNAVAILABLE == 3
        assert "content unavailable" in capsys.readouterr().err

    def test_generic_repro_error_still_exits_2(self, capsys):
        # An invalid request count is a plain ConfigurationError.
        code = main(
            [
                "run", "chaos",
                "--shell", "small",
                "--requests", "0",
                "--fractions", "0.0",
            ]
        )
        assert code == EXIT_ERROR == 2
        assert "error" in capsys.readouterr().err

    def test_non_numeric_fraction_exits_4(self, capsys):
        code = main(
            [
                "run", "chaos",
                "--shell", "small",
                "--requests", "5",
                "--fractions", "0.3,banana",
            ]
        )
        assert code == EXIT_FAULT_CONFIG == 4
        err = capsys.readouterr().err
        assert "bad fault configuration" in err
        assert "banana" in err

    def test_out_of_range_fraction_exits_4(self, capsys):
        code = main(
            [
                "run", "chaos",
                "--shell", "small",
                "--requests", "5",
                "--fractions", "1.5",
            ]
        )
        assert code == EXIT_FAULT_CONFIG == 4
        assert "within [0, 1]" in capsys.readouterr().err

    def test_empty_fractions_exits_4(self, capsys):
        code = main(
            ["run", "chaos", "--shell", "small", "--fractions", ","]
        )
        assert code == EXIT_FAULT_CONFIG == 4
        assert "at least one value" in capsys.readouterr().err

    def test_runner_flags_require_out_dir(self, capsys):
        code = main(["run", "figure8", "--resume"])
        assert code == EXIT_ERROR == 2
        assert "--resume requires --out-dir" in capsys.readouterr().err

    def test_new_exit_codes_are_distinct(self):
        codes = {
            EXIT_ERROR,
            EXIT_UNAVAILABLE,
            EXIT_FAULT_CONFIG,
            EXIT_INTERRUPTED,
            EXIT_DEADLINE,
            EXIT_SHARD_FAILED,
        }
        assert codes == {2, 3, 4, 5, 6, 7}
