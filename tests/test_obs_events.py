"""Unit tests for the run event log (:mod:`repro.obs.events`)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import EventLog, read_events, render_events, render_events_file


def make_log(path, start=100.0, step=0.5):
    """An EventLog on a deterministic clock (one tick per emit)."""
    ticks = iter(start + step * n for n in range(10_000))
    return EventLog(path, clock=lambda: next(ticks))


class TestEventLog:
    def test_emits_one_json_object_per_line(self, tmp_path):
        log = make_log(tmp_path / "events.jsonl")
        log.emit("run_start", experiment="ptoy", jobs=2)
        log.emit("shard_assigned", shard="s00", attempt=1, worker=0)
        log.close()
        records = list(read_events(tmp_path / "events.jsonl"))
        assert [r["event"] for r in records] == ["run_start", "shard_assigned"]
        assert [r["seq"] for r in records] == [0, 1]
        assert records[0]["experiment"] == "ptoy"
        assert records[1] == {
            "seq": 1,
            "ts": 100.5,
            "event": "shard_assigned",
            "shard": "s00",
            "attempt": 1,
            "worker": 0,
        }

    def test_resumed_run_appends_its_own_segment(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = make_log(path)
        first.emit("run_start")
        first.emit("run_interrupted")
        first.close()
        second = make_log(path, start=200.0)
        second.emit("run_start", resumed=True)
        second.close()
        records = list(read_events(path))
        assert [r["event"] for r in records] == [
            "run_start",
            "run_interrupted",
            "run_start",
        ]
        assert [r["seq"] for r in records] == [0, 1, 0]  # seq restarts

    def test_non_json_native_fields_are_stringified(self, tmp_path):
        log = make_log(tmp_path / "events.jsonl")
        log.emit("obs_flush", metrics=tmp_path / "m.prom")  # a Path object
        log.close()
        (record,) = read_events(tmp_path / "events.jsonl")
        assert record["metrics"] == str(tmp_path / "m.prom")

    def test_unwritable_log_warns_once_then_goes_quiet(self, tmp_path, capsys):
        log = EventLog(tmp_path / "no-such-dir" / "events.jsonl")
        log.emit("run_start")
        log.emit("shard_assigned", shard="s00")
        err = capsys.readouterr().err
        assert err.count("further events are dropped") == 1
        log.close()


class TestReadEvents:
    def test_missing_file_is_an_obs_error(self, tmp_path):
        with pytest.raises(ObsError, match="cannot read"):
            list(read_events(tmp_path / "absent.jsonl"))

    def test_malformed_line_is_an_obs_error(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "run_start", "ts": 1, "seq": 0}\n{broken\n')
        with pytest.raises(ObsError, match="malformed"):
            list(read_events(path))

    def test_non_event_object_is_an_obs_error(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"ts": 1}) + "\n")
        with pytest.raises(ObsError, match="not an event object"):
            list(read_events(path))


class TestRenderEvents:
    def journal(self):
        return [
            {"seq": 0, "ts": 10.0, "event": "run_start", "jobs": 2},
            {"seq": 1, "ts": 10.1, "event": "worker_spawned", "worker": 0},
            {
                "seq": 2,
                "ts": 10.2,
                "event": "shard_assigned",
                "shard": "s00",
                "attempt": 1,
                "worker": 0,
            },
            {
                "seq": 3,
                "ts": 10.4,
                "event": "shard_retried",
                "shard": "s00",
                "attempt": 1,
                "kind": "crash",
            },
            {
                "seq": 4,
                "ts": 10.5,
                "event": "shard_assigned",
                "shard": "s00",
                "attempt": 2,
                "worker": 1,
            },
            {
                "seq": 5,
                "ts": 11.0,
                "event": "shard_completed",
                "shard": "s00",
                "attempt": 2,
                "worker": 1,
                "wall_s": 0.5,
            },
            {
                "seq": 6,
                "ts": 11.1,
                "event": "shard_quarantined",
                "shard": "s01",
                "attempts": 3,
                "kind": "crash",
            },
            {"seq": 7, "ts": 11.2, "event": "run_completed", "shards": 1},
        ]

    def test_sections_and_shard_folding(self):
        text = render_events(self.journal())
        assert "8 events over 1.200s" in text
        assert "Event counts:" in text
        assert "Timeline (run & worker lifecycle):" in text
        assert "Per-shard wall time:" in text
        # Per-shard events fold into the table, not the timeline.
        assert "shard_assigned" not in text.split("Timeline")[1].split("Per-shard")[0]
        shard_table = text.split("Per-shard wall time:")[1]
        s00 = next(line for line in shard_table.splitlines() if "s00" in line)
        assert "2" in s00 and "0.500" in s00 and "completed" in s00
        s01 = next(line for line in shard_table.splitlines() if "s01" in line)
        assert "quarantined" in s01

    def test_timeline_offsets_are_relative_to_first_event(self):
        text = render_events(self.journal())
        assert "+    0.000s  run_start" in text
        assert "+    0.100s  worker_spawned" in text

    def test_empty_journal_is_an_obs_error(self):
        with pytest.raises(ObsError, match="no events"):
            render_events([])

    def test_render_events_file_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            "".join(json.dumps(record) + "\n" for record in self.journal())
        )
        assert render_events_file(path) == render_events(self.journal())
