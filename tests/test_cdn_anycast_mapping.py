"""Tests for anycast selection and client-mapping policies."""

import numpy as np
import pytest

from repro.cdn.anycast import best_site_by_latency, nearest_site
from repro.cdn.mapping import (
    GeodesicMapping,
    MeasuredLatencyMapping,
    PopProximityMapping,
)
from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets import all_cdn_sites, cdn_site_by_name, city_by_name


class TestNearestSite:
    def test_maputo_nearest_is_maputo(self):
        maputo = GeoPoint(-25.97, 32.57)
        assert nearest_site(maputo, all_cdn_sites()).name == "Maputo"

    def test_empty_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            nearest_site(GeoPoint(0.0, 0.0), [])

    def test_returns_minimum_distance(self):
        point = GeoPoint(48.0, 10.0)
        chosen = nearest_site(point, all_cdn_sites())
        best = min(
            great_circle_km(point, s.location) for s in all_cdn_sites()
        )
        assert great_circle_km(point, chosen.location) == pytest.approx(best)


class TestBestSiteByLatency:
    def test_picks_minimum(self):
        sites = [cdn_site_by_name("Frankfurt"), cdn_site_by_name("Maputo")]
        site, latency = best_site_by_latency(
            sites, lambda s: 10.0 if s.name == "Maputo" else 50.0
        )
        assert site.name == "Maputo"
        assert latency == 10.0

    def test_negative_latency_rejected(self):
        sites = [cdn_site_by_name("Frankfurt")]
        with pytest.raises(ConfigurationError):
            best_site_by_latency(sites, lambda s: -1.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            best_site_by_latency([], lambda s: 1.0)


class TestGeodesicMapping:
    def test_terrestrial_user_maps_locally(self):
        mapping = GeodesicMapping()
        maputo = city_by_name("Maputo")
        assert mapping.site_for(maputo, all_cdn_sites()).name == "Maputo"


class TestPopProximityMapping:
    def test_starlink_maputo_maps_to_frankfurt(self):
        # The paper's central mis-mapping reproduced as a one-liner.
        mapping = PopProximityMapping()
        maputo = city_by_name("Maputo")
        assert mapping.site_for(maputo, all_cdn_sites()).name == "Frankfurt"

    def test_starlink_madrid_maps_locally(self):
        mapping = PopProximityMapping()
        madrid = city_by_name("Madrid")
        assert mapping.site_for(madrid, all_cdn_sites()).name == "Madrid"

    def test_mapping_divergence_only_for_remote_pops(self):
        geodesic = GeodesicMapping()
        pop_based = PopProximityMapping()
        sites = all_cdn_sites()
        # Maputo diverges; Tokyo does not.
        maputo, tokyo = city_by_name("Maputo"), city_by_name("Tokyo")
        assert geodesic.site_for(maputo, sites) != pop_based.site_for(maputo, sites)
        assert geodesic.site_for(tokyo, sites) == pop_based.site_for(tokyo, sites)


class TestMeasuredLatencyMapping:
    def test_finds_lowest_latency_site(self):
        # A sampler whose latency is pure geodesic distance: the measured
        # mapping must agree with the geodesic mapping.
        def sampler(city, site):
            return great_circle_km(city.location, site.location)

        mapping = MeasuredLatencyMapping(rtt_sampler=sampler, probes=1)
        maputo = city_by_name("Maputo")
        assert mapping.site_for(maputo, all_cdn_sites()).name == "Maputo"

    def test_candidate_limit_restricts_probing(self):
        calls = []

        def sampler(city, site):
            calls.append(site.name)
            return great_circle_km(city.location, site.location)

        mapping = MeasuredLatencyMapping(rtt_sampler=sampler, probes=2, candidate_limit=3)
        mapping.site_for(city_by_name("Maputo"), all_cdn_sites())
        assert len(set(calls)) == 3
        assert len(calls) == 6

    def test_median_overrides_outlier_probe(self):
        rng = np.random.default_rng(0)

        def sampler(city, site):
            # Maputo is truly best but occasionally spikes; median filtering
            # must still select it.
            base = 5.0 if site.name == "Maputo" else 50.0
            spike = 1000.0 if (site.name == "Maputo" and rng.random() < 0.2) else 0.0
            return base + spike

        mapping = MeasuredLatencyMapping(rtt_sampler=sampler, probes=5, candidate_limit=4)
        assert mapping.site_for(city_by_name("Maputo"), all_cdn_sites()).name == "Maputo"

    def test_invalid_probes_rejected(self):
        with pytest.raises(ConfigurationError):
            MeasuredLatencyMapping(rtt_sampler=lambda c, s: 1.0, probes=0)

    def test_empty_sites_rejected(self):
        mapping = MeasuredLatencyMapping(rtt_sampler=lambda c, s: 1.0)
        with pytest.raises(ConfigurationError):
            mapping.site_for(city_by_name("Maputo"), [])
