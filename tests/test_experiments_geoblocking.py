"""Tests for the geo-blocking prevalence experiment."""

import pytest

from repro.experiments import geoblocking


@pytest.fixture(scope="module")
def result():
    return geoblocking.run()


class TestGeoblockingExperiment:
    def test_every_covered_country_evaluated(self, result):
        from repro.geo.datasets import all_cities, starlink_covered_countries

        countries_with_cities = {c.iso2 for c in all_cities()}
        expected = {
            c.iso2
            for c in starlink_covered_countries()
            if c.iso2 in countries_with_cities
        }
        assert set(result.misblocked) == expected

    def test_frankfurt_served_africa_misblocked(self, result):
        for iso2 in ("MZ", "KE", "ZM", "RW", "MW", "BW", "MG"):
            assert result.misblocked[iso2], iso2
            assert result.exit_countries[iso2] == "DE"

    def test_local_pop_countries_fine(self, result):
        for iso2 in ("US", "DE", "ES", "JP", "GB", "AU", "NZ"):
            assert not result.misblocked[iso2], iso2

    def test_same_region_exit_is_fine(self, result):
        # Cyprus exits at Frankfurt, but DE is in Cyprus's licence region
        # (europe), so home content stays reachable.
        assert result.exit_countries["CY"] == "DE"
        assert not result.misblocked["CY"]

    def test_cross_region_exit_misblocks(self, result):
        # Caribbean countries exit in the US: different licence region.
        for iso2 in ("HT", "DO", "JM"):
            assert result.misblocked[iso2]
            assert result.exit_countries[iso2] == "US"

    def test_rate_consistent(self, result):
        expected = sum(result.misblocked.values()) / len(result.misblocked)
        assert result.misblock_rate() == pytest.approx(expected)

    def test_affected_sorted(self, result):
        affected = result.affected_countries()
        assert affected == sorted(affected)
        assert all(result.misblocked[iso2] for iso2 in affected)

    def test_format(self, result):
        text = geoblocking.format_result(result)
        assert "MISBLOCKED" in text
        assert "%" in text

    def test_cli_integration(self, capsys):
        from repro.cli import main

        assert main(["run", "geoblocking"]) == 0
        assert "Mozambique" in capsys.readouterr().out
