"""Tests for latency building blocks."""

import numpy as np
import pytest

from repro.constants import FIBER_SPEED_KM_S, SPEED_OF_LIGHT_KM_S
from repro.errors import ConfigurationError
from repro.network.latency import (
    LatencyNoise,
    circuity_for_tier,
    estimate_router_hops,
    fiber_path_ms,
    propagation_ms,
)


class TestPropagation:
    def test_light_ms_per_1000km(self):
        # ~3.336 ms per 1000 km in vacuum.
        assert propagation_ms(1000.0, SPEED_OF_LIGHT_KM_S) == pytest.approx(3.336, abs=0.01)

    def test_fiber_slower(self):
        assert propagation_ms(1000.0, FIBER_SPEED_KM_S) > propagation_ms(
            1000.0, SPEED_OF_LIGHT_KM_S
        )

    def test_zero_distance(self):
        assert propagation_ms(0.0, FIBER_SPEED_KM_S) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            propagation_ms(-1.0, FIBER_SPEED_KM_S)

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            propagation_ms(1.0, 0.0)


class TestCircuity:
    def test_known_tiers(self):
        assert circuity_for_tier(1) < circuity_for_tier(2) < circuity_for_tier(3)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            circuity_for_tier(4)


class TestRouterHops:
    def test_metro_floor(self):
        assert estimate_router_hops(0.0) == 3

    def test_grows_with_distance(self):
        assert estimate_router_hops(6000.0) > estimate_router_hops(600.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate_router_hops(-1.0)


class TestFiberPath:
    def test_tier_ordering(self):
        for distance in (100.0, 1000.0, 8000.0):
            assert (
                fiber_path_ms(distance, 1)
                < fiber_path_ms(distance, 2)
                < fiber_path_ms(distance, 3)
            )

    def test_transatlantic_sanity(self):
        # London-New York (~5570 km) one-way over tier-1 fiber: ~38-45 ms
        # (observed RTTs are ~70-80 ms).
        one_way = fiber_path_ms(5570.0, 1)
        assert 33.0 < one_way < 50.0

    def test_extra_hops_add_latency(self):
        assert fiber_path_ms(100.0, 1, extra_hops=10) > fiber_path_ms(100.0, 1)


class TestLatencyNoise:
    def test_last_mile_positive(self, noise):
        samples = [noise.last_mile_ms(tier) for tier in (1, 2, 3) for _ in range(20)]
        assert all(s > 0 for s in samples)

    def test_last_mile_tier_ordering_in_median(self):
        rng = np.random.default_rng(0)
        noise = LatencyNoise(rng=rng)
        t1 = np.median([noise.last_mile_ms(1) for _ in range(500)])
        t3 = np.median([noise.last_mile_ms(3) for _ in range(500)])
        assert t1 < t3

    def test_nigeria_override_is_much_slower(self):
        noise = LatencyNoise(rng=np.random.default_rng(1))
        ng = np.median([noise.last_mile_ms(3, "NG") for _ in range(500)])
        generic = np.median([noise.last_mile_ms(3, "MZ") for _ in range(500)])
        assert ng > 2.0 * generic

    def test_unknown_tier_rejected(self, noise):
        with pytest.raises(ConfigurationError):
            noise.last_mile_ms(7)

    def test_jitter_close_to_base(self):
        noise = LatencyNoise(rng=np.random.default_rng(2))
        base = 100.0
        samples = [noise.jitter_ms(base) for _ in range(500)]
        assert 95.0 < np.median(samples) < 115.0
        assert all(s > 0 for s in samples)

    def test_jitter_negative_base_rejected(self, noise):
        with pytest.raises(ConfigurationError):
            noise.jitter_ms(-1.0)

    def test_bufferbloat_heavy_tail(self):
        noise = LatencyNoise(rng=np.random.default_rng(3))
        samples = np.array([noise.bufferbloat_ms(60.0) for _ in range(2000)])
        assert samples.mean() == pytest.approx(60.0, rel=0.15)
        assert samples.max() > 200.0

    def test_frame_jitter_bounded(self):
        from repro.constants import STARLINK_FRAME_JITTER_MAX_MS

        noise = LatencyNoise(rng=np.random.default_rng(4))
        samples = [noise.starlink_frame_jitter_ms() for _ in range(500)]
        assert all(0.0 <= s <= STARLINK_FRAME_JITTER_MAX_MS for s in samples)

    def test_reproducible_from_seed(self):
        a = LatencyNoise(rng=np.random.default_rng(99))
        b = LatencyNoise(rng=np.random.default_rng(99))
        assert [a.last_mile_ms(1) for _ in range(10)] == [
            b.last_mile_ms(1) for _ in range(10)
        ]
