"""Tests for hop-bounded SpaceCDN lookup."""

import pytest

from repro.errors import ContentNotFoundError, RoutingError
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.lookup import LookupSource, SpaceCdnLookup
from repro.topology.routing import hop_distances


@pytest.fixture
def lookup(small_snapshot) -> SpaceCdnLookup:
    return SpaceCdnLookup(snapshot=small_snapshot, max_hops=5)


class TestLookupAtAccessSatellite:
    def test_content_on_access_satellite(self, lookup):
        result = lookup.lookup(
            access_satellite=0, access_one_way_ms=8.0, cache_satellites=frozenset({0})
        )
        assert result.source is LookupSource.ACCESS_SATELLITE
        assert result.isl_hops == 0
        assert result.one_way_ms == 8.0
        assert result.serving_satellite == 0

    def test_negative_access_latency_rejected(self, lookup):
        with pytest.raises(RoutingError):
            lookup.lookup(0, -1.0, frozenset({0}))


class TestIslLookup:
    def test_neighbor_cache(self, lookup, small_snapshot):
        neighbor = next(iter(small_snapshot.graph[0]))
        result = lookup.lookup(0, 8.0, frozenset({neighbor}))
        assert result.source is LookupSource.ISL_NEIGHBOR
        assert result.isl_hops == 1
        assert result.serving_satellite == neighbor
        assert result.one_way_ms == pytest.approx(
            8.0 + small_snapshot.edge_latency_ms(0, neighbor)
        )

    def test_prefers_cheapest_cache(self, lookup, small_snapshot):
        # Between a 1-hop and a 3-hop holder, the 1-hop one must win.
        hops = hop_distances(small_snapshot, 0)
        one_hop = next(s for s, h in hops.items() if h == 1)
        three_hop = next(s for s, h in hops.items() if h == 3)
        result = lookup.lookup(0, 8.0, frozenset({one_hop, three_hop}))
        assert result.serving_satellite == one_hop

    def test_hop_bound_enforced(self, small_snapshot):
        strict = SpaceCdnLookup(snapshot=small_snapshot, max_hops=1)
        hops = hop_distances(small_snapshot, 0)
        far = next(s for s, h in hops.items() if h == 3)
        result = strict.lookup(0, 8.0, frozenset({far}))
        assert result.source is LookupSource.GROUND

    def test_latency_monotone_in_distance(self, lookup, small_snapshot):
        hops = hop_distances(small_snapshot, 0)
        near = next(s for s, h in hops.items() if h == 1)
        far = next(s for s, h in hops.items() if h == 3)
        near_latency = lookup.lookup(0, 8.0, frozenset({near})).one_way_ms
        far_latency = lookup.lookup(0, 8.0, frozenset({far})).one_way_ms
        assert far_latency > near_latency


class TestGroundFallback:
    def test_no_caches_falls_to_ground(self, lookup):
        result = lookup.lookup(0, 8.0, frozenset())
        assert result.source is LookupSource.GROUND
        assert result.serving_satellite is None
        assert result.one_way_ms == lookup.ground_fallback_one_way_ms

    def test_custom_fallback_latency(self, small_snapshot):
        lookup = SpaceCdnLookup(
            snapshot=small_snapshot, max_hops=2, ground_fallback_one_way_ms=120.0
        )
        assert lookup.lookup(0, 8.0, frozenset()).one_way_ms == 120.0


class TestLookupFromPoint:
    def test_resolves_access_satellite(self, shell1_snapshot):
        lookup = SpaceCdnLookup(snapshot=shell1_snapshot, max_hops=5)
        all_sats = frozenset(range(len(shell1_snapshot.constellation)))
        result = lookup.lookup_from_point(GeoPoint(0.0, 0.0), all_sats)
        # Every satellite caches, so the access satellite serves directly.
        assert result.source is LookupSource.ACCESS_SATELLITE
        assert result.one_way_ms > 0

    def test_require_space_hit_raises_on_ground(self, shell1_snapshot):
        lookup = SpaceCdnLookup(snapshot=shell1_snapshot, max_hops=1)
        with pytest.raises(ContentNotFoundError):
            lookup.require_space_hit(GeoPoint(0.0, 0.0), frozenset())

    def test_paper_resolution_order(self, shell1_snapshot):
        # Fig. 6: overhead satellite first, then ISL neighbour, then ground.
        lookup = SpaceCdnLookup(snapshot=shell1_snapshot, max_hops=5)
        user = GeoPoint(10.0, 20.0)
        probe = lookup.lookup_from_point(
            user, frozenset(range(len(shell1_snapshot.constellation)))
        )
        access = probe.access_satellite
        direct = lookup.lookup_from_point(user, frozenset({access}))
        assert direct.source is LookupSource.ACCESS_SATELLITE
        neighbor = next(
            n for n in shell1_snapshot.graph[access] if isinstance(n, int)
        )
        via_isl = lookup.lookup_from_point(user, frozenset({neighbor}))
        assert via_isl.source is LookupSource.ISL_NEIGHBOR
        assert via_isl.one_way_ms > direct.one_way_ms
        nothing = lookup.lookup_from_point(user, frozenset())
        assert nothing.source is LookupSource.GROUND


class TestRankedCachedSatellites:
    def test_first_entry_matches_nearest(self, small_snapshot):
        from repro.spacecdn.lookup import (
            nearest_cached_satellite,
            ranked_cached_satellites,
        )

        holders = frozenset({5, 20, 40})
        ranked = ranked_cached_satellites(small_snapshot, 0, holders, max_hops=16)
        nearest = nearest_cached_satellite(small_snapshot, 0, holders, max_hops=16)
        assert ranked  # all holders reachable on a healthy +Grid
        assert (ranked[0][0], ranked[0][1]) == (nearest[0], nearest[1])
        assert ranked[0][2] == pytest.approx(nearest[2])

    def test_sorted_by_latency_and_excludes(self, small_snapshot):
        from repro.spacecdn.lookup import ranked_cached_satellites

        holders = frozenset({5, 20, 40})
        ranked = ranked_cached_satellites(small_snapshot, 0, holders, max_hops=16)
        latencies = [entry[2] for entry in ranked]
        assert latencies == sorted(latencies)
        excluded = ranked_cached_satellites(
            small_snapshot, 0, holders, max_hops=16, exclude=frozenset({ranked[0][0]})
        )
        assert ranked[0][0] not in [e[0] for e in excluded]
        assert len(excluded) == len(ranked) - 1

    def test_min_hops_excludes_access(self, small_snapshot):
        from repro.spacecdn.lookup import ranked_cached_satellites

        ranked = ranked_cached_satellites(
            small_snapshot, 0, frozenset({0, 5}), max_hops=16, min_hops=1
        )
        assert all(entry[0] != 0 for entry in ranked)
