"""Unit tests for cross-process obs aggregation (:mod:`repro.obs.merge`).

The contract under test: a worker's recorder drains into a
JSON-serialisable delta, the parent folds any number of deltas back in,
and the merged registry's counters and histograms are indistinguishable
from having recorded everything in one process — the property the
``--jobs N == --jobs 1`` equality tests in the runner suite build on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import MetricsRegistry, ObsRecorder, merge_delta, registry_diff, snapshot_delta
from repro.obs.merge import (
    ABANDONED_TIMERS_METRIC,
    DELTA_FORMAT_VERSION,
    merge_trace_delta,
)

TIER = (("tier", "isl"),)
BUCKETS = (10.0, 50.0)


def record_workload(rec, repeats=1):
    """A deterministic mixed workload (counters, gauge, histogram, spans,
    profile) that tests can split across 'workers' in any partition."""
    for _ in range(repeats):
        rec.inc("repro_serve_total", TIER)
        rec.inc("repro_serve_total", (("tier", "access"),), 2.0)
        rec.observe("repro_serve_rtt_ms", 12.0, TIER, buckets=BUCKETS)
        rec.observe("repro_serve_rtt_ms", 75.0, TIER, buckets=BUCKETS)
        rec.set_gauge("repro_chaos_availability", 0.5, (("fraction", "0"),))
        root = rec.open_span("serve", outcome="served")
        root.child("attempt", rtt_contribution_ms=12.0)
        with rec.timer("fastcore.latency"):
            pass


class TestSnapshotDelta:
    def test_delta_is_json_serialisable(self):
        rec = ObsRecorder()
        record_workload(rec)
        delta = snapshot_delta(rec)
        assert delta["format_version"] == DELTA_FORMAT_VERSION
        assert json.loads(json.dumps(delta)) == delta

    def test_drain_empties_but_keeps_bucket_pins(self):
        rec = ObsRecorder()
        record_workload(rec)
        snapshot_delta(rec, drain=True)
        assert rec.metrics.is_empty
        assert len(rec.trace) == 0
        assert rec.profile.is_empty
        # The pin survives: re-observing with the same buckets works, with
        # different buckets is still the configuration error it was.
        rec.observe("repro_serve_rtt_ms", 1.0, TIER, buckets=BUCKETS)
        with pytest.raises(ObsError, match="buckets"):
            rec.observe("repro_serve_rtt_ms", 1.0, TIER, buckets=(1.0,))

    def test_consecutive_drained_deltas_are_disjoint(self):
        rec = ObsRecorder()
        record_workload(rec)
        first = snapshot_delta(rec, drain=True)
        record_workload(rec)
        second = snapshot_delta(rec, drain=True)
        assert first["metrics"]["counters"] == second["metrics"]["counters"]
        # Span ids keep counting across drains: no id is reused.
        first_ids = {span["span_id"] for span in first["trace"]}
        second_ids = {span["span_id"] for span in second["trace"]}
        assert not first_ids & second_ids

    def test_undrained_snapshot_leaves_state(self):
        rec = ObsRecorder()
        record_workload(rec)
        snapshot_delta(rec, drain=False)
        assert rec.metrics.counter_value("repro_serve_total", TIER) == 1.0


class TestMergeDelta:
    def split_and_merge(self, partitions):
        """Record ``partitions`` repeats in separate 'workers', merge all
        deltas into one parent recorder."""
        parent = ObsRecorder()
        for index, repeats in enumerate(partitions):
            worker = ObsRecorder()
            record_workload(worker, repeats)
            parent.merge_delta(
                worker.snapshot_delta(),
                extra_labels=(("shard", f"s{index:02d}"), ("worker", str(index))),
            )
        return parent

    def serial(self, total_repeats):
        rec = ObsRecorder()
        record_workload(rec, total_repeats)
        return rec

    def test_merged_counters_and_histograms_equal_serial(self):
        parent = self.split_and_merge([2, 1, 3])
        serial = self.serial(6)
        assert registry_diff(parent.metrics, serial.metrics) == []

    def test_gauges_keep_per_worker_series(self):
        parent = self.split_and_merge([1, 1])
        labels = (("fraction", "0"), ("shard", "s01"), ("worker", "1"))
        assert parent.metrics.gauge_value("repro_chaos_availability", labels) == 0.5
        # No unlabelled collision series was created.
        assert (
            parent.metrics.gauge_value(
                "repro_chaos_availability", (("fraction", "0"),)
            )
            is None
        )

    def test_histograms_merge_bucket_wise(self):
        parent = self.split_and_merge([2, 3])
        histogram = parent.metrics.histogram("repro_serve_rtt_ms", TIER)
        assert histogram.bounds == BUCKETS
        assert histogram.bucket_counts == [0, 5, 5]  # 12.0 x5 -> le=50, 75.0 x5 -> +Inf
        assert histogram.count == 10

    def test_bucket_drift_is_refused(self):
        parent = ObsRecorder()
        parent.observe("repro_serve_rtt_ms", 1.0, TIER, buckets=BUCKETS)
        worker = ObsRecorder()
        worker.observe("repro_serve_rtt_ms", 1.0, TIER, buckets=(1.0, 2.0))
        with pytest.raises(ObsError, match="differ from the pinned"):
            parent.merge_delta(worker.snapshot_delta())

    def test_format_version_drift_is_refused(self):
        worker = ObsRecorder()
        delta = worker.snapshot_delta()
        delta["format_version"] = 999
        with pytest.raises(ObsError, match="format version"):
            merge_delta(ObsRecorder(), delta)

    def test_trace_spans_reidentified_with_parent_links(self):
        parent = ObsRecorder()
        parent.record_span("parent_side")  # takes span id 1 first
        worker = ObsRecorder()
        root = worker.open_span("serve", outcome="served")
        root.child("attempt", rtt_contribution_ms=3.0)
        parent.merge_delta(
            worker.snapshot_delta(), extra_labels=(("worker", "4"),)
        )
        spans = {span["kind"]: span for span in parent.trace.spans()}
        assert spans["attempt"]["parent_id"] == spans["serve"]["span_id"]
        assert spans["serve"]["span_id"] != 1
        assert spans["serve"]["worker"] == "4"
        assert spans["attempt"]["worker"] == "4"

    def test_orphan_child_does_not_alias_a_parent_span(self):
        parent = ObsRecorder()
        parent.record_span("resident")
        worker = ObsRecorder()
        spans = [{"kind": "attempt", "span_id": 7, "parent_id": 1}]
        merge_trace_delta(parent.trace, spans)
        (orphan,) = [s for s in parent.trace.spans() if s["kind"] == "attempt"]
        assert orphan["parent_id"] is None

    def test_profile_sites_merge_stat_wise(self):
        parent = ObsRecorder()
        parent.profile.add("fastcore.latency", 2.0)
        worker = ObsRecorder()
        worker.profile.add("fastcore.latency", 0.5)
        worker.profile.add("fastcore.latency", 4.0)
        parent.merge_delta(worker.snapshot_delta())
        stats = parent.profile.sites["fastcore.latency"]
        assert stats.calls == 3
        assert stats.total_s == pytest.approx(6.5)
        assert stats.min_s == 0.5
        assert stats.max_s == 4.0


class TestAbandonedTimers:
    def test_open_timer_at_drain_becomes_abandoned_counter(self):
        worker = ObsRecorder()
        timer = worker.timer("runner.shard")
        timer.__enter__()  # killed-mid-shard: never exits before the drain
        delta = worker.snapshot_delta()
        assert delta["profile"]["abandoned"] == 1
        parent = ObsRecorder()
        parent.merge_delta(delta)
        assert parent.metrics.counter_value(ABANDONED_TIMERS_METRIC) == 1.0
        assert "runner.shard" not in parent.profile.sites

    def test_close_after_drain_is_discarded_not_misattributed(self):
        worker = ObsRecorder()
        timer = worker.timer("runner.shard")
        timer.__enter__()
        worker.snapshot_delta()  # drains; bumps the epoch
        timer.__exit__(None, None, None)
        assert worker.profile.is_empty
        assert worker.profile.open_timers == 0
        # The next epoch's timers still record normally.
        with worker.timer("runner.shard"):
            pass
        assert worker.profile.sites["runner.shard"].calls == 1

    def test_clean_snapshot_reports_no_abandonment(self):
        worker = ObsRecorder()
        with worker.timer("runner.shard"):
            pass
        delta = worker.snapshot_delta()
        assert delta["profile"]["abandoned"] == 0
        parent = ObsRecorder()
        parent.merge_delta(delta)
        assert parent.metrics.counter_value(ABANDONED_TIMERS_METRIC) == 0.0


class TestRegistryDiff:
    def test_equal_registries_diff_empty(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry in (a, b):
            registry.inc("repro_serve_total", TIER, 3.0)
            registry.observe("repro_serve_rtt_ms", 5.0, buckets=BUCKETS)
        assert registry_diff(a, b) == []

    def test_counter_value_mismatch_reported(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("repro_serve_total", TIER, 3.0)
        b.inc("repro_serve_total", TIER, 4.0)
        problems = registry_diff(a, b)
        assert len(problems) == 1 and "repro_serve_total" in problems[0]

    def test_missing_series_reported(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("repro_serve_total", TIER)
        assert registry_diff(a, b) and registry_diff(b, a)

    def test_fleet_series_are_excluded(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("repro_runner_worker_spawns_total", value=4.0)
        a.inc("repro_obs_deltas_merged_total", value=6.0)
        a.set_gauge("repro_profile_calls", 2.0)
        assert registry_diff(a, b) == []

    def test_float_association_noise_tolerated(self):
        # Parallel merges associate float additions differently; the diff
        # must accept sums that differ only in the last few ulps.
        values = [0.1, 0.2, 0.3, 1e-9, 7.77]
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in values:
            a.inc("repro_serve_rtt_total", value=value)
        for value in reversed(values):
            b.inc("repro_serve_rtt_total", value=value)
        assert registry_diff(a, b) == []

    def test_histogram_bucket_mismatch_reported(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("repro_serve_rtt_ms", 5.0, buckets=BUCKETS)
        b.observe("repro_serve_rtt_ms", 75.0, buckets=BUCKETS)
        problems = registry_diff(a, b)
        assert any("buckets" in p for p in problems)
