"""Tests for Ku-band access-link geometry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.access import (
    sample_access_one_way_ms,
    sample_elevation_deg,
    slant_range_for_elevation_km,
)


class TestSlantRangeForElevation:
    def test_zenith_equals_altitude(self):
        assert slant_range_for_elevation_km(90.0, 550.0) == pytest.approx(550.0)

    def test_monotone_decreasing_in_elevation(self):
        ranges = [slant_range_for_elevation_km(e, 550.0) for e in (10, 25, 50, 90)]
        assert ranges == sorted(ranges, reverse=True)

    def test_matches_visibility_bound(self):
        # Must agree with the law-of-sines bound used by visibility.
        from repro.orbits.visibility import max_slant_range_km

        for elevation in (10.0, 25.0, 40.0):
            assert slant_range_for_elevation_km(elevation, 550.0) == pytest.approx(
                max_slant_range_km(550.0, elevation), rel=1e-6
            )

    def test_invalid_elevation_rejected(self):
        with pytest.raises(ConfigurationError):
            slant_range_for_elevation_km(-1.0)
        with pytest.raises(ConfigurationError):
            slant_range_for_elevation_km(90.1)

    def test_invalid_altitude_rejected(self):
        with pytest.raises(ConfigurationError):
            slant_range_for_elevation_km(45.0, 0.0)


class TestSampleElevation:
    def test_within_usable_range(self):
        rng = np.random.default_rng(0)
        samples = [sample_elevation_deg(rng) for _ in range(500)]
        assert all(25.0 <= s <= 90.0 for s in samples)

    def test_skewed_towards_low_elevations(self):
        rng = np.random.default_rng(1)
        samples = np.array([sample_elevation_deg(rng) for _ in range(2000)])
        midpoint = (25.0 + 90.0) / 2.0
        assert np.mean(samples < midpoint) > 0.55

    def test_invalid_min_elevation_rejected(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ConfigurationError):
            sample_elevation_deg(rng, min_elevation_deg=90.0)


class TestSampleAccessLatency:
    def test_bounded_by_geometry(self):
        rng = np.random.default_rng(3)
        samples = [sample_access_one_way_ms(rng) for _ in range(500)]
        # Floor: zenith propagation + fixed overheads (~7.3 ms);
        # ceiling: horizon-range propagation + overheads (~9.3 ms).
        assert all(7.0 < s < 10.0 for s in samples)

    def test_reproducible(self):
        a = [sample_access_one_way_ms(np.random.default_rng(5)) for _ in range(5)]
        b = [sample_access_one_way_ms(np.random.default_rng(5)) for _ in range(5)]
        assert a == b
