"""Tests for the SLO spec grammar, error-budget engine, and dashboard.

Documents are built through the real :class:`TimeSeriesBuffer` export
path rather than hand-written JSON, so the evaluator is always tested
against exactly what ``repro run --obs`` writes to disk.
"""

import math

import pytest

from repro.errors import ObsError
from repro.obs.dashboard import render_timeline
from repro.obs.slo import (
    OVERLOAD_SHED,
    SERVE_HIT,
    SERVE_RTT_MS,
    SERVE_TOTAL,
    SERVE_UNAVAILABLE,
    evaluate_slo,
    evaluate_slos,
    parse_slo,
    render_slo_report,
)
from repro.obs.timeseries import TimeSeriesBuffer


def build_doc(window_s=60.0, windows=()):
    """A document from per-window (served, unavailable, shed, rtts) specs."""
    ts = TimeSeriesBuffer(window_s=window_s)
    for index, (served, unavailable, shed, rtts) in enumerate(windows):
        t = index * window_s + 1.0
        if served:
            ts.inc(t, SERVE_TOTAL, value=float(served))
            ts.inc(t, SERVE_HIT, value=float(served))
        if unavailable:
            ts.inc(t, SERVE_UNAVAILABLE, (("reason", "no_sky"),), float(unavailable))
        if shed:
            ts.inc(t, OVERLOAD_SHED, (("class", "1"),), float(shed))
        for rtt in rtts:
            ts.observe(t, SERVE_RTT_MS, rtt, buckets=(10.0, 50.0, 150.0))
    return ts.to_json()


class TestParseSlo:
    def test_availability_with_span(self):
        spec = parse_slo("availability >= 99% over 30 epochs")
        assert spec.metric == "availability"
        assert spec.threshold == pytest.approx(0.99)
        assert spec.over_windows == 30
        assert spec.budget == pytest.approx(0.01)

    def test_latency_quantile(self):
        spec = parse_slo("p99 <= 150ms")
        assert spec.metric == "p99"
        assert spec.threshold == 150.0
        assert spec.over_windows == 1
        assert spec.budget == pytest.approx(0.01)

    def test_fraction_without_percent_sign(self):
        assert parse_slo("shed_fraction <= 0.05").threshold == pytest.approx(0.05)
        assert parse_slo("shed_fraction <= 5%").threshold == pytest.approx(0.05)

    def test_windows_is_an_epochs_synonym(self):
        assert parse_slo("hit_ratio >= 80% over 5 windows").over_windows == 5

    @pytest.mark.parametrize(
        "text",
        [
            "nonsense",
            "weird_metric >= 1%",
            "availability <= 99%",  # wrong direction
            "shed_fraction >= 5%",  # wrong direction
            "p99 >= 150ms",  # latency must bound from above
            "p99 <= 99%",  # latency takes ms, not %
            "availability >= 99ms",  # ratio takes %, not ms
            "availability >= 150%",  # out of [0, 1]
            "p0 <= 10ms",  # quantile out of (0, 100)
            "availability >= 99% over 0 epochs",
        ],
    )
    def test_rejects_nonsense(self, text):
        with pytest.raises(ObsError):
            parse_slo(text)


class TestRatioEvaluation:
    def test_clean_run_never_breaches(self):
        doc = build_doc(windows=[(100, 0, 0, []), (100, 0, 0, [])])
        report = evaluate_slo(doc, parse_slo("availability >= 99%"))
        assert not report.breached
        assert [v.sli for v in report.verdicts] == [1.0, 1.0]
        assert [v.burn_short for v in report.verdicts] == [0.0, 0.0]

    def test_burn_rate_is_bad_fraction_over_budget(self):
        # 5% of requests unavailable against a 1% budget: burn 5x.
        doc = build_doc(windows=[(95, 5, 0, [])])
        report = evaluate_slo(doc, parse_slo("availability >= 99%"))
        (verdict,) = report.verdicts
        assert verdict.sli == pytest.approx(0.95)
        assert verdict.burn_short == pytest.approx(5.0)
        assert verdict.breached

    def test_shed_counts_against_availability(self):
        doc = build_doc(windows=[(90, 0, 10, [])])
        report = evaluate_slo(doc, parse_slo("availability >= 99%"))
        assert report.verdicts[0].sli == pytest.approx(0.90)

    def test_shed_fraction_direction(self):
        doc = build_doc(windows=[(98, 0, 2, [])])
        ok = evaluate_slo(doc, parse_slo("shed_fraction <= 5%"))
        assert not ok.breached
        assert ok.verdicts[0].sli == pytest.approx(0.02)
        bad = evaluate_slo(doc, parse_slo("shed_fraction <= 1%"))
        assert bad.breached

    def test_multiwindow_span_aggregates_by_counts(self):
        # One awful window inside a 3-window span: the span aggregate
        # (10 bad / 300) breaches a 1% budget even though the flanking
        # windows are clean — and keeps the alarm up while in the span.
        doc = build_doc(
            windows=[(100, 0, 0, []), (90, 10, 0, []), (100, 0, 0, [])]
        )
        report = evaluate_slo(doc, parse_slo("availability >= 99% over 3 epochs"))
        assert [v.breached for v in report.verdicts] == [False, True, True]
        assert report.verdicts[1].burn_long == pytest.approx(
            (10 / 200) / 0.01
        )
        assert report.breached_windows == [1, 2]

    def test_quiet_window_is_not_a_breach(self):
        doc = build_doc(windows=[(0, 0, 0, []), (100, 0, 0, [])])
        report = evaluate_slo(doc, parse_slo("availability >= 99%"))
        # Window 0 saw no traffic at all -> no verdict rows exist for it
        # unless another series touched it; here windows come from the
        # document, so only window 1 appears.
        assert [v.window for v in report.verdicts] == [1]

    def test_hit_ratio_counts_served_misses(self):
        ts = TimeSeriesBuffer(window_s=60.0)
        ts.inc(0.0, SERVE_TOTAL, value=10.0)
        ts.inc(0.0, SERVE_HIT, value=7.0)
        report = evaluate_slo(ts.to_json(), parse_slo("hit_ratio >= 80%"))
        assert report.verdicts[0].sli == pytest.approx(0.7)
        assert report.breached

    def test_zero_budget_burn_is_infinite(self):
        doc = build_doc(windows=[(99, 1, 0, [])])
        report = evaluate_slo(doc, parse_slo("availability >= 100%"))
        assert math.isinf(report.verdicts[0].burn_short)


class TestLatencyEvaluation:
    def test_threshold_on_bucket_bound_burns_exactly(self):
        # 99 fast samples, 1 in the overflow bucket, threshold on the
        # 150ms bound: exactly 1% bad against a 1% budget -> burn 1.0,
        # and the p99 estimate resolves to the 10ms bucket, so no breach.
        doc = build_doc(windows=[(0, 0, 0, [5.0] * 99 + [200.0])])
        report = evaluate_slo(doc, parse_slo("p99 <= 150ms"))
        (verdict,) = report.verdicts
        assert verdict.burn_short == pytest.approx(1.0)
        assert verdict.sli == 10.0
        assert not verdict.breached

    def test_slow_tail_breaches_with_overflow_sli(self):
        doc = build_doc(windows=[(0, 0, 0, [5.0] * 97 + [400.0] * 3)])
        report = evaluate_slo(doc, parse_slo("p99 <= 150ms"))
        (verdict,) = report.verdicts
        assert verdict.breached
        assert verdict.sli == math.inf  # overflow bucket
        assert verdict.burn_short == pytest.approx(3.0)

    def test_sli_is_bucket_resolved_quantile(self):
        doc = build_doc(windows=[(0, 0, 0, [5.0] * 90 + [40.0] * 10)])
        report = evaluate_slo(doc, parse_slo("p50 <= 10ms"))
        assert report.verdicts[0].sli == 10.0
        assert not report.breached

    def test_missing_histogram_is_an_error(self):
        doc = build_doc(windows=[(10, 0, 0, [])])
        with pytest.raises(ObsError):
            evaluate_slo(doc, parse_slo("p99 <= 150ms"))

    def test_multiwindow_latency_span(self):
        doc = build_doc(
            windows=[(0, 0, 0, [5.0] * 100), (0, 0, 0, [200.0] * 100)]
        )
        report = evaluate_slo(doc, parse_slo("p50 <= 10ms over 2 epochs"))
        # Span at window 1 holds 50% fast / 50% slow: p50 still 10ms.
        assert not report.verdicts[1].breached
        report99 = evaluate_slo(doc, parse_slo("p99 <= 150ms over 2 epochs"))
        assert report99.verdicts[1].breached


class TestRendering:
    DOC = None

    @pytest.fixture
    def doc(self):
        return build_doc(
            windows=[
                (100, 0, 0, [5.0] * 50),
                (60, 40, 0, [5.0] * 30 + [400.0] * 10),
                (100, 0, 0, [5.0] * 50),
            ]
        )

    def test_slo_report_renders_verdicts(self, doc):
        reports = evaluate_slos(
            doc,
            [parse_slo("availability >= 99% over 2 epochs"), parse_slo("p99 <= 150ms")],
        )
        text = render_slo_report(reports, 60.0)
        assert "SLO: availability >= 0.99 over 2 epochs" in text
        assert "BREACHED in" in text
        assert "burn(2w)" in text
        # Single-window specs collapse to one burn column.
        assert text.count("burn(1w)") >= 1

    def test_empty_document_renders_no_windows(self):
        doc = TimeSeriesBuffer().to_json()
        reports = evaluate_slos(doc, [parse_slo("availability >= 99%")])
        assert "no windows recorded" in render_slo_report(reports, 60.0)

    def test_timeline_renders_rows_and_markers(self, doc):
        reports = evaluate_slos(doc, [parse_slo("availability >= 99%")])
        text = render_timeline(doc, reports, width=40)
        assert "windows 0..2" in text
        assert "avail" in text
        assert "p99 rtt" in text
        assert "slo availability" in text
        assert "BREACH x1" in text
        assert "!" in text

    def test_timeline_without_slos(self, doc):
        text = render_timeline(doc, width=40)
        assert "avail" in text
        assert "slo" not in text

    def test_timeline_downsamples_to_width(self):
        ts = TimeSeriesBuffer(window_s=1.0)
        for t in range(500):
            ts.inc(float(t), SERVE_TOTAL)
        text = render_timeline(ts.to_json(), width=30)
        row = next(line for line in text.splitlines() if "requests/w" in line)
        spark = row.split("|")[1]
        assert len(spark) <= 30

    def test_timeline_rejects_empty_document(self):
        with pytest.raises(ObsError):
            render_timeline(TimeSeriesBuffer().to_json())
