"""Integration: video striping driven through the live SpaceCDN system.

The paper's §4 streaming story end to end: stripes are planned against
predicted passes, uploaded to their satellites ahead of playback, and then
fetched at playback time through the running system — which must serve them
from space, mostly from the satellite that was planned to be overhead.
"""

import pytest

from repro.cdn.content import Catalog, ContentObject
from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.lookup import LookupSource
from repro.spacecdn.striping import plan_stripes, stripe_coverage_gaps
from repro.spacecdn.system import SpaceCdnSystem

VIEWER = GeoPoint(0.0, 0.0, 0.0)
VIDEO_S = 1800.0  # a 30-minute episode
STRIPE_S = 180.0


@pytest.fixture(scope="module")
def session(shell1_constellation):
    plan = plan_stripes(
        constellation=shell1_constellation,
        viewer=VIEWER,
        start_s=0.0,
        video_duration_s=VIDEO_S,
        stripe_duration_s=STRIPE_S,
        pass_step_s=15.0,
    )
    catalog = Catalog()
    for assignment in plan.assignments:
        catalog.add(
            ContentObject(
                object_id=f"stripe-{assignment.stripe_index}",
                size_bytes=50_000_000,  # ~3 min of HD video
                kind="video-segment",
            )
        )
    system = SpaceCdnSystem(
        constellation=shell1_constellation,
        catalog=catalog,
        cache_bytes_per_satellite=500_000_000,
        max_hops=5,
        snapshot_interval_s=30.0,
    )
    # Upload each stripe to its planned satellite (and its plan neighbours,
    # mirroring the paper's "satellites that follow").
    for assignment in plan.assignments:
        system.preload(
            {f"stripe-{assignment.stripe_index}": frozenset({assignment.satellite})}
        )
    # Play the video: fetch each stripe midway through its playback window.
    results = []
    for assignment in plan.assignments:
        t_fetch = (assignment.playback_start_s + assignment.playback_end_s) / 2.0
        results.append(
            system.serve(VIEWER, f"stripe-{assignment.stripe_index}", t_fetch)
        )
    return plan, system, results


class TestStripedPlayback:
    def test_every_stripe_served_from_space(self, session):
        _, _, results = session
        ground = [r for r in results if r.source is LookupSource.GROUND]
        assert not ground, f"stripes fell back to ground: {ground}"

    def test_most_stripes_close_to_overhead(self, session):
        # The planned satellite should usually be the access satellite or a
        # very near ISL neighbour at fetch time.
        _, _, results = session
        near = sum(1 for r in results if r.isl_hops <= 2)
        assert near / len(results) > 0.7

    def test_latency_always_streaming_grade(self, session):
        _, _, results = session
        assert max(r.rtt_ms for r in results) < 80.0

    def test_serving_satellites_mostly_match_plan(self, session):
        plan, _, results = session
        matches = sum(
            1
            for assignment, result in zip(plan.assignments, results)
            if result.serving_satellite == assignment.satellite
        )
        assert matches / len(results) > 0.5

    def test_stats_accounting(self, session):
        plan, system, _ = session
        assert system.stats.requests == plan.num_stripes
        assert system.stats.ground_fetches == 0


class TestHandoverContinuity:
    """Golden checks on the plan's handover arithmetic: the stripe windows
    must tile the video exactly and hand over on half-open boundaries."""

    def test_playback_windows_tile_the_video(self, session):
        plan, _, _ = session
        assert plan.assignments[0].playback_start_s == 0.0
        assert plan.assignments[-1].playback_end_s == VIDEO_S
        for left, right in zip(plan.assignments, plan.assignments[1:]):
            assert left.playback_end_s == right.playback_start_s

    def test_stripe_windows_are_exact_multiples(self, session):
        plan, _, _ = session
        assert plan.num_stripes == VIDEO_S / STRIPE_S
        for assignment in plan.assignments:
            assert assignment.playback_start_s == (
                assignment.stripe_index * STRIPE_S
            )
            assert assignment.playback_end_s == (
                (assignment.stripe_index + 1) * STRIPE_S
            )

    def test_handover_instant_belongs_to_incoming_stripe(self, session):
        # Windows are half-open [start, end): at the handover instant the
        # *incoming* stripe's satellite serves, one second earlier the
        # outgoing one still does.
        plan, _, _ = session
        for left, right in zip(plan.assignments, plan.assignments[1:]):
            boundary = right.playback_start_s
            assert plan.satellite_for_time(boundary) == right.satellite
            assert plan.satellite_for_time(boundary - 1.0) == left.satellite

    def test_times_outside_session_rejected(self, session):
        plan, _, _ = session
        with pytest.raises(ConfigurationError):
            plan.satellite_for_time(-1.0)
        with pytest.raises(ConfigurationError):
            plan.satellite_for_time(VIDEO_S)  # end is exclusive

    def test_distinct_satellites_dedup_consecutive_only(self, session):
        plan, _, _ = session
        sequence = [a.satellite for a in plan.assignments]
        expected = [
            satellite
            for i, satellite in enumerate(sequence)
            if i == 0 or satellite != sequence[i - 1]
        ]
        assert plan.distinct_satellites() == expected
        # A 30-minute session outlives any single LEO pass: the plan must
        # hand the stream across satellites, not pin it to one.
        assert len(plan.distinct_satellites()) >= 2

    def test_coverage_gaps_match_pass_windows(self, session):
        plan, _, _ = session
        gaps = dict(stripe_coverage_gaps(plan))
        for assignment in plan.assignments:
            uncovered = gaps.get(assignment.stripe_index, 0.0)
            if uncovered == 0.0:
                # Fully covered: the pass brackets the playback window, so
                # there is non-negative slack to upload before playback.
                assert assignment.pass_window.start_s <= assignment.playback_start_s
                assert assignment.pass_window.end_s >= assignment.playback_end_s
                assert assignment.slack_before_s >= 0.0
            else:
                assert 0.0 < uncovered <= STRIPE_S
