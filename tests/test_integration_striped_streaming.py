"""Integration: video striping driven through the live SpaceCDN system.

The paper's §4 streaming story end to end: stripes are planned against
predicted passes, uploaded to their satellites ahead of playback, and then
fetched at playback time through the running system — which must serve them
from space, mostly from the satellite that was planned to be overhead.
"""

import numpy as np
import pytest

from repro.cdn.content import Catalog, ContentObject
from repro.geo.coordinates import GeoPoint
from repro.spacecdn.lookup import LookupSource
from repro.spacecdn.striping import plan_stripes
from repro.spacecdn.system import SpaceCdnSystem

VIEWER = GeoPoint(0.0, 0.0, 0.0)
VIDEO_S = 1800.0  # a 30-minute episode
STRIPE_S = 180.0


@pytest.fixture(scope="module")
def session(shell1_constellation):
    plan = plan_stripes(
        constellation=shell1_constellation,
        viewer=VIEWER,
        start_s=0.0,
        video_duration_s=VIDEO_S,
        stripe_duration_s=STRIPE_S,
        pass_step_s=15.0,
    )
    catalog = Catalog()
    for assignment in plan.assignments:
        catalog.add(
            ContentObject(
                object_id=f"stripe-{assignment.stripe_index}",
                size_bytes=50_000_000,  # ~3 min of HD video
                kind="video-segment",
            )
        )
    system = SpaceCdnSystem(
        constellation=shell1_constellation,
        catalog=catalog,
        cache_bytes_per_satellite=500_000_000,
        max_hops=5,
        snapshot_interval_s=30.0,
    )
    # Upload each stripe to its planned satellite (and its plan neighbours,
    # mirroring the paper's "satellites that follow").
    for assignment in plan.assignments:
        system.preload(
            {f"stripe-{assignment.stripe_index}": frozenset({assignment.satellite})}
        )
    # Play the video: fetch each stripe midway through its playback window.
    results = []
    for assignment in plan.assignments:
        t_fetch = (assignment.playback_start_s + assignment.playback_end_s) / 2.0
        results.append(
            system.serve(VIEWER, f"stripe-{assignment.stripe_index}", t_fetch)
        )
    return plan, system, results


class TestStripedPlayback:
    def test_every_stripe_served_from_space(self, session):
        _, _, results = session
        ground = [r for r in results if r.source is LookupSource.GROUND]
        assert not ground, f"stripes fell back to ground: {ground}"

    def test_most_stripes_close_to_overhead(self, session):
        # The planned satellite should usually be the access satellite or a
        # very near ISL neighbour at fetch time.
        _, _, results = session
        near = sum(1 for r in results if r.isl_hops <= 2)
        assert near / len(results) > 0.7

    def test_latency_always_streaming_grade(self, session):
        _, _, results = session
        assert max(r.rtt_ms for r in results) < 80.0

    def test_serving_satellites_mostly_match_plan(self, session):
        plan, _, results = session
        matches = sum(
            1
            for assignment, result in zip(plan.assignments, results)
            if result.serving_satellite == assignment.satellite
        )
        assert matches / len(results) > 0.5

    def test_stats_accounting(self, session):
        plan, system, _ = session
        assert system.stats.requests == plan.num_stripes
        assert system.stats.ground_fetches == 0
