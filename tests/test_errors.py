"""Tests for the exception hierarchy contract."""

import pytest

from repro import errors


ALL_ERRORS = (
    errors.ConfigurationError,
    errors.GeodesyError,
    errors.RoutingError,
    errors.VisibilityError,
    errors.CacheError,
    errors.ContentNotFoundError,
    errors.DatasetError,
    errors.PlacementError,
    errors.RunnerError,
    errors.CheckpointError,
    errors.ManifestMismatchError,
    errors.DeadlineExceededError,
    errors.ShardTimeoutError,
    errors.ShardExhaustedError,
    errors.RunInterruptedError,
)

RUNNER_ERRORS = (
    errors.CheckpointError,
    errors.ManifestMismatchError,
    errors.DeadlineExceededError,
    errors.ShardTimeoutError,
    errors.ShardExhaustedError,
    errors.RunInterruptedError,
)


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_derives_from_repro_error(self, error_cls):
        assert issubclass(error_cls, errors.ReproError)

    @pytest.mark.parametrize("error_cls", ALL_ERRORS)
    def test_catchable_as_repro_error(self, error_cls):
        with pytest.raises(errors.ReproError):
            raise error_cls("boom")

    def test_repro_error_is_exception_not_base_exception_only(self):
        assert issubclass(errors.ReproError, Exception)

    @pytest.mark.parametrize("error_cls", RUNNER_ERRORS)
    def test_runner_errors_derive_from_runner_error(self, error_cls):
        assert issubclass(error_cls, errors.RunnerError)

    def test_library_raises_only_repro_errors_for_bad_input(self):
        """A caller wrapping library calls in ``except ReproError`` must not
        see bare ValueError/KeyError for domain-level misuse."""
        from repro.geo.coordinates import GeoPoint
        from repro.geo.datasets import city_by_name
        from repro.workloads.zipf import ZipfDistribution

        with pytest.raises(errors.ReproError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(errors.ReproError):
            city_by_name("Narnia")
        with pytest.raises(errors.ReproError):
            ZipfDistribution(n=0)
