"""Tests for ground-segment models."""

import pytest

from repro.errors import DatasetError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.geo.datasets import all_ground_stations, all_pops
from repro.topology.ground import (
    GroundSegment,
    GroundStation,
    PointOfPresence,
    UserTerminal,
)


@pytest.fixture(scope="module")
def segment() -> GroundSegment:
    return GroundSegment.from_gazetteer()


class TestUserTerminal:
    def test_node_name(self):
        terminal = UserTerminal(name="maputo-1", location=GeoPoint(-25.97, 32.57))
        assert terminal.node_name == "ut:maputo-1"

    def test_default_elevation(self):
        terminal = UserTerminal(name="x", location=GeoPoint(0.0, 0.0))
        assert terminal.min_elevation_deg == 25.0


class TestGroundStation:
    def test_wraps_site(self, segment):
        station = segment.stations[0]
        assert isinstance(station, GroundStation)
        assert station.node_name.startswith("gs:")

    def test_backhaul_latency_positive_and_bounded(self, segment):
        for station in segment.stations:
            latency = station.backhaul_latency_ms()
            assert 0.0 < latency < 60.0

    def test_backhaul_scales_with_distance(self, segment):
        by_distance = sorted(
            segment.stations,
            key=lambda gs: great_circle_km(gs.location, gs.site.pop.location),
        )
        nearest, farthest = by_distance[0], by_distance[-1]
        assert nearest.backhaul_latency_ms() < farthest.backhaul_latency_ms()


class TestPointOfPresence:
    def test_node_name(self, segment):
        pop = segment.pops[0]
        assert isinstance(pop, PointOfPresence)
        assert pop.node_name.startswith("pop:")


class TestGroundSegment:
    def test_from_gazetteer_counts(self, segment):
        assert len(segment.stations) == len(all_ground_stations())
        assert len(segment.pops) == len(all_pops())

    def test_pop_named(self, segment):
        assert segment.pop_named("Frankfurt").site.iso2 == "DE"

    def test_pop_named_unknown_raises(self, segment):
        with pytest.raises(DatasetError):
            segment.pop_named("Nowhere")

    def test_stations_for_pop(self, segment):
        frankfurt_stations = segment.stations_for_pop("Frankfurt")
        assert frankfurt_stations
        assert all(gs.site.pop_name == "Frankfurt" for gs in frankfurt_stations)

    def test_every_pop_with_stations_is_consistent(self, segment):
        for pop in segment.pops:
            for gs in segment.stations_for_pop(pop.name):
                assert gs.pop.name == pop.name

    def test_nearest_station(self, segment):
        seattle = GeoPoint(47.61, -122.33)
        nearest = segment.nearest_station(seattle)
        assert nearest.site.iso2 in ("US", "CA")
        assert great_circle_km(seattle, nearest.location) < 500
