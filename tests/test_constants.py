"""Tests for physical-constant helpers."""

import math

import pytest

from repro import constants


class TestOrbitalPeriod:
    def test_shell1_period_is_about_95_minutes(self):
        period = constants.orbital_period_s(550.0)
        assert 94 * 60 < period < 97 * 60

    def test_period_grows_with_altitude(self):
        assert constants.orbital_period_s(1200.0) > constants.orbital_period_s(550.0)

    def test_iss_altitude_period_sanity(self):
        # ISS at ~420 km orbits in ~92-93 minutes.
        period = constants.orbital_period_s(420.0)
        assert 91 * 60 < period < 94 * 60


class TestOrbitalSpeed:
    def test_shell1_speed_matches_paper_figure(self):
        # The paper quotes ~27,000 km/h for LEO satellites.
        speed_kmh = constants.orbital_speed_km_s(550.0) * 3600.0
        assert 26_000 < speed_kmh < 28_500

    def test_speed_decreases_with_altitude(self):
        assert constants.orbital_speed_km_s(300.0) > constants.orbital_speed_km_s(600.0)

    def test_speed_period_consistency(self):
        # speed * period == orbit circumference
        altitude = 550.0
        radius = constants.EARTH_RADIUS_KM + altitude
        circumference = 2.0 * math.pi * radius
        travelled = constants.orbital_speed_km_s(altitude) * constants.orbital_period_s(
            altitude
        )
        assert travelled == pytest.approx(circumference, rel=1e-9)


class TestMediumSpeeds:
    def test_fiber_slower_than_vacuum(self):
        assert constants.FIBER_SPEED_KM_S < constants.SPEED_OF_LIGHT_KM_S

    def test_fiber_speed_is_about_two_thirds_c(self):
        ratio = constants.FIBER_SPEED_KM_S / constants.SPEED_OF_LIGHT_KM_S
        assert 0.63 < ratio < 0.72

    def test_circuity_tiers_are_ordered(self):
        assert (
            1.0
            < constants.CIRCUITY_TIER1
            < constants.CIRCUITY_TIER2
            < constants.CIRCUITY_TIER3
        )
