"""Tests for failure injection and placement resilience."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.spacecdn.placement import KPerPlanePlacement
from repro.spacecdn.resilience import (
    degrade_snapshot,
    fail_satellites,
    placement_under_failures,
    random_failure_set,
)
from repro.topology import fastcore


class TestFailSatellites:
    def test_nodes_removed(self, small_snapshot):
        degraded = fail_satellites(small_snapshot, frozenset({0, 1, 2}))
        assert 0 not in degraded.graph
        assert len(degraded.satellite_nodes()) == len(
            small_snapshot.satellite_nodes()
        ) - 3

    def test_original_untouched(self, small_snapshot):
        before = small_snapshot.graph.number_of_nodes()
        fail_satellites(small_snapshot, frozenset({0}))
        assert small_snapshot.graph.number_of_nodes() == before

    def test_unknown_satellite_rejected(self, small_snapshot):
        with pytest.raises(ConfigurationError):
            fail_satellites(small_snapshot, frozenset({10_000}))

    def test_empty_failure_is_identity(self, small_snapshot):
        degraded = fail_satellites(small_snapshot, frozenset())
        assert degraded.graph.number_of_edges() == small_snapshot.graph.number_of_edges()

    def test_materialised_graph_never_aliased(self, small_snapshot):
        """Repeated failure injections must not mutate the original's graph.

        The degraded copy removes nodes from *its* networkx view; if that
        view aliased the original's, every fault experiment would corrupt
        the healthy snapshot it came from.
        """
        original = small_snapshot.graph  # materialise before degrading
        nodes_before = set(original.nodes)
        edges_before = original.number_of_edges()
        first = fail_satellites(small_snapshot, frozenset({0, 1}))
        second = fail_satellites(small_snapshot, frozenset({2}))
        assert set(small_snapshot.graph.nodes) == nodes_before
        assert small_snapshot.graph.number_of_edges() == edges_before
        assert first.graph is not original
        assert second.graph is not original
        # Each degraded copy is independent of the others too.
        assert 2 in first.graph and 0 in second.graph


class TestDegradeSnapshot:
    def test_cut_links_removed_from_routing(self, small_snapshot):
        incident = frozenset(
            int(l) for l in small_snapshot.core.topology.neighbor_link[0] if l >= 0
        )
        degraded = degrade_snapshot(small_snapshot, cut_links=incident)
        hops = fastcore.hop_distances_batch(
            degraded.core, [1], degraded.active_mask
        )
        assert hops[0, 0] == fastcore.HOP_UNREACHABLE
        assert small_snapshot.core.link_active is None  # original untouched

    def test_combines_node_and_link_faults(self, small_snapshot):
        import numpy as np

        num_links = small_snapshot.core.topology.num_links
        degraded = degrade_snapshot(
            small_snapshot,
            failed=frozenset({5}),
            latency_multiplier=np.full(num_links, 3.0),
        )
        assert not degraded.has_satellite(5)
        np.testing.assert_allclose(
            degraded.core.link_latency_ms,
            3.0 * small_snapshot.core.link_latency_ms,
        )

    def test_no_faults_is_plain_copy(self, small_snapshot):
        degraded = degrade_snapshot(small_snapshot)
        assert degraded.core is small_snapshot.core
        assert degraded.failed == small_snapshot.failed


class TestRandomFailureSet:
    def test_size(self):
        rng = np.random.default_rng(0)
        failed = random_failure_set(100, 0.3, rng)
        assert len(failed) == 30

    def test_zero_fraction_empty(self):
        rng = np.random.default_rng(1)
        assert random_failure_set(100, 0.0, rng) == frozenset()

    def test_invalid_fraction(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ConfigurationError):
            random_failure_set(100, 1.0, rng)
        with pytest.raises(ConfigurationError):
            random_failure_set(100, -0.1, rng)

    def test_deterministic_per_seed(self):
        a = random_failure_set(100, 0.2, np.random.default_rng(3))
        b = random_failure_set(100, 0.2, np.random.default_rng(3))
        assert a == b


class TestPlacementUnderFailures:
    def test_no_failures_matches_healthy_profile(self, shell1_snapshot, shell1):
        holders = KPerPlanePlacement(copies_per_plane=4).place_object("x", shell1)
        report = placement_under_failures(shell1_snapshot, holders, frozenset())
        assert report.failed_fraction == 0.0
        assert report.surviving_replicas == len(holders)
        assert report.reachable_fraction == 1.0
        assert report.worst_case_hops <= 5  # the paper's §4 bound

    def test_paper_placement_survives_10pct_failures(self, shell1_snapshot, shell1):
        holders = KPerPlanePlacement(copies_per_plane=4).place_object("x", shell1)
        failed = random_failure_set(1584, 0.10, np.random.default_rng(4))
        report = placement_under_failures(shell1_snapshot, holders, failed)
        assert report.reachable_fraction == 1.0
        # Graceful degradation: a couple of extra hops at worst.
        assert report.worst_case_hops <= 9

    def test_degradation_monotone_in_failures(self, shell1_snapshot, shell1):
        holders = KPerPlanePlacement(copies_per_plane=2).place_object("x", shell1)
        rng = np.random.default_rng(5)
        mean_hops = []
        for fraction in (0.0, 0.2, 0.4):
            failed = random_failure_set(1584, fraction, rng)
            report = placement_under_failures(shell1_snapshot, holders, failed)
            mean_hops.append(report.mean_hops)
        assert mean_hops[0] <= mean_hops[1] <= mean_hops[2] * 1.05

    def test_all_replicas_failed(self, small_snapshot):
        holders = frozenset({0, 1})
        report = placement_under_failures(small_snapshot, holders, frozenset({0, 1}))
        assert report.surviving_replicas == 0
        assert report.reachable_fraction == 0.0
        assert report.worst_case_hops == -1

    def test_empty_holders_rejected(self, small_snapshot):
        with pytest.raises(PlacementError):
            placement_under_failures(small_snapshot, frozenset(), frozenset())

    def test_failed_replica_not_counted(self, small_snapshot):
        holders = frozenset({0, 10, 20})
        report = placement_under_failures(small_snapshot, holders, frozenset({0}))
        assert report.surviving_replicas == 2
