"""Tests for the ABR streaming session model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.spacecdn.streaming import AbrPlayer, constant_path


def player_for(rtt_ms: float, throughput_mbps: float, **kwargs) -> AbrPlayer:
    rtt_fn, tp_fn = constant_path(rtt_ms, throughput_mbps)
    return AbrPlayer(rtt_ms_fn=rtt_fn, throughput_mbps_fn=tp_fn, **kwargs)


class TestValidation:
    def test_empty_ladder_rejected(self):
        rtt_fn, tp_fn = constant_path(20.0, 50.0)
        with pytest.raises(ConfigurationError):
            AbrPlayer(rtt_ms_fn=rtt_fn, throughput_mbps_fn=tp_fn, bitrate_ladder_mbps=())

    def test_unsorted_ladder_rejected(self):
        rtt_fn, tp_fn = constant_path(20.0, 50.0)
        with pytest.raises(ConfigurationError):
            AbrPlayer(
                rtt_ms_fn=rtt_fn,
                throughput_mbps_fn=tp_fn,
                bitrate_ladder_mbps=(5.0, 1.0),
            )

    def test_invalid_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            player_for(20.0, 50.0, segment_duration_s=0.0)
        with pytest.raises(ConfigurationError):
            player_for(20.0, 50.0).play(0.0)

    def test_constant_path_validation(self):
        with pytest.raises(ConfigurationError):
            constant_path(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            constant_path(10.0, 0.0)


class TestGoodPath:
    def test_fast_path_reaches_top_bitrate(self):
        report = player_for(20.0, 100.0).play(300.0)
        assert report.rebuffer_events == 0
        assert report.rebuffer_ratio == 0.0
        # After ramping from the conservative start, segments run at 16 Mbps.
        assert report.mean_bitrate_mbps > 10.0

    def test_startup_delay_small_on_fast_path(self):
        report = player_for(20.0, 100.0).play(60.0)
        assert report.startup_delay_s < 0.5

    def test_segment_count(self):
        report = player_for(20.0, 100.0, segment_duration_s=4.0).play(60.0)
        assert report.segments == 15


class TestBadPath:
    def test_thin_path_drops_bitrate(self):
        fast = player_for(20.0, 100.0).play(300.0)
        thin = player_for(20.0, 3.0).play(300.0)
        assert thin.mean_bitrate_mbps < fast.mean_bitrate_mbps / 2

    def test_starved_path_rebuffers(self):
        # Throughput below the lowest bitrate: every segment stalls.
        report = player_for(50.0, 0.5).play(120.0)
        assert report.rebuffer_events > 0
        assert report.rebuffer_ratio > 0.5

    def test_rtt_hurts_at_fixed_throughput(self):
        near = player_for(20.0, 6.0).play(300.0)
        far = player_for(300.0, 6.0).play(300.0)
        assert far.mean_bitrate_mbps <= near.mean_bitrate_mbps
        assert far.startup_delay_s > near.startup_delay_s


class TestPaperScenario:
    def test_spacecdn_beats_isl_starlink_for_maputo_video(self):
        """SpaceCDN path (RTT ~35 ms, healthy throughput) vs today's
        Maputo->Frankfurt path (RTT ~150 ms, Mathis-bound ~12 Mbps with
        bufferbloat spikes): QoE must clearly favour SpaceCDN."""
        rng = np.random.default_rng(0)

        space = player_for(35.0, 60.0).play(600.0)

        def bufferbloated_rtt() -> float:
            # Idle ~150 ms with frequent loaded spikes (paper: >200 ms).
            return 150.0 + float(rng.exponential(60.0))

        def thin_throughput() -> float:
            return max(2.0, float(rng.normal(10.0, 3.0)))

        today_player = AbrPlayer(
            rtt_ms_fn=bufferbloated_rtt, throughput_mbps_fn=thin_throughput
        )
        today = today_player.play(600.0)

        assert space.mean_bitrate_mbps > today.mean_bitrate_mbps
        assert space.rebuffer_ratio <= today.rebuffer_ratio
        assert space.startup_delay_s < today.startup_delay_s
