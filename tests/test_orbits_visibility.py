"""Tests for visibility computation."""

import numpy as np
import pytest

from repro.errors import VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.visibility import (
    coverage_fraction,
    elevations_deg,
    max_slant_range_km,
    nearest_visible_satellite,
    slant_ranges_km,
    visible_satellites,
)


class TestElevations:
    def test_shape(self, small_constellation, equator_point):
        elevations = elevations_deg(small_constellation, equator_point, 0.0)
        assert elevations.shape == (len(small_constellation),)

    def test_range(self, small_constellation, equator_point):
        elevations = elevations_deg(small_constellation, equator_point, 0.0)
        assert np.all(elevations >= -90.0)
        assert np.all(elevations <= 90.0)

    def test_most_satellites_below_horizon(self, small_constellation, equator_point):
        # From any point, the majority of a LEO shell is below the horizon.
        elevations = elevations_deg(small_constellation, equator_point, 0.0)
        assert np.mean(elevations < 0) > 0.5


class TestSlantRanges:
    def test_minimum_at_least_altitude(self, shell1_constellation, equator_point):
        ranges = slant_ranges_km(shell1_constellation, equator_point, 0.0)
        assert ranges.min() >= 550.0 - 1.0

    def test_maximum_bounded_by_geometry(self, shell1_constellation, equator_point):
        ranges = slant_ranges_km(shell1_constellation, equator_point, 0.0)
        # No satellite can be farther than Earth diameter + orbit diameter.
        assert ranges.max() < 2 * (6371.0 + 550.0) + 1.0


class TestVisibleSatellites:
    def test_sorted_by_range(self, shell1_constellation, equator_point):
        visible = visible_satellites(shell1_constellation, equator_point, 0.0)
        ranges = [v.slant_range_km for v in visible]
        assert ranges == sorted(ranges)

    def test_all_above_min_elevation(self, shell1_constellation, equator_point):
        visible = visible_satellites(
            shell1_constellation, equator_point, 0.0, min_elevation_deg=25.0
        )
        assert all(v.elevation_deg >= 25.0 for v in visible)

    def test_lower_threshold_sees_more(self, shell1_constellation, equator_point):
        strict = visible_satellites(
            shell1_constellation, equator_point, 0.0, min_elevation_deg=40.0
        )
        loose = visible_satellites(
            shell1_constellation, equator_point, 0.0, min_elevation_deg=10.0
        )
        assert len(loose) > len(strict)

    def test_range_within_elevation_bound(self, shell1_constellation, equator_point):
        visible = visible_satellites(
            shell1_constellation, equator_point, 0.0, min_elevation_deg=25.0
        )
        bound = max_slant_range_km(550.0, 25.0)
        assert all(v.slant_range_km <= bound + 1.0 for v in visible)

    def test_high_latitude_point_sees_nothing_in_53deg_shell(self, shell1_constellation):
        # Far above the inclination limit there is no coverage at 25 deg.
        svalbard = GeoPoint(78.2, 15.6, 0.0)
        assert visible_satellites(shell1_constellation, svalbard, 0.0) == []


class TestNearestVisible:
    def test_equator_always_served_by_shell1(self, shell1_constellation, equator_point):
        nearest = nearest_visible_satellite(shell1_constellation, equator_point, 0.0)
        assert nearest.elevation_deg >= 25.0
        assert nearest.slant_range_km < max_slant_range_km(550.0, 25.0) + 1.0

    def test_no_visibility_raises(self, shell1_constellation):
        svalbard = GeoPoint(78.2, 15.6, 0.0)
        with pytest.raises(VisibilityError):
            nearest_visible_satellite(shell1_constellation, svalbard, 0.0)

    def test_nearest_is_first_of_visible(self, shell1_constellation, equator_point):
        nearest = nearest_visible_satellite(shell1_constellation, equator_point, 0.0)
        visible = visible_satellites(shell1_constellation, equator_point, 0.0)
        assert nearest == visible[0]


class TestCoverage:
    def test_shell1_equator_continuous_coverage(self, shell1_constellation, equator_point):
        fraction = coverage_fraction(
            shell1_constellation, equator_point, duration_s=600.0, step_s=60.0
        )
        assert fraction == 1.0

    def test_invalid_duration_raises(self, shell1_constellation, equator_point):
        with pytest.raises(VisibilityError):
            coverage_fraction(shell1_constellation, equator_point, duration_s=0.0)


class TestMaxSlantRange:
    def test_zenith_limit(self):
        assert max_slant_range_km(550.0, 90.0) == pytest.approx(550.0, abs=1.0)

    def test_horizon_much_farther(self):
        assert max_slant_range_km(550.0, 0.0) > 2000.0

    def test_monotone_in_elevation(self):
        ranges = [max_slant_range_km(550.0, e) for e in (0.0, 25.0, 50.0, 90.0)]
        assert ranges == sorted(ranges, reverse=True)

    def test_starlink_25deg_value(self):
        # Known geometry: ~1120 km max slant at 25 deg for a 550 km shell.
        assert max_slant_range_km(550.0, 25.0) == pytest.approx(1120, rel=0.05)
