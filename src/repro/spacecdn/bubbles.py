"""Content bubbles: geo-predictive prefetch and content-aware eviction (§5).

Satellite orbits and regional content popularity are both predictable, so a
satellite approaching a region's field of view can prefetch that region's
popular objects and evict the previous region's — "the infrastructure moves
but the content remains accessible". :class:`ContentBubbleManager` implements
the policy; :func:`simulate_orbit_requests` measures the hit-rate gain it
buys over a plain LRU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cdn.cache import Cache, LruCache
from repro.cdn.content import Catalog, ContentObject
from repro.errors import ConfigurationError


@dataclass
class RegionalPopularity:
    """Zipf popularity per region over a shared catalog.

    Each region ranks its *own* region's objects (plus globals) highest;
    cross-region requests are rare. ``sample(region)`` draws one object id.
    """

    catalog: Catalog
    zipf_s: float = 0.9
    cross_region_fraction: float = 0.05
    seed: int = 0
    _rankings: dict[str, list[str]] = field(init=False, repr=False)
    _weights: dict[str, np.ndarray] = field(init=False, repr=False)
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.cross_region_fraction < 1.0:
            raise ConfigurationError("cross_region_fraction must be in [0, 1)")
        if self.zipf_s <= 0:
            raise ConfigurationError("zipf_s must be positive")
        self._rng = np.random.default_rng(self.seed)
        self._rankings = {}
        self._weights = {}

    def regions(self) -> list[str]:
        """Every non-global region present in the catalog."""
        return sorted({o.region for o in self.catalog if o.region != "global"})

    def _ranking_for(self, region: str) -> tuple[list[str], np.ndarray]:
        if region not in self._rankings:
            if region not in self.regions():
                raise ConfigurationError(f"no content for region {region!r}")
            local = [o.object_id for o in self.catalog.by_region(region)]
            # Deterministic per-region shuffle assigns ranks. Python's
            # built-in hash() is salted per process, so use a stable hash —
            # otherwise rankings would differ between runs.
            from repro.spacecdn.placement import _stable_hash

            order_rng = np.random.default_rng((_stable_hash(region), self.seed))
            order = order_rng.permutation(len(local))
            ranked = [local[i] for i in order]
            ranks = np.arange(1, len(ranked) + 1, dtype=float)
            weights = ranks**-self.zipf_s
            weights /= weights.sum()
            self._rankings[region] = ranked
            self._weights[region] = weights
        return self._rankings[region], self._weights[region]

    def top_objects(self, region: str, count: int) -> list[str]:
        """The ``count`` most popular object ids for a region."""
        ranked, _ = self._ranking_for(region)
        return ranked[:count]

    def sample(self, region: str) -> str:
        """Draw one requested object id from a region's popularity."""
        if self._rng.random() < self.cross_region_fraction:
            others = [r for r in self.regions() if r != region]
            if others:
                region = others[int(self._rng.integers(len(others)))]
        ranked, weights = self._ranking_for(region)
        return ranked[int(self._rng.choice(len(ranked), p=weights))]


@dataclass
class ContentBubbleManager:
    """Prefetch-on-approach policy for one satellite's cache.

    On a region transition the manager evicts objects affine to regions no
    longer in view and prefetches the approaching region's top objects until
    the prefetch byte budget is spent.
    """

    cache: Cache
    catalog: Catalog
    popularity: RegionalPopularity
    prefetch_fraction: float = 0.6
    """Share of cache capacity to fill with the approaching region's content."""

    prefetched: int = 0
    evicted_for_bubble: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.prefetch_fraction <= 1.0:
            raise ConfigurationError("prefetch_fraction must be in (0, 1]")

    def on_region_approach(self, region: str) -> None:
        """Called when the satellite's track is about to enter ``region``."""
        self._evict_foreign(region)
        self._prefetch(region)

    def _evict_foreign(self, region: str) -> None:
        # Content-aware eviction: drop objects affine to other regions.
        for object_id in list(self.cache.object_ids()):
            obj = self.cache.peek(object_id)
            if obj is not None and obj.region not in (region, "global"):
                self.cache.remove(object_id)
                self.evicted_for_bubble += 1

    def _prefetch(self, region: str) -> None:
        budget = int(self.cache.capacity_bytes * self.prefetch_fraction)
        spent = 0
        for object_id in self.popularity.top_objects(region, len(self.catalog)):
            if spent >= budget:
                break
            if object_id in self.cache:
                continue
            obj = self.catalog.get(object_id)
            if obj.size_bytes > self.cache.capacity_bytes:
                continue
            self.cache.put(obj)
            self.prefetched += 1
            spent += obj.size_bytes

    def request(self, object_id: str) -> ContentObject:
        """Serve one request, filling from the catalog on a miss.

        Objects larger than the whole cache are served uncached.
        """
        obj = self.cache.get(object_id)
        if obj is None:
            obj = self.catalog.get(object_id)
            if obj.size_bytes <= self.cache.capacity_bytes:
                self.cache.put(obj)
        return obj


@dataclass(frozen=True)
class BubbleSimulationResult:
    """Hit ratios of bubble-managed vs plain caches over the same request stream."""

    bubble_hit_ratio: float
    plain_hit_ratio: float
    requests: int

    @property
    def improvement(self) -> float:
        """Absolute hit-ratio gain from content bubbles."""
        return self.bubble_hit_ratio - self.plain_hit_ratio


def simulate_orbit_requests(
    catalog: Catalog,
    popularity: RegionalPopularity,
    region_sequence: list[str],
    requests_per_region: int,
    cache_bytes: int,
    prefetch_fraction: float = 0.6,
) -> BubbleSimulationResult:
    """Drive one satellite across a sequence of regions and compare caches.

    The bubble cache prefetches on each region approach; the plain LRU only
    learns reactively. Both see the identical request stream.
    """
    if requests_per_region < 1:
        raise ConfigurationError("requests_per_region must be >= 1")
    if not region_sequence:
        raise ConfigurationError("region_sequence is empty")

    bubble = ContentBubbleManager(
        cache=LruCache(cache_bytes),
        catalog=catalog,
        popularity=popularity,
        prefetch_fraction=prefetch_fraction,
    )
    plain = LruCache(cache_bytes)

    total = 0
    for region in region_sequence:
        bubble.on_region_approach(region)
        for _ in range(requests_per_region):
            object_id = popularity.sample(region)
            bubble.request(object_id)
            if plain.get(object_id) is None:
                obj = catalog.get(object_id)
                if obj.size_bytes <= plain.capacity_bytes:
                    plain.put(obj)
            total += 1

    return BubbleSimulationResult(
        bubble_hit_ratio=bubble.cache.stats.hit_ratio,
        plain_hit_ratio=plain.stats.hit_ratio,
        requests=total,
    )
