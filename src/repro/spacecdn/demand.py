"""Demand-aware duty cycling (§5's "intelligent request scheduling").

Content demand follows the sun: a longitude's request rate peaks in the
local evening and bottoms out before dawn. Since thermal limits force
caches to duty-cycle anyway (§5), the *which-satellites* choice is free —
so schedule the cache duty onto satellites currently over high-demand
longitudes and let the ones over the night side cool.
:class:`DemandAwareDutyCycle` does exactly that and is benchmarked against
the random scheduler of :mod:`repro.spacecdn.dutycycle`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.orbits.walker import Constellation


@dataclass(frozen=True)
class DiurnalDemand:
    """A sinusoidal diurnal demand curve over local solar time.

    ``weight(lon, t)`` peaks at ``peak_hour`` local time (default 21:00 —
    the streaming prime time) and dips 12 hours away; the floor keeps
    night-side demand positive (background traffic never stops).
    """

    peak_hour: float = 21.0
    floor: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.peak_hour < 24.0:
            raise ConfigurationError(f"peak hour must be in [0, 24), got {self.peak_hour}")
        if not 0.0 <= self.floor < 1.0:
            raise ConfigurationError(f"floor must be in [0, 1), got {self.floor}")

    def local_hour(self, lon_deg: float, t_s: float) -> float:
        """Local solar time at a longitude, for UTC-midnight epoch ``t_s=0``."""
        if not -180.0 <= lon_deg <= 180.0:
            raise ConfigurationError(f"longitude {lon_deg} out of range")
        utc_hour = (t_s / 3600.0) % 24.0
        return (utc_hour + lon_deg / 15.0) % 24.0

    def weight(self, lon_deg: float, t_s: float) -> float:
        """Relative demand at a longitude/time, in [floor, 1]."""
        hour = self.local_hour(lon_deg, t_s)
        phase = (hour - self.peak_hour) / 24.0 * 2.0 * math.pi
        # Cosine bump centred on the peak hour, rescaled into [floor, 1].
        raw = (math.cos(phase) + 1.0) / 2.0
        return self.floor + (1.0 - self.floor) * raw


@dataclass
class DemandAwareDutyCycle:
    """Duty-cycle scheduler that places cache duty over demand.

    Ranks satellites by the demand weight at their sub-satellite longitude
    (latitude-weighted towards the populated band) and activates the top
    fraction. Deterministic given (constellation, time, fraction).
    """

    constellation: Constellation
    cache_fraction: float
    demand: DiurnalDemand = DiurnalDemand()
    populated_band_deg: float = 55.0

    def __post_init__(self) -> None:
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ConfigurationError(
                f"cache_fraction must be in (0, 1], got {self.cache_fraction}"
            )
        if self.populated_band_deg <= 0:
            raise ConfigurationError("populated band must be positive")

    @property
    def caches_per_slot(self) -> int:
        return max(1, round(len(self.constellation) * self.cache_fraction))

    def satellite_scores(self, t_s: float) -> np.ndarray:
        """Per-satellite demand scores at an instant."""
        tracks = self.constellation.subsatellite_points(t_s)
        scores = np.empty(len(self.constellation))
        for index, (lat, lon) in enumerate(tracks):
            demand = self.demand.weight(float(lon), t_s)
            # Satellites over the populated latitude band score fully;
            # beyond it the score tapers (nobody to serve at 53N+ ocean).
            taper = max(0.0, 1.0 - max(0.0, abs(lat) - self.populated_band_deg) / 35.0)
            scores[index] = demand * max(0.1, taper)
        return scores

    def active_caches_at(self, t_s: float) -> frozenset[int]:
        """The demand-ranked active cache set at an instant."""
        if t_s < 0:
            raise ConfigurationError(f"negative time: {t_s}")
        scores = self.satellite_scores(t_s)
        top = np.argsort(scores)[::-1][: self.caches_per_slot]
        return frozenset(int(i) for i in top)

    def mean_active_demand(self, t_s: float) -> float:
        """Average demand score of the active set (vs the fleet average)."""
        scores = self.satellite_scores(t_s)
        active = list(self.active_caches_at(t_s))
        return float(scores[active].mean())
