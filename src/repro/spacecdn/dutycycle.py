"""Duty-cycled satellite caching (paper §5 and Fig. 8).

Satellites cannot all cache all the time (power/thermal budget), so only a
fraction x of the fleet serves as caches in each duty-cycle slot; the rest
relay requests over ISLs to the nearest active cache. The scheduler below
draws a fresh pseudo-random active subset per slot, deterministically from
the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import (
    MIN_ELEVATION_USER_DEG,
    SPEED_OF_LIGHT_KM_S,
    STARLINK_PROCESSING_DELAY_MS,
    STARLINK_SCHEDULING_DELAY_MS,
)
from repro.errors import ConfigurationError, UnavailableError
from repro.geo.coordinates import GeoPoint
from repro.obs.recorder import get_recorder
from repro.orbits.visibility import nearest_visible_satellites
from repro.spacecdn.lookup import LookupResult, SpaceCdnLookup, nearest_cached_satellite
from repro.topology.graph import SnapshotGraph, access_latency_ms


@dataclass
class DutyCycleScheduler:
    """Selects which satellites cache during each duty-cycle slot."""

    total_satellites: int
    cache_fraction: float
    slot_duration_s: float = 600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.total_satellites < 1:
            raise ConfigurationError("need at least one satellite")
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ConfigurationError(
                f"cache_fraction must be in (0, 1], got {self.cache_fraction}"
            )
        if self.slot_duration_s <= 0:
            raise ConfigurationError("slot duration must be positive")

    @property
    def caches_per_slot(self) -> int:
        """Number of active caches in any slot (at least one)."""
        return max(1, round(self.total_satellites * self.cache_fraction))

    def slot_index(self, t_s: float) -> int:
        """Which duty-cycle slot the instant ``t_s`` falls in."""
        if t_s < 0:
            raise ConfigurationError(f"negative time: {t_s}")
        return int(t_s // self.slot_duration_s)

    def active_caches(self, slot: int) -> frozenset[int]:
        """The cache set for a slot — deterministic in (seed, slot)."""
        if slot < 0:
            raise ConfigurationError(f"negative slot: {slot}")
        rng = np.random.default_rng((self.seed, slot))
        chosen = rng.choice(
            self.total_satellites, size=self.caches_per_slot, replace=False
        )
        return frozenset(int(i) for i in chosen)

    def active_caches_at(self, t_s: float) -> frozenset[int]:
        """The cache set active at time ``t_s``."""
        return self.active_caches(self.slot_index(t_s))

    def exited_caches(self, prev_slot: int, slot: int) -> frozenset[int]:
        """Satellites that stopped caching between two slots.

        These are the duty-cycle *exits*: a satellite powering its cache
        down to meet the thermal budget loses its contents, which is what
        the fault layer's cache-wipe semantics model
        (:class:`repro.faults.FaultSchedule.wipe_caches_on_outage`).
        """
        return self.active_caches(prev_slot) - self.active_caches(slot)


@dataclass
class DutyCycleLatencyModel:
    """Evaluates user-perceived latency under a duty-cycling cache fleet.

    Requests always reach content in space here (Fig. 8 assumes the fleet as
    a whole holds the object; what varies is how far the nearest *active*
    cache is), so ``max_hops`` is unbounded by default. ``failed`` layers a
    fault set on top of the duty cycle: failed satellites neither cache nor
    relay nor accept terminals, so the chaos experiments can sweep outage
    fractions over the Fig. 8 pipeline without touching it.
    """

    snapshot: SnapshotGraph
    scheduler: DutyCycleScheduler
    max_hops: int = 64
    failed: frozenset[int] = frozenset()
    _lookup: SpaceCdnLookup = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.scheduler.total_satellites != len(self.snapshot.constellation):
            raise ConfigurationError(
                "scheduler fleet size does not match the snapshot constellation"
            )
        if self.failed:
            from repro.spacecdn.resilience import fail_satellites

            self.snapshot = fail_satellites(self.snapshot, self.failed)
        self._lookup = SpaceCdnLookup(snapshot=self.snapshot, max_hops=self.max_hops)

    def _active_caches(self) -> frozenset[int]:
        """The duty-cycle cache set minus satellites lost to faults."""
        return self.scheduler.active_caches_at(self.snapshot.t_s) - self.failed

    def lookup(
        self,
        user: GeoPoint,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> LookupResult:
        """Resolve a request at the snapshot instant under the active cache set."""
        rec = get_recorder()
        with rec.timer("dutycycle.lookup"):
            caches = self._active_caches()
            if not self.failed:
                result = self._lookup.lookup_from_point(
                    user, caches, min_elevation_deg
                )
            else:
                live = self._live_access(user, min_elevation_deg)
                result = self._lookup.lookup(
                    access_satellite=live.index,
                    access_one_way_ms=access_latency_ms(live.slant_range_km),
                    cache_satellites=caches,
                )
        if rec.enabled:
            rec.inc(
                "repro_dutycycle_lookups_total",
                (("source", result.source.value),),
            )
        return result

    def _live_access(self, user: GeoPoint, min_elevation_deg: float):
        """The nearest visible satellite that is not failed."""
        from repro.orbits.visibility import visible_satellites

        candidates = visible_satellites(
            self.snapshot.constellation, user, self.snapshot.t_s, min_elevation_deg
        )
        for candidate in candidates:
            if candidate.index not in self.failed:
                return candidate
        raise UnavailableError(
            f"no live satellite visible from ({user.lat_deg:.1f}, "
            f"{user.lon_deg:.1f}) with {len(self.failed)} satellites failed"
        )

    def one_way_ms(self, user: GeoPoint) -> float:
        """Convenience: the one-way latency of :meth:`lookup`."""
        return self.lookup(user).one_way_ms

    def one_way_ms_batch(
        self,
        users: list[GeoPoint],
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> np.ndarray:
        """One-way latency for many users of one snapshot, vectorised.

        Equivalent to calling :meth:`one_way_ms` per user: access the
        nearest visible satellite, then relay to the cheapest active cache
        within ``max_hops`` (ground fallback if none). All access links are
        resolved in one visibility pass and the ISL legs are shared across
        users behind the same access satellite. Users whose nearest visible
        satellite failed re-home to their nearest *live* one; a user with no
        live satellite overhead raises
        :class:`~repro.errors.UnavailableError`.
        """
        rec = get_recorder()
        with rec.timer("dutycycle.one_way_ms_batch"):
            caches = self._active_caches()
            access_idx, slant_km = nearest_visible_satellites(
                self.snapshot.constellation,
                users,
                self.snapshot.t_s,
                min_elevation_deg,
            )
            if self.failed:
                access_idx = access_idx.copy()
                slant_km = slant_km.copy()
                for i, access in enumerate(access_idx):
                    if int(access) in self.failed:
                        live = self._live_access(users[i], min_elevation_deg)
                        access_idx[i] = live.index
                        slant_km[i] = live.slant_range_km
            access_ms = (
                slant_km / SPEED_OF_LIGHT_KM_S * 1000.0
                + STARLINK_SCHEDULING_DELAY_MS
                + STARLINK_PROCESSING_DELAY_MS
            )

            unique_access, inverse = np.unique(access_idx, return_inverse=True)
            isl_ms = np.zeros(len(unique_access))
            grounded = np.zeros(len(unique_access), dtype=bool)
            for k, access in enumerate(unique_access):
                if int(access) in caches:
                    continue
                found = nearest_cached_satellite(
                    self.snapshot, int(access), caches, self._lookup.max_hops
                )
                if found is None:
                    grounded[k] = True
                else:
                    isl_ms[k] = found[2]

            one_way = access_ms + isl_ms[inverse]
            fallback = grounded[inverse]
            one_way[fallback] = self._lookup.ground_fallback_one_way_ms
        if rec.enabled:
            grounded_n = int(fallback.sum())
            if grounded_n:
                rec.inc(
                    "repro_dutycycle_lookups_total",
                    (("source", "ground"),),
                    float(grounded_n),
                )
            if len(users) - grounded_n:
                rec.inc(
                    "repro_dutycycle_lookups_total",
                    (("source", "space"),),
                    float(len(users) - grounded_n),
                )
        return one_way
