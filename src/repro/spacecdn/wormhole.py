"""Content wormholing: bulk distribution via satellite trajectories (§5).

The paper: "content providers can leverage the natural trajectory of
satellite caches to distribute geographically-relevant content without
traversing either WAN or ISL links — opening dimensions for content
wormholing." A satellite loads a bundle while over the source region,
physically carries it along its orbit, and downlinks it when its footprint
reaches the destination — an orbital sneakernet whose bandwidth-delay
product is enormous (terabytes per pass at ~quarter-orbit latency).

:class:`WormholePlanner` finds the best such relay and compares its
delivery time against a WAN transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FIBER_SPEED_KM_S
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint, great_circle_km
from repro.orbits.walker import Constellation


@dataclass(frozen=True)
class WormholePlan:
    """One planned orbital content relay."""

    satellite: int
    load_start_s: float
    load_end_s: float
    unload_start_s: float
    unload_end_s: float

    @property
    def carry_time_s(self) -> float:
        """Time the content rides the satellite between footprints."""
        return self.unload_start_s - self.load_end_s

    @property
    def delivery_time_s(self) -> float:
        """Start of loading to end of unloading."""
        return self.unload_end_s - self.load_start_s


@dataclass
class WormholePlanner:
    """Plans orbital bulk-content relays between two ground regions."""

    constellation: Constellation
    footprint_radius_km: float = 940.0
    """Ground radius within which a satellite can exchange traffic with a
    site (the 25-degree-elevation footprint of a 550 km shell)."""

    uplink_gbps: float = 4.0
    downlink_gbps: float = 8.0
    scan_step_s: float = 20.0

    def __post_init__(self) -> None:
        if self.footprint_radius_km <= 0:
            raise ConfigurationError("footprint radius must be positive")
        if self.uplink_gbps <= 0 or self.downlink_gbps <= 0:
            raise ConfigurationError("link rates must be positive")
        if self.scan_step_s <= 0:
            raise ConfigurationError("scan step must be positive")

    def transfer_time_s(self, bundle_gb: float, rate_gbps: float) -> float:
        """Seconds to move ``bundle_gb`` gigabytes at ``rate_gbps``."""
        if bundle_gb <= 0:
            raise ConfigurationError("bundle size must be positive")
        return bundle_gb * 8.0 / rate_gbps

    def _overflight_windows(
        self, point: GeoPoint, start_s: float, horizon_s: float
    ) -> dict[int, list[tuple[float, float]]]:
        """Per-satellite intervals whose sub-satellite track is within the
        footprint radius of ``point``."""
        times = np.arange(start_s, start_s + horizon_s + self.scan_step_s / 2, self.scan_step_s)
        windows: dict[int, list[tuple[float, float]]] = {}
        open_since: dict[int, float] = {}
        for t in times:
            tracks = self.constellation.subsatellite_points(float(t))
            distances = np.array(
                [
                    great_circle_km(point, GeoPoint(float(lat), float(lon)))
                    for lat, lon in tracks
                ]
            )
            inside = set(np.flatnonzero(distances <= self.footprint_radius_km).tolist())
            for sat in inside:
                open_since.setdefault(sat, float(t))
            for sat in list(open_since):
                if sat not in inside:
                    windows.setdefault(sat, []).append((open_since.pop(sat), float(t)))
        for sat, since in open_since.items():
            windows.setdefault(sat, []).append((since, float(times[-1])))
        return windows

    def plan(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        bundle_gb: float,
        start_s: float = 0.0,
        horizon_s: float = 5700.0,
    ) -> WormholePlan:
        """The earliest-completing relay within ``horizon_s``.

        Raises :class:`VisibilityError` when no satellite passes over both
        regions (with enough pass time to move the bundle) in the horizon.
        """
        load_needed = self.transfer_time_s(bundle_gb, self.uplink_gbps)
        unload_needed = self.transfer_time_s(bundle_gb, self.downlink_gbps)
        src_windows = self._overflight_windows(source, start_s, horizon_s)
        dst_windows = self._overflight_windows(destination, start_s, horizon_s)

        best: WormholePlan | None = None
        for sat, loads in src_windows.items():
            unloads = dst_windows.get(sat)
            if not unloads:
                continue
            for load_start, load_end in loads:
                if load_end - load_start < load_needed:
                    continue
                load_done = load_start + load_needed
                for unload_start, unload_end in unloads:
                    if unload_start < load_done:
                        continue  # must load first
                    if unload_end - unload_start < unload_needed:
                        continue
                    plan = WormholePlan(
                        satellite=sat,
                        load_start_s=load_start,
                        load_end_s=load_done,
                        unload_start_s=unload_start,
                        unload_end_s=unload_start + unload_needed,
                    )
                    if best is None or plan.unload_end_s < best.unload_end_s:
                        best = plan
                    break  # later windows for this sat only finish later
        if best is None:
            raise VisibilityError(
                "no satellite relays the bundle between the regions within "
                f"{horizon_s:.0f}s"
            )
        return best

    def wan_delivery_time_s(
        self,
        source: GeoPoint,
        destination: GeoPoint,
        bundle_gb: float,
        wan_gbps: float = 1.0,
    ) -> float:
        """Delivery time of the same bundle over the terrestrial WAN."""
        if wan_gbps <= 0:
            raise ConfigurationError("WAN rate must be positive")
        distance = great_circle_km(source, destination)
        propagation_s = distance * 1.5 / FIBER_SPEED_KM_S  # circuity 1.5
        return propagation_s + self.transfer_time_s(bundle_gb, wan_gbps)
