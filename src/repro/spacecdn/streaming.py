"""Adaptive-bitrate streaming sessions over SpaceCDN vs today's paths.

The paper motivates SpaceCDN with user reports of "slow loading times and
frequent buffering" on Starlink. This module closes that loop: a DASH-style
player with throughput-based bitrate adaptation, fed by any (RTT,
throughput) path profile, reports startup delay, mean bitrate and rebuffer
ratio — so the latency/throughput numbers elsewhere in the repo translate
into the QoE terms the paper's anecdotes use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError

DEFAULT_BITRATE_LADDER_MBPS = (1.0, 2.5, 5.0, 8.0, 16.0)


@dataclass(frozen=True)
class SegmentFetch:
    """One fetched media segment."""

    index: int
    bitrate_mbps: float
    fetch_time_s: float
    rebuffered_s: float


@dataclass(frozen=True)
class SessionReport:
    """QoE summary of one streaming session."""

    segments: int
    startup_delay_s: float
    mean_bitrate_mbps: float
    rebuffer_events: int
    rebuffer_ratio: float
    """Stall time divided by content time played."""


@dataclass
class AbrPlayer:
    """Throughput-based ABR: pick the highest bitrate below a safety margin.

    ``rtt_ms_fn``/``throughput_mbps_fn`` supply per-segment path samples, so
    jittery paths (bufferbloat spikes) flow straight into QoE.
    """

    rtt_ms_fn: Callable[[], float]
    throughput_mbps_fn: Callable[[], float]
    bitrate_ladder_mbps: tuple[float, ...] = DEFAULT_BITRATE_LADDER_MBPS
    segment_duration_s: float = 4.0
    target_buffer_s: float = 16.0
    safety_margin: float = 0.8
    ewma_alpha: float = 0.4

    _throughput_estimate_mbps: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not self.bitrate_ladder_mbps:
            raise ConfigurationError("bitrate ladder is empty")
        if list(self.bitrate_ladder_mbps) != sorted(self.bitrate_ladder_mbps):
            raise ConfigurationError("bitrate ladder must be ascending")
        if self.segment_duration_s <= 0 or self.target_buffer_s <= 0:
            raise ConfigurationError("durations must be positive")
        if not 0.0 < self.safety_margin <= 1.0:
            raise ConfigurationError("safety margin must be in (0, 1]")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError("EWMA alpha must be in (0, 1]")

    def _choose_bitrate(self) -> float:
        if self._throughput_estimate_mbps <= 0.0:
            return self.bitrate_ladder_mbps[0]  # conservative start
        budget = self._throughput_estimate_mbps * self.safety_margin
        eligible = [b for b in self.bitrate_ladder_mbps if b <= budget]
        return eligible[-1] if eligible else self.bitrate_ladder_mbps[0]

    def _fetch_segment(self, bitrate_mbps: float) -> float:
        """Wall-clock seconds to fetch one segment at the chosen bitrate."""
        rtt_s = self.rtt_ms_fn() / 1000.0
        throughput = self.throughput_mbps_fn()
        if throughput <= 0:
            raise ConfigurationError("throughput sample must be positive")
        transfer_s = bitrate_mbps * self.segment_duration_s / throughput
        observed = bitrate_mbps * self.segment_duration_s / (rtt_s + transfer_s)
        self._throughput_estimate_mbps = (
            self.ewma_alpha * observed
            + (1.0 - self.ewma_alpha) * (self._throughput_estimate_mbps or observed)
        )
        return rtt_s + transfer_s

    def play(self, content_duration_s: float) -> SessionReport:
        """Simulate a full session and return its QoE report."""
        if content_duration_s <= 0:
            raise ConfigurationError("content duration must be positive")

        segments = int(-(-content_duration_s // self.segment_duration_s))
        fetches: list[SegmentFetch] = []

        # Startup: fetch the first segment before playback begins.
        first_bitrate = self._choose_bitrate()
        startup = self._fetch_segment(first_bitrate)
        fetches.append(SegmentFetch(0, first_bitrate, startup, 0.0))
        buffer_s = self.segment_duration_s

        rebuffer_events = 0
        total_stall_s = 0.0
        for index in range(1, segments):
            # Buffer-full pacing: wait until there is room for one segment.
            if buffer_s + self.segment_duration_s > self.target_buffer_s:
                buffer_s = self.target_buffer_s - self.segment_duration_s
            bitrate = self._choose_bitrate()
            fetch_time = self._fetch_segment(bitrate)
            drained = buffer_s - fetch_time
            if drained < 0.0:
                stall = -drained
                rebuffer_events += 1
                total_stall_s += stall
                buffer_s = 0.0
                fetches.append(SegmentFetch(index, bitrate, fetch_time, stall))
            else:
                buffer_s = drained
                fetches.append(SegmentFetch(index, bitrate, fetch_time, 0.0))
            buffer_s += self.segment_duration_s

        played_s = segments * self.segment_duration_s
        mean_bitrate = sum(f.bitrate_mbps for f in fetches) / len(fetches)
        return SessionReport(
            segments=segments,
            startup_delay_s=startup,
            mean_bitrate_mbps=mean_bitrate,
            rebuffer_events=rebuffer_events,
            rebuffer_ratio=total_stall_s / played_s,
        )


def constant_path(rtt_ms: float, throughput_mbps: float) -> tuple[
    Callable[[], float], Callable[[], float]
]:
    """Convenience: fixed-path sample functions for :class:`AbrPlayer`."""
    if rtt_ms <= 0 or throughput_mbps <= 0:
        raise ConfigurationError("path parameters must be positive")
    return (lambda: rtt_ms), (lambda: throughput_mbps)
