"""SpaceCDN: CDN caches on LEO satellites (the paper's core proposal).

Content is fetched from the satellite directly overhead when cached there;
otherwise over inter-satellite links from the nearest caching satellite;
otherwise from a ground cache behind the gateway (paper Fig. 6).
"""

from repro.spacecdn.placement import (
    PlacementPlan,
    KPerPlanePlacement,
    RandomPlacement,
    spaced_slots,
    replica_hop_profile,
)
from repro.spacecdn.lookup import (
    SpaceCdnLookup,
    LookupResult,
    LookupSource,
    ranked_cached_satellites,
)
from repro.spacecdn.dutycycle import DutyCycleScheduler, DutyCycleLatencyModel
from repro.spacecdn.striping import (
    StripeAssignment,
    StripingPlan,
    plan_stripes,
    stripe_coverage_gaps,
)
from repro.spacecdn.bubbles import (
    RegionalPopularity,
    ContentBubbleManager,
    BubbleSimulationResult,
)
from repro.spacecdn.handover import VmHandoverPlanner, HandoverFeasibility
from repro.spacecdn.system import SpaceCdnSystem, ServedRequest, SystemStats
from repro.spacecdn.wormhole import WormholePlanner, WormholePlan
from repro.spacecdn.prediction import PopularityPredictor, LearnedPrefetcher
from repro.spacecdn.streaming import AbrPlayer, SessionReport, constant_path
from repro.spacecdn.demand import DiurnalDemand, DemandAwareDutyCycle
from repro.spacecdn.resilience import (
    fail_satellites,
    degrade_snapshot,
    random_failure_set,
    placement_under_failures,
    ResilienceReport,
)
from repro.spacecdn.capacity import (
    constellation_storage_pb,
    videos_storable,
    ThermalModel,
)

__all__ = [
    "PlacementPlan",
    "KPerPlanePlacement",
    "RandomPlacement",
    "spaced_slots",
    "replica_hop_profile",
    "SpaceCdnLookup",
    "LookupResult",
    "LookupSource",
    "ranked_cached_satellites",
    "DutyCycleScheduler",
    "DutyCycleLatencyModel",
    "StripeAssignment",
    "StripingPlan",
    "plan_stripes",
    "stripe_coverage_gaps",
    "RegionalPopularity",
    "ContentBubbleManager",
    "BubbleSimulationResult",
    "VmHandoverPlanner",
    "HandoverFeasibility",
    "SpaceCdnSystem",
    "ServedRequest",
    "SystemStats",
    "WormholePlanner",
    "WormholePlan",
    "PopularityPredictor",
    "LearnedPrefetcher",
    "fail_satellites",
    "degrade_snapshot",
    "random_failure_set",
    "placement_under_failures",
    "ResilienceReport",
    "AbrPlayer",
    "SessionReport",
    "constant_path",
    "DiurnalDemand",
    "DemandAwareDutyCycle",
    "constellation_storage_pb",
    "videos_storable",
    "ThermalModel",
]
