"""Video striping across successive satellites (paper §4).

A long video is split into *stripes* (groups of DASH segments). Stripe k is
cached on a satellite that will be overhead of the viewer while stripe k
plays, so the stream hops seamlessly from satellite to satellite as the
constellation rotates — and later stripes can be uploaded to following
satellites while earlier ones play, hiding the bent-pipe upload latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.passes import PassWindow, predict_passes
from repro.orbits.walker import Constellation


@dataclass(frozen=True)
class StripeAssignment:
    """One stripe pinned to one satellite's pass."""

    stripe_index: int
    satellite: int
    playback_start_s: float
    playback_end_s: float
    pass_window: PassWindow

    @property
    def slack_before_s(self) -> float:
        """How long the satellite is visible before its stripe starts playing
        — the window available to upload the stripe in the background."""
        return self.playback_start_s - self.pass_window.start_s


@dataclass
class StripingPlan:
    """A full stripe-to-satellite schedule for one playback session."""

    assignments: tuple[StripeAssignment, ...]
    stripe_duration_s: float

    @property
    def num_stripes(self) -> int:
        return len(self.assignments)

    def satellite_for_time(self, playback_t_s: float) -> int:
        """Which satellite serves the stream at a playback instant."""
        for assignment in self.assignments:
            if assignment.playback_start_s <= playback_t_s < assignment.playback_end_s:
                return assignment.satellite
        raise ConfigurationError(
            f"playback time {playback_t_s:.0f}s outside the planned session"
        )

    def distinct_satellites(self) -> list[int]:
        """Satellites used, in playback order, deduplicated consecutively."""
        result: list[int] = []
        for assignment in self.assignments:
            if not result or result[-1] != assignment.satellite:
                result.append(assignment.satellite)
        return result


def plan_stripes(
    constellation: Constellation,
    viewer: GeoPoint,
    start_s: float,
    video_duration_s: float,
    stripe_duration_s: float = 300.0,
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    pass_step_s: float = 10.0,
) -> StripingPlan:
    """Assign each stripe to a satellite overhead during its playback window.

    For every stripe we pick, among passes overlapping the stripe's playback
    interval, the one that covers the largest share of it (preferring passes
    that start earlier, which maximises upload slack). Raises
    :class:`VisibilityError` if some stripe has no covering pass.
    """
    if video_duration_s <= 0 or stripe_duration_s <= 0:
        raise ConfigurationError("durations must be positive")

    # One scan covers the whole session (with margin for the final stripe).
    passes = predict_passes(
        constellation,
        viewer,
        start_s,
        video_duration_s + stripe_duration_s,
        step_s=pass_step_s,
        min_elevation_deg=min_elevation_deg,
    )
    if not passes:
        raise VisibilityError("no satellite passes over the viewer during playback")

    assignments: list[StripeAssignment] = []
    num_stripes = int(-(-video_duration_s // stripe_duration_s))  # ceil division
    for stripe in range(num_stripes):
        play_start = start_s + stripe * stripe_duration_s
        play_end = min(play_start + stripe_duration_s, start_s + video_duration_s)

        # Prefer passes that fully cover the stripe's playback window; among
        # those, the earliest-starting one maximises the slack available to
        # upload the stripe before it plays (the paper's bent-pipe-hiding
        # trick). If no pass fully covers the stripe, fall back to the
        # largest-overlap pass.
        full = [
            w for w in passes if w.start_s <= play_start and w.end_s >= play_end
        ]
        if full:
            best = min(full, key=lambda w: w.start_s)
        else:
            overlaps = [
                (min(w.end_s, play_end) - max(w.start_s, play_start), w)
                for w in passes
            ]
            best_overlap, best = max(overlaps, key=lambda ow: (ow[0], -ow[1].start_s))
            if best_overlap <= 0.0:
                best = None
        if best is None:
            raise VisibilityError(
                f"stripe {stripe} ({play_start:.0f}-{play_end:.0f}s) has no "
                "covering satellite pass"
            )
        assignments.append(
            StripeAssignment(
                stripe_index=stripe,
                satellite=best.satellite,
                playback_start_s=play_start,
                playback_end_s=play_end,
                pass_window=best,
            )
        )
    return StripingPlan(
        assignments=tuple(assignments), stripe_duration_s=stripe_duration_s
    )


def stripe_coverage_gaps(plan: StripingPlan) -> list[tuple[int, float]]:
    """Playback seconds of each stripe NOT covered by its satellite's pass.

    Returns ``(stripe_index, uncovered_seconds)`` for stripes with gaps —
    those seconds must be served over ISLs from a neighbour instead of
    directly overhead. An empty list means seamless direct service.
    """
    gaps: list[tuple[int, float]] = []
    for assignment in plan.assignments:
        covered_start = max(assignment.playback_start_s, assignment.pass_window.start_s)
        covered_end = min(assignment.playback_end_s, assignment.pass_window.end_s)
        covered = max(0.0, covered_end - covered_start)
        total = assignment.playback_end_s - assignment.playback_start_s
        uncovered = total - covered
        if uncovered > 1e-9:
            gaps.append((assignment.stripe_index, uncovered))
    return gaps
