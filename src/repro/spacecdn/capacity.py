"""Constellation storage and thermal arithmetic (paper §5).

The paper's back-of-envelope: 6,000 satellites x ~150 TB each gives > 900 PB
— over 300 million 2-hour 1080p videos. The thermal model captures the other
§5 observation (Xing et al.): passively cooled satellites exceed the ~30 C
ceiling only after *hours* of continuous computation, which duty-cycling
avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    SATELLITE_STORAGE_TB,
    SATELLITE_THERMAL_LIMIT_C,
    VIDEO_1080P_GB_PER_HOUR,
)
from repro.errors import ConfigurationError


def constellation_storage_pb(
    num_satellites: int, per_satellite_tb: float = SATELLITE_STORAGE_TB
) -> float:
    """Total fleet storage in petabytes."""
    if num_satellites < 0 or per_satellite_tb < 0:
        raise ConfigurationError("satellite count and storage must be non-negative")
    return num_satellites * per_satellite_tb / 1000.0


def videos_storable(
    total_pb: float,
    video_hours: float = 2.0,
    gb_per_hour: float = VIDEO_1080P_GB_PER_HOUR,
) -> int:
    """How many videos of the given length fit in ``total_pb`` petabytes."""
    if total_pb < 0:
        raise ConfigurationError("storage must be non-negative")
    if video_hours <= 0 or gb_per_hour <= 0:
        raise ConfigurationError("video length and bitrate must be positive")
    video_gb = video_hours * gb_per_hour
    return int(total_pb * 1_000_000 / video_gb)


@dataclass
class ThermalModel:
    """First-order thermal model of a passively cooled caching satellite.

    Temperature relaxes towards an equilibrium that depends on whether the
    payload is active: ``T' = (T_target - T) / tau`` with ``T_target`` being
    ``active_equilibrium_c`` while serving and ``idle_equilibrium_c`` while
    relaying only.
    """

    idle_equilibrium_c: float = 18.0
    active_equilibrium_c: float = 38.0
    time_constant_s: float = 5400.0
    limit_c: float = SATELLITE_THERMAL_LIMIT_C

    def __post_init__(self) -> None:
        if self.time_constant_s <= 0:
            raise ConfigurationError("time constant must be positive")
        if self.active_equilibrium_c <= self.idle_equilibrium_c:
            raise ConfigurationError("active equilibrium must exceed idle equilibrium")

    def step(self, temperature_c: float, active: bool, dt_s: float) -> float:
        """Advance the temperature by ``dt_s`` (exact exponential step)."""
        if dt_s < 0:
            raise ConfigurationError(f"negative time step: {dt_s}")
        import math

        target = self.active_equilibrium_c if active else self.idle_equilibrium_c
        decay = math.exp(-dt_s / self.time_constant_s)
        return target + (temperature_c - target) * decay

    def time_to_limit_s(self, start_c: float | None = None) -> float:
        """Continuous-operation time until the thermal ceiling is hit.

        Returns ``inf`` if the active equilibrium stays below the limit.
        """
        import math

        temperature = self.idle_equilibrium_c if start_c is None else start_c
        if self.active_equilibrium_c <= self.limit_c:
            return float("inf")
        if temperature >= self.limit_c:
            return 0.0
        # Solve limit = target + (T0 - target) * exp(-t/tau) for t.
        ratio = (self.limit_c - self.active_equilibrium_c) / (
            temperature - self.active_equilibrium_c
        )
        return -self.time_constant_s * math.log(ratio)

    def sustainable_requests_per_slot(
        self, peak_requests_per_slot: float, slot_s: float = 600.0
    ) -> int:
        """Serving capacity one duty slot can sustain without overheating.

        A satellite that could serve ``peak_requests_per_slot`` requests if
        it ran its payload for the whole slot can only sustain the
        :meth:`max_sustainable_duty_fraction` share of them indefinitely —
        the quantity the overload model's per-satellite admission limits
        are derived from. Always at least 1: a satellite that is in the
        serving rotation at all can answer *something* per slot.
        """
        if peak_requests_per_slot <= 0:
            raise ConfigurationError(
                f"peak requests per slot must be positive, got "
                f"{peak_requests_per_slot}"
            )
        fraction = self.max_sustainable_duty_fraction(slot_s)
        return max(1, int(round(peak_requests_per_slot * fraction)))

    def max_sustainable_duty_fraction(self, slot_s: float = 600.0) -> float:
        """Largest duty fraction that keeps steady-state peaks under the limit.

        Simulates alternating active/idle slots until the peak temperature
        converges, bisecting on the duty fraction.
        """
        if slot_s <= 0:
            raise ConfigurationError("slot duration must be positive")

        def peak_temperature(fraction: float) -> float:
            temperature = self.idle_equilibrium_c
            peak = temperature
            for _ in range(200):  # long enough to reach the periodic steady state
                temperature = self.step(temperature, True, fraction * slot_s)
                peak = max(peak, temperature)
                temperature = self.step(temperature, False, (1.0 - fraction) * slot_s)
            return peak

        if peak_temperature(1.0) <= self.limit_c:
            return 1.0
        low, high = 0.0, 1.0
        for _ in range(40):
            mid = (low + high) / 2.0
            if peak_temperature(mid) <= self.limit_c:
                low = mid
            else:
                high = mid
        return low
