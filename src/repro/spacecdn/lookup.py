"""Hop-bounded SpaceCDN content lookup (paper Fig. 6).

Resolution order for a user request:

1. the access satellite's own cache ("1st/Sat" in Fig. 7);
2. the minimum-latency caching satellite within ``max_hops`` ISL hops;
3. fallback: down the bent pipe to the ground cache near the gateway.

The returned latencies are one-way path latencies from the user terminal;
callers double them (plus server think time) for RTTs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import ContentNotFoundError, RoutingError
from repro.geo.coordinates import GeoPoint
from repro.orbits.visibility import nearest_visible_satellite
from repro.topology.graph import SnapshotGraph, access_latency_ms
from repro.topology.routing import hop_distances, satellite_latencies


class LookupSource(enum.Enum):
    """Where a request was ultimately served from."""

    ACCESS_SATELLITE = "access-satellite"
    DIRECT_VISIBLE = "direct-visible"
    """Another currently *visible* satellite served the terminal directly —
    no ISL transit. Relevant because grid-adjacent and physically-adjacent
    are different things: a satellite a few hundred km away on a crossing
    plane can be dozens of +Grid hops away."""
    ISL_NEIGHBOR = "isl-neighbor"
    GROUND = "ground"


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one SpaceCDN lookup."""

    source: LookupSource
    serving_satellite: int | None
    isl_hops: int
    one_way_ms: float
    access_satellite: int


@dataclass
class SpaceCdnLookup:
    """Content resolution over one constellation snapshot."""

    snapshot: SnapshotGraph
    max_hops: int = 10
    ground_fallback_one_way_ms: float = 70.0
    """One-way latency of the bent-pipe + terrestrial path to the ground
    cache, used when no satellite within ``max_hops`` holds the object.
    Callers with a resolved :class:`~repro.network.bentpipe.StarlinkPath`
    should override this with the client's actual path floor."""

    def lookup_from_point(
        self,
        user: GeoPoint,
        cache_satellites: frozenset[int],
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> LookupResult:
        """Resolve a request from a ground location (picks the access satellite)."""
        access = nearest_visible_satellite(
            self.snapshot.constellation, user, self.snapshot.t_s, min_elevation_deg
        )
        return self.lookup(
            access_satellite=access.index,
            access_one_way_ms=access_latency_ms(access.slant_range_km),
            cache_satellites=cache_satellites,
        )

    def lookup(
        self,
        access_satellite: int,
        access_one_way_ms: float,
        cache_satellites: frozenset[int],
    ) -> LookupResult:
        """Resolve a request entering the constellation at ``access_satellite``."""
        if access_one_way_ms < 0:
            raise RoutingError(f"negative access latency: {access_one_way_ms}")

        if access_satellite in cache_satellites:
            return LookupResult(
                source=LookupSource.ACCESS_SATELLITE,
                serving_satellite=access_satellite,
                isl_hops=0,
                one_way_ms=access_one_way_ms,
                access_satellite=access_satellite,
            )

        best = self._nearest_cache(access_satellite, cache_satellites)
        if best is not None:
            satellite, hops, isl_ms = best
            return LookupResult(
                source=LookupSource.ISL_NEIGHBOR,
                serving_satellite=satellite,
                isl_hops=hops,
                one_way_ms=access_one_way_ms + isl_ms,
                access_satellite=access_satellite,
            )

        return LookupResult(
            source=LookupSource.GROUND,
            serving_satellite=None,
            isl_hops=0,
            one_way_ms=self.ground_fallback_one_way_ms,
            access_satellite=access_satellite,
        )

    def _nearest_cache(
        self, access_satellite: int, cache_satellites: frozenset[int]
    ) -> tuple[int, int, float] | None:
        """(satellite, hops, one-way ISL ms) of the cheapest in-range cache."""
        if not cache_satellites:
            return None
        hops = hop_distances(self.snapshot, access_satellite)
        in_range = {
            sat: h
            for sat, h in hops.items()
            if sat in cache_satellites and h <= self.max_hops
        }
        if not in_range:
            return None
        latencies = satellite_latencies(self.snapshot, access_satellite)
        best_sat = min(in_range, key=lambda sat: latencies.get(sat, float("inf")))
        best_latency = latencies.get(best_sat)
        if best_latency is None:
            return None
        return best_sat, in_range[best_sat], best_latency

    def require_space_hit(
        self,
        user: GeoPoint,
        cache_satellites: frozenset[int],
    ) -> LookupResult:
        """Like :meth:`lookup_from_point` but raises on ground fallback."""
        result = self.lookup_from_point(user, cache_satellites)
        if result.source is LookupSource.GROUND:
            raise ContentNotFoundError(
                f"no caching satellite within {self.max_hops} hops of satellite "
                f"{result.access_satellite}"
            )
        return result
