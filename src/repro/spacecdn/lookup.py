"""Hop-bounded SpaceCDN content lookup (paper Fig. 6).

Resolution order for a user request:

1. the access satellite's own cache ("1st/Sat" in Fig. 7);
2. the minimum-latency caching satellite within ``max_hops`` ISL hops;
3. fallback: down the bent pipe to the ground cache near the gateway.

The returned latencies are one-way path latencies from the user terminal;
callers double them (plus server think time) for RTTs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import ContentNotFoundError, RoutingError
from repro.geo.coordinates import GeoPoint
from repro.orbits.visibility import nearest_visible_satellite
from repro.topology import fastcore
from repro.topology.graph import SnapshotGraph, access_latency_ms


def nearest_cached_satellite(
    snapshot: SnapshotGraph,
    access_satellite: int,
    cache_satellites: frozenset[int],
    max_hops: int,
    min_hops: int = 0,
) -> tuple[int, int, float] | None:
    """(satellite, hops, one-way ISL ms) of the cheapest in-range cache.

    One vectorised pass over the CSR core: hop counts bound the candidate
    set, latency picks the winner (lowest index on exact ties). Satellites
    outside the snapshot (or failed) never qualify. Returns ``None`` when
    no cache is within ``max_hops``.
    """
    if not cache_satellites:
        return None
    hops, latencies = fastcore.single_source(
        snapshot.core, access_satellite, snapshot.active_mask
    )
    return nearest_cached_from_rows(
        hops, latencies, cache_satellites, max_hops, min_hops
    )


def nearest_cached_from_rows(
    hops: np.ndarray,
    latencies: np.ndarray,
    cache_satellites: frozenset[int] | set[int],
    max_hops: int,
    min_hops: int = 0,
) -> tuple[int, int, float] | None:
    """:func:`nearest_cached_satellite` over precomputed routing rows.

    ``hops``/``latencies`` are the ``(N,)`` single-source rows of the access
    satellite (already masked for failures by the routing kernel). The
    batched serve path holds these rows in per-rung matrices and calls this
    for the handful of requests whose holder sets changed mid-cohort.
    """
    num_nodes = hops.shape[0]
    candidates = np.fromiter(
        (s for s in sorted(cache_satellites) if 0 <= s < num_nodes),
        dtype=np.int64,
    )
    if candidates.size == 0:
        return None
    cand_hops = hops[candidates]
    in_range = (
        (cand_hops >= min_hops)
        & (cand_hops != fastcore.HOP_UNREACHABLE)
        & (cand_hops <= max_hops)
        & np.isfinite(latencies[candidates])
    )
    candidates = candidates[in_range]
    if candidates.size == 0:
        return None
    best = int(candidates[np.argmin(latencies[candidates])])
    return best, int(hops[best]), float(latencies[best])


def nearest_cached_batch(
    hops: np.ndarray,
    latencies: np.ndarray,
    holders: np.ndarray,
    max_hops: int,
    min_hops: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`nearest_cached_satellite` over aligned request rows.

    ``hops``/``latencies`` are ``(R, N)`` routing rows (request ``r``'s
    access satellite's single-source pass) and ``holders`` the ``(R, N)``
    boolean holders bitmap rows. Returns ``(found, best)``: ``found[r]``
    whether any in-range holder exists, ``best[r]`` its satellite index
    (meaningful only where ``found``). Ties on latency resolve to the
    lowest satellite index — ``argmin`` over the inf-masked row returns the
    first minimum, matching the scalar sorted-candidate scan.
    """
    eligible = (
        holders
        & (hops >= min_hops)
        & (hops != fastcore.HOP_UNREACHABLE)
        & (hops <= max_hops)
        & np.isfinite(latencies)
    )
    masked = np.where(eligible, latencies, np.inf)
    best = masked.argmin(axis=1)
    found = eligible[np.arange(len(best)), best]
    return found, best


def ranked_cached_satellites(
    snapshot: SnapshotGraph,
    access_satellite: int,
    cache_satellites: frozenset[int],
    max_hops: int,
    min_hops: int = 0,
    exclude: frozenset[int] = frozenset(),
) -> list[tuple[int, int, float]]:
    """Every in-range caching satellite, cheapest first.

    The degraded serving path walks this ladder: when the best replica
    times out or is lost, the next attempt goes to the next rung without
    recomputing the routing pass. Entries are ``(satellite, hops, one-way
    ISL ms)`` ordered by latency (lowest index on ties); satellites in
    ``exclude`` (already tried and failed) never appear.
    """
    if not cache_satellites:
        return []
    hops, latencies = fastcore.single_source(
        snapshot.core, access_satellite, snapshot.active_mask
    )
    return ranked_cached_from_rows(
        hops, latencies, cache_satellites, max_hops, min_hops, exclude
    )


def ranked_cached_from_rows(
    hops: np.ndarray,
    latencies: np.ndarray,
    cache_satellites: frozenset[int] | set[int],
    max_hops: int,
    min_hops: int = 0,
    exclude: frozenset[int] = frozenset(),
) -> list[tuple[int, int, float]]:
    """:func:`ranked_cached_satellites` over precomputed routing rows.

    The degraded batch path precomputes each access satellite's masked
    single-source rows once per cohort and builds every request's ladder
    from them, instead of re-running the masked routing pass per request.
    """
    num_nodes = hops.shape[0]
    ranked = []
    for satellite in sorted(set(cache_satellites) - exclude):
        if not 0 <= satellite < num_nodes:
            continue
        h = int(hops[satellite])
        if h == fastcore.HOP_UNREACHABLE or not min_hops <= h <= max_hops:
            continue
        latency = float(latencies[satellite])
        if not np.isfinite(latency):
            continue
        ranked.append((satellite, h, latency))
    ranked.sort(key=lambda entry: (entry[2], entry[0]))
    return ranked


class LookupSource(enum.Enum):
    """Where a request was ultimately served from."""

    ACCESS_SATELLITE = "access-satellite"
    DIRECT_VISIBLE = "direct-visible"
    """Another currently *visible* satellite served the terminal directly —
    no ISL transit. Relevant because grid-adjacent and physically-adjacent
    are different things: a satellite a few hundred km away on a crossing
    plane can be dozens of +Grid hops away."""
    ISL_NEIGHBOR = "isl-neighbor"
    GROUND = "ground"


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one SpaceCDN lookup."""

    source: LookupSource
    serving_satellite: int | None
    isl_hops: int
    one_way_ms: float
    access_satellite: int


@dataclass
class SpaceCdnLookup:
    """Content resolution over one constellation snapshot."""

    snapshot: SnapshotGraph
    max_hops: int = 10
    ground_fallback_one_way_ms: float = 70.0
    """One-way latency of the bent-pipe + terrestrial path to the ground
    cache, used when no satellite within ``max_hops`` holds the object.
    Callers with a resolved :class:`~repro.network.bentpipe.StarlinkPath`
    should override this with the client's actual path floor."""

    def lookup_from_point(
        self,
        user: GeoPoint,
        cache_satellites: frozenset[int],
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> LookupResult:
        """Resolve a request from a ground location (picks the access satellite)."""
        access = nearest_visible_satellite(
            self.snapshot.constellation, user, self.snapshot.t_s, min_elevation_deg
        )
        return self.lookup(
            access_satellite=access.index,
            access_one_way_ms=access_latency_ms(access.slant_range_km),
            cache_satellites=cache_satellites,
        )

    def lookup(
        self,
        access_satellite: int,
        access_one_way_ms: float,
        cache_satellites: frozenset[int],
    ) -> LookupResult:
        """Resolve a request entering the constellation at ``access_satellite``."""
        if access_one_way_ms < 0:
            raise RoutingError(f"negative access latency: {access_one_way_ms}")

        if access_satellite in cache_satellites:
            return LookupResult(
                source=LookupSource.ACCESS_SATELLITE,
                serving_satellite=access_satellite,
                isl_hops=0,
                one_way_ms=access_one_way_ms,
                access_satellite=access_satellite,
            )

        best = self._nearest_cache(access_satellite, cache_satellites)
        if best is not None:
            satellite, hops, isl_ms = best
            return LookupResult(
                source=LookupSource.ISL_NEIGHBOR,
                serving_satellite=satellite,
                isl_hops=hops,
                one_way_ms=access_one_way_ms + isl_ms,
                access_satellite=access_satellite,
            )

        return LookupResult(
            source=LookupSource.GROUND,
            serving_satellite=None,
            isl_hops=0,
            one_way_ms=self.ground_fallback_one_way_ms,
            access_satellite=access_satellite,
        )

    def _nearest_cache(
        self, access_satellite: int, cache_satellites: frozenset[int]
    ) -> tuple[int, int, float] | None:
        """(satellite, hops, one-way ISL ms) of the cheapest in-range cache."""
        return nearest_cached_satellite(
            self.snapshot, access_satellite, cache_satellites, self.max_hops
        )

    def require_space_hit(
        self,
        user: GeoPoint,
        cache_satellites: frozenset[int],
    ) -> LookupResult:
        """Like :meth:`lookup_from_point` but raises on ground fallback."""
        result = self.lookup_from_point(user, cache_satellites)
        if result.source is LookupSource.GROUND:
            raise ContentNotFoundError(
                f"no caching satellite within {self.max_hops} hops of satellite "
                f"{result.access_satellite}"
            )
        return result
