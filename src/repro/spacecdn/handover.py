"""Space VMs: replicating stateful edge services between satellites (§5).

Stateful CDN-edge applications (multiplayer-game coordination, etc.) must
survive the serving satellite leaving the coverage area. The paper sketches
VM state-delta replication (<= ~100 MB deltas) to the satellite(s) that will
be overhead next; this module checks feasibility: does the pass overlap (or
the inter-pass gap plus ISL bandwidth) allow syncing the delta in time?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import MIN_ELEVATION_USER_DEG
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.passes import PassWindow, predict_passes
from repro.orbits.walker import Constellation


@dataclass(frozen=True)
class HandoverFeasibility:
    """Verdict on one satellite-to-satellite VM handover."""

    from_satellite: int
    to_satellite: int
    overlap_s: float
    """Seconds both satellites are simultaneously visible (hot handover)."""
    gap_s: float
    """Coverage gap between the passes (0 when they overlap)."""
    sync_time_s: float
    """Time needed to ship the state delta over an ISL."""
    feasible: bool


@dataclass
class VmHandoverPlanner:
    """Plans state replication along the chain of passes over a service area."""

    constellation: Constellation
    isl_bandwidth_gbps: float = 10.0
    """Optical ISL throughput available for replication traffic."""

    def __post_init__(self) -> None:
        if self.isl_bandwidth_gbps <= 0:
            raise ConfigurationError("ISL bandwidth must be positive")

    def sync_time_s(self, delta_mb: float) -> float:
        """Seconds to transfer a state delta of ``delta_mb`` megabytes."""
        if delta_mb < 0:
            raise ConfigurationError(f"negative delta size: {delta_mb}")
        return delta_mb * 8.0 / (self.isl_bandwidth_gbps * 1000.0)

    def pass_chain(
        self,
        area: GeoPoint,
        start_s: float,
        duration_s: float,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
        step_s: float = 10.0,
    ) -> list[PassWindow]:
        """The serving chain: the greedy minimal pass sequence covering the area.

        Many satellites are visible simultaneously; the serving chain picks,
        starting from the earliest pass, the overlapping (or next-starting)
        pass that extends coverage furthest — the sequence a VM would
        actually migrate along.
        """
        passes = predict_passes(
            self.constellation, area, start_s, duration_s, step_s, min_elevation_deg
        )
        if not passes:
            raise VisibilityError("no passes over the service area")

        horizon = start_s + duration_s
        chain = [max(passes, key=lambda p: (p.start_s <= passes[0].start_s, p.end_s))]
        while chain[-1].end_s < horizon:
            current = chain[-1]
            # Candidates that extend coverage: start before (or right at) the
            # current pass's end, and end later.
            extenders = [
                p for p in passes if p.start_s <= current.end_s and p.end_s > current.end_s
            ]
            if extenders:
                chain.append(max(extenders, key=lambda p: p.end_s))
                continue
            # Coverage gap: jump to the next pass after the gap, if any.
            later = [p for p in passes if p.start_s > current.end_s]
            if not later:
                break
            chain.append(min(later, key=lambda p: p.start_s))
        return chain

    def plan_handovers(
        self,
        area: GeoPoint,
        start_s: float,
        duration_s: float,
        delta_mb: float = 100.0,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
    ) -> list[HandoverFeasibility]:
        """Feasibility of every consecutive handover along the serving chain.

        A handover is feasible when the delta syncs within the visibility
        overlap (hot handover), or — failing that — within 30 s around a
        short coverage gap (the state freezes briefly).
        """
        chain = self.pass_chain(area, start_s, duration_s, min_elevation_deg)
        sync = self.sync_time_s(delta_mb)
        results: list[HandoverFeasibility] = []
        for current, nxt in zip(chain, chain[1:]):
            overlap = max(0.0, current.end_s - nxt.start_s)
            gap = max(0.0, nxt.start_s - current.end_s)
            feasible = sync <= overlap or (gap <= 30.0 and sync <= gap + 30.0)
            results.append(
                HandoverFeasibility(
                    from_satellite=current.satellite,
                    to_satellite=nxt.satellite,
                    overlap_s=overlap,
                    gap_s=gap,
                    sync_time_s=sync,
                    feasible=feasible,
                )
            )
        return results
