"""The full SpaceCDN system: per-satellite caches served over time.

Where :mod:`repro.spacecdn.lookup` answers a single geometric query, the
:class:`SpaceCdnSystem` runs the whole machine: every satellite carries a
real byte-bounded cache, requests arrive on a timeline, the constellation
rotates underneath (snapshots are rebuilt on a quantised clock), misses
pull content up from the ground and populate the access satellite's cache,
and a content index tracks which satellites currently hold which objects.

This is the component a downstream user would actually embed: give it a
catalog, a placement/prefetch policy and a request stream, get back hit
levels and latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdn.cache import Cache, LruCache
from repro.cdn.content import Catalog
from repro.constants import CDN_SERVER_THINK_TIME_MS, MIN_ELEVATION_USER_DEG
from repro.errors import ConfigurationError
from repro.geo.coordinates import GeoPoint
from repro.orbits.walker import Constellation
from repro.spacecdn.lookup import LookupSource, nearest_cached_satellite
from repro.topology.graph import SnapshotGraph, access_latency_ms, build_snapshot
from repro.workloads.requests import Request


@dataclass(frozen=True)
class ServedRequest:
    """Outcome of one request through the system."""

    object_id: str
    t_s: float
    source: LookupSource
    serving_satellite: int | None
    isl_hops: int
    rtt_ms: float


@dataclass
class SystemStats:
    """Aggregate counters over a run."""

    access_hits: int = 0
    direct_hits: int = 0
    isl_hits: int = 0
    ground_fetches: int = 0
    rtt_samples_ms: list[float] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return self.access_hits + self.direct_hits + self.isl_hits + self.ground_fetches

    @property
    def space_hit_ratio(self) -> float:
        """Fraction of requests served without touching the ground."""
        if self.requests == 0:
            return 0.0
        return (self.requests - self.ground_fetches) / self.requests


@dataclass
class SpaceCdnSystem:
    """A running SpaceCDN: caches on every satellite, time-aware routing.

    Args:
        constellation: the shell to run on.
        catalog: the content universe (sizes drive cache occupancy).
        cache_bytes_per_satellite: capacity of each on-board cache.
        max_hops: ISL search radius before falling back to the ground.
        ground_rtt_ms: RTT of the bent-pipe + terrestrial fallback path.
        snapshot_interval_s: how often the ISL graph is rebuilt as the
            constellation rotates (60 s keeps link-length error under ~1%).
    """

    constellation: Constellation
    catalog: Catalog
    cache_bytes_per_satellite: int = 10**9
    max_hops: int = 5
    ground_rtt_ms: float = 140.0
    snapshot_interval_s: float = 60.0
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG

    stats: SystemStats = field(default_factory=SystemStats)
    _caches: dict[int, Cache] = field(default_factory=dict, repr=False)
    _index: dict[str, set[int]] = field(default_factory=dict, repr=False)
    _snapshot: SnapshotGraph | None = field(default=None, repr=False)
    _snapshot_slot: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        if self.cache_bytes_per_satellite <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.max_hops < 0:
            raise ConfigurationError("max_hops must be non-negative")
        if self.snapshot_interval_s <= 0:
            raise ConfigurationError("snapshot interval must be positive")
        if self.ground_rtt_ms <= 0:
            raise ConfigurationError("ground RTT must be positive")

    # -- cache plumbing ----------------------------------------------------

    def cache_of(self, satellite: int) -> Cache:
        """The on-board cache of one satellite (created lazily)."""
        if not 0 <= satellite < len(self.constellation):
            raise ConfigurationError(f"satellite {satellite} out of range")
        cache = self._caches.get(satellite)
        if cache is None:
            cache = LruCache(self.cache_bytes_per_satellite)
            self._caches[satellite] = cache
        return cache

    def holders_of(self, object_id: str) -> frozenset[int]:
        """Satellites currently caching an object."""
        return frozenset(self._index.get(object_id, ()))

    def _store(self, satellite: int, object_id: str) -> None:
        """Insert an object into a satellite's cache, maintaining the index."""
        obj = self.catalog.get(object_id)
        cache = self.cache_of(satellite)
        if obj.size_bytes > cache.capacity_bytes:
            return  # too large to cache anywhere; served pass-through
        evicted = cache.put(obj)
        for victim in evicted:
            holders = self._index.get(victim)
            if holders is not None:
                holders.discard(satellite)
                if not holders:
                    del self._index[victim]
        self._index.setdefault(object_id, set()).add(satellite)

    def preload(self, placement: dict[str, frozenset[int]]) -> int:
        """Push a placement plan into the on-board caches; returns stores done."""
        stored = 0
        for object_id, satellites in placement.items():
            for satellite in satellites:
                self._store(satellite, object_id)
                stored += 1
        return stored

    def bubble_prefetch(
        self,
        popularity,
        t_s: float,
        objects_per_region: int = 10,
        max_region_distance_km: float = 1500.0,
    ) -> int:
        """Content-bubble pass: load each satellite with the region below it.

        For every satellite currently over a gazetteer region, prefetches
        that region's ``objects_per_region`` most popular objects into its
        cache (paper §5: bubbles form where the infrastructure moves but
        the content stays relevant). ``popularity`` is anything with
        ``regions()`` and ``top_objects(region, count)`` — the oracle
        :class:`~repro.spacecdn.bubbles.RegionalPopularity` or a
        :class:`~repro.spacecdn.prediction.LearnedPrefetcher`'s predictor.

        Returns the number of cache stores performed.
        """
        from repro.geo.datasets.cities import region_under

        if objects_per_region < 1:
            raise ConfigurationError("objects_per_region must be >= 1")
        known_regions = set(popularity.regions())
        tracks = self.constellation.subsatellite_points(t_s)
        stored = 0
        for satellite, (lat, lon) in enumerate(tracks):
            region = region_under(float(lat), float(lon), max_region_distance_km)
            if region is None or region not in known_regions:
                continue
            for object_id in popularity.top_objects(region, objects_per_region):
                if object_id not in self.cache_of(satellite):
                    self._store(satellite, object_id)
                    stored += 1
        return stored

    # -- time-aware topology -------------------------------------------------

    def snapshot_at(self, t_s: float) -> SnapshotGraph:
        """The ISL graph for the quantised instant containing ``t_s``."""
        if t_s < 0:
            raise ConfigurationError(f"negative time: {t_s}")
        slot = int(t_s // self.snapshot_interval_s)
        if slot != self._snapshot_slot or self._snapshot is None:
            self._snapshot = build_snapshot(
                self.constellation, slot * self.snapshot_interval_s
            )
            self._snapshot_slot = slot
        return self._snapshot

    # -- the serve path -------------------------------------------------------

    def serve(self, user: GeoPoint, object_id: str, t_s: float) -> ServedRequest:
        """Serve one request at simulated time ``t_s`` from ``user``.

        Resolution order (paper Fig. 6): access satellite's cache, nearest
        caching satellite within ``max_hops`` ISLs, ground fallback. Ground
        fetches populate the access satellite's cache (pull-through), which
        is how popularity organically builds the space tier.
        """
        self.catalog.get(object_id)  # validate early
        snapshot = self.snapshot_at(t_s)
        from repro.orbits.visibility import visible_satellites

        visible = visible_satellites(
            self.constellation, user, snapshot.t_s, self.min_elevation_deg
        )
        if not visible:
            raise ConfigurationError(
                f"no satellite visible from ({user.lat_deg:.1f}, {user.lon_deg:.1f})"
            )
        access = visible[0]
        access_rtt = 2.0 * access_latency_ms(access.slant_range_km)

        # Level 1: overhead satellite.
        if self.cache_of(access.index).get(object_id) is not None:
            return self._record(
                object_id,
                t_s,
                LookupSource.ACCESS_SATELLITE,
                access.index,
                0,
                access_rtt + CDN_SERVER_THINK_TIME_MS,
            )

        holders = self.holders_of(object_id)

        # Level 1b: any other *visible* holder — the terminal can beam to it
        # directly. Physically-near satellites on crossing planes can be
        # dozens of +Grid hops apart, so this check is not subsumed by the
        # ISL search below.
        for candidate in visible[1:]:
            if candidate.index in holders:
                self.cache_of(candidate.index).get(object_id)  # count the hit
                rtt = 2.0 * access_latency_ms(candidate.slant_range_km)
                return self._record(
                    object_id,
                    t_s,
                    LookupSource.DIRECT_VISIBLE,
                    candidate.index,
                    0,
                    rtt + CDN_SERVER_THINK_TIME_MS,
                )

        # Level 2: nearest caching satellite within the hop bound.
        found = self._nearest_holder(snapshot, access.index, holders)
        if found is not None:
            satellite, hops, isl_one_way = found
            self.cache_of(satellite).get(object_id)  # count the remote hit
            rtt = access_rtt + 2.0 * isl_one_way + CDN_SERVER_THINK_TIME_MS
            return self._record(
                object_id, t_s, LookupSource.ISL_NEIGHBOR, satellite, hops, rtt
            )

        # Level 3: ground fallback + pull-through insert.
        self._store(access.index, object_id)
        return self._record(
            object_id, t_s, LookupSource.GROUND, None, 0, self.ground_rtt_ms
        )

    def serve_request(self, request: Request) -> ServedRequest:
        """Serve one workload :class:`~repro.workloads.requests.Request`."""
        return self.serve(request.city.location, request.object_id, request.t_s)

    def run(self, requests: list[Request]) -> list[ServedRequest]:
        """Serve a whole request stream (must be time-ordered)."""
        last_t = -1.0
        results = []
        for request in requests:
            if request.t_s < last_t:
                raise ConfigurationError("request stream is not time-ordered")
            last_t = request.t_s
            results.append(self.serve_request(request))
        return results

    def _nearest_holder(
        self, snapshot: SnapshotGraph, access: int, holders: frozenset[int]
    ) -> tuple[int, int, float] | None:
        return nearest_cached_satellite(
            snapshot, access, holders, self.max_hops, min_hops=1
        )

    def _record(
        self,
        object_id: str,
        t_s: float,
        source: LookupSource,
        satellite: int | None,
        hops: int,
        rtt_ms: float,
    ) -> ServedRequest:
        if source is LookupSource.ACCESS_SATELLITE:
            self.stats.access_hits += 1
        elif source is LookupSource.DIRECT_VISIBLE:
            self.stats.direct_hits += 1
        elif source is LookupSource.ISL_NEIGHBOR:
            self.stats.isl_hits += 1
        else:
            self.stats.ground_fetches += 1
        self.stats.rtt_samples_ms.append(rtt_ms)
        return ServedRequest(
            object_id=object_id,
            t_s=t_s,
            source=source,
            serving_satellite=satellite,
            isl_hops=hops,
            rtt_ms=rtt_ms,
        )
