"""The full SpaceCDN system: per-satellite caches served over time.

Where :mod:`repro.spacecdn.lookup` answers a single geometric query, the
:class:`SpaceCdnSystem` runs the whole machine: every satellite carries a
real byte-bounded cache, requests arrive on a timeline, the constellation
rotates underneath (snapshots are rebuilt on a quantised clock), misses
pull content up from the ground and populate the access satellite's cache,
and a content index tracks which satellites currently hold which objects.

This is the component a downstream user would actually embed: give it a
catalog, a placement/prefetch policy and a request stream, get back hit
levels and latency samples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.cdn.cache import Cache, HoldersIndex, LruCache
from repro.cdn.content import Catalog
from repro.constants import CDN_SERVER_THINK_TIME_MS, MIN_ELEVATION_USER_DEG
from repro.errors import ConfigurationError, OverloadedError, UnavailableError
from repro.faults import FaultSchedule, FaultView, RetryPolicy, apply_fault_view
from repro.geo.coordinates import GeoPoint
from repro.obs.metrics import OVERLOAD_QUEUE_BUCKETS_MS
from repro.obs.recorder import get_recorder
from repro.overload import GROUND_TARGET, OverloadModel
from repro.orbits.walker import Constellation
from repro.spacecdn.lookup import (
    LookupSource,
    nearest_cached_batch,
    nearest_cached_from_rows,
    nearest_cached_satellite,
    ranked_cached_from_rows,
    ranked_cached_satellites,
)
from repro.topology import fastcore
from repro.topology.graph import SnapshotGraph, access_latency_ms, build_snapshot
from repro.workloads.requests import Request

TIER_OF_SOURCE: dict[LookupSource, str] = {
    LookupSource.ACCESS_SATELLITE: "access",
    LookupSource.DIRECT_VISIBLE: "direct-visible",
    LookupSource.ISL_NEIGHBOR: "isl",
    LookupSource.GROUND: "ground",
}
"""Ladder-tier names used in metrics labels and trace spans."""

_TIER_LABELS = {tier: (("tier", tier),) for tier in TIER_OF_SOURCE.values()}


@dataclass(frozen=True)
class ServedRequest:
    """Outcome of one request through the system.

    ``attempts`` counts fetch attempts including the successful one (always
    1 on the healthy path); ``fallback_reason`` explains why the request was
    not served by its preferred rung (``None`` when it was): one of
    ``"attempt-timeout"``, ``"transient-loss"``, ``"ground-timeout"``,
    ``"no-space-replica"``, ``"space-exhausted"``. ``priority`` is the
    request's admission class on the overloaded serve path (``None``
    everywhere else).
    """

    object_id: str
    t_s: float
    source: LookupSource
    serving_satellite: int | None
    isl_hops: int
    rtt_ms: float
    attempts: int = 1
    fallback_reason: str | None = None
    priority: int | None = None


@dataclass
class SystemStats:
    """Aggregate counters over a run."""

    access_hits: int = 0
    direct_hits: int = 0
    isl_hits: int = 0
    ground_fetches: int = 0
    timeouts: int = 0
    """Attempts abandoned for exceeding the per-attempt RTT budget or to
    transient loss (each failed attempt counts once)."""
    retries: int = 0
    """Extra attempts beyond the first, summed over all requests."""
    unavailable: int = 0
    """Requests that exhausted the fallback ladder and raised
    :class:`~repro.errors.UnavailableError`."""
    shed: int = 0
    """Requests refused by overload protection (admission, breakers, or a
    spent deadline) and raised as :class:`~repro.errors.OverloadedError` —
    disjoint from ``unavailable``, which counts fault-path exhaustion."""
    deadline_exhausted: int = 0
    """The subset of ``shed`` whose end-to-end deadline budget ran out."""
    rtt_samples_ms: list[float] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return (
            self.access_hits
            + self.direct_hits
            + self.isl_hits
            + self.ground_fetches
            + self.unavailable
            + self.shed
        )

    @property
    def served(self) -> int:
        """Requests that completed with content delivered."""
        return self.requests - self.unavailable - self.shed

    @property
    def shed_fraction(self) -> float | None:
        """Fraction of requests shed by overload protection; ``None`` before
        any request (same empty-evidence convention as ``availability``)."""
        if self.requests == 0:
            return None
        return self.shed / self.requests

    @property
    def availability(self) -> float | None:
        """Fraction of requests served at all; ``None`` before any request.

        Zero requests means *no evidence*, which is different from
        "perfectly available": returning ``None`` (rather than a made-up
        1.0 or a division by zero) keeps aggregation over empty shards
        well-defined — callers render it as "n/a" instead of averaging a
        fictitious value into a sweep.
        """
        if self.requests == 0:
            return None
        return self.served / self.requests

    @property
    def space_hit_ratio(self) -> float:
        """Fraction of *served* requests answered without touching the ground."""
        if self.served == 0:
            return 0.0
        return (self.served - self.ground_fetches) / self.served


@dataclass
class SpaceCdnSystem:
    """A running SpaceCDN: caches on every satellite, time-aware routing.

    Args:
        constellation: the shell to run on.
        catalog: the content universe (sizes drive cache occupancy).
        cache_bytes_per_satellite: capacity of each on-board cache.
        max_hops: ISL search radius before falling back to the ground.
        ground_rtt_ms: RTT of the bent-pipe + terrestrial fallback path.
        snapshot_interval_s: how often the ISL graph is rebuilt as the
            constellation rotates (60 s keeps link-length error under ~1%).
        fault_schedule: composed fault processes driving the degraded
            serving path; ``None`` (or an empty schedule) keeps the healthy
            fast path byte-for-byte unchanged. Faults are applied at
            snapshot granularity — the schedule compiles once per snapshot
            slot into the CSR core's node/link masks.
        retry_policy: bounded attempts, per-attempt RTT budget, and
            simulated exponential backoff for the degraded path.
        overload: per-satellite capacity, admission control, circuit
            breakers, and deadline budgets
            (:class:`~repro.overload.OverloadModel`). ``None`` (the
            default) leaves every serve path byte-for-byte unchanged; set,
            every request runs the overloaded walk — which also honours
            the fault schedule, so faults and load compose.
    """

    constellation: Constellation
    catalog: Catalog
    cache_bytes_per_satellite: int = 10**9
    max_hops: int = 5
    ground_rtt_ms: float = 140.0
    snapshot_interval_s: float = 60.0
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG
    fault_schedule: FaultSchedule | None = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    overload: OverloadModel | None = None

    stats: SystemStats = field(default_factory=SystemStats)
    _caches: dict[int, Cache] = field(default_factory=dict, repr=False)
    _index: HoldersIndex = field(default_factory=HoldersIndex, repr=False)
    _snapshot: SnapshotGraph | None = field(default=None, repr=False)
    _snapshot_slot: int = field(default=-1, repr=False)
    _degraded: SnapshotGraph | None = field(default=None, repr=False)
    _fault_view: FaultView | None = field(default=None, repr=False)
    _fault_slot: int = field(default=-1, repr=False)
    _down_prev: frozenset[int] = field(default=frozenset(), repr=False)
    _request_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.cache_bytes_per_satellite <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.max_hops < 0:
            raise ConfigurationError("max_hops must be non-negative")
        if self.snapshot_interval_s <= 0:
            raise ConfigurationError("snapshot interval must be positive")
        if self.ground_rtt_ms <= 0:
            raise ConfigurationError("ground RTT must be positive")

    # -- cache plumbing ----------------------------------------------------

    def cache_of(self, satellite: int) -> Cache:
        """The on-board cache of one satellite (created lazily)."""
        if not 0 <= satellite < len(self.constellation):
            raise ConfigurationError(f"satellite {satellite} out of range")
        cache = self._caches.get(satellite)
        if cache is None:
            cache = LruCache(self.cache_bytes_per_satellite)
            self._caches[satellite] = cache
        return cache

    def holders_of(self, object_id: str) -> frozenset[int]:
        """Satellites currently caching an object."""
        return self._index.holders(object_id)

    def _store(self, satellite: int, object_id: str) -> None:
        """Insert an object into a satellite's cache, maintaining the index."""
        obj = self.catalog.get(object_id)
        cache = self.cache_of(satellite)
        if obj.size_bytes > cache.capacity_bytes:
            return  # too large to cache anywhere; served pass-through
        evicted = cache.put(obj)
        for victim in evicted:
            self._index.discard(victim, satellite)
        self._index.add(object_id, satellite)

    def preload(self, placement: dict[str, frozenset[int]]) -> int:
        """Push a placement plan into the on-board caches; returns stores done."""
        stored = 0
        for object_id, satellites in placement.items():
            for satellite in satellites:
                self._store(satellite, object_id)
                stored += 1
        return stored

    def bubble_prefetch(
        self,
        popularity,
        t_s: float,
        objects_per_region: int = 10,
        max_region_distance_km: float = 1500.0,
    ) -> int:
        """Content-bubble pass: load each satellite with the region below it.

        For every satellite currently over a gazetteer region, prefetches
        that region's ``objects_per_region`` most popular objects into its
        cache (paper §5: bubbles form where the infrastructure moves but
        the content stays relevant). ``popularity`` is anything with
        ``regions()`` and ``top_objects(region, count)`` — the oracle
        :class:`~repro.spacecdn.bubbles.RegionalPopularity` or a
        :class:`~repro.spacecdn.prediction.LearnedPrefetcher`'s predictor.

        Returns the number of cache stores performed.
        """
        from repro.geo.datasets.cities import region_under

        if objects_per_region < 1:
            raise ConfigurationError("objects_per_region must be >= 1")
        known_regions = set(popularity.regions())
        tracks = self.constellation.subsatellite_points(t_s)
        stored = 0
        for satellite, (lat, lon) in enumerate(tracks):
            region = region_under(float(lat), float(lon), max_region_distance_km)
            if region is None or region not in known_regions:
                continue
            for object_id in popularity.top_objects(region, objects_per_region):
                if object_id not in self.cache_of(satellite):
                    self._store(satellite, object_id)
                    stored += 1
        return stored

    # -- time-aware topology -------------------------------------------------

    def snapshot_at(self, t_s: float) -> SnapshotGraph:
        """The ISL graph for the quantised instant containing ``t_s``."""
        if t_s < 0:
            raise ConfigurationError(f"negative time: {t_s}")
        slot = int(t_s // self.snapshot_interval_s)
        if slot != self._snapshot_slot or self._snapshot is None:
            self._snapshot = build_snapshot(
                self.constellation, slot * self.snapshot_interval_s
            )
            self._snapshot_slot = slot
        return self._snapshot

    # -- fault plumbing --------------------------------------------------------

    def _fault_state_at(self, snapshot: SnapshotGraph) -> tuple[FaultView, SnapshotGraph]:
        """The compiled fault view and degraded snapshot for the current slot.

        Compiled once per snapshot slot: the schedule's processes are
        sampled at the snapshot instant and turned into node/link masks
        over the shared CSR core. Newly-failed satellites lose their cache
        contents here when the schedule says outages wipe caches.
        """
        if self._fault_slot != self._snapshot_slot or self._degraded is None:
            view = self.fault_schedule.compile_at(
                snapshot.t_s, snapshot.core.topology.num_links
            )
            self._fault_view = view
            self._degraded = apply_fault_view(snapshot, view)
            self._fault_slot = self._snapshot_slot
            down = frozenset(
                s
                for s in view.failed_satellites
                if 0 <= s < len(self.constellation)
            )
            if self.fault_schedule.wipe_caches_on_outage:
                for satellite in sorted(down - self._down_prev):
                    self._wipe_cache(satellite)
            self._down_prev = down
        return self._fault_view, self._degraded

    def _wipe_cache(self, satellite: int) -> int:
        """Drop a satellite's cache contents (duty-cycle exit / power loss)."""
        cache = self._caches.get(satellite)
        if cache is None:
            return 0
        wiped = cache.object_ids()
        self._index.drop_satellite(satellite, wiped)
        cache.clear()
        return len(wiped)

    def _overload_fault_state(
        self, snapshot: SnapshotGraph
    ) -> tuple[FaultView, SnapshotGraph]:
        """The fault state the overloaded path runs over.

        With a real fault schedule this is the usual compiled slot state;
        without one (or with a load-only schedule) it is a clean view over
        the healthy snapshot — overload protection alone degrades no
        topology, it only meters admission onto it.
        """
        if self.fault_schedule is None or self.fault_schedule.is_empty:
            return FaultView(t_s=snapshot.t_s), snapshot
        return self._fault_state_at(snapshot)

    # -- the serve path -------------------------------------------------------

    def serve(
        self,
        user: GeoPoint,
        object_id: str,
        t_s: float,
        priority: int | None = None,
    ) -> ServedRequest:
        """Serve one request at simulated time ``t_s`` from ``user``.

        Resolution order (paper Fig. 6): access satellite's cache, nearest
        caching satellite within ``max_hops`` ISLs, ground fallback. Ground
        fetches populate the access satellite's cache (pull-through), which
        is how popularity organically builds the space tier.

        With a non-empty ``fault_schedule`` the request runs the degraded
        path instead: the same ladder, but over the fault-masked snapshot,
        with ``retry_policy`` bounding attempts and charging simulated
        backoff, and :class:`~repro.errors.UnavailableError` raised when no
        serving path survives.

        With an ``overload`` model the request runs the overloaded walk
        (which composes with any fault schedule): admission control per
        priority class, circuit breakers over the ladder's rungs, queueing
        delay added as utilisation rises, and the deadline budget bounding
        the whole walk. ``priority`` overrides the model's seeded class
        assignment (and is only meaningful with a model).
        :class:`~repro.errors.OverloadedError` marks requests refused by
        protection rather than faults.
        """
        self.catalog.get(object_id)  # validate early
        snapshot = self.snapshot_at(t_s)
        if self.overload is not None:
            view, degraded = self._overload_fault_state(snapshot)
            return self._serve_overloaded(
                user, object_id, t_s, snapshot, view, degraded, priority
            )
        if priority is not None:
            raise ConfigurationError(
                "request priorities require an overload model"
            )
        if self.fault_schedule is None or self.fault_schedule.is_empty:
            return self._serve_healthy(user, object_id, t_s, snapshot)
        view, degraded = self._fault_state_at(snapshot)
        return self._serve_degraded(user, object_id, t_s, snapshot, view, degraded)

    def _emit_serve_trace(
        self,
        rec,
        object_id: str,
        t_s: float,
        outcome: str,
        source: LookupSource | None,
        satellite: int | None,
        hops: int,
        rtt_ms: float | None,
        attempts: int,
        fallback_reason: str | None,
        attempt_log: list[dict] | None,
        view: FaultView | None,
        priority: int | None = None,
    ) -> None:
        """One ``serve`` root span plus its per-attempt children.

        Only ever called with an enabled recorder; the disabled path never
        reaches here, so instrumentation stays allocation-free by default.
        """
        span = rec.open_span(
            "serve",
            t_s=t_s,
            object_id=object_id,
            outcome=outcome,
            source=None if source is None else TIER_OF_SOURCE[source],
            satellite=satellite,
            hops=hops,
            rtt_ms=rtt_ms,
            attempts=attempts,
            fallback_reason=fallback_reason,
        )
        if priority is not None:
            span.set(priority=priority)
        if view is not None:
            span.set(
                faults_failed_satellites=len(view.failed_satellites),
                faults_cut_links=len(view.cut_links),
                faults_ground_down=view.ground_segment_down,
            )
        if attempt_log is None:
            # Healthy fast path: exactly one attempt, the successful rung.
            attempt_log = [
                {
                    "tier": TIER_OF_SOURCE[source],
                    "satellite": satellite,
                    "hops": hops,
                    "retry_index": 1,
                    "outcome": "served",
                    "rtt_contribution_ms": rtt_ms,
                }
            ]
        for entry in attempt_log:
            span.child("attempt", **entry)
            rec.inc(
                "repro_serve_attempts_total",
                (("tier", entry["tier"]), ("outcome", entry["outcome"])),
            )

    def _serve_healthy(
        self, user: GeoPoint, object_id: str, t_s: float, snapshot: SnapshotGraph
    ) -> ServedRequest:
        """The fault-free fast path (identical to the pre-fault behaviour)."""
        from repro.orbits.visibility import visible_satellites

        visible = visible_satellites(
            self.constellation, user, snapshot.t_s, self.min_elevation_deg
        )
        if not visible:
            raise ConfigurationError(
                f"no satellite visible from ({user.lat_deg:.1f}, {user.lon_deg:.1f})"
            )
        access = visible[0]
        access_rtt = 2.0 * access_latency_ms(access.slant_range_km)

        # Level 1: overhead satellite.
        if self.cache_of(access.index).get(object_id) is not None:
            return self._record(
                object_id,
                t_s,
                LookupSource.ACCESS_SATELLITE,
                access.index,
                0,
                access_rtt + CDN_SERVER_THINK_TIME_MS,
            )

        holders = self.holders_of(object_id)

        # Level 1b: any other *visible* holder — the terminal can beam to it
        # directly. Physically-near satellites on crossing planes can be
        # dozens of +Grid hops apart, so this check is not subsumed by the
        # ISL search below.
        for candidate in visible[1:]:
            if candidate.index in holders:
                self.cache_of(candidate.index).get(object_id)  # count the hit
                rtt = 2.0 * access_latency_ms(candidate.slant_range_km)
                return self._record(
                    object_id,
                    t_s,
                    LookupSource.DIRECT_VISIBLE,
                    candidate.index,
                    0,
                    rtt + CDN_SERVER_THINK_TIME_MS,
                )

        # Level 2: nearest caching satellite within the hop bound.
        found = self._nearest_holder(snapshot, access.index, holders)
        if found is not None:
            satellite, hops, isl_one_way = found
            self.cache_of(satellite).get(object_id)  # count the remote hit
            rtt = access_rtt + 2.0 * isl_one_way + CDN_SERVER_THINK_TIME_MS
            return self._record(
                object_id, t_s, LookupSource.ISL_NEIGHBOR, satellite, hops, rtt
            )

        # Level 3: ground fallback + pull-through insert.
        self._store(access.index, object_id)
        return self._record(
            object_id, t_s, LookupSource.GROUND, None, 0, self.ground_rtt_ms
        )

    def _fallback_ladder(
        self,
        degraded: SnapshotGraph,
        live_visible: list,
        object_id: str,
        rows: tuple | None = None,
    ) -> list[tuple[LookupSource, int, int, float]]:
        """Every live serving option for one request, cheapest-rung first.

        Entries are ``(source, satellite, hops, rtt_ms)`` in resolution
        order: access satellite, other directly visible holders, then the
        ISL ladder ranked by latency. Each satellite appears once, at its
        cheapest rung; failed satellites never appear (the degraded
        snapshot's mask removes them from every routing pass).

        ``rows`` optionally supplies the access satellite's precomputed
        masked ``(hops, latencies)`` single-source rows — the batched path
        computes them once per cohort instead of once per request.
        """
        holders = self.holders_of(object_id)
        if not holders:
            return []
        ladder: list[tuple[LookupSource, int, int, float]] = []
        seen: set[int] = set()
        access = live_visible[0]
        if access.index in holders:
            rtt = 2.0 * access_latency_ms(access.slant_range_km)
            ladder.append(
                (
                    LookupSource.ACCESS_SATELLITE,
                    access.index,
                    0,
                    rtt + CDN_SERVER_THINK_TIME_MS,
                )
            )
            seen.add(access.index)
        for candidate in live_visible[1:]:
            if candidate.index in holders and candidate.index not in seen:
                rtt = 2.0 * access_latency_ms(candidate.slant_range_km)
                ladder.append(
                    (
                        LookupSource.DIRECT_VISIBLE,
                        candidate.index,
                        0,
                        rtt + CDN_SERVER_THINK_TIME_MS,
                    )
                )
                seen.add(candidate.index)
        access_rtt = 2.0 * access_latency_ms(access.slant_range_km)
        if rows is not None:
            ranked = ranked_cached_from_rows(
                rows[0], rows[1], holders, self.max_hops,
                min_hops=1, exclude=frozenset(seen),
            )
        else:
            ranked = ranked_cached_satellites(
                degraded,
                access.index,
                holders,
                self.max_hops,
                min_hops=1,
                exclude=frozenset(seen),
            )
        for satellite, hops, isl_one_way in ranked:
            ladder.append(
                (
                    LookupSource.ISL_NEIGHBOR,
                    satellite,
                    hops,
                    access_rtt + 2.0 * isl_one_way + CDN_SERVER_THINK_TIME_MS,
                )
            )
        return ladder

    def _serve_degraded(
        self,
        user: GeoPoint,
        object_id: str,
        t_s: float,
        snapshot: SnapshotGraph,
        view: FaultView,
        degraded: SnapshotGraph,
    ) -> ServedRequest:
        """One request through the fallback ladder under the fault masks."""
        from repro.orbits.visibility import visible_satellites

        visible = visible_satellites(
            self.constellation, user, snapshot.t_s, self.min_elevation_deg
        )
        live_visible = [s for s in visible if degraded.has_satellite(s.index)]
        return self._serve_degraded_prepared(
            user, object_id, t_s, live_visible, view, degraded
        )

    def _serve_degraded_prepared(
        self,
        user: GeoPoint,
        object_id: str,
        t_s: float,
        live_visible: list,
        view: FaultView,
        degraded: SnapshotGraph,
        rows: tuple | None = None,
        attempt_counts=None,
        span: bool = True,
    ) -> ServedRequest:
        """The degraded attempt walk, over already-resolved visibility.

        Walks the ladder rung by rung: each tried rung is one attempt;
        attempts abandoned to the per-attempt RTT budget or to transient
        loss add simulated backoff and descend to the next rung. The ground
        rung (when the ground segment is up) absorbs the remaining retry
        budget. A request that exhausts the ladder or the budget raises
        :class:`~repro.errors.UnavailableError` — never anything else.

        The scalar path passes only the live visible list; the batched path
        additionally supplies precomputed masked routing ``rows`` for the
        access satellite, a per-cohort ``attempt_counts`` accumulator
        (``Counter[(tier, outcome)]``), and ``span=False`` to fold tracing
        into the cohort span.
        """
        policy = self.retry_policy
        request_index = self._request_counter
        self._request_counter += 1
        rec = get_recorder()
        attempt_log: list[dict] | None = (
            [] if (rec.enabled and span) else None
        )

        def _note(tier, satellite, hops, retry_index, outcome, contrib):
            if attempt_log is not None:
                attempt_log.append(
                    {
                        "tier": tier,
                        "satellite": satellite,
                        "hops": hops,
                        "retry_index": retry_index,
                        "outcome": outcome,
                        "rtt_contribution_ms": contrib,
                    }
                )
            if attempt_counts is not None:
                attempt_counts[(tier, outcome)] += 1

        if not live_visible:
            self.stats.unavailable += 1
            if rec.enabled:
                rec.inc("repro_serve_unavailable_total", (("reason", "no-sky"),))
                rec.window_inc(
                    t_s, "repro_serve_unavailable_total", (("reason", "no-sky"),)
                )
                if span:
                    self._emit_serve_trace(
                        rec, object_id, t_s, "unavailable", None, None, 0, None,
                        0, "no-sky", attempt_log, view,
                    )
            raise UnavailableError(
                f"no live satellite visible from ({user.lat_deg:.1f}, "
                f"{user.lon_deg:.1f}) under the active fault schedule"
            )
        access = live_visible[0]
        ladder = self._fallback_ladder(degraded, live_visible, object_id, rows)

        attempts = 0
        backoff_ms = 0.0
        reason: str | None = None
        for source, satellite, hops, rtt in ladder:
            if attempts >= policy.max_attempts:
                break
            attempts += 1
            if self.fault_schedule.attempt_lost(request_index, attempts):
                reason = "transient-loss"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                _note(
                    TIER_OF_SOURCE[source], satellite, hops, attempts,
                    "transient-loss", step_ms,
                )
                continue
            if not policy.within_budget(rtt):
                reason = "attempt-timeout"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                _note(
                    TIER_OF_SOURCE[source], satellite, hops, attempts,
                    "attempt-timeout", step_ms,
                )
                continue
            self.cache_of(satellite).get(object_id)  # count the hit
            self.stats.retries += attempts - 1
            _note(TIER_OF_SOURCE[source], satellite, hops, attempts, "served", rtt)
            return self._record(
                object_id,
                t_s,
                source,
                satellite,
                hops,
                rtt + backoff_ms,
                attempts=attempts,
                fallback_reason=reason,
                attempt_log=attempt_log,
                view=view,
                span=span,
            )

        # Ground rung: retried until the attempt budget runs out.
        ground_reason = "no-space-replica" if not ladder else "space-exhausted"
        while not view.ground_segment_down and attempts < policy.max_attempts:
            attempts += 1
            if self.fault_schedule.attempt_lost(request_index, attempts):
                reason = "transient-loss"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                _note("ground", None, 0, attempts, "transient-loss", step_ms)
                continue
            if not policy.within_budget(self.ground_rtt_ms):
                reason = "ground-timeout"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                _note("ground", None, 0, attempts, "ground-timeout", step_ms)
                continue
            self._store(access.index, object_id)
            self.stats.retries += attempts - 1
            _note("ground", None, 0, attempts, "served", self.ground_rtt_ms)
            return self._record(
                object_id,
                t_s,
                LookupSource.GROUND,
                None,
                0,
                self.ground_rtt_ms + backoff_ms,
                attempts=attempts,
                fallback_reason=reason if reason is not None else ground_reason,
                attempt_log=attempt_log,
                view=view,
                span=span,
            )

        self.stats.retries += max(0, attempts - 1)
        self.stats.unavailable += 1
        exhausted_reason = (
            "ground-down" if view.ground_segment_down else "budget-exhausted"
        )
        if rec.enabled:
            rec.inc(
                "repro_serve_unavailable_total", (("reason", exhausted_reason),)
            )
            rec.window_inc(
                t_s,
                "repro_serve_unavailable_total",
                (("reason", exhausted_reason),),
            )
            if span:
                self._emit_serve_trace(
                    rec, object_id, t_s, "unavailable", None, None, 0, None,
                    attempts, exhausted_reason, attempt_log, view,
                )
        if view.ground_segment_down:
            raise UnavailableError(
                f"object {object_id!r}: fallback ladder exhausted after "
                f"{attempts} attempt(s) and the ground segment is down"
            )
        raise UnavailableError(
            f"object {object_id!r}: retry budget exhausted after "
            f"{attempts} attempt(s)"
        )

    def _serve_overloaded(
        self,
        user: GeoPoint,
        object_id: str,
        t_s: float,
        snapshot: SnapshotGraph,
        view: FaultView,
        degraded: SnapshotGraph,
        priority: int | None = None,
    ) -> ServedRequest:
        """One request through the overload-protected fallback ladder."""
        from repro.orbits.visibility import visible_satellites

        visible = visible_satellites(
            self.constellation, user, snapshot.t_s, self.min_elevation_deg
        )
        live_visible = [s for s in visible if degraded.has_satellite(s.index)]
        return self._serve_overloaded_prepared(
            user, object_id, t_s, live_visible, view, degraded,
            priority=priority,
        )

    def _serve_overloaded_prepared(
        self,
        user: GeoPoint,
        object_id: str,
        t_s: float,
        live_visible: list,
        view: FaultView,
        degraded: SnapshotGraph,
        rows: tuple | None = None,
        attempt_counts=None,
        span: bool = True,
        priority: int | None = None,
        shed_log=None,
    ) -> ServedRequest:
        """The overload-protected attempt walk over resolved visibility.

        The degraded walk plus the four protections, applied per rung in
        this order: an open circuit breaker skips the rung *without*
        consuming a retry attempt (the client never contacts the target);
        admission control refuses at-capacity targets (a failed attempt:
        backoff is charged and the breaker records the refusal); transient
        loss and the per-attempt RTT budget behave exactly as on the
        degraded path; finally the deadline budget — charged every
        simulated backoff — must fit the rung's queue-inflated RTT or the
        walk ends immediately (rungs are cheapest-first, so nothing later
        could fit either). Served requests pay the M/M/1 queueing delay of
        their target on top of the propagation RTT.

        Exhaustion raises :class:`~repro.errors.OverloadedError` when
        protection refused the request (reason ``"deadline"``,
        ``"admission"`` or ``"breaker-open"``, in that precedence) and
        plain :class:`~repro.errors.UnavailableError` when only faults did.
        ``shed_log`` is the batched path's ``Counter[(priority, reason)]``
        accumulator behind the cohort span's shed children.
        """
        model = self.overload
        policy = self.retry_policy
        schedule = self.fault_schedule
        request_index = self._request_counter
        self._request_counter += 1
        model.begin_slot(
            self._snapshot_slot, degraded.t_s, len(self.constellation), schedule
        )
        if priority is None:
            priority = model.priority_of(request_index)
        else:
            priority = model.validate_priority(priority)
        deadline = model.deadline_budget()
        rec = get_recorder()
        attempt_log: list[dict] | None = (
            [] if (rec.enabled and span) else None
        )

        def _note(tier, satellite, hops, retry_index, outcome, contrib):
            if attempt_log is not None:
                attempt_log.append(
                    {
                        "tier": tier,
                        "satellite": satellite,
                        "hops": hops,
                        "retry_index": retry_index,
                        "outcome": outcome,
                        "rtt_contribution_ms": contrib,
                    }
                )
            if attempt_counts is not None:
                attempt_counts[(tier, outcome)] += 1

        if not live_visible:
            self.stats.unavailable += 1
            if rec.enabled:
                rec.inc("repro_serve_unavailable_total", (("reason", "no-sky"),))
                rec.window_inc(
                    t_s, "repro_serve_unavailable_total", (("reason", "no-sky"),)
                )
                if span:
                    self._emit_serve_trace(
                        rec, object_id, t_s, "unavailable", None, None, 0, None,
                        0, "no-sky", attempt_log, view, priority=priority,
                    )
            raise UnavailableError(
                f"no live satellite visible from ({user.lat_deg:.1f}, "
                f"{user.lon_deg:.1f}) under the active fault schedule"
            )
        access = live_visible[0]
        ladder = self._fallback_ladder(degraded, live_visible, object_id, rows)

        attempts = 0
        backoff_ms = 0.0
        reason: str | None = None
        admission_refused = False
        breaker_skipped = False
        deadline_hit = False

        def _failed_attempt(breaker) -> float:
            """Backoff, deadline charge, and breaker bookkeeping: one step."""
            step_ms = policy.backoff_ms(attempts)
            deadline.charge(step_ms)
            if breaker is not None:
                breaker.record_failure(t_s)
            return step_ms

        for source, satellite, hops, rtt in ladder:
            if attempts >= policy.max_attempts or deadline_hit:
                break
            tier = TIER_OF_SOURCE[source]
            breaker = model.breaker_for(satellite)
            if breaker is not None and not breaker.allow(t_s):
                breaker_skipped = True
                _note(tier, satellite, hops, attempts, "breaker-open", 0.0)
                continue
            attempts += 1
            if not model.admit(satellite, priority):
                admission_refused = True
                step_ms = _failed_attempt(breaker)
                backoff_ms += step_ms
                _note(tier, satellite, hops, attempts, "admission-reject", step_ms)
                if rec.enabled:
                    rec.inc(
                        "repro_overload_rejections_total",
                        (("class", str(priority)),),
                    )
                continue
            if schedule is not None and schedule.attempt_lost(
                request_index, attempts
            ):
                reason = "transient-loss"
                self.stats.timeouts += 1
                step_ms = _failed_attempt(breaker)
                backoff_ms += step_ms
                _note(tier, satellite, hops, attempts, "transient-loss", step_ms)
                continue
            queue_ms = model.queue_delay_ms(satellite)
            rung_rtt = rtt + queue_ms
            if not policy.within_budget(rung_rtt):
                reason = "attempt-timeout"
                self.stats.timeouts += 1
                step_ms = _failed_attempt(breaker)
                backoff_ms += step_ms
                _note(tier, satellite, hops, attempts, "attempt-timeout", step_ms)
                continue
            if not deadline.allows(rung_rtt):
                deadline_hit = True
                _note(tier, satellite, hops, attempts, "deadline-exhausted", 0.0)
                break
            self.cache_of(satellite).get(object_id)  # count the hit
            if breaker is not None:
                breaker.record_success(t_s)
            model.note_served(satellite)
            self.stats.retries += attempts - 1
            _note(tier, satellite, hops, attempts, "served", rung_rtt)
            if rec.enabled:
                rec.inc(
                    "repro_overload_admitted_total", (("class", str(priority)),)
                )
                rec.observe(
                    "repro_overload_queue_delay_ms",
                    queue_ms,
                    buckets=OVERLOAD_QUEUE_BUCKETS_MS,
                )
            return self._record(
                object_id,
                t_s,
                source,
                satellite,
                hops,
                rung_rtt + backoff_ms,
                attempts=attempts,
                fallback_reason=reason,
                attempt_log=attempt_log,
                view=view,
                span=span,
                priority=priority,
            )

        # Ground rung: retried until the attempt budget runs out.
        ground_reason = "no-space-replica" if not ladder else "space-exhausted"
        ground_breaker = model.breaker_for(GROUND_TARGET)
        while (
            not deadline_hit
            and not view.ground_segment_down
            and attempts < policy.max_attempts
        ):
            if ground_breaker is not None and not ground_breaker.allow(t_s):
                breaker_skipped = True
                _note("ground", None, 0, attempts, "breaker-open", 0.0)
                break  # an open breaker stays open for this whole walk
            attempts += 1
            if not model.admit(None, priority):
                admission_refused = True
                step_ms = _failed_attempt(ground_breaker)
                backoff_ms += step_ms
                _note("ground", None, 0, attempts, "admission-reject", step_ms)
                if rec.enabled:
                    rec.inc(
                        "repro_overload_rejections_total",
                        (("class", str(priority)),),
                    )
                continue
            if schedule is not None and schedule.attempt_lost(
                request_index, attempts
            ):
                reason = "transient-loss"
                self.stats.timeouts += 1
                step_ms = _failed_attempt(ground_breaker)
                backoff_ms += step_ms
                _note("ground", None, 0, attempts, "transient-loss", step_ms)
                continue
            queue_ms = model.queue_delay_ms(None)
            rung_rtt = self.ground_rtt_ms + queue_ms
            if not policy.within_budget(rung_rtt):
                reason = "ground-timeout"
                self.stats.timeouts += 1
                step_ms = _failed_attempt(ground_breaker)
                backoff_ms += step_ms
                _note("ground", None, 0, attempts, "ground-timeout", step_ms)
                continue
            if not deadline.allows(rung_rtt):
                deadline_hit = True
                _note("ground", None, 0, attempts, "deadline-exhausted", 0.0)
                break
            self._store(access.index, object_id)
            if ground_breaker is not None:
                ground_breaker.record_success(t_s)
            model.note_served(None)
            self.stats.retries += attempts - 1
            _note("ground", None, 0, attempts, "served", rung_rtt)
            if rec.enabled:
                rec.inc(
                    "repro_overload_admitted_total", (("class", str(priority)),)
                )
                rec.observe(
                    "repro_overload_queue_delay_ms",
                    queue_ms,
                    buckets=OVERLOAD_QUEUE_BUCKETS_MS,
                )
            return self._record(
                object_id,
                t_s,
                LookupSource.GROUND,
                None,
                0,
                rung_rtt + backoff_ms,
                attempts=attempts,
                fallback_reason=reason if reason is not None else ground_reason,
                attempt_log=attempt_log,
                view=view,
                span=span,
                priority=priority,
            )

        self.stats.retries += max(0, attempts - 1)
        if deadline_hit or admission_refused or breaker_skipped:
            shed_reason = (
                "deadline"
                if deadline_hit
                else "admission" if admission_refused else "breaker-open"
            )
            self.stats.shed += 1
            if deadline_hit:
                self.stats.deadline_exhausted += 1
            if shed_log is not None:
                shed_log[(priority, shed_reason)] += 1
            if rec.enabled:
                rec.inc(
                    "repro_overload_shed_total",
                    (("class", str(priority)), ("reason", shed_reason)),
                )
                rec.window_inc(
                    t_s,
                    "repro_overload_shed_total",
                    (("class", str(priority)), ("reason", shed_reason)),
                )
                if span:
                    self._emit_serve_trace(
                        rec, object_id, t_s, "shed", None, None, 0, None,
                        attempts, shed_reason, attempt_log, view,
                        priority=priority,
                    )
            error = OverloadedError(
                f"object {object_id!r}: shed by overload protection "
                f"({shed_reason}, class {priority}) after {attempts} attempt(s)"
            )
            error.reason = shed_reason
            error.priority_class = priority
            raise error
        self.stats.unavailable += 1
        exhausted_reason = (
            "ground-down" if view.ground_segment_down else "budget-exhausted"
        )
        if rec.enabled:
            rec.inc(
                "repro_serve_unavailable_total", (("reason", exhausted_reason),)
            )
            rec.window_inc(
                t_s,
                "repro_serve_unavailable_total",
                (("reason", exhausted_reason),),
            )
            if span:
                self._emit_serve_trace(
                    rec, object_id, t_s, "unavailable", None, None, 0, None,
                    attempts, exhausted_reason, attempt_log, view,
                    priority=priority,
                )
        if view.ground_segment_down:
            raise UnavailableError(
                f"object {object_id!r}: fallback ladder exhausted after "
                f"{attempts} attempt(s) and the ground segment is down"
            )
        raise UnavailableError(
            f"object {object_id!r}: retry budget exhausted after "
            f"{attempts} attempt(s)"
        )

    def serve_request(self, request: Request) -> ServedRequest:
        """Serve one workload :class:`~repro.workloads.requests.Request`."""
        return self.serve(request.city.location, request.object_id, request.t_s)

    # -- the batched serve path ------------------------------------------------

    def serve_batch(
        self,
        users: Sequence[GeoPoint],
        object_ids: Sequence[str],
        t_s: float | Sequence[float],
        continue_on_unavailable: bool = False,
        priorities: Sequence[int] | None = None,
    ) -> list[ServedRequest | None]:
        """Serve a whole cohort of requests sharing one snapshot epoch.

        Element-wise equivalent to calling :meth:`serve` for each
        ``(users[i], object_ids[i], t_s[i])`` in order — same results, same
        cache/stat/fault-determinism side effects — but the per-request
        O(N) work is hoisted to per-cohort array passes: one visibility
        matrix over the unique users, one routing pass over the unique
        access satellites (masked once for the whole cohort under faults),
        and cache lookups as membership tests against the holders bitmap.
        Cohort-time cache mutations (pull-through stores, evictions, LRU
        churn) are applied in request order against the real caches; the
        incremental dirty tracking of
        :class:`~repro.cdn.cache.HoldersIndex` re-resolves only the
        requests whose holder sets changed mid-cohort.

        ``t_s`` may be a scalar (the whole cohort at one instant) or a
        per-request sequence; all times must land in the *same* snapshot
        slot — :meth:`run` with ``batch=True`` does the slot grouping.

        Returns one entry per request, in order. Under a fault schedule
        with ``continue_on_unavailable``, requests that exhaust the ladder
        keep their slot as ``None`` (they are counted in
        ``stats.unavailable``, exactly as the scalar path counts them);
        without it the first such request raises
        :class:`~repro.errors.UnavailableError` after the preceding
        requests' effects are applied, as the scalar loop would.

        With an enabled recorder the cohort emits one ``serve_cohort``
        trace span carrying per-rung attempt counts (instead of one span
        per request), while per-request counters and the RTT histogram
        stay identical to scalar serving.

        With an ``overload`` model the cohort runs the overloaded walk per
        request (element-wise identical to scalar :meth:`serve`, shed
        requests included); ``continue_on_unavailable`` keeps shed
        requests as ``None`` slots too, since
        :class:`~repro.errors.OverloadedError` is an
        :class:`~repro.errors.UnavailableError`. ``priorities`` optionally
        fixes each request's admission class (requires the model; default
        is the model's seeded assignment). The cohort span gains a
        ``shed`` attribute and per-class ``shed`` children.
        """
        num = len(users)
        if len(object_ids) != num:
            raise ConfigurationError(
                f"cohort mismatch: {num} users but {len(object_ids)} object ids"
            )
        if num == 0:
            return []
        if isinstance(t_s, (int, float)):
            times = [float(t_s)] * num
        else:
            times = [float(t) for t in t_s]
            if len(times) != num:
                raise ConfigurationError(
                    f"cohort mismatch: {num} users but {len(times)} times"
                )
        snapshot = self.snapshot_at(times[0])
        slot = self._snapshot_slot
        for t in times:
            if t < 0:
                raise ConfigurationError(f"negative time: {t}")
            if int(t // self.snapshot_interval_s) != slot:
                raise ConfigurationError(
                    "cohort spans multiple snapshot slots; split it at "
                    "snapshot boundaries (run(batch=True) does this)"
                )
        overloaded_mode = self.overload is not None
        degraded_mode = (
            self.fault_schedule is not None and not self.fault_schedule.is_empty
        )
        if overloaded_mode:
            view, degraded = self._overload_fault_state(snapshot)
        elif degraded_mode:
            view, degraded = self._fault_state_at(snapshot)
        if priorities is not None:
            if not overloaded_mode:
                raise ConfigurationError(
                    "request priorities require an overload model"
                )
            if len(priorities) != num:
                raise ConfigurationError(
                    f"cohort mismatch: {num} users but "
                    f"{len(priorities)} priorities"
                )

        from repro.orbits.visibility import visible_satellites_batch

        u_of: dict[GeoPoint, int] = {}
        u_idx = np.empty(num, dtype=np.int64)
        unique_users: list[GeoPoint] = []
        for r, user in enumerate(users):
            i = u_of.get(user)
            if i is None:
                i = len(unique_users)
                u_of[user] = i
                unique_users.append(user)
            u_idx[r] = i
        vb = visible_satellites_batch(
            self.constellation, unique_users, snapshot.t_s, self.min_elevation_deg
        )

        rec = get_recorder()
        counts: Counter | None = Counter() if rec.enabled else None
        shed_counts: Counter | None = (
            Counter() if (rec.enabled and overloaded_mode) else None
        )
        results: list[ServedRequest | None] = []
        try:
            if overloaded_mode:
                self._serve_batch_overloaded(
                    users, object_ids, times, u_idx, vb, view, degraded,
                    counts, continue_on_unavailable, results, priorities,
                    shed_counts,
                )
            elif degraded_mode:
                self._serve_batch_degraded(
                    users, object_ids, times, u_idx, vb, view, degraded,
                    counts, continue_on_unavailable, results,
                )
            else:
                self._serve_batch_healthy(
                    users, object_ids, times, u_idx, vb, snapshot,
                    counts, results,
                )
        finally:
            if rec.enabled:
                none_slots = sum(1 for r in results if r is None)
                shed_total = (
                    sum(shed_counts.values()) if shed_counts is not None else 0
                )
                mode = (
                    "overloaded"
                    if overloaded_mode
                    else "degraded" if degraded_mode else "healthy"
                )
                span = rec.open_span(
                    "serve_cohort",
                    t_s=times[0],
                    size=num,
                    served=len(results) - none_slots,
                    unavailable=max(0, none_slots - shed_total),
                    mode=mode,
                )
                if shed_counts is not None:
                    span.set(shed=shed_total)
                    for (cls, shed_reason), count in sorted(shed_counts.items()):
                        span.child(
                            "shed",
                            priority=cls,
                            reason=shed_reason,
                            count=count,
                        )
                for (tier, outcome), count in sorted(counts.items()):
                    span.child("rung", tier=tier, outcome=outcome, count=count)
                    rec.inc(
                        "repro_serve_attempts_total",
                        (("tier", tier), ("outcome", outcome)),
                        count,
                    )
        return results

    def _serve_batch_healthy(
        self,
        users: Sequence[GeoPoint],
        object_ids: Sequence[str],
        times: list[float],
        u_idx: np.ndarray,
        vb,
        snapshot: SnapshotGraph,
        counts: Counter | None,
        results: list,
    ) -> None:
        """The fault-free cohort: vectorised decisions, in-order application.

        Three phases. (1) Per-cohort matrices: access pick and routing rows
        per unique user, the holders bitmap over the cohort's unique
        objects. (2) A provisional vectorised ladder decision per unique
        ``(user, object)`` pair against cohort-start holders — masked
        first-hit for the direct-visible rung, masked argmin for the ISL
        rung. (3) The in-order apply loop performing the *same* cache
        operations as scalar serving; a request whose object's holders
        changed mid-cohort (pull-through store or eviction, tracked by the
        index's dirty set) ignores its provisional decision and re-resolves
        from the live index against the same routing rows.
        """
        core = snapshot.core
        n = core.num_nodes
        num = len(object_ids)
        num_u = vb.num_points

        acc_of_u = np.full(num_u, -1, dtype=np.int64)
        slant_of_u = np.zeros(num_u)
        for i in range(num_u):
            order = vb.order[i]
            if order.size:
                a = int(order[0])
                acc_of_u[i] = a
                slant_of_u[i] = vb.slant_ranges_km[i, a]
        seen_acc = sorted({int(a) for a in acc_of_u if a >= 0})
        if seen_acc:
            hops_m, lats_m = fastcore.single_source_batch(
                core, seen_acc, snapshot.active_mask
            )
        else:
            hops_m = np.empty((0, n), dtype=np.int32)
            lats_m = np.empty((0, n))
        row_of_acc = {a: i for i, a in enumerate(seen_acc)}
        accrow_of_u = np.fromiter(
            (row_of_acc.get(int(a), -1) for a in acc_of_u),
            dtype=np.int64,
            count=num_u,
        )

        o_of: dict[str, int] = {}
        o_idx = np.empty(num, dtype=np.int64)
        unique_oids: list[str] = []
        for r, oid in enumerate(object_ids):
            i = o_of.get(oid)
            if i is None:
                i = len(unique_oids)
                o_of[oid] = i
                unique_oids.append(oid)
            o_idx[r] = i
        holders_m = self._index.holders_matrix(unique_oids, n)

        # Padded per-user visibility order for the direct-visible rung scan;
        # column 0 (the access satellite) is excluded, as in scalar serving.
        vmax = max((order.size for order in vb.order), default=0)
        opad = np.zeros((num_u, max(vmax, 1)), dtype=np.int64)
        valid = np.zeros((num_u, max(vmax, 1)), dtype=bool)
        for i, order in enumerate(vb.order):
            opad[i, : order.size] = order
            valid[i, : order.size] = True
        valid[:, 0] = False

        num_o = len(unique_oids)
        codes = u_idx * num_o + o_idx
        pair_codes, pair_of_r = np.unique(codes, return_inverse=True)
        pair_u = (pair_codes // num_o).astype(np.int64)
        pair_o = (pair_codes % num_o).astype(np.int64)
        p_total = len(pair_codes)
        p_src = np.full(p_total, 3, dtype=np.int8)  # 1 direct / 2 isl / 3 ground
        p_sat = np.full(p_total, -1, dtype=np.int64)
        p_hops = np.zeros(p_total, dtype=np.int64)
        p_lat = np.zeros(p_total)
        chunk = 2048  # bounds the (chunk, N) work arrays to a few tens of MB
        if seen_acc:
            for lo in range(0, p_total, chunk):
                hi = min(lo + chunk, p_total)
                cu = pair_u[lo:hi]
                hp = holders_m[pair_o[lo:hi]]  # (C, N) cohort-start copy
                rows_ord = opad[cu]
                vis_hold = np.take_along_axis(hp, rows_ord, axis=1) & valid[cu]
                has_direct = vis_hold.any(axis=1)
                arange_c = np.arange(hi - lo)
                direct_sat = rows_ord[arange_c, vis_hold.argmax(axis=1)]
                rowsel = accrow_of_u[cu]
                safe_row = np.where(rowsel >= 0, rowsel, 0)
                hops_c = hops_m[safe_row]
                lats_c = lats_m[safe_row]
                found, best = nearest_cached_batch(
                    hops_c, lats_c, hp, self.max_hops, min_hops=1
                )
                found &= rowsel >= 0
                p_src[lo:hi] = np.where(has_direct, 1, np.where(found, 2, 3))
                p_sat[lo:hi] = np.where(
                    has_direct, direct_sat, np.where(found, best, -1)
                )
                isl_rows = np.flatnonzero(~has_direct & found)
                p_hops[lo + isl_rows] = hops_c[isl_rows, best[isl_rows]]
                p_lat[lo + isl_rows] = lats_c[isl_rows, best[isl_rows]]

        dirty = self._index.dirty_objects
        think = CDN_SERVER_THINK_TIME_MS
        for r in range(num):
            oid = object_ids[r]
            t = times[r]
            self.catalog.get(oid)  # validate early, in request order
            u = int(u_idx[r])
            if vb.order[u].size == 0:
                user = users[r]
                raise ConfigurationError(
                    f"no satellite visible from "
                    f"({user.lat_deg:.1f}, {user.lon_deg:.1f})"
                )
            acc = int(acc_of_u[u])
            access_rtt = 2.0 * access_latency_ms(float(slant_of_u[u]))

            # Rung 1: the access satellite's cache, straight off the real
            # cache (also records the hit/miss and the LRU touch scalar
            # serving records).
            if self.cache_of(acc).get(oid) is not None:
                if counts is not None:
                    counts[("access", "served")] += 1
                results.append(
                    self._record(
                        oid, t, LookupSource.ACCESS_SATELLITE, acc, 0,
                        access_rtt + think, span=False,
                    )
                )
                continue

            if oid in dirty:
                src, sat, hops, one_way = self._healthy_decision_from_rows(
                    oid, u, vb, accrow_of_u, hops_m, lats_m
                )
            else:
                p = pair_of_r[r]
                src = int(p_src[p])
                sat = int(p_sat[p])
                hops = int(p_hops[p])
                one_way = float(p_lat[p])

            if src == 1:
                self.cache_of(sat).get(oid)  # count the hit
                rtt = (
                    2.0 * access_latency_ms(float(vb.slant_ranges_km[u, sat]))
                    + think
                )
                if counts is not None:
                    counts[("direct-visible", "served")] += 1
                results.append(
                    self._record(
                        oid, t, LookupSource.DIRECT_VISIBLE, sat, 0, rtt,
                        span=False,
                    )
                )
            elif src == 2:
                self.cache_of(sat).get(oid)  # count the remote hit
                rtt = access_rtt + 2.0 * one_way + think
                if counts is not None:
                    counts[("isl", "served")] += 1
                results.append(
                    self._record(
                        oid, t, LookupSource.ISL_NEIGHBOR, sat, hops, rtt,
                        span=False,
                    )
                )
            else:
                self._store(acc, oid)
                if counts is not None:
                    counts[("ground", "served")] += 1
                results.append(
                    self._record(
                        oid, t, LookupSource.GROUND, None, 0,
                        self.ground_rtt_ms, span=False,
                    )
                )

    def _healthy_decision_from_rows(
        self,
        object_id: str,
        u: int,
        vb,
        accrow_of_u: np.ndarray,
        hops_m: np.ndarray,
        lats_m: np.ndarray,
    ) -> tuple[int, int, int, float]:
        """Re-resolve one dirty request from the live index.

        Mirrors scalar :meth:`_serve_healthy` below the access rung:
        first directly visible holder in ascending slant order, else masked
        nearest ISL holder from the access satellite's precomputed routing
        rows, else ground. Returns ``(src, satellite, hops, one_way_ms)``
        with ``src`` using the provisional encoding (1/2/3).
        """
        holders = self._index.holder_set(object_id)
        if holders:
            order = vb.order[u]
            for cand in order[1:]:
                ci = int(cand)
                if ci in holders:
                    return 1, ci, 0, 0.0
            row = int(accrow_of_u[u])
            found = nearest_cached_from_rows(
                hops_m[row], lats_m[row], holders, self.max_hops, min_hops=1
            )
            if found is not None:
                return 2, found[0], found[1], found[2]
        return 3, -1, 0, 0.0

    def _serve_batch_degraded(
        self,
        users: Sequence[GeoPoint],
        object_ids: Sequence[str],
        times: list[float],
        u_idx: np.ndarray,
        vb,
        view: FaultView,
        degraded: SnapshotGraph,
        counts: Counter | None,
        continue_on_unavailable: bool,
        results: list,
    ) -> None:
        """The faulted cohort: shared masked routing, per-request walks.

        The expensive parts of scalar degraded serving are per-request
        visibility and the *masked* routing pass (never memoised, since
        failure sets vary) — both are hoisted here to one pass per unique
        user / unique access satellite. The attempt walk itself stays
        per-request (it is inherently sequential: the fault schedule's
        transient losses are deterministic in request order) and runs the
        exact scalar code over the precomputed rows.
        """
        live_of_u = [
            [
                sat
                for sat in vb.visible_list(i)
                if degraded.has_satellite(sat.index)
            ]
            for i in range(vb.num_points)
        ]
        accs = sorted({lv[0].index for lv in live_of_u if lv})
        row_of_acc: dict[int, int] = {}
        if accs:
            hops_m, lats_m = fastcore.single_source_batch(
                degraded.core, accs, degraded.active_mask
            )
            row_of_acc = {a: i for i, a in enumerate(accs)}
        for r in range(len(object_ids)):
            oid = object_ids[r]
            self.catalog.get(oid)  # validate early, in request order
            lv = live_of_u[int(u_idx[r])]
            rows = None
            if lv:
                i = row_of_acc[lv[0].index]
                rows = (hops_m[i], lats_m[i])
            try:
                results.append(
                    self._serve_degraded_prepared(
                        users[r], oid, times[r], lv, view, degraded,
                        rows=rows, attempt_counts=counts, span=False,
                    )
                )
            except UnavailableError:
                if not continue_on_unavailable:
                    raise
                results.append(None)

    def _serve_batch_overloaded(
        self,
        users: Sequence[GeoPoint],
        object_ids: Sequence[str],
        times: list[float],
        u_idx: np.ndarray,
        vb,
        view: FaultView,
        degraded: SnapshotGraph,
        counts: Counter | None,
        continue_on_unavailable: bool,
        results: list,
        priorities: Sequence[int] | None,
        shed_counts: Counter | None,
    ) -> None:
        """The overloaded cohort: shared masked routing, per-request walks.

        Structurally the degraded cohort — visibility and the access
        satellites' routing rows are hoisted to one pass each — but every
        request runs the overload-protected walk. The walk is inherently
        sequential (admission counters fill and breakers trip in request
        order), which is exactly why running it over precomputed rows
        stays element-wise identical to scalar serving. Shed requests
        (:class:`~repro.errors.OverloadedError` is an
        :class:`~repro.errors.UnavailableError`) become ``None`` slots
        under ``continue_on_unavailable``.
        """
        live_of_u = [
            [
                sat
                for sat in vb.visible_list(i)
                if degraded.has_satellite(sat.index)
            ]
            for i in range(vb.num_points)
        ]
        accs = sorted({lv[0].index for lv in live_of_u if lv})
        row_of_acc: dict[int, int] = {}
        if accs:
            hops_m, lats_m = fastcore.single_source_batch(
                degraded.core, accs, degraded.active_mask
            )
            row_of_acc = {a: i for i, a in enumerate(accs)}
        for r in range(len(object_ids)):
            oid = object_ids[r]
            self.catalog.get(oid)  # validate early, in request order
            lv = live_of_u[int(u_idx[r])]
            rows = None
            if lv:
                i = row_of_acc[lv[0].index]
                rows = (hops_m[i], lats_m[i])
            try:
                results.append(
                    self._serve_overloaded_prepared(
                        users[r], oid, times[r], lv, view, degraded,
                        rows=rows, attempt_counts=counts, span=False,
                        priority=None if priorities is None else priorities[r],
                        shed_log=shed_counts,
                    )
                )
            except UnavailableError:
                if not continue_on_unavailable:
                    raise
                results.append(None)

    def run(
        self,
        requests: list[Request],
        continue_on_unavailable: bool = False,
        batch: bool = False,
    ) -> list[ServedRequest]:
        """Serve a whole request stream (must be time-ordered).

        With ``continue_on_unavailable`` the stream survives requests that
        raise :class:`~repro.errors.UnavailableError` under a fault
        schedule — they are counted in ``stats.unavailable`` and skipped,
        which is what availability experiments want.

        With ``batch`` the stream is grouped into per-snapshot-slot cohorts
        resolved through :meth:`serve_batch`; results and state are
        element-wise identical to the scalar loop, just much faster.
        """
        if batch:
            return self._run_batched(requests, continue_on_unavailable)
        last_t = -1.0
        results = []
        for request in requests:
            if request.t_s < last_t:
                raise ConfigurationError("request stream is not time-ordered")
            last_t = request.t_s
            try:
                results.append(self.serve_request(request))
            except UnavailableError:
                if not continue_on_unavailable:
                    raise
        return results

    def _run_batched(
        self, requests: list[Request], continue_on_unavailable: bool
    ) -> list[ServedRequest]:
        """Slot-grouped cohort serving behind :meth:`run`'s ``batch`` flag."""
        results: list[ServedRequest] = []
        group_users: list[GeoPoint] = []
        group_oids: list[str] = []
        group_ts: list[float] = []
        group_slot: int | None = None
        last_t = -1.0

        def flush() -> None:
            if not group_users:
                return
            served = self.serve_batch(
                group_users,
                group_oids,
                group_ts,
                continue_on_unavailable=continue_on_unavailable,
            )
            results.extend(r for r in served if r is not None)
            group_users.clear()
            group_oids.clear()
            group_ts.clear()

        for request in requests:
            if request.t_s < last_t:
                flush()  # the stream up to here served, as scalar would
                raise ConfigurationError("request stream is not time-ordered")
            last_t = request.t_s
            slot = int(request.t_s // self.snapshot_interval_s)
            if group_slot is not None and slot != group_slot:
                flush()
            group_slot = slot
            group_users.append(request.city.location)
            group_oids.append(request.object_id)
            group_ts.append(request.t_s)
        flush()
        return results

    def _nearest_holder(
        self, snapshot: SnapshotGraph, access: int, holders: frozenset[int]
    ) -> tuple[int, int, float] | None:
        return nearest_cached_satellite(
            snapshot, access, holders, self.max_hops, min_hops=1
        )

    def _record(
        self,
        object_id: str,
        t_s: float,
        source: LookupSource,
        satellite: int | None,
        hops: int,
        rtt_ms: float,
        attempts: int = 1,
        fallback_reason: str | None = None,
        attempt_log: list[dict] | None = None,
        view: FaultView | None = None,
        span: bool = True,
        priority: int | None = None,
    ) -> ServedRequest:
        if source is LookupSource.ACCESS_SATELLITE:
            self.stats.access_hits += 1
        elif source is LookupSource.DIRECT_VISIBLE:
            self.stats.direct_hits += 1
        elif source is LookupSource.ISL_NEIGHBOR:
            self.stats.isl_hits += 1
        else:
            self.stats.ground_fetches += 1
        self.stats.rtt_samples_ms.append(rtt_ms)
        rec = get_recorder()
        if rec.enabled:
            tier = TIER_OF_SOURCE[source]
            labels = _TIER_LABELS[tier]
            rec.inc("repro_serve_total", labels)
            rec.observe("repro_serve_rtt_ms", rtt_ms, labels)
            # Windowed twins of the scalar series, keyed by the request's
            # *simulated* arrival time — the temporal axis behind
            # ``repro obs timeline`` / ``repro obs slo``.
            rec.window_inc(t_s, "repro_serve_total", labels)
            rec.window_observe(t_s, "repro_serve_rtt_ms", rtt_ms, labels)
            if fallback_reason is None:
                rec.window_inc(t_s, "repro_serve_hit_total", labels)
            if attempts > 1:
                rec.window_inc(
                    t_s, "repro_serve_retries_total", value=float(attempts - 1)
                )
            if fallback_reason is not None:
                rec.inc(
                    "repro_serve_fallback_total", (("reason", fallback_reason),)
                )
            if span:
                # Batched serving suppresses the per-request span: the
                # cohort emits one ``serve_cohort`` span with per-rung
                # attempt counts instead (per-request counters and the RTT
                # histogram above are identical either way).
                self._emit_serve_trace(
                    rec, object_id, t_s, "served", source, satellite, hops,
                    rtt_ms, attempts, fallback_reason, attempt_log, view,
                    priority=priority,
                )
        return ServedRequest(
            object_id=object_id,
            t_s=t_s,
            source=source,
            serving_satellite=satellite,
            isl_hops=hops,
            rtt_ms=rtt_ms,
            attempts=attempts,
            fallback_reason=fallback_reason,
            priority=priority,
        )
