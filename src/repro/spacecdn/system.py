"""The full SpaceCDN system: per-satellite caches served over time.

Where :mod:`repro.spacecdn.lookup` answers a single geometric query, the
:class:`SpaceCdnSystem` runs the whole machine: every satellite carries a
real byte-bounded cache, requests arrive on a timeline, the constellation
rotates underneath (snapshots are rebuilt on a quantised clock), misses
pull content up from the ground and populate the access satellite's cache,
and a content index tracks which satellites currently hold which objects.

This is the component a downstream user would actually embed: give it a
catalog, a placement/prefetch policy and a request stream, get back hit
levels and latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cdn.cache import Cache, LruCache
from repro.cdn.content import Catalog
from repro.constants import CDN_SERVER_THINK_TIME_MS, MIN_ELEVATION_USER_DEG
from repro.errors import ConfigurationError, UnavailableError
from repro.faults import FaultSchedule, FaultView, RetryPolicy, apply_fault_view
from repro.geo.coordinates import GeoPoint
from repro.obs.recorder import get_recorder
from repro.orbits.walker import Constellation
from repro.spacecdn.lookup import (
    LookupSource,
    nearest_cached_satellite,
    ranked_cached_satellites,
)
from repro.topology.graph import SnapshotGraph, access_latency_ms, build_snapshot
from repro.workloads.requests import Request

TIER_OF_SOURCE: dict[LookupSource, str] = {
    LookupSource.ACCESS_SATELLITE: "access",
    LookupSource.DIRECT_VISIBLE: "direct-visible",
    LookupSource.ISL_NEIGHBOR: "isl",
    LookupSource.GROUND: "ground",
}
"""Ladder-tier names used in metrics labels and trace spans."""

_TIER_LABELS = {tier: (("tier", tier),) for tier in TIER_OF_SOURCE.values()}


@dataclass(frozen=True)
class ServedRequest:
    """Outcome of one request through the system.

    ``attempts`` counts fetch attempts including the successful one (always
    1 on the healthy path); ``fallback_reason`` explains why the request was
    not served by its preferred rung (``None`` when it was): one of
    ``"attempt-timeout"``, ``"transient-loss"``, ``"ground-timeout"``,
    ``"no-space-replica"``, ``"space-exhausted"``.
    """

    object_id: str
    t_s: float
    source: LookupSource
    serving_satellite: int | None
    isl_hops: int
    rtt_ms: float
    attempts: int = 1
    fallback_reason: str | None = None


@dataclass
class SystemStats:
    """Aggregate counters over a run."""

    access_hits: int = 0
    direct_hits: int = 0
    isl_hits: int = 0
    ground_fetches: int = 0
    timeouts: int = 0
    """Attempts abandoned for exceeding the per-attempt RTT budget or to
    transient loss (each failed attempt counts once)."""
    retries: int = 0
    """Extra attempts beyond the first, summed over all requests."""
    unavailable: int = 0
    """Requests that exhausted the fallback ladder and raised
    :class:`~repro.errors.UnavailableError`."""
    rtt_samples_ms: list[float] = field(default_factory=list)

    @property
    def requests(self) -> int:
        return (
            self.access_hits
            + self.direct_hits
            + self.isl_hits
            + self.ground_fetches
            + self.unavailable
        )

    @property
    def served(self) -> int:
        """Requests that completed with content delivered."""
        return self.requests - self.unavailable

    @property
    def availability(self) -> float | None:
        """Fraction of requests served at all; ``None`` before any request.

        Zero requests means *no evidence*, which is different from
        "perfectly available": returning ``None`` (rather than a made-up
        1.0 or a division by zero) keeps aggregation over empty shards
        well-defined — callers render it as "n/a" instead of averaging a
        fictitious value into a sweep.
        """
        if self.requests == 0:
            return None
        return self.served / self.requests

    @property
    def space_hit_ratio(self) -> float:
        """Fraction of *served* requests answered without touching the ground."""
        if self.served == 0:
            return 0.0
        return (self.served - self.ground_fetches) / self.served


@dataclass
class SpaceCdnSystem:
    """A running SpaceCDN: caches on every satellite, time-aware routing.

    Args:
        constellation: the shell to run on.
        catalog: the content universe (sizes drive cache occupancy).
        cache_bytes_per_satellite: capacity of each on-board cache.
        max_hops: ISL search radius before falling back to the ground.
        ground_rtt_ms: RTT of the bent-pipe + terrestrial fallback path.
        snapshot_interval_s: how often the ISL graph is rebuilt as the
            constellation rotates (60 s keeps link-length error under ~1%).
        fault_schedule: composed fault processes driving the degraded
            serving path; ``None`` (or an empty schedule) keeps the healthy
            fast path byte-for-byte unchanged. Faults are applied at
            snapshot granularity — the schedule compiles once per snapshot
            slot into the CSR core's node/link masks.
        retry_policy: bounded attempts, per-attempt RTT budget, and
            simulated exponential backoff for the degraded path.
    """

    constellation: Constellation
    catalog: Catalog
    cache_bytes_per_satellite: int = 10**9
    max_hops: int = 5
    ground_rtt_ms: float = 140.0
    snapshot_interval_s: float = 60.0
    min_elevation_deg: float = MIN_ELEVATION_USER_DEG
    fault_schedule: FaultSchedule | None = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)

    stats: SystemStats = field(default_factory=SystemStats)
    _caches: dict[int, Cache] = field(default_factory=dict, repr=False)
    _index: dict[str, set[int]] = field(default_factory=dict, repr=False)
    _snapshot: SnapshotGraph | None = field(default=None, repr=False)
    _snapshot_slot: int = field(default=-1, repr=False)
    _degraded: SnapshotGraph | None = field(default=None, repr=False)
    _fault_view: FaultView | None = field(default=None, repr=False)
    _fault_slot: int = field(default=-1, repr=False)
    _down_prev: frozenset[int] = field(default=frozenset(), repr=False)
    _request_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.cache_bytes_per_satellite <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.max_hops < 0:
            raise ConfigurationError("max_hops must be non-negative")
        if self.snapshot_interval_s <= 0:
            raise ConfigurationError("snapshot interval must be positive")
        if self.ground_rtt_ms <= 0:
            raise ConfigurationError("ground RTT must be positive")

    # -- cache plumbing ----------------------------------------------------

    def cache_of(self, satellite: int) -> Cache:
        """The on-board cache of one satellite (created lazily)."""
        if not 0 <= satellite < len(self.constellation):
            raise ConfigurationError(f"satellite {satellite} out of range")
        cache = self._caches.get(satellite)
        if cache is None:
            cache = LruCache(self.cache_bytes_per_satellite)
            self._caches[satellite] = cache
        return cache

    def holders_of(self, object_id: str) -> frozenset[int]:
        """Satellites currently caching an object."""
        return frozenset(self._index.get(object_id, ()))

    def _store(self, satellite: int, object_id: str) -> None:
        """Insert an object into a satellite's cache, maintaining the index."""
        obj = self.catalog.get(object_id)
        cache = self.cache_of(satellite)
        if obj.size_bytes > cache.capacity_bytes:
            return  # too large to cache anywhere; served pass-through
        evicted = cache.put(obj)
        for victim in evicted:
            holders = self._index.get(victim)
            if holders is not None:
                holders.discard(satellite)
                if not holders:
                    del self._index[victim]
        self._index.setdefault(object_id, set()).add(satellite)

    def preload(self, placement: dict[str, frozenset[int]]) -> int:
        """Push a placement plan into the on-board caches; returns stores done."""
        stored = 0
        for object_id, satellites in placement.items():
            for satellite in satellites:
                self._store(satellite, object_id)
                stored += 1
        return stored

    def bubble_prefetch(
        self,
        popularity,
        t_s: float,
        objects_per_region: int = 10,
        max_region_distance_km: float = 1500.0,
    ) -> int:
        """Content-bubble pass: load each satellite with the region below it.

        For every satellite currently over a gazetteer region, prefetches
        that region's ``objects_per_region`` most popular objects into its
        cache (paper §5: bubbles form where the infrastructure moves but
        the content stays relevant). ``popularity`` is anything with
        ``regions()`` and ``top_objects(region, count)`` — the oracle
        :class:`~repro.spacecdn.bubbles.RegionalPopularity` or a
        :class:`~repro.spacecdn.prediction.LearnedPrefetcher`'s predictor.

        Returns the number of cache stores performed.
        """
        from repro.geo.datasets.cities import region_under

        if objects_per_region < 1:
            raise ConfigurationError("objects_per_region must be >= 1")
        known_regions = set(popularity.regions())
        tracks = self.constellation.subsatellite_points(t_s)
        stored = 0
        for satellite, (lat, lon) in enumerate(tracks):
            region = region_under(float(lat), float(lon), max_region_distance_km)
            if region is None or region not in known_regions:
                continue
            for object_id in popularity.top_objects(region, objects_per_region):
                if object_id not in self.cache_of(satellite):
                    self._store(satellite, object_id)
                    stored += 1
        return stored

    # -- time-aware topology -------------------------------------------------

    def snapshot_at(self, t_s: float) -> SnapshotGraph:
        """The ISL graph for the quantised instant containing ``t_s``."""
        if t_s < 0:
            raise ConfigurationError(f"negative time: {t_s}")
        slot = int(t_s // self.snapshot_interval_s)
        if slot != self._snapshot_slot or self._snapshot is None:
            self._snapshot = build_snapshot(
                self.constellation, slot * self.snapshot_interval_s
            )
            self._snapshot_slot = slot
        return self._snapshot

    # -- fault plumbing --------------------------------------------------------

    def _fault_state_at(self, snapshot: SnapshotGraph) -> tuple[FaultView, SnapshotGraph]:
        """The compiled fault view and degraded snapshot for the current slot.

        Compiled once per snapshot slot: the schedule's processes are
        sampled at the snapshot instant and turned into node/link masks
        over the shared CSR core. Newly-failed satellites lose their cache
        contents here when the schedule says outages wipe caches.
        """
        if self._fault_slot != self._snapshot_slot or self._degraded is None:
            view = self.fault_schedule.compile_at(
                snapshot.t_s, snapshot.core.topology.num_links
            )
            self._fault_view = view
            self._degraded = apply_fault_view(snapshot, view)
            self._fault_slot = self._snapshot_slot
            down = frozenset(
                s
                for s in view.failed_satellites
                if 0 <= s < len(self.constellation)
            )
            if self.fault_schedule.wipe_caches_on_outage:
                for satellite in sorted(down - self._down_prev):
                    self._wipe_cache(satellite)
            self._down_prev = down
        return self._fault_view, self._degraded

    def _wipe_cache(self, satellite: int) -> int:
        """Drop a satellite's cache contents (duty-cycle exit / power loss)."""
        cache = self._caches.get(satellite)
        if cache is None:
            return 0
        wiped = cache.object_ids()
        for object_id in wiped:
            holders = self._index.get(object_id)
            if holders is not None:
                holders.discard(satellite)
                if not holders:
                    del self._index[object_id]
        cache.clear()
        return len(wiped)

    # -- the serve path -------------------------------------------------------

    def serve(self, user: GeoPoint, object_id: str, t_s: float) -> ServedRequest:
        """Serve one request at simulated time ``t_s`` from ``user``.

        Resolution order (paper Fig. 6): access satellite's cache, nearest
        caching satellite within ``max_hops`` ISLs, ground fallback. Ground
        fetches populate the access satellite's cache (pull-through), which
        is how popularity organically builds the space tier.

        With a non-empty ``fault_schedule`` the request runs the degraded
        path instead: the same ladder, but over the fault-masked snapshot,
        with ``retry_policy`` bounding attempts and charging simulated
        backoff, and :class:`~repro.errors.UnavailableError` raised when no
        serving path survives.
        """
        self.catalog.get(object_id)  # validate early
        snapshot = self.snapshot_at(t_s)
        if self.fault_schedule is None or self.fault_schedule.is_empty:
            return self._serve_healthy(user, object_id, t_s, snapshot)
        view, degraded = self._fault_state_at(snapshot)
        return self._serve_degraded(user, object_id, t_s, snapshot, view, degraded)

    def _emit_serve_trace(
        self,
        rec,
        object_id: str,
        t_s: float,
        outcome: str,
        source: LookupSource | None,
        satellite: int | None,
        hops: int,
        rtt_ms: float | None,
        attempts: int,
        fallback_reason: str | None,
        attempt_log: list[dict] | None,
        view: FaultView | None,
    ) -> None:
        """One ``serve`` root span plus its per-attempt children.

        Only ever called with an enabled recorder; the disabled path never
        reaches here, so instrumentation stays allocation-free by default.
        """
        span = rec.open_span(
            "serve",
            t_s=t_s,
            object_id=object_id,
            outcome=outcome,
            source=None if source is None else TIER_OF_SOURCE[source],
            satellite=satellite,
            hops=hops,
            rtt_ms=rtt_ms,
            attempts=attempts,
            fallback_reason=fallback_reason,
        )
        if view is not None:
            span.set(
                faults_failed_satellites=len(view.failed_satellites),
                faults_cut_links=len(view.cut_links),
                faults_ground_down=view.ground_segment_down,
            )
        if attempt_log is None:
            # Healthy fast path: exactly one attempt, the successful rung.
            attempt_log = [
                {
                    "tier": TIER_OF_SOURCE[source],
                    "satellite": satellite,
                    "hops": hops,
                    "retry_index": 1,
                    "outcome": "served",
                    "rtt_contribution_ms": rtt_ms,
                }
            ]
        for entry in attempt_log:
            span.child("attempt", **entry)
            rec.inc(
                "repro_serve_attempts_total",
                (("tier", entry["tier"]), ("outcome", entry["outcome"])),
            )

    def _serve_healthy(
        self, user: GeoPoint, object_id: str, t_s: float, snapshot: SnapshotGraph
    ) -> ServedRequest:
        """The fault-free fast path (identical to the pre-fault behaviour)."""
        from repro.orbits.visibility import visible_satellites

        visible = visible_satellites(
            self.constellation, user, snapshot.t_s, self.min_elevation_deg
        )
        if not visible:
            raise ConfigurationError(
                f"no satellite visible from ({user.lat_deg:.1f}, {user.lon_deg:.1f})"
            )
        access = visible[0]
        access_rtt = 2.0 * access_latency_ms(access.slant_range_km)

        # Level 1: overhead satellite.
        if self.cache_of(access.index).get(object_id) is not None:
            return self._record(
                object_id,
                t_s,
                LookupSource.ACCESS_SATELLITE,
                access.index,
                0,
                access_rtt + CDN_SERVER_THINK_TIME_MS,
            )

        holders = self.holders_of(object_id)

        # Level 1b: any other *visible* holder — the terminal can beam to it
        # directly. Physically-near satellites on crossing planes can be
        # dozens of +Grid hops apart, so this check is not subsumed by the
        # ISL search below.
        for candidate in visible[1:]:
            if candidate.index in holders:
                self.cache_of(candidate.index).get(object_id)  # count the hit
                rtt = 2.0 * access_latency_ms(candidate.slant_range_km)
                return self._record(
                    object_id,
                    t_s,
                    LookupSource.DIRECT_VISIBLE,
                    candidate.index,
                    0,
                    rtt + CDN_SERVER_THINK_TIME_MS,
                )

        # Level 2: nearest caching satellite within the hop bound.
        found = self._nearest_holder(snapshot, access.index, holders)
        if found is not None:
            satellite, hops, isl_one_way = found
            self.cache_of(satellite).get(object_id)  # count the remote hit
            rtt = access_rtt + 2.0 * isl_one_way + CDN_SERVER_THINK_TIME_MS
            return self._record(
                object_id, t_s, LookupSource.ISL_NEIGHBOR, satellite, hops, rtt
            )

        # Level 3: ground fallback + pull-through insert.
        self._store(access.index, object_id)
        return self._record(
            object_id, t_s, LookupSource.GROUND, None, 0, self.ground_rtt_ms
        )

    def _fallback_ladder(
        self,
        degraded: SnapshotGraph,
        live_visible: list,
        object_id: str,
    ) -> list[tuple[LookupSource, int, int, float]]:
        """Every live serving option for one request, cheapest-rung first.

        Entries are ``(source, satellite, hops, rtt_ms)`` in resolution
        order: access satellite, other directly visible holders, then the
        ISL ladder ranked by latency. Each satellite appears once, at its
        cheapest rung; failed satellites never appear (the degraded
        snapshot's mask removes them from every routing pass).
        """
        holders = self.holders_of(object_id)
        if not holders:
            return []
        ladder: list[tuple[LookupSource, int, int, float]] = []
        seen: set[int] = set()
        access = live_visible[0]
        if access.index in holders:
            rtt = 2.0 * access_latency_ms(access.slant_range_km)
            ladder.append(
                (
                    LookupSource.ACCESS_SATELLITE,
                    access.index,
                    0,
                    rtt + CDN_SERVER_THINK_TIME_MS,
                )
            )
            seen.add(access.index)
        for candidate in live_visible[1:]:
            if candidate.index in holders and candidate.index not in seen:
                rtt = 2.0 * access_latency_ms(candidate.slant_range_km)
                ladder.append(
                    (
                        LookupSource.DIRECT_VISIBLE,
                        candidate.index,
                        0,
                        rtt + CDN_SERVER_THINK_TIME_MS,
                    )
                )
                seen.add(candidate.index)
        access_rtt = 2.0 * access_latency_ms(access.slant_range_km)
        for satellite, hops, isl_one_way in ranked_cached_satellites(
            degraded,
            access.index,
            holders,
            self.max_hops,
            min_hops=1,
            exclude=frozenset(seen),
        ):
            ladder.append(
                (
                    LookupSource.ISL_NEIGHBOR,
                    satellite,
                    hops,
                    access_rtt + 2.0 * isl_one_way + CDN_SERVER_THINK_TIME_MS,
                )
            )
        return ladder

    def _serve_degraded(
        self,
        user: GeoPoint,
        object_id: str,
        t_s: float,
        snapshot: SnapshotGraph,
        view: FaultView,
        degraded: SnapshotGraph,
    ) -> ServedRequest:
        """One request through the fallback ladder under the fault masks.

        Walks the ladder rung by rung: each tried rung is one attempt;
        attempts abandoned to the per-attempt RTT budget or to transient
        loss add simulated backoff and descend to the next rung. The ground
        rung (when the ground segment is up) absorbs the remaining retry
        budget. A request that exhausts the ladder or the budget raises
        :class:`~repro.errors.UnavailableError` — never anything else.
        """
        from repro.orbits.visibility import visible_satellites

        policy = self.retry_policy
        request_index = self._request_counter
        self._request_counter += 1
        rec = get_recorder()
        attempt_log: list[dict] | None = [] if rec.enabled else None

        visible = visible_satellites(
            self.constellation, user, snapshot.t_s, self.min_elevation_deg
        )
        live_visible = [s for s in visible if degraded.has_satellite(s.index)]
        if not live_visible:
            self.stats.unavailable += 1
            if rec.enabled:
                rec.inc("repro_serve_unavailable_total", (("reason", "no-sky"),))
                self._emit_serve_trace(
                    rec, object_id, t_s, "unavailable", None, None, 0, None,
                    0, "no-sky", attempt_log, view,
                )
            raise UnavailableError(
                f"no live satellite visible from ({user.lat_deg:.1f}, "
                f"{user.lon_deg:.1f}) under the active fault schedule"
            )
        access = live_visible[0]
        ladder = self._fallback_ladder(degraded, live_visible, object_id)

        attempts = 0
        backoff_ms = 0.0
        reason: str | None = None
        for source, satellite, hops, rtt in ladder:
            if attempts >= policy.max_attempts:
                break
            attempts += 1
            if self.fault_schedule.attempt_lost(request_index, attempts):
                reason = "transient-loss"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                if attempt_log is not None:
                    attempt_log.append(
                        {
                            "tier": TIER_OF_SOURCE[source],
                            "satellite": satellite,
                            "hops": hops,
                            "retry_index": attempts,
                            "outcome": "transient-loss",
                            "rtt_contribution_ms": step_ms,
                        }
                    )
                continue
            if not policy.within_budget(rtt):
                reason = "attempt-timeout"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                if attempt_log is not None:
                    attempt_log.append(
                        {
                            "tier": TIER_OF_SOURCE[source],
                            "satellite": satellite,
                            "hops": hops,
                            "retry_index": attempts,
                            "outcome": "attempt-timeout",
                            "rtt_contribution_ms": step_ms,
                        }
                    )
                continue
            self.cache_of(satellite).get(object_id)  # count the hit
            self.stats.retries += attempts - 1
            if attempt_log is not None:
                attempt_log.append(
                    {
                        "tier": TIER_OF_SOURCE[source],
                        "satellite": satellite,
                        "hops": hops,
                        "retry_index": attempts,
                        "outcome": "served",
                        "rtt_contribution_ms": rtt,
                    }
                )
            return self._record(
                object_id,
                t_s,
                source,
                satellite,
                hops,
                rtt + backoff_ms,
                attempts=attempts,
                fallback_reason=reason,
                attempt_log=attempt_log,
                view=view,
            )

        # Ground rung: retried until the attempt budget runs out.
        ground_reason = "no-space-replica" if not ladder else "space-exhausted"
        while not view.ground_segment_down and attempts < policy.max_attempts:
            attempts += 1
            if self.fault_schedule.attempt_lost(request_index, attempts):
                reason = "transient-loss"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                if attempt_log is not None:
                    attempt_log.append(
                        {
                            "tier": "ground",
                            "satellite": None,
                            "hops": 0,
                            "retry_index": attempts,
                            "outcome": "transient-loss",
                            "rtt_contribution_ms": step_ms,
                        }
                    )
                continue
            if not policy.within_budget(self.ground_rtt_ms):
                reason = "ground-timeout"
                self.stats.timeouts += 1
                step_ms = policy.backoff_ms(attempts)
                backoff_ms += step_ms
                if attempt_log is not None:
                    attempt_log.append(
                        {
                            "tier": "ground",
                            "satellite": None,
                            "hops": 0,
                            "retry_index": attempts,
                            "outcome": "ground-timeout",
                            "rtt_contribution_ms": step_ms,
                        }
                    )
                continue
            self._store(access.index, object_id)
            self.stats.retries += attempts - 1
            if attempt_log is not None:
                attempt_log.append(
                    {
                        "tier": "ground",
                        "satellite": None,
                        "hops": 0,
                        "retry_index": attempts,
                        "outcome": "served",
                        "rtt_contribution_ms": self.ground_rtt_ms,
                    }
                )
            return self._record(
                object_id,
                t_s,
                LookupSource.GROUND,
                None,
                0,
                self.ground_rtt_ms + backoff_ms,
                attempts=attempts,
                fallback_reason=reason if reason is not None else ground_reason,
                attempt_log=attempt_log,
                view=view,
            )

        self.stats.retries += max(0, attempts - 1)
        self.stats.unavailable += 1
        exhausted_reason = (
            "ground-down" if view.ground_segment_down else "budget-exhausted"
        )
        if rec.enabled:
            rec.inc(
                "repro_serve_unavailable_total", (("reason", exhausted_reason),)
            )
            self._emit_serve_trace(
                rec, object_id, t_s, "unavailable", None, None, 0, None,
                attempts, exhausted_reason, attempt_log, view,
            )
        if view.ground_segment_down:
            raise UnavailableError(
                f"object {object_id!r}: fallback ladder exhausted after "
                f"{attempts} attempt(s) and the ground segment is down"
            )
        raise UnavailableError(
            f"object {object_id!r}: retry budget exhausted after "
            f"{attempts} attempt(s)"
        )

    def serve_request(self, request: Request) -> ServedRequest:
        """Serve one workload :class:`~repro.workloads.requests.Request`."""
        return self.serve(request.city.location, request.object_id, request.t_s)

    def run(
        self, requests: list[Request], continue_on_unavailable: bool = False
    ) -> list[ServedRequest]:
        """Serve a whole request stream (must be time-ordered).

        With ``continue_on_unavailable`` the stream survives requests that
        raise :class:`~repro.errors.UnavailableError` under a fault
        schedule — they are counted in ``stats.unavailable`` and skipped,
        which is what availability experiments want.
        """
        last_t = -1.0
        results = []
        for request in requests:
            if request.t_s < last_t:
                raise ConfigurationError("request stream is not time-ordered")
            last_t = request.t_s
            try:
                results.append(self.serve_request(request))
            except UnavailableError:
                if not continue_on_unavailable:
                    raise
        return results

    def _nearest_holder(
        self, snapshot: SnapshotGraph, access: int, holders: frozenset[int]
    ) -> tuple[int, int, float] | None:
        return nearest_cached_satellite(
            snapshot, access, holders, self.max_hops, min_hops=1
        )

    def _record(
        self,
        object_id: str,
        t_s: float,
        source: LookupSource,
        satellite: int | None,
        hops: int,
        rtt_ms: float,
        attempts: int = 1,
        fallback_reason: str | None = None,
        attempt_log: list[dict] | None = None,
        view: FaultView | None = None,
    ) -> ServedRequest:
        if source is LookupSource.ACCESS_SATELLITE:
            self.stats.access_hits += 1
        elif source is LookupSource.DIRECT_VISIBLE:
            self.stats.direct_hits += 1
        elif source is LookupSource.ISL_NEIGHBOR:
            self.stats.isl_hits += 1
        else:
            self.stats.ground_fetches += 1
        self.stats.rtt_samples_ms.append(rtt_ms)
        rec = get_recorder()
        if rec.enabled:
            tier = TIER_OF_SOURCE[source]
            labels = _TIER_LABELS[tier]
            rec.inc("repro_serve_total", labels)
            rec.observe("repro_serve_rtt_ms", rtt_ms, labels)
            if fallback_reason is not None:
                rec.inc(
                    "repro_serve_fallback_total", (("reason", fallback_reason),)
                )
            self._emit_serve_trace(
                rec, object_id, t_s, "served", source, satellite, hops,
                rtt_ms, attempts, fallback_reason, attempt_log, view,
            )
        return ServedRequest(
            object_id=object_id,
            t_s=t_s,
            source=source,
            serving_satellite=satellite,
            isl_hops=hops,
            rtt_ms=rtt_ms,
            attempts=attempts,
            fallback_reason=fallback_reason,
        )
