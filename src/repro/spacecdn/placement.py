"""Replica placement across the constellation.

The paper's §4 argument: Shell 1 has 22 satellites per plane, so ~4 evenly
spaced copies per plane put every satellite within a few intra-plane hops of
a replica — and fewer copies suffice once cross-plane ISLs are used.
:func:`replica_hop_profile` verifies exactly that claim on the real +Grid
graph.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.errors import PlacementError
from repro.orbits.elements import ShellConfig
from repro.topology import fastcore
from repro.topology.graph import SnapshotGraph


def spaced_slots(sats_per_plane: int, copies: int, offset: int = 0) -> tuple[int, ...]:
    """``copies`` maximally spaced slot indices in a plane of ``sats_per_plane``.

    The offset rotates the pattern so consecutive planes need not align.
    """
    if copies < 1 or copies > sats_per_plane:
        raise PlacementError(
            f"copies must be in [1, {sats_per_plane}], got {copies}"
        )
    return tuple(
        (offset + round(i * sats_per_plane / copies)) % sats_per_plane
        for i in range(copies)
    )


@dataclass
class PlacementPlan:
    """Which satellites hold a replica of each object."""

    replicas: dict[str, frozenset[int]] = field(default_factory=dict)

    def holders(self, object_id: str) -> frozenset[int]:
        """Satellites holding ``object_id``; raises if unplaced."""
        holders = self.replicas.get(object_id)
        if holders is None:
            raise PlacementError(f"object {object_id!r} has no placement")
        return holders

    def place(self, object_id: str, satellites: frozenset[int]) -> None:
        if not satellites:
            raise PlacementError(f"empty placement for {object_id!r}")
        self.replicas[object_id] = satellites

    def replica_count(self, object_id: str) -> int:
        return len(self.holders(object_id))


class PlacementStrategy(ABC):
    """Strategy interface producing satellite sets for objects."""

    @abstractmethod
    def place_object(self, object_id: str, config: ShellConfig) -> frozenset[int]:
        """Choose the satellites that will hold ``object_id``."""

    def build_plan(self, object_ids: list[str], config: ShellConfig) -> PlacementPlan:
        """Place every object and return the combined plan."""
        plan = PlacementPlan()
        for object_id in object_ids:
            plan.place(object_id, self.place_object(object_id, config))
        return plan


@dataclass
class KPerPlanePlacement(PlacementStrategy):
    """``copies_per_plane`` evenly spaced replicas in every orbital plane.

    The per-object ``offset`` is derived from a stable hash so different
    objects land on different satellites, spreading storage load.
    """

    copies_per_plane: int
    stagger_planes: bool = True

    def place_object(self, object_id: str, config: ShellConfig) -> frozenset[int]:
        base_offset = _stable_hash(object_id) % config.sats_per_plane
        holders: set[int] = set()
        for plane in range(config.num_planes):
            offset = base_offset + (plane if self.stagger_planes else 0)
            for slot in spaced_slots(config.sats_per_plane, self.copies_per_plane, offset):
                holders.add(plane * config.sats_per_plane + slot)
        return frozenset(holders)


@dataclass
class RandomPlacement(PlacementStrategy):
    """``total_copies`` replicas drawn uniformly over the whole shell."""

    total_copies: int
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def place_object(self, object_id: str, config: ShellConfig) -> frozenset[int]:
        total = config.total_satellites
        if not 1 <= self.total_copies <= total:
            raise PlacementError(
                f"total_copies must be in [1, {total}], got {self.total_copies}"
            )
        chosen = self.rng.choice(total, size=self.total_copies, replace=False)
        return frozenset(int(i) for i in chosen)


def _stable_hash(text: str) -> int:
    """Deterministic string hash (Python's ``hash`` is salted per process)."""
    value = 2166136261
    for byte in text.encode():
        value = (value ^ byte) * 16777619 % 2**32
    return value


def replica_hop_profile(
    snapshot: SnapshotGraph, holders: frozenset[int]
) -> dict[int, int]:
    """ISL hop distance from every satellite to its nearest replica holder.

    Multi-source BFS over the satellite subgraph. The maximum of the returned
    values is the worst-case hop count the placement guarantees — the paper's
    "within 5 hops" claim is ``max(profile.values()) <= 5``.
    """
    if not holders:
        raise PlacementError("holders set is empty")
    missing = {h for h in holders if not snapshot.has_satellite(h)}
    if missing:
        raise PlacementError(f"holders not in graph: {sorted(missing)[:5]}")

    # Multi-source BFS over the CSR core, all satellites at once.
    hops = fastcore.nearest_hops(snapshot.core, holders, snapshot.active_mask)
    return {
        node: int(hops[node])
        for node in snapshot.satellite_nodes()
        if hops[node] != fastcore.HOP_UNREACHABLE
    }
