"""Learned regional popularity for predictive prefetch (paper §5).

The paper "foresee[s] the potential of machine learning algorithms to
predict and prefetch content on satellites as they approach field-of-view
of a country". This module supplies the simplest such learner that works:
per-region exponentially weighted request counts, queried for the top-k to
prefetch. It plugs into :class:`~repro.spacecdn.bubbles.ContentBubbleManager`
wherever the oracle :class:`~repro.spacecdn.bubbles.RegionalPopularity`
was used — the oracle-vs-learned gap is measured in the tests.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass
class PopularityPredictor:
    """Per-region exponentially weighted popularity estimates.

    Each observation adds 1 to the object's regional score; all scores in a
    region decay by ``decay`` whenever :meth:`end_epoch` is called (e.g.
    once per satellite pass), so stale hits fade and new trends surface.
    """

    decay: float = 0.8

    _scores: dict[str, dict[str, float]] = field(
        default_factory=lambda: defaultdict(dict), repr=False
    )
    observations: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {self.decay}")

    def observe(self, region: str, object_id: str, weight: float = 1.0) -> None:
        """Record one request for ``object_id`` from ``region``."""
        if weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        scores = self._scores[region]
        scores[object_id] = scores.get(object_id, 0.0) + weight
        self.observations += 1

    def end_epoch(self, region: str | None = None) -> None:
        """Decay scores (one region, or all when ``region`` is None)."""
        regions = [region] if region is not None else list(self._scores)
        for name in regions:
            scores = self._scores.get(name)
            if not scores:
                continue
            for object_id in list(scores):
                scores[object_id] *= self.decay
                if scores[object_id] < 1e-6:
                    del scores[object_id]

    def score(self, region: str, object_id: str) -> float:
        """Current popularity score (0.0 when never observed)."""
        return self._scores.get(region, {}).get(object_id, 0.0)

    def predict_top(self, region: str, count: int) -> list[str]:
        """The ``count`` highest-scoring objects for a region.

        Returns fewer when the region has fewer observed objects, and an
        empty list for an unseen region (cold start — the caller should
        fall back to global content or an oracle prior).
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        scores = self._scores.get(region)
        if not scores:
            return []
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [object_id for object_id, _ in ranked[:count]]

    def regions_seen(self) -> list[str]:
        """Regions with at least one live score."""
        return sorted(r for r, s in self._scores.items() if s)


@dataclass
class LearnedPrefetcher:
    """Adapter: drives a bubble cache's prefetch from learned popularity.

    Wraps a :class:`PopularityPredictor` so it can stand in for the oracle
    ``RegionalPopularity.top_objects`` inside a prefetch loop: requests are
    fed back via :meth:`observe_request`, and pass boundaries via
    :meth:`on_pass_complete`.
    """

    predictor: PopularityPredictor = field(default_factory=PopularityPredictor)

    def observe_request(self, region: str, object_id: str) -> None:
        self.predictor.observe(region, object_id)

    def on_pass_complete(self, region: str) -> None:
        self.predictor.end_epoch(region)

    def prefetch_list(self, region: str, count: int) -> list[str]:
        """What to prefetch before the next pass over ``region``."""
        return self.predictor.predict_top(region, count)

    def hit_rate_vs_oracle(self, region: str, oracle_top: list[str]) -> float:
        """Overlap between the learned top-k and an oracle top-k in [0, 1]."""
        if not oracle_top:
            raise ConfigurationError("oracle list is empty")
        learned = set(self.prefetch_list(region, len(oracle_top)))
        return len(learned & set(oracle_top)) / len(oracle_top)
