"""Failure resilience: what satellite losses do to SpaceCDN reachability.

LEO satellites fail, deorbit, and duty-cycle out for thermal reasons; a
placement must survive holes in the grid. :func:`fail_satellites` derives a
degraded snapshot (failed nodes and their ISLs masked out of the CSR core,
and removed from any materialised graph view);
:func:`placement_under_failures` measures how the worst-case hop distance
to a replica degrades as the failure fraction grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, PlacementError
from repro.topology import fastcore
from repro.topology.graph import SnapshotGraph


def fail_satellites(
    snapshot: SnapshotGraph, failed: frozenset[int]
) -> SnapshotGraph:
    """A degraded copy of a snapshot with the failed satellites removed.

    The original snapshot is untouched — ``snapshot.copy()`` duplicates any
    materialised networkx view, so removing nodes here can never alias the
    original's graph — and the CSR arrays are shared (failures are a node
    mask, not a rebuild). Ground nodes are preserved minus links to failed
    satellites.
    """
    satellites = set(snapshot.satellite_nodes())
    unknown = failed - satellites
    if unknown:
        raise ConfigurationError(f"unknown satellites in failure set: {sorted(unknown)[:5]}")
    degraded = snapshot.copy()
    degraded.failed = snapshot.failed | failed
    if degraded._graph is not None:
        degraded._graph.remove_nodes_from(failed)
    return degraded


def degrade_snapshot(
    snapshot: SnapshotGraph,
    failed: frozenset[int] = frozenset(),
    cut_links=(),
    latency_multiplier: np.ndarray | None = None,
) -> SnapshotGraph:
    """A degraded sibling combining node failures with ISL-level faults.

    Node failures become the active mask (as in :func:`fail_satellites`);
    cut links and per-link latency multipliers become a fresh weight/
    liveness vector over the shared CSR topology (see
    :func:`repro.topology.fastcore.degrade_core`). Either way the healthy
    snapshot is never mutated and nothing is rebuilt.
    """
    degraded = fail_satellites(snapshot, failed)
    cut = tuple(cut_links)
    if cut or latency_multiplier is not None:
        degraded = degraded.with_core(
            fastcore.degrade_core(snapshot.core, latency_multiplier, cut)
        )
    return degraded


def random_failure_set(
    total_satellites: int, fraction: float, rng: np.random.Generator
) -> frozenset[int]:
    """A uniformly random failed-satellite set of the given fraction."""
    if not 0.0 <= fraction < 1.0:
        raise ConfigurationError(f"failure fraction must be in [0, 1), got {fraction}")
    count = round(total_satellites * fraction)
    if count == 0:
        return frozenset()
    chosen = rng.choice(total_satellites, size=count, replace=False)
    return frozenset(int(i) for i in chosen)


@dataclass(frozen=True)
class ResilienceReport:
    """Reachability of a placement under one failure set."""

    failed_fraction: float
    surviving_replicas: int
    reachable_fraction: float
    """Fraction of surviving satellites that can still reach a replica."""
    worst_case_hops: int
    """Max hops to the nearest surviving replica (-1 if some satellite
    cannot reach any replica at all)."""
    mean_hops: float


def placement_under_failures(
    snapshot: SnapshotGraph,
    holders: frozenset[int],
    failed: frozenset[int],
) -> ResilienceReport:
    """Evaluate a replica placement on a degraded constellation."""
    if not holders:
        raise PlacementError("holders set is empty")
    degraded = fail_satellites(snapshot, failed)
    surviving_holders = holders - failed
    survivors = degraded.satellite_nodes()
    if not survivors:
        raise ConfigurationError("every satellite failed")

    if not surviving_holders:
        return ResilienceReport(
            failed_fraction=len(failed) / len(snapshot.satellite_nodes()),
            surviving_replicas=0,
            reachable_fraction=0.0,
            worst_case_hops=-1,
            mean_hops=float("inf"),
        )

    # Multi-source BFS from the surviving replicas over the masked core.
    hops = fastcore.nearest_hops(
        degraded.core, surviving_holders, degraded.active_mask
    )
    survivor_hops = hops[np.asarray(survivors, dtype=np.int64)]
    reachable = survivor_hops != fastcore.HOP_UNREACHABLE
    hop_values = survivor_hops[reachable]
    unreachable = int((~reachable).sum())

    total = len(survivors)
    return ResilienceReport(
        failed_fraction=len(failed) / len(snapshot.satellite_nodes()),
        surviving_replicas=len(surviving_holders),
        reachable_fraction=(total - unreachable) / total,
        worst_case_hops=(-1 if unreachable else int(hop_values.max())),
        mean_hops=float(np.mean(hop_values)) if hop_values.size else float("inf"),
    )
