"""Observability for the SpaceCDN stack: metrics, traces, profiles.

Three stdlib-only pillars behind one recorder facade:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms keyed by label tuples, exported as
  Prometheus text or JSON through :mod:`repro.atomicio`;
* :class:`~repro.obs.tracing.TraceBuffer` — span records of the serve
  path (one span per ``SpaceCdnSystem.serve`` call, one child span per
  fallback-ladder attempt), flushed as JSONL and summarised by
  ``repro obs summarize``;
* :class:`~repro.obs.profiling.ProfileAccumulator` — wall-clock timer
  contexts around the fastcore kernels, cache plumbing and runner shards.

The process-global default recorder is a no-op: every instrumented call
site stays permanently wired through the hot paths, and with observability
disabled (the default) the instrumented code produces byte-identical
output at indistinguishable cost. Enable it per run::

    from repro import obs

    recorder = obs.ObsRecorder()
    with obs.recording(recorder):
        system.run(requests)
    recorder.flush(metrics_path="metrics.prom", trace_path="trace.jsonl")
"""

from repro.obs.benchdiff import diff_benchmark_files, format_diff, has_regressions
from repro.obs.events import EventLog, read_events, render_events, render_events_file
from repro.obs.merge import merge_delta, registry_diff, snapshot_delta
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from repro.obs.profiling import ProfileAccumulator
from repro.obs.recorder import (
    NOOP_RECORDER,
    NoopRecorder,
    ObsRecorder,
    get_recorder,
    recording,
    reset_recorder,
    set_recorder,
)
from repro.obs.summarize import summarize_trace, summarize_trace_file
from repro.obs.tracing import TraceBuffer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "EventLog",
    "MetricsRegistry",
    "ProfileAccumulator",
    "TraceBuffer",
    "NOOP_RECORDER",
    "NoopRecorder",
    "ObsRecorder",
    "diff_benchmark_files",
    "format_diff",
    "get_recorder",
    "has_regressions",
    "merge_delta",
    "read_events",
    "registry_diff",
    "render_events",
    "render_events_file",
    "recording",
    "reset_recorder",
    "set_recorder",
    "snapshot_delta",
    "summarize_trace",
    "summarize_trace_file",
]
