"""Observability for the SpaceCDN stack: metrics, series, traces, profiles.

Four stdlib-plus-numpy pillars behind one recorder facade:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  fixed-bucket histograms keyed by label tuples, exported as
  Prometheus text or JSON through :mod:`repro.atomicio`;
* :class:`~repro.obs.timeseries.TimeSeriesBuffer` — the same metric
  kinds bucketed into fixed-width windows of *simulated* time, the
  substrate for ``repro obs timeline`` sparkline dashboards and the
  :mod:`repro.obs.slo` error-budget engine; every windowed cell is an
  integer, so parallel runs merge to byte-identical series;
* :class:`~repro.obs.tracing.TraceBuffer` — span records of the serve
  path (one span per ``SpaceCdnSystem.serve`` call, one child span per
  fallback-ladder attempt), flushed as JSONL and summarised by
  ``repro obs summarize``;
* :class:`~repro.obs.profiling.ProfileAccumulator` — wall-clock timer
  contexts around the fastcore kernels, cache plumbing and runner shards.

The process-global default recorder is a no-op: every instrumented call
site stays permanently wired through the hot paths, and with observability
disabled (the default) the instrumented code produces byte-identical
output at indistinguishable cost. Enable it per run::

    from repro import obs

    recorder = obs.ObsRecorder()
    with obs.recording(recorder):
        system.run(requests)
    recorder.flush(metrics_path="metrics.prom", trace_path="trace.jsonl",
                   timeseries_path="timeseries.json")
"""

from repro.obs.benchdiff import diff_benchmark_files, format_diff, has_regressions
from repro.obs.dashboard import render_timeline
from repro.obs.events import EventLog, read_events, render_events, render_events_file
from repro.obs.merge import merge_delta, registry_diff, snapshot_delta
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry
from repro.obs.profiling import ProfileAccumulator
from repro.obs.recorder import (
    NOOP_RECORDER,
    NoopRecorder,
    ObsRecorder,
    get_recorder,
    recording,
    reset_recorder,
    set_recorder,
)
from repro.obs.slo import (
    SloReport,
    SloSpec,
    evaluate_slo,
    evaluate_slos,
    parse_slo,
    render_slo_report,
)
from repro.obs.summarize import summarize_trace, summarize_trace_file
from repro.obs.timeseries import (
    DEFAULT_WINDOW_S,
    TimeSeriesBuffer,
    read_timeseries,
    timeseries_diff,
)
from repro.obs.tracing import TraceBuffer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_WINDOW_S",
    "EventLog",
    "MetricsRegistry",
    "ProfileAccumulator",
    "SloReport",
    "SloSpec",
    "TimeSeriesBuffer",
    "TraceBuffer",
    "NOOP_RECORDER",
    "NoopRecorder",
    "ObsRecorder",
    "diff_benchmark_files",
    "evaluate_slo",
    "evaluate_slos",
    "format_diff",
    "get_recorder",
    "has_regressions",
    "merge_delta",
    "parse_slo",
    "read_events",
    "read_timeseries",
    "registry_diff",
    "render_events",
    "render_events_file",
    "render_slo_report",
    "render_timeline",
    "recording",
    "reset_recorder",
    "set_recorder",
    "snapshot_delta",
    "summarize_trace",
    "summarize_trace_file",
    "timeseries_diff",
]
