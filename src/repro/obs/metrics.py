"""Metrics registry: counters, gauges, fixed-bucket histograms.

Series are keyed by ``(name, labels)`` where ``labels`` is a tuple of
``(key, value)`` pairs, so instrumented call sites can pass pre-built
constant tuples and pay no allocation on the hot path. Exporters render
the whole registry as Prometheus text exposition format or as one JSON
document; both are written crash-safely through :mod:`repro.atomicio`.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from pathlib import Path

from repro.analysis.quantiles import histogram_quantile
from repro.atomicio import atomic_write_text
from repro.errors import ObsError

Labels = tuple[tuple[str, str], ...]

DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0,
    150.0, 200.0, 300.0, 500.0, 1000.0,
)
"""Upper bounds (ms) of the default RTT histogram; +Inf is implicit."""

OVERLOAD_QUEUE_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
)
"""Upper bounds (ms) of the queueing-delay histogram: finer at the low end
than the RTT buckets, since M/M/1 inflation is sub-millisecond until
utilisation approaches the knee."""


def _check_labels(labels: Labels) -> Labels:
    for pair in labels:
        if len(pair) != 2:
            raise ObsError(f"labels must be (key, value) pairs, got {pair!r}")
    return labels


def _format_value(value: float) -> str:
    """Prometheus-style number rendering (integers without a trailing .0)."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_string(labels: Labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("bounds", "bucket_counts", "count", "total")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ObsError("histogram buckets must be a non-empty ascending tuple")
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-resolved quantile estimate (upper bound of the hit bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        return histogram_quantile(self.cumulative(), self.count, q)


class MetricsRegistry:
    """All metric series of one recording session."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, Labels], float] = {}
        self._gauges: dict[tuple[str, Labels], float] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, name: str, labels: Labels = (), value: float = 1.0) -> None:
        key = (name, _check_labels(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, labels: Labels = ()) -> None:
        self._gauges[(name, _check_labels(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        labels: Labels = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        """Record one histogram sample.

        The first observation of a metric name pins its bucket bounds;
        later observations with different bounds are a configuration error
        (mixed-bucket series cannot be aggregated).
        """
        pinned = self._buckets.setdefault(name, tuple(buckets))
        if pinned != tuple(buckets):
            raise ObsError(
                f"histogram {name!r} was created with buckets {pinned}, "
                f"got {tuple(buckets)}"
            )
        key = (name, _check_labels(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(pinned)
        histogram.observe(value)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, labels: Labels = ()) -> float:
        return self._counters.get((name, labels), 0.0)

    def gauge_value(self, name: str, labels: Labels = ()) -> float | None:
        return self._gauges.get((name, labels))

    def histogram(self, name: str, labels: Labels = ()) -> Histogram | None:
        return self._histograms.get((name, labels))

    @property
    def is_empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    # -- delta serialisation -----------------------------------------------

    def snapshot_delta(self, drain: bool = False) -> dict:
        """A JSON-serialisable snapshot of every series.

        The snapshot is what a parallel worker ships to its parent at shard
        completion (:mod:`repro.obs.merge` folds it back in). With
        ``drain=True`` the registry empties so consecutive snapshots are
        disjoint deltas; histogram bucket pins are kept, so later
        observations in the same process stay aggregatable.
        """
        delta = {
            "counters": [
                [name, [list(pair) for pair in labels], value]
                for (name, labels), value in self._counters.items()
            ],
            "gauges": [
                [name, [list(pair) for pair in labels], value]
                for (name, labels), value in self._gauges.items()
            ],
            "histograms": [
                [
                    name,
                    [list(pair) for pair in labels],
                    {
                        "bounds": list(histogram.bounds),
                        "bucket_counts": list(histogram.bucket_counts),
                        "count": histogram.count,
                        "total": histogram.total,
                    },
                ]
                for (name, labels), histogram in self._histograms.items()
            ],
        }
        if drain:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
        return delta

    # -- exporters ---------------------------------------------------------

    def render_prometheus(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        by_kind = (
            ("counter", self._counters),
            ("gauge", self._gauges),
        )
        for kind, series in by_kind:
            for name in sorted({n for n, _ in series}):
                lines.append(f"# TYPE {name} {kind}")
                for (series_name, labels), value in sorted(series.items()):
                    if series_name == name:
                        lines.append(
                            f"{name}{_label_string(labels)} {_format_value(value)}"
                        )
        for name in sorted({n for n, _ in self._histograms}):
            lines.append(f"# TYPE {name} histogram")
            for (series_name, labels), histogram in sorted(self._histograms.items()):
                if series_name != name:
                    continue
                for bound, cumulative in histogram.cumulative():
                    le = (("le", _format_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_label_string(labels, le)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_label_string(labels)} "
                    f"{_format_value(histogram.total)}"
                )
                lines.append(f"{name}_count{_label_string(labels)} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """The whole registry as one JSON-serialisable document."""

        def label_dict(labels: Labels) -> dict[str, str]:
            return {key: value for key, value in labels}

        return {
            "counters": [
                {"name": name, "labels": label_dict(labels), "value": value}
                for (name, labels), value in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": name, "labels": label_dict(labels), "value": value}
                for (name, labels), value in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": label_dict(labels),
                    "buckets": [
                        {"le": "+Inf" if math.isinf(b) else b, "count": c}
                        for b, c in histogram.cumulative()
                    ],
                    "sum": histogram.total,
                    "count": histogram.count,
                }
                for (name, labels), histogram in sorted(self._histograms.items())
            ],
        }

    def write_prometheus(self, path: str | Path) -> None:
        """Atomically write the Prometheus text rendering to ``path``."""
        atomic_write_text(path, self.render_prometheus())

    def write_json(self, path: str | Path) -> None:
        """Atomically write the JSON rendering to ``path``."""
        atomic_write_text(path, json.dumps(self.to_json(), indent=1, sort_keys=True))
