"""Wall-clock profiling hooks: cheap timer contexts keyed by site name.

A *site* is a stable string naming one instrumented code region
(``"fastcore.latency_batch"``, ``"runner.shard"``, ...). Each site keeps
call count and total/min/max seconds — enough to answer "where did the
wall-clock go" for a whole run without a sampling profiler, and cheap
enough (one ``perf_counter`` pair per call) to leave permanently wired.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SiteStats:
    """Accumulated timings of one profiling site."""

    calls: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds


class _Timer:
    """Context manager timing one region into an accumulator site."""

    __slots__ = ("_profile", "_site", "_start")

    def __init__(self, profile: "ProfileAccumulator", site: str) -> None:
        self._profile = profile
        self._site = site
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profile.add(self._site, time.perf_counter() - self._start)


@dataclass
class ProfileAccumulator:
    """Per-site wall-clock accounting for one recording session."""

    sites: dict[str, SiteStats] = field(default_factory=dict)

    def timer(self, site: str) -> _Timer:
        """A context manager that charges its elapsed time to ``site``."""
        return _Timer(self, site)

    def add(self, site: str, seconds: float) -> None:
        stats = self.sites.get(site)
        if stats is None:
            stats = self.sites[site] = SiteStats()
        stats.add(seconds)

    @property
    def is_empty(self) -> bool:
        return not self.sites

    def summary(self) -> dict[str, dict[str, float]]:
        """JSON-serialisable per-site timing summary, sorted by total time."""
        return {
            site: {
                "calls": stats.calls,
                "total_s": stats.total_s,
                "mean_s": stats.total_s / stats.calls if stats.calls else 0.0,
                "min_s": stats.min_s if stats.calls else 0.0,
                "max_s": stats.max_s,
            }
            for site, stats in sorted(
                self.sites.items(), key=lambda kv: -kv[1].total_s
            )
        }
