"""Wall-clock profiling hooks: cheap timer contexts keyed by site name.

A *site* is a stable string naming one instrumented code region
(``"fastcore.latency_batch"``, ``"runner.shard"``, ...). Each site keeps
call count and total/min/max seconds — enough to answer "where did the
wall-clock go" for a whole run without a sampling profiler, and cheap
enough (one ``perf_counter`` pair per call) to leave permanently wired.

For cross-process aggregation the accumulator snapshots as a serialisable
*delta* (:meth:`ProfileAccumulator.snapshot_delta`). A draining snapshot
bumps an internal epoch: timers still open at snapshot time are counted as
*abandoned* (they belong to work that was cut short — a worker killed
mid-shard) and their eventual close is discarded instead of poisoning the
next delta with a partial measurement.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SiteStats:
    """Accumulated timings of one profiling site."""

    calls: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.calls += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, calls: int, total_s: float, min_s: float, max_s: float) -> None:
        """Fold another accumulator's stats for the same site into this one."""
        self.calls += calls
        self.total_s += total_s
        if min_s < self.min_s:
            self.min_s = min_s
        if max_s > self.max_s:
            self.max_s = max_s


class _Timer:
    """Context manager timing one region into an accumulator site."""

    __slots__ = ("_profile", "_site", "_start", "_epoch")

    def __init__(self, profile: "ProfileAccumulator", site: str) -> None:
        self._profile = profile
        self._site = site
        self._start = 0.0
        self._epoch = 0

    def __enter__(self) -> "_Timer":
        self._epoch = self._profile._open_timer()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profile._close_timer(
            self._site, time.perf_counter() - self._start, self._epoch
        )


@dataclass
class ProfileAccumulator:
    """Per-site wall-clock accounting for one recording session."""

    sites: dict[str, SiteStats] = field(default_factory=dict)
    _epoch: int = field(default=0, repr=False)
    _open: int = field(default=0, repr=False)

    def timer(self, site: str) -> _Timer:
        """A context manager that charges its elapsed time to ``site``."""
        return _Timer(self, site)

    def add(self, site: str, seconds: float) -> None:
        stats = self.sites.get(site)
        if stats is None:
            stats = self.sites[site] = SiteStats()
        stats.add(seconds)

    # -- timer bookkeeping (epoch-guarded against draining snapshots) ------

    def _open_timer(self) -> int:
        self._open += 1
        return self._epoch

    def _close_timer(self, site: str, seconds: float, epoch: int) -> None:
        if epoch != self._epoch:
            # The accumulator was drained while this timer was open: its
            # measurement spans the snapshot boundary and was already
            # counted as abandoned — discard rather than mis-attribute.
            return
        self._open -= 1
        self.add(site, seconds)

    @property
    def open_timers(self) -> int:
        """How many timers are currently open (this epoch)."""
        return self._open

    # -- delta serialisation -----------------------------------------------

    def snapshot_delta(self, drain: bool = False) -> dict:
        """A JSON-serialisable snapshot of every site.

        With ``drain=True`` the accumulator resets for the next delta and
        any still-open timer is *abandoned*: reported in the snapshot's
        ``"abandoned"`` count and discarded when it eventually closes.
        """
        delta = {
            "sites": {
                site: [stats.calls, stats.total_s, stats.min_s, stats.max_s]
                for site, stats in self.sites.items()
            },
            "abandoned": self._open if drain else 0,
        }
        if drain:
            self.sites = {}
            self._epoch += 1
            self._open = 0
        return delta

    @property
    def is_empty(self) -> bool:
        return not self.sites

    def summary(self) -> dict[str, dict[str, float]]:
        """JSON-serialisable per-site timing summary, sorted by total time."""
        return {
            site: {
                "calls": stats.calls,
                "total_s": stats.total_s,
                "mean_s": stats.total_s / stats.calls if stats.calls else 0.0,
                "min_s": stats.min_s if stats.calls else 0.0,
                "max_s": stats.max_s,
            }
            for site, stats in sorted(
                self.sites.items(), key=lambda kv: -kv[1].total_s
            )
        }
