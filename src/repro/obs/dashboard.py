"""``repro obs timeline`` — the windowed series as an ASCII dashboard.

One sparkline row per metric, all rows aligned on the same window axis,
plus one marker row per SLO with ``!`` at breached windows. The renderer
is pure text over the exported ``obs-timeseries.json`` document, in the
same spirit as :func:`repro.analysis.plot.ascii_cdf`: good enough to see
the paper's temporal phenomena — the availability dip when satellites
duty-cycle down, the p99 inflation during a fault window, the shed burst
at the overload knee — without leaving the terminal.
"""

from __future__ import annotations

import math

from repro.analysis.quantiles import histogram_quantile
from repro.errors import ObsError
from repro.obs.slo import (
    BREAKER_OPENS,
    OFFERED_TOTAL,
    OVERLOAD_SHED,
    SERVE_HIT,
    SERVE_RETRIES,
    SERVE_RTT_MS,
    SERVE_TOTAL,
    SERVE_UNAVAILABLE,
    SloReport,
    _sum_counter,
    _sum_histogram,
)

_LEVELS = " .:-=+*#%@"
"""Ten brightness levels; index scales linearly between the row's min/max."""


def _sparkline(values: list[float], lo: float, hi: float) -> str:
    cells: list[str] = []
    for value in values:
        if math.isnan(value):
            cells.append(" ")  # blank = no data; real minima stay visible
        elif math.isinf(value):
            cells.append(_LEVELS[-1])  # above the largest bucket bound
        elif hi <= lo:
            cells.append(_LEVELS[len(_LEVELS) // 2])
        else:
            index = 1 + (value - lo) / (hi - lo) * (len(_LEVELS) - 2)
            cells.append(_LEVELS[int(round(index))])
    return "".join(cells)


def _downsample(values: list[float], width: int) -> list[float]:
    """Mean-pool a dense row onto at most ``width`` columns."""
    if len(values) <= width:
        return values
    chunk = math.ceil(len(values) / width)
    pooled: list[float] = []
    for start in range(0, len(values), chunk):
        group = [v for v in values[start : start + chunk] if not math.isnan(v)]
        pooled.append(sum(group) / len(group) if group else math.nan)
    return pooled


def _short(name: str) -> str:
    """A compact row label for a series outside the serve-path vocabulary."""
    return name.removeprefix("repro_").removesuffix("_total")


def _fmt(value: float, unit: str) -> str:
    if math.isnan(value):
        return "n/a"
    if math.isinf(value):
        return "inf"
    if unit == "%":
        return f"{value:.1%}"
    if unit == "ms":
        return f"{value:g}ms"
    return f"{value:g}"


class _Row:
    """One dashboard row: a label, per-window values, a display unit."""

    def __init__(self, label: str, values: list[float], unit: str) -> None:
        self.label = label
        self.values = values
        self.unit = unit

    @property
    def has_data(self) -> bool:
        if not any(not math.isnan(v) for v in self.values):
            return False
        if self.unit:
            return True
        # Pure count rows (unitless) that never fired are noise, not data.
        return any(v for v in self.values if not math.isnan(v))


def _quantile_row(
    label: str,
    q: float,
    bounds: tuple[float, ...],
    cells: dict[int, list],
    axis: list[int],
) -> _Row:
    values: list[float] = []
    for window in axis:
        cell = cells.get(window)
        if cell is None or cell[1] == 0:
            values.append(math.nan)
            continue
        cumulative: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(bounds, cell[0]):
            running += bucket
            cumulative.append((bound, running))
        cumulative.append((math.inf, cell[1]))
        values.append(histogram_quantile(cumulative, cell[1], q))
    return _Row(label, values, "ms")


def render_timeline(
    doc: dict, reports: list[SloReport] | None = None, width: int = 60
) -> str:
    """The dashboard text for one time-series document.

    ``reports`` (from :func:`repro.obs.slo.evaluate_slos`) adds one marker
    row per SLO under the sparklines; ``width`` caps the number of columns
    (denser series mean-pool onto the axis).
    """
    windows = [int(w) for w in doc.get("windows", [])]
    if not windows:
        raise ObsError("time series holds no windows; nothing to render")
    axis = list(range(windows[0], windows[-1] + 1))

    served = _sum_counter(doc, SERVE_TOTAL)
    unavailable = _sum_counter(doc, SERVE_UNAVAILABLE)
    shed = _sum_counter(doc, OVERLOAD_SHED)
    hits = _sum_counter(doc, SERVE_HIT)
    retries = _sum_counter(doc, SERVE_RETRIES)
    opens = _sum_counter(doc, BREAKER_OPENS)
    offered = _sum_counter(doc, OFFERED_TOTAL)
    bounds, cells = _sum_histogram(doc, SERVE_RTT_MS)

    def totals(window: int) -> tuple[float, float, float]:
        s = served.get(window, 0.0)
        u = unavailable.get(window, 0.0)
        d = shed.get(window, 0.0)
        return s, u, d

    def availability(window: int) -> float:
        s, u, d = totals(window)
        total = s + u + d
        return math.nan if total == 0 else s / total

    def ratio(
        num: dict[int, float], den: dict[int, float], window: int
    ) -> float:
        d = den.get(window, 0.0)
        return math.nan if d == 0 else num.get(window, 0.0) / d

    def count_row(label: str, series: dict[int, float]) -> _Row:
        values = [
            series.get(w, 0.0) if any(totals(w)) or w in series else math.nan
            for w in axis
        ]
        return _Row(label, values, "")

    request_total = {
        w: sum(totals(w)) for w in axis if any(totals(w))
    }
    rows = [
        _Row("offered/w", [offered.get(w, math.nan) for w in axis], ""),
        _Row(
            "requests/w",
            [request_total.get(w, math.nan) for w in axis],
            "",
        ),
        _Row("avail", [availability(w) for w in axis], "%"),
        _Row("hit ratio", [ratio(hits, served, w) for w in axis], "%"),
    ]
    if bounds:
        rows.append(_quantile_row("p50 rtt", 0.50, bounds, cells, axis))
        rows.append(_quantile_row("p99 rtt", 0.99, bounds, cells, axis))
    rows += [
        count_row("unavail/w", unavailable),
        count_row("shed/w", shed),
        count_row("retries/w", retries),
        _Row(
            "brk opens",
            [opens.get(w, math.nan) for w in axis],
            "",
        ),
    ]

    # Series beyond the serve-path vocabulary (fault schedules, experiment
    # extras) still get a row each, so any instrumented run renders.
    known_counters = {
        SERVE_TOTAL,
        SERVE_UNAVAILABLE,
        OVERLOAD_SHED,
        SERVE_HIT,
        SERVE_RETRIES,
        BREAKER_OPENS,
        OFFERED_TOTAL,
    }
    counter_names = {series["name"] for series in doc.get("counters", ())}
    for name in sorted(counter_names - known_counters):
        data = _sum_counter(doc, name)
        rows.append(_Row(_short(name), [data.get(w, math.nan) for w in axis], ""))
    histogram_names = {series["name"] for series in doc.get("histograms", ())}
    for name in sorted(histogram_names - {SERVE_RTT_MS}):
        extra_bounds, extra_cells = _sum_histogram(doc, name)
        rows.append(
            _quantile_row(f"{_short(name)} p50", 0.50, extra_bounds, extra_cells, axis)
        )

    rows = [row for row in rows if row.has_data]
    if not rows:
        raise ObsError("time series holds no renderable metrics")

    label_width = max(len(row.label) for row in rows)
    if reports:
        label_width = max(
            label_width, *(len(f"slo {r.spec.metric}") for r in reports)
        )
    window_s = float(doc.get("window_s", 0.0))
    lines = [
        f"windows {axis[0]}..{axis[-1]}  ({len(axis)} x {window_s:g}s simulated)",
    ]
    for row in rows:
        pooled = _downsample(row.values, width)
        present = [v for v in pooled if math.isfinite(v)]
        lo, hi = (min(present), max(present)) if present else (0.0, 0.0)
        spark = _sparkline(pooled, lo, hi)
        lines.append(
            f"{row.label:<{label_width}} |{spark}| "
            f"{_fmt(lo, row.unit)}..{_fmt(hi, row.unit)}"
        )
    for report in reports or ():
        breached = set(report.breached_windows)
        evaluated = {v.window for v in report.verdicts}
        marks = [
            math.nan if w not in evaluated else (1.0 if w in breached else 0.0)
            for w in axis
        ]
        pooled = _downsample(marks, width)
        cells_out = "".join(
            " " if math.isnan(v) else ("!" if v > 0 else ".") for v in pooled
        )
        label = f"slo {report.spec.metric}"
        verdict = (
            f"BREACH x{len(breached)}" if breached else "ok"
        )
        lines.append(f"{label:<{label_width}} |{cells_out}| {verdict}")
    lines.append(f"scale: low '{_LEVELS[1]}' .. high '{_LEVELS[-1]}'; '!' = SLO breach")
    return "\n".join(lines)
