"""``repro obs summarize`` — turn a serve-path trace into tier tables.

Reads the JSONL trace emitted by an ``--obs`` run and renders, per
fallback-ladder tier: how many requests each tier served (and what share
arrived there as a fallback), the RTT distribution of those requests, and
the per-attempt outcome breakdown — the evidence layer for "why did the
p99 inflate" questions about a chaos sweep.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable

from repro.analysis.quantiles import sample_quantile as _quantile
from repro.analysis.tables import format_table
from repro.errors import ObsError
from repro.obs.tracing import read_trace

TIER_ORDER = ("access", "direct-visible", "isl", "ground")


def _fmt_ms(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value:.1f}"


def summarize_trace(spans: Iterable[dict]) -> str:
    """Render the tier tables of one serve-path trace.

    Understands both trace shapes the serve layer emits: scalar serving
    (one ``serve`` span per request with per-``attempt`` children) and
    batched serving (one ``serve_cohort`` span per cohort with per-``rung``
    attempt-count children). Mixed traces aggregate across both; cohort
    spans carry no per-request RTTs, so RTT quantile columns render "n/a"
    for tiers served only by cohorts (the RTT histogram in the metrics file
    keeps the distribution either way).
    """
    serve_rtts: dict[str, list[float]] = {}
    serve_fallbacks: dict[str, int] = {}
    cohort_served: dict[str, int] = {}
    unavailable = 0
    shed = 0
    shed_by: dict[tuple[str, str], int] = {}
    breaker_state: dict[object, str] = {}
    breaker_transitions: dict[tuple[str, str], int] = {}
    requests = 0
    attempt_counts: dict[str, dict[str, int]] = {}
    attempt_contributions: dict[str, list[float]] = {}

    for span in spans:
        kind = span.get("kind")
        if kind == "serve":
            requests += 1
            if span.get("outcome") == "unavailable":
                unavailable += 1
                continue
            if span.get("outcome") == "shed":
                shed += 1
                key = (str(span.get("priority", "?")),
                       str(span.get("fallback_reason", "?")))
                shed_by[key] = shed_by.get(key, 0) + 1
                continue
            tier = span.get("source", "?")
            serve_rtts.setdefault(tier, []).append(float(span.get("rtt_ms", 0.0)))
            if span.get("fallback_reason") is not None:
                serve_fallbacks[tier] = serve_fallbacks.get(tier, 0) + 1
        elif kind == "serve_cohort":
            requests += int(span.get("size", 0))
            unavailable += int(span.get("unavailable", 0))
            shed += int(span.get("shed", 0))
        elif kind == "shed":
            key = (str(span.get("priority", "?")), str(span.get("reason", "?")))
            shed_by[key] = shed_by.get(key, 0) + int(span.get("count", 0))
        elif kind == "breaker":
            old = str(span.get("from_state", "?"))
            new = str(span.get("to_state", "?"))
            breaker_state[span.get("target")] = new
            breaker_transitions[(old, new)] = (
                breaker_transitions.get((old, new), 0) + 1
            )
        elif kind == "rung":
            tier = span.get("tier", "?")
            outcome = span.get("outcome", "?")
            count = int(span.get("count", 0))
            per_tier = attempt_counts.setdefault(tier, {})
            per_tier[outcome] = per_tier.get(outcome, 0) + count
            if outcome == "served":
                cohort_served[tier] = cohort_served.get(tier, 0) + count
        elif kind == "attempt":
            tier = span.get("tier", "?")
            outcome = span.get("outcome", "?")
            per_tier = attempt_counts.setdefault(tier, {})
            per_tier[outcome] = per_tier.get(outcome, 0) + 1
            attempt_contributions.setdefault(tier, []).append(
                float(span.get("rtt_contribution_ms", 0.0))
            )

    if requests == 0 and not attempt_counts:
        raise ObsError("trace holds no serve or attempt spans")

    tiers = [t for t in TIER_ORDER if t in serve_rtts or t in attempt_counts]
    tiers += sorted((set(serve_rtts) | set(attempt_counts)) - set(tiers))

    serve_rows = []
    for tier in tiers:
        rtts = sorted(serve_rtts.get(tier, []))
        hits = len(rtts) + cohort_served.get(tier, 0)
        serve_rows.append(
            (
                tier,
                hits,
                f"{hits / requests:.1%}" if requests else "n/a",
                serve_fallbacks.get(tier, 0),
                _fmt_ms(_quantile(rtts, 0.5)),
                _fmt_ms(_quantile(rtts, 0.99)),
            )
        )
    if unavailable:
        serve_rows.append(
            ("(unavailable)", unavailable, f"{unavailable / requests:.1%}",
             0, "n/a", "n/a")
        )
    if shed:
        serve_rows.append(
            ("(shed)", shed, f"{shed / requests:.1%}", 0, "n/a", "n/a")
        )
    serve_table = format_table(
        ("tier", "served", "share", "fallback", "p50 RTT ms", "p99 RTT ms"),
        serve_rows,
    )

    attempt_rows = []
    for tier in tiers:
        outcomes = attempt_counts.get(tier, {})
        contributions = sorted(attempt_contributions.get(tier, []))
        attempt_rows.append(
            (
                tier,
                sum(outcomes.values()),
                outcomes.get("served", 0),
                outcomes.get("transient-loss", 0),
                outcomes.get("attempt-timeout", 0)
                + outcomes.get("ground-timeout", 0),
                outcomes.get("breaker-open", 0)
                + outcomes.get("admission-reject", 0)
                + outcomes.get("deadline-exhausted", 0),
                _fmt_ms(_quantile(contributions, 0.5)),
            )
        )
    attempt_table = format_table(
        ("tier", "attempts", "served", "lost", "timed out", "refused",
         "p50 contrib ms"),
        attempt_rows,
    )

    outcome_note = f"{unavailable} unavailable"
    if shed:
        outcome_note += f", {shed} shed"
    report = (
        f"{requests} requests ({outcome_note})\n\n"
        f"Per-tier serving outcomes:\n{serve_table}\n\n"
        f"Per-tier ladder attempts:\n{attempt_table}"
    )
    overload_section = _render_overload(
        shed, shed_by, breaker_state, breaker_transitions
    )
    if overload_section:
        report += f"\n\n{overload_section}"
    return report


def _render_overload(
    shed: int,
    shed_by: dict[tuple[str, str], int],
    breaker_state: dict[object, str],
    breaker_transitions: dict[tuple[str, str], int],
) -> str:
    """The overload-protection section; empty when the trace shows none.

    Everything here reconciles exactly with the metrics file of the same
    run: the shed rows mirror ``repro_overload_shed_total{class,reason}``
    and the state counts mirror the final ``repro_breaker_state{state}``
    gauges (both are driven by the same serve-path events).
    """
    if not shed and not breaker_state:
        return ""
    lines = ["Overload protection:"]
    if shed_by:
        shed_table = format_table(
            ("class", "reason", "shed"),
            [(cls, reason, count)
             for (cls, reason), count in sorted(shed_by.items())],
        )
        lines.append(shed_table)
    elif shed:
        lines.append(f"{shed} requests shed (no per-class breakdown in trace)")
    if breaker_state:
        states: dict[str, int] = {}
        for state in breaker_state.values():
            states[state] = states.get(state, 0) + 1
        gauge = ", ".join(
            f"{states.get(s, 0)} {s}" for s in ("closed", "open", "half-open")
        )
        flips = ", ".join(
            f"{old}->{new}: {count}"
            for (old, new), count in sorted(breaker_transitions.items())
        )
        lines.append(
            f"circuit breakers at end of trace: {gauge} "
            f"({sum(breaker_transitions.values())} transitions: {flips})"
        )
    return "\n".join(lines)


def summarize_trace_file(path: str | Path) -> str:
    """Summarise a JSONL trace file (the ``repro obs summarize`` body)."""
    return summarize_trace(read_trace(path))
