"""The recorder facade and the process-global no-op default.

Instrumented call sites throughout the stack do::

    from repro.obs.recorder import get_recorder
    ...
    rec = get_recorder()
    with rec.timer("fastcore.latency_batch"):
        ...

and stay permanently wired. The global recorder defaults to
:data:`NOOP_RECORDER`, whose every method is an allocation-free no-op, so
the disabled path costs one global read plus an empty context manager —
within measurement noise even for the microsecond-scale routing kernels
(guarded by ``benchmarks/bench_obs.py``). Enabling observability is one
:func:`set_recorder` call (or the :func:`recording` context manager) away
and changes no simulated behaviour: recorders never touch RNG streams,
caches or outputs, only observe them.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS_MS, Labels, MetricsRegistry
from repro.obs.profiling import ProfileAccumulator
from repro.obs.timeseries import TimeSeriesBuffer
from repro.obs.tracing import SpanHandle, TraceBuffer


class _NoopContext:
    """Shared do-nothing context manager (the disabled timer)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NoopSpan(_NoopContext):
    """Shared do-nothing span handle."""

    __slots__ = ()
    span_id = 0

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def child(self, kind: str, **attrs: Any) -> int:
        return 0


_NOOP_CONTEXT = _NoopContext()
_NOOP_SPAN = _NoopSpan()


class NoopRecorder:
    """The disabled recorder: every operation is free and stateless."""

    __slots__ = ()
    enabled = False
    events = None

    def inc(self, name: str, labels: Labels = (), value: float = 1.0) -> None:
        return None

    def set_gauge(self, name: str, value: float, labels: Labels = ()) -> None:
        return None

    def observe(
        self,
        name: str,
        value: float,
        labels: Labels = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        return None

    def window_inc(
        self, t_s: float, name: str, labels: Labels = (), value: float = 1.0
    ) -> None:
        return None

    def window_observe(
        self,
        t_s: float,
        name: str,
        value: float,
        labels: Labels = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        return None

    def timer(self, site: str) -> _NoopContext:
        return _NOOP_CONTEXT

    def open_span(self, kind: str, **attrs: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def record_span(self, kind: str, parent_id: int | None = None, **attrs: Any) -> int:
        return 0

    def event(self, name: str, **fields: Any) -> None:
        return None

    def flush(
        self,
        metrics_path: str | Path | None = None,
        trace_path: str | Path | None = None,
        timeseries_path: str | Path | None = None,
    ) -> None:
        return None


class ObsRecorder:
    """A live recorder: metrics + timeseries + trace + profile in one facade."""

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        trace: TraceBuffer | None = None,
        profile: ProfileAccumulator | None = None,
        events: Any = None,
        timeseries: TimeSeriesBuffer | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceBuffer()
        self.profile = profile if profile is not None else ProfileAccumulator()
        self.events = events  # an EventLog, wired per run by the runner
        self.timeseries = (
            timeseries if timeseries is not None else TimeSeriesBuffer()
        )

    # -- metrics -----------------------------------------------------------

    def inc(self, name: str, labels: Labels = (), value: float = 1.0) -> None:
        self.metrics.inc(name, labels, value)

    def set_gauge(self, name: str, value: float, labels: Labels = ()) -> None:
        self.metrics.set_gauge(name, value, labels)

    def observe(
        self,
        name: str,
        value: float,
        labels: Labels = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        self.metrics.observe(name, value, labels, buckets)

    # -- windowed time series ----------------------------------------------

    def window_inc(
        self, t_s: float, name: str, labels: Labels = (), value: float = 1.0
    ) -> None:
        """Count an event in the simulated-time window containing ``t_s``."""
        self.timeseries.inc(t_s, name, labels, value)

    def window_observe(
        self,
        t_s: float,
        name: str,
        value: float,
        labels: Labels = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        """Histogram-sample an event in the window containing ``t_s``."""
        self.timeseries.observe(t_s, name, value, labels, buckets)

    # -- profiling ---------------------------------------------------------

    def timer(self, site: str):
        return self.profile.timer(site)

    # -- tracing -----------------------------------------------------------

    def open_span(self, kind: str, **attrs: Any) -> SpanHandle:
        return self.trace.open_span(kind, **attrs)

    def record_span(self, kind: str, parent_id: int | None = None, **attrs: Any) -> int:
        return self.trace.record(kind, parent_id=parent_id, **attrs)

    # -- run event log -----------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        """Append to the run event log, when one is wired (else a no-op)."""
        if self.events is not None:
            self.events.emit(name, **fields)

    # -- cross-process deltas ----------------------------------------------

    def snapshot_delta(self, drain: bool = True) -> dict:
        """This recorder's buffers as one shippable delta (worker side)."""
        from repro.obs.merge import snapshot_delta

        return snapshot_delta(self, drain=drain)

    def merge_delta(self, delta: dict, extra_labels: Labels = ()) -> None:
        """Fold a worker's shipped delta into this recorder (parent side)."""
        from repro.obs.merge import merge_delta

        merge_delta(self, delta, extra_labels)

    # -- export ------------------------------------------------------------

    def _export_profile(self) -> None:
        """Surface the profile as gauges so one metrics file tells all.

        Gauges (not counters) so repeated flushes — heartbeats, the
        interrupt path, the final flush — stay idempotent.
        """
        for site, stats in self.profile.summary().items():
            labels = (("site", site),)
            self.metrics.set_gauge("repro_profile_calls", stats["calls"], labels)
            self.metrics.set_gauge("repro_profile_seconds", stats["total_s"], labels)

    def flush(
        self,
        metrics_path: str | Path | None = None,
        trace_path: str | Path | None = None,
        timeseries_path: str | Path | None = None,
    ) -> None:
        """Atomically write the requested artifacts (buffers are retained)."""
        if metrics_path is not None:
            self._export_profile()
            self.metrics.write_prometheus(metrics_path)
        if trace_path is not None:
            self.trace.flush(trace_path)
        if timeseries_path is not None:
            self.timeseries.write_json(timeseries_path)
        if (metrics_path, trace_path, timeseries_path) != (None, None, None):
            self.event(
                "obs_flush",
                metrics=None if metrics_path is None else str(metrics_path),
                trace=None if trace_path is None else str(trace_path),
                timeseries=(
                    None if timeseries_path is None else str(timeseries_path)
                ),
            )


NOOP_RECORDER = NoopRecorder()
"""The process-global default: observability off, zero overhead."""

_recorder: NoopRecorder | ObsRecorder = NOOP_RECORDER


def get_recorder() -> NoopRecorder | ObsRecorder:
    """The active process-global recorder (the no-op one by default)."""
    return _recorder


def set_recorder(recorder: NoopRecorder | ObsRecorder) -> None:
    """Install ``recorder`` as the process-global recorder."""
    global _recorder
    _recorder = recorder


def reset_recorder() -> None:
    """Restore the disabled default."""
    set_recorder(NOOP_RECORDER)


@contextmanager
def recording(recorder: ObsRecorder) -> Iterator[ObsRecorder]:
    """Temporarily install ``recorder`` (tests and scoped CLI runs)."""
    previous = get_recorder()
    set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)
