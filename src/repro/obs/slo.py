"""SLO specs and error-budget evaluation over windowed time series.

A spec is one declarative line in the shape SRE teams write them::

    availability >= 99% over 30 epochs
    p99 <= 150ms over 5 epochs
    shed_fraction <= 5%
    hit_ratio >= 80%

and evaluation follows the Google-SRE error-budget framing: the budget is
the *allowed bad fraction* implied by the objective (``availability >=
99%`` allows 1% of requests to fail; ``p99 <= 150ms`` allows 1% of
requests to exceed 150 ms), and the **burn rate** of a window span is

    burn = (bad events / total events) / budget

so burn 1.0 spends the budget exactly as fast as the objective allows,
and burn 10 means a 1%-budget objective is failing 10% of requests.
Each window gets a short burn (that window alone) and a long burn (the
trailing ``over N epochs`` span, aggregated by *counts*, not by averaging
per-window ratios); a window **breaches** when its long-span aggregate
violates the objective — one quiet window cannot hide a bad spell, and
one bad second cannot page you out of a month of headroom.

Latency objectives are evaluated against the fixed-bucket windowed
histograms, so a threshold is judged at bucket resolution: samples count
as "good" only when their bucket's upper bound is ``<= threshold``.
Thresholds that sit on a bucket bound (the default ladder:
1/2.5/5/10/25/50/75/100/150/200/300/500/1000 ms) are judged exactly.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

from repro.analysis.quantiles import histogram_quantile
from repro.analysis.tables import format_table
from repro.errors import ObsError

SERVE_TOTAL = "repro_serve_total"
SERVE_RTT_MS = "repro_serve_rtt_ms"
SERVE_UNAVAILABLE = "repro_serve_unavailable_total"
SERVE_HIT = "repro_serve_hit_total"
SERVE_RETRIES = "repro_serve_retries_total"
OVERLOAD_SHED = "repro_overload_shed_total"
BREAKER_OPENS = "repro_breaker_opens_total"
OFFERED_TOTAL = "repro_offered_total"
"""Windowed series names the serve path records (the scalar registry uses
the same names; the two pillars never share a namespace)."""

_SPEC_RE = re.compile(
    r"^\s*(?P<metric>[a-z][a-z0-9_]*)\s*"
    r"(?P<op><=|>=)\s*"
    r"(?P<value>[0-9]+(?:\.[0-9]+)?)\s*"
    r"(?P<unit>%|ms)?"
    r"(?:\s+over\s+(?P<span>[1-9][0-9]*)\s+(?:epochs?|windows?))?\s*$",
    re.IGNORECASE,
)

_RATIO_METRICS = {
    "availability": ">=",
    "hit_ratio": ">=",
    "shed_fraction": "<=",
}


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective: ``metric op threshold [over N epochs]``."""

    metric: str  # "availability", "shed_fraction", "hit_ratio", or "pNN"
    op: str  # "<=" or ">="
    threshold: float  # ratio metrics as a fraction, latency in ms
    over_windows: int = 1
    raw: str = ""

    @property
    def budget(self) -> float:
        """The allowed bad fraction implied by the objective."""
        if self.metric.startswith("p"):
            return 1.0 - float(self.metric[1:]) / 100.0
        if self.op == ">=":
            return 1.0 - self.threshold
        return self.threshold

    def describe(self) -> str:
        if self.metric.startswith("p"):
            shown = f"{self.metric} <= {self.threshold:g}ms"
        else:
            shown = f"{self.metric} {self.op} {self.threshold:.4g}"
        if self.over_windows > 1:
            shown += f" over {self.over_windows} epochs"
        return shown


def parse_slo(text: str) -> SloSpec:
    """Parse one SLO spec line; :class:`~repro.errors.ObsError` on nonsense."""
    match = _SPEC_RE.match(text)
    if match is None:
        raise ObsError(
            f"cannot parse SLO {text!r}; expected e.g. "
            f"'availability >= 99% over 30 epochs' or 'p99 <= 150ms'"
        )
    metric = match.group("metric").lower()
    op = match.group("op")
    value = float(match.group("value"))
    unit = (match.group("unit") or "").lower()
    span = int(match.group("span") or 1)

    if re.fullmatch(r"p[0-9]{1,2}(\.[0-9]+)?", metric):
        if op != "<=":
            raise ObsError(f"latency SLO {metric!r} must use <=, got {op}")
        if unit == "%":
            raise ObsError(f"latency SLO {metric!r} takes a ms threshold, not %")
        quantile = float(metric[1:])
        if not 0.0 < quantile < 100.0:
            raise ObsError(f"latency SLO quantile must be in (0, 100), got {metric!r}")
        return SloSpec(metric, op, value, span, text.strip())

    required_op = _RATIO_METRICS.get(metric)
    if required_op is None:
        raise ObsError(
            f"unknown SLO metric {metric!r}; known: "
            f"{', '.join(sorted(_RATIO_METRICS))}, pNN"
        )
    if op != required_op:
        raise ObsError(f"SLO metric {metric!r} must use {required_op}, got {op}")
    if unit == "ms":
        raise ObsError(f"SLO metric {metric!r} takes a fraction or %, not ms")
    threshold = value / 100.0 if unit == "%" else value
    if not 0.0 <= threshold <= 1.0:
        raise ObsError(
            f"SLO threshold for {metric!r} must land in [0, 1], got {threshold:g}"
        )
    return SloSpec(metric, op, threshold, span, text.strip())


@dataclass(frozen=True)
class SloWindowVerdict:
    """One window's evaluation: its own SLI plus the trailing-span burn."""

    window: int
    sli: float  # this window's value (NaN when it saw no traffic)
    burn_short: float  # this window's burn rate
    burn_long: float  # trailing over_windows-span burn rate
    breached: bool  # the trailing span violates the objective


@dataclass
class SloReport:
    """The full evaluation of one spec over one time-series document."""

    spec: SloSpec
    verdicts: list[SloWindowVerdict] = field(default_factory=list)

    @property
    def breached(self) -> bool:
        return any(v.breached for v in self.verdicts)

    @property
    def breached_windows(self) -> list[int]:
        return [v.window for v in self.verdicts if v.breached]


def _sum_counter(doc: dict, name: str) -> dict[int, float]:
    """One counter's per-window totals, summed across label sets."""
    out: dict[int, float] = {}
    for series in doc.get("counters", ()):
        if series["name"] != name:
            continue
        for window, value in series["points"]:
            out[window] = out.get(window, 0.0) + value
    return out


def _sum_histogram(doc: dict, name: str) -> tuple[tuple[float, ...], dict[int, list]]:
    """One histogram's per-window cells ``[bucket_counts, count]``, summed
    across label sets (bounds are pinned per name, so cells always align)."""
    bounds: tuple[float, ...] = ()
    cells: dict[int, list] = {}
    for series in doc.get("histograms", ()):
        if series["name"] != name:
            continue
        bounds = tuple(float(b) for b in series["bounds"])
        for point in series["points"]:
            window = point["window"]
            cell = cells.get(window)
            if cell is None:
                cell = cells[window] = [[0] * len(point["bucket_counts"]), 0]
            for index, count in enumerate(point["bucket_counts"]):
                cell[0][index] += count
            cell[1] += point["count"]
    return bounds, cells


def _span_windows(windows: list[int], end: int, length: int) -> list[int]:
    """The trailing-span members: indices in ``(end - length, end]``."""
    return [w for w in windows if end - length < w <= end]


def _ratio_events(
    spec: SloSpec, counts: dict[str, dict[int, float]], span: list[int]
) -> tuple[float, float]:
    """(bad, total) event counts of a ratio metric over a window span."""
    served = sum(counts["served"].get(w, 0.0) for w in span)
    unavailable = sum(counts["unavailable"].get(w, 0.0) for w in span)
    shed = sum(counts["shed"].get(w, 0.0) for w in span)
    hits = sum(counts["hits"].get(w, 0.0) for w in span)
    if spec.metric == "availability":
        return unavailable + shed, served + unavailable + shed
    if spec.metric == "shed_fraction":
        return shed, served + unavailable + shed
    return served - hits, served  # hit_ratio: a served miss burns budget


def _latency_events(
    spec: SloSpec, bounds: tuple[float, ...], cells: dict[int, list], span: list[int]
) -> tuple[float, float, float]:
    """(bad, total, sli) of a latency metric over a window span; ``sli`` is
    the span's bucket-resolved quantile."""
    merged_counts = [0] * (len(bounds) + 1)
    total = 0
    for w in span:
        cell = cells.get(w)
        if cell is None:
            continue
        for index, count in enumerate(cell[0]):
            merged_counts[index] += count
        total += cell[1]
    if total == 0:
        return 0.0, 0.0, math.nan
    good = 0
    cumulative: list[tuple[float, int]] = []
    running = 0
    for bound, bucket in zip(bounds, merged_counts):
        running += bucket
        cumulative.append((bound, running))
        if bound <= spec.threshold:
            good = running
    cumulative.append((math.inf, total))
    sli = histogram_quantile(cumulative, total, float(spec.metric[1:]) / 100.0)
    return float(total - good), float(total), sli


def _violates(spec: SloSpec, sli: float) -> bool:
    if math.isnan(sli):
        return False
    return sli > spec.threshold if spec.op == "<=" else sli < spec.threshold


def _burn(bad: float, total: float, budget: float) -> float:
    if total == 0:
        return 0.0
    bad_fraction = bad / total
    if budget <= 0.0:
        return math.inf if bad_fraction > 0 else 0.0
    return bad_fraction / budget


def evaluate_slo(doc: dict, spec: SloSpec) -> SloReport:
    """Evaluate one spec against an ``obs-timeseries.json`` document."""
    windows = [int(w) for w in doc.get("windows", [])]
    report = SloReport(spec)
    if not windows:
        return report

    is_latency = spec.metric.startswith("p")
    if is_latency:
        bounds, cells = _sum_histogram(doc, SERVE_RTT_MS)
        if not bounds:
            raise ObsError(
                f"time series holds no {SERVE_RTT_MS!r} histogram; was the "
                f"run recorded with --obs on an instrumented serve path?"
            )
    else:
        counts = {
            "served": _sum_counter(doc, SERVE_TOTAL),
            "unavailable": _sum_counter(doc, SERVE_UNAVAILABLE),
            "shed": _sum_counter(doc, OVERLOAD_SHED),
            "hits": _sum_counter(doc, SERVE_HIT),
        }

    for window in windows:
        span = _span_windows(windows, window, spec.over_windows)
        if is_latency:
            bad_s, total_s, sli = _latency_events(spec, bounds, cells, [window])
            bad_l, total_l, sli_long = _latency_events(spec, bounds, cells, span)
        else:
            bad_s, total_s = _ratio_events(spec, counts, [window])
            bad_l, total_l = _ratio_events(spec, counts, span)
            sli = math.nan if total_s == 0 else 1.0 - bad_s / total_s
            if spec.metric == "shed_fraction":
                sli = math.nan if total_s == 0 else bad_s / total_s
            sli_long = math.nan if total_l == 0 else 1.0 - bad_l / total_l
            if spec.metric == "shed_fraction":
                sli_long = math.nan if total_l == 0 else bad_l / total_l
        report.verdicts.append(
            SloWindowVerdict(
                window=window,
                sli=sli,
                burn_short=_burn(bad_s, total_s, spec.budget),
                burn_long=_burn(bad_l, total_l, spec.budget),
                breached=_violates(spec, sli_long),
            )
        )
    return report


def evaluate_slos(doc: dict, specs: list[SloSpec]) -> list[SloReport]:
    """Evaluate every spec against one document."""
    return [evaluate_slo(doc, spec) for spec in specs]


def _fmt_sli(spec: SloSpec, value: float) -> str:
    if math.isnan(value):
        return "n/a"
    if spec.metric.startswith("p"):
        return f"{value:g}ms"
    return f"{value:.2%}"


def _fmt_burn(value: float) -> str:
    if math.isinf(value):
        return "inf"
    return f"{value:.2f}x"


def render_slo_report(reports: list[SloReport], window_s: float) -> str:
    """All reports as tables plus a one-line verdict each."""
    sections: list[str] = []
    for report in reports:
        spec = report.spec
        multi = spec.over_windows > 1
        rows = [
            (v.window, _fmt_sli(spec, v.sli), _fmt_burn(v.burn_short))
            + ((_fmt_burn(v.burn_long),) if multi else ())
            + ("BREACH" if v.breached else "ok",)
            for v in report.verdicts
        ]
        header = (
            f"SLO: {spec.describe()}  "
            f"(error budget {spec.budget:.2%}, window {window_s:g}s)"
        )
        if not rows:
            sections.append(f"{header}\n  no windows recorded")
            continue
        headers = ("window", "sli", "burn(1w)")
        if multi:
            headers += (f"burn({spec.over_windows}w)",)
        table = format_table(headers + ("status",), rows)
        breached = report.breached_windows
        if breached:
            verdict = (
                f"BREACHED in {len(breached)}/{len(rows)} windows "
                f"(first at window {breached[0]})"
            )
        else:
            verdict = f"OK across {len(rows)} windows"
        sections.append(f"{header}\n{table}\n  -> {verdict}")
    return "\n\n".join(sections)
