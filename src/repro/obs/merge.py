"""Cross-process observability aggregation: ship deltas, merge registries.

A parallel run records metrics in N worker processes, but a fleet is only
observable as one system. Each worker snapshots its recorder as a
JSON-serialisable *delta* at shard completion (:func:`snapshot_delta`,
draining so consecutive deltas are disjoint) and ships it to the parent —
over the result pipe in the healthy case, or as an atomic per-attempt
sidecar file that the parent salvages when the worker dies before its
message lands. The parent folds every delta into its own recorder
(:func:`merge_delta`) with the semantics each metric kind needs:

* **counters sum** — no extra labels, so a ``--jobs 8`` run and a
  ``--jobs 1`` run of the same plan report identical aggregate counters;
* **histograms merge bucket-wise** — bounds are validated against the
  parent's pinned buckets (:class:`~repro.errors.ObsError` on drift), then
  per-bucket counts, totals and counts add;
* **windowed time series merge window-wise** — every cell is an integer
  (counts and fixed-point totals, see :mod:`repro.obs.timeseries`), so the
  merged series is *byte-identical* to a serial run's regardless of shard
  completion order, not merely numerically close;
* **gauges keep per-worker series** — a gauge is a last-write-wins sample,
  so worker gauges get the shipping worker/shard labels appended instead
  of clobbering each other;
* **profile sites merge stat-wise** (calls/total sum, min/max extremes),
  and timers left open by a worker killed mid-shard surface as the
  ``repro_profile_abandoned_total`` counter instead of poisoning a site;
* **trace spans are re-identified** into the parent's id space with their
  parent links rewritten and the worker/shard attached as attributes.

:func:`registry_diff` is the equality half of the contract: the selfchaos
suite asserts an N-wide chaos run's merged counters and histograms equal
the serial run's, modulo the runner's own fleet bookkeeping series.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ObsError
from repro.obs.metrics import Labels, MetricsRegistry
from repro.obs.profiling import ProfileAccumulator
from repro.obs.tracing import TraceBuffer

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.recorder import ObsRecorder

DELTA_FORMAT_VERSION = 2
"""Bumped to 2 when deltas grew the ``timeseries`` pillar (windowed
series); version-1 deltas ship no windows, so merging them silently would
under-count the merged timeline — refusing is the honest failure."""

ABANDONED_TIMERS_METRIC = "repro_profile_abandoned_total"
"""Counter of profile timers dropped because their worker's recorder was
drained (snapshot/kill) while they were still open."""

FLEET_SERIES_PREFIXES = ("repro_runner_", "repro_obs_", "repro_profile_")
"""Metric-name prefixes the executor itself emits about the fleet; these
legitimately differ between serial and parallel runs of the same plan and
are excluded from :func:`registry_diff` by default."""


def snapshot_delta(recorder: "ObsRecorder", drain: bool = True) -> dict:
    """One recorder's metrics + trace + profile as a serialisable delta.

    ``drain=True`` (the worker default) empties the buffers so the next
    shard's snapshot ships only its own work.
    """
    return {
        "format_version": DELTA_FORMAT_VERSION,
        "metrics": recorder.metrics.snapshot_delta(drain=drain),
        "timeseries": recorder.timeseries.snapshot_delta(drain=drain),
        "trace": recorder.trace.snapshot_delta(drain=drain),
        "profile": recorder.profile.snapshot_delta(drain=drain),
    }


def merge_delta(
    recorder: "ObsRecorder",
    delta: dict,
    extra_labels: Labels = (),
) -> None:
    """Fold a shipped delta into ``recorder``.

    ``extra_labels`` (typically ``(("worker", ...), ("shard", ...))``) are
    appended to gauge series and attached to trace spans; counters,
    histograms, and profile sites merge unlabelled so aggregates stay
    width-independent.
    """
    version = delta.get("format_version")
    if version != DELTA_FORMAT_VERSION:
        raise ObsError(
            f"obs delta format version {version!r} is not the expected "
            f"{DELTA_FORMAT_VERSION} (package version drift between worker "
            f"and parent?)"
        )
    merge_metrics_delta(recorder.metrics, delta["metrics"], extra_labels)
    recorder.timeseries.merge_delta(delta["timeseries"])
    merge_trace_delta(recorder.trace, delta["trace"], dict(extra_labels))
    merge_profile_delta(recorder.profile, delta["profile"])
    abandoned = delta["profile"].get("abandoned", 0)
    if abandoned:
        recorder.metrics.inc(ABANDONED_TIMERS_METRIC, value=float(abandoned))


def _labels_tuple(raw: Sequence[Sequence[str]]) -> Labels:
    return tuple((str(key), str(value)) for key, value in raw)


def merge_metrics_delta(
    registry: MetricsRegistry, delta: dict, gauge_labels: Labels = ()
) -> None:
    """Merge one metrics snapshot into ``registry`` (see module docstring)."""
    for name, raw_labels, value in delta.get("counters", ()):
        registry.inc(name, _labels_tuple(raw_labels), value)
    for name, raw_labels, value in delta.get("gauges", ()):
        registry.set_gauge(name, value, _labels_tuple(raw_labels) + gauge_labels)
    for name, raw_labels, series in delta.get("histograms", ()):
        _merge_histogram(registry, name, _labels_tuple(raw_labels), series)


def _merge_histogram(
    registry: MetricsRegistry, name: str, labels: Labels, series: dict
) -> None:
    """Bucket-wise histogram merge, guarded by the registry's bucket pins."""
    bounds = tuple(float(b) for b in series["bounds"])
    pinned = registry._buckets.setdefault(name, bounds)
    if pinned != bounds:
        raise ObsError(
            f"cannot merge histogram {name!r}: shipped buckets {bounds} "
            f"differ from the pinned {pinned} (mixed-bucket series cannot "
            f"be aggregated)"
        )
    key = (name, labels)
    histogram = registry._histograms.get(key)
    if histogram is None:
        from repro.obs.metrics import Histogram

        histogram = registry._histograms[key] = Histogram(bounds)
    counts = series["bucket_counts"]
    if len(counts) != len(histogram.bucket_counts):
        raise ObsError(
            f"cannot merge histogram {name!r}: shipped {len(counts)} "
            f"buckets, registry holds {len(histogram.bucket_counts)}"
        )
    for index, count in enumerate(counts):
        histogram.bucket_counts[index] += count
    histogram.count += series["count"]
    histogram.total += series["total"]


def merge_trace_delta(
    buffer: TraceBuffer, spans: Iterable[dict], extra_attrs: dict | None = None
) -> None:
    """Append shipped spans to ``buffer`` under fresh span ids.

    Parent links are rewritten into the new id space; a child whose parent
    was not shipped in the same delta keeps ``parent_id: None`` rather than
    aliasing an unrelated parent-side span.
    """
    remapped: dict[int, int] = {}
    for span in spans:
        record = dict(span)
        old_id = record.pop("span_id", None)
        old_parent = record.pop("parent_id", None)
        kind = record.pop("kind", "?")
        if extra_attrs:
            record.update(extra_attrs)
        parent_id = remapped.get(old_parent) if old_parent is not None else None
        new_id = buffer.record(kind, parent_id=parent_id, **record)
        if old_id is not None:
            remapped[old_id] = new_id


def merge_profile_delta(profile: ProfileAccumulator, delta: dict) -> None:
    """Merge shipped per-site timings into ``profile`` (abandoned timers
    are the caller's concern — they become a counter, not a site)."""
    for site, stats in delta.get("sites", {}).items():
        calls, total_s, min_s, max_s = stats
        existing = profile.sites.get(site)
        if existing is None:
            from repro.obs.profiling import SiteStats

            existing = profile.sites[site] = SiteStats()
        existing.merge(int(calls), float(total_s), float(min_s), float(max_s))


def registry_diff(
    left: MetricsRegistry,
    right: MetricsRegistry,
    ignore_prefixes: tuple[str, ...] = FLEET_SERIES_PREFIXES,
    rel_tol: float = 1e-9,
) -> list[str]:
    """Human-readable differences between two registries' aggregates.

    Compares counters and histograms (the width-independent kinds); gauges
    are point-in-time per-process samples and are skipped. Float sums are
    compared with ``rel_tol`` because a parallel merge associates additions
    differently than a serial run. An empty list means the registries agree
    — the assertion behind "``--jobs 8`` equals ``--jobs 1``".
    """

    def keep(name: str) -> bool:
        return not any(name.startswith(prefix) for prefix in ignore_prefixes)

    problems: list[str] = []
    left_counters = {k: v for k, v in left._counters.items() if keep(k[0])}
    right_counters = {k: v for k, v in right._counters.items() if keep(k[0])}
    for key in sorted(set(left_counters) | set(right_counters)):
        a = left_counters.get(key)
        b = right_counters.get(key)
        if a is None or b is None:
            problems.append(f"counter {key}: {a} vs {b}")
        elif not math.isclose(a, b, rel_tol=rel_tol):
            problems.append(f"counter {key}: {a} != {b}")

    left_histograms = {k: v for k, v in left._histograms.items() if keep(k[0])}
    right_histograms = {k: v for k, v in right._histograms.items() if keep(k[0])}
    for key in sorted(set(left_histograms) | set(right_histograms)):
        a = left_histograms.get(key)
        b = right_histograms.get(key)
        if a is None or b is None:
            problems.append(f"histogram {key}: present only on one side")
            continue
        if a.bounds != b.bounds:
            problems.append(f"histogram {key}: bounds {a.bounds} != {b.bounds}")
        if a.bucket_counts != b.bucket_counts or a.count != b.count:
            problems.append(
                f"histogram {key}: buckets {a.bucket_counts}/{a.count} != "
                f"{b.bucket_counts}/{b.count}"
            )
        if not math.isclose(a.total, b.total, rel_tol=rel_tol):
            problems.append(f"histogram {key}: total {a.total} != {b.total}")
    return problems
