"""The run event log: a structured JSONL journal of fleet lifecycle.

Metrics answer "how much", traces answer "which request" — the event log
answers "what happened when": shard assignments, completions, retries and
quarantines; worker births, deaths and watchdog kills; drains, deadlines
and obs flushes. It lives as ``events.jsonl`` under the run directory and
is written by the *parent* process only, one whole line per event through
a single ``O_APPEND`` ``write`` — so a reader (or a crash) never observes
half an event, and a resumed run appends its own segment after the
interrupted one's instead of erasing the history.

``repro obs events RUNDIR/events.jsonl`` renders the journal as a
timeline plus a per-shard wall-time table (:func:`render_events`).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.analysis.tables import format_table
from repro.errors import ObsError

EVENTS_FILENAME = "events.jsonl"

_SHARD_EVENTS = frozenset({"shard_assigned", "shard_completed", "shard_retried"})
"""Per-shard noise kept out of the rendered timeline (the table covers it)."""


class EventLog:
    """Append-only JSONL event journal (best-effort, never fails the run).

    Each record carries ``seq`` (per-invocation, restarts at 0 when a
    resumed run opens the same file), ``ts`` (wall-clock seconds), and
    ``event`` plus the caller's fields. Emission is a single appending
    ``os.write`` of one complete line; an unwritable log warns once on
    stderr and goes quiet — observability must never take down the run it
    observes.
    """

    def __init__(self, path: str | Path, clock: Callable[[], float] = time.time):
        self.path = Path(path)
        self._clock = clock
        self._seq = 0
        self._fd: int | None = None
        self._broken = False

    def emit(self, event: str, **fields: object) -> None:
        """Append one event record; silently a no-op after a write error."""
        if self._broken:
            return
        record: dict = {"seq": self._seq, "ts": round(self._clock(), 6)}
        record["event"] = event
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        try:
            if self._fd is None:
                self._fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            os.write(self._fd, line.encode())
        except OSError as exc:
            self._broken = True
            print(
                f"obs: event log {self.path} is unwritable ({exc}); "
                f"further events are dropped",
                file=sys.stderr,
            )
            return
        self._seq += 1

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - double close
                pass
            self._fd = None


def read_events(path: str | Path) -> Iterator[dict]:
    """Yield event records from a JSONL event log, validating as it goes."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ObsError(f"cannot read event log {path}: {exc}") from exc
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{number}: malformed event line: {exc}") from exc
        if not isinstance(record, dict) or "event" not in record:
            raise ObsError(f"{path}:{number}: event line is not an event object")
        yield record


def render_events(events: Iterable[dict]) -> str:
    """The ``repro obs events`` body: timeline + per-shard wall-time table.

    The timeline shows run/worker lifecycle events with offsets from the
    journal's first timestamp; per-shard assignment/completion/retry events
    are folded into the shard table (attempts, last worker, wall seconds,
    final status) so a thousand-shard journal renders in a screenful.
    """
    records = list(events)
    if not records:
        raise ObsError("event log holds no events")
    t0 = min(float(r.get("ts", 0.0)) for r in records)

    counts: dict[str, int] = {}
    shards: dict[str, dict] = {}
    timeline: list[str] = []
    for record in records:
        name = str(record.get("event"))
        counts[name] = counts.get(name, 0) + 1
        offset = float(record.get("ts", t0)) - t0
        detail = ", ".join(
            f"{key}={value}"
            for key, value in sorted(record.items())
            if key not in ("event", "seq", "ts")
        )
        if name in _SHARD_EVENTS:
            shard = str(record.get("shard", "?"))
            entry = shards.setdefault(
                shard,
                {"attempts": 0, "worker": "-", "wall_s": None, "status": "assigned"},
            )
            if name == "shard_assigned":
                entry["attempts"] = max(
                    entry["attempts"], int(record.get("attempt", 0) or 0)
                )
                if "worker" in record:
                    entry["worker"] = record["worker"]
            elif name == "shard_completed":
                entry["attempts"] = max(
                    entry["attempts"], int(record.get("attempt", 0) or 0)
                )
                if "worker" in record:
                    entry["worker"] = record["worker"]
                wall = record.get("wall_s")
                if isinstance(wall, (int, float)):
                    entry["wall_s"] = float(wall)
                entry["status"] = "completed"
            else:  # shard_retried
                entry["status"] = f"retrying ({record.get('kind', '?')})"
        else:
            if name == "shard_quarantined":
                shard = str(record.get("shard", "?"))
                shards.setdefault(
                    shard,
                    {
                        "attempts": 0,
                        "worker": "-",
                        "wall_s": None,
                        "status": "assigned",
                    },
                )["status"] = "quarantined"
            timeline.append(f"  +{offset:9.3f}s  {name:<20s}  {detail}")

    count_rows = [(name, counts[name]) for name in sorted(counts)]
    shard_rows = [
        (
            shard,
            entry["attempts"],
            entry["worker"],
            "n/a" if entry["wall_s"] is None else f"{entry['wall_s']:.3f}",
            entry["status"],
        )
        for shard, entry in sorted(shards.items())
    ]

    sections = [
        f"{len(records)} events over {max(float(r.get('ts', t0)) for r in records) - t0:.3f}s",
        "Event counts:\n" + format_table(("event", "count"), count_rows),
    ]
    if timeline:
        sections.append("Timeline (run & worker lifecycle):\n" + "\n".join(timeline))
    if shard_rows:
        sections.append(
            "Per-shard wall time:\n"
            + format_table(
                ("shard", "attempts", "worker", "wall s", "status"), shard_rows
            )
        )
    return "\n\n".join(sections)


def render_events_file(path: str | Path) -> str:
    """Render an ``events.jsonl`` file (the ``repro obs events`` body)."""
    return render_events(read_events(path))
