"""``repro obs diff`` — the bench-regression gate over ``BENCH_*.json``.

The repo's performance claims (≈3.1M req/min batched serving, parallel
shard throughput, kernel timings) live in committed ``BENCH_*.json``
files. This module turns them from folklore into a gate: flatten two
benchmark documents into dotted-path → number maps, compare every metric
whose name declares a direction (``*_seconds`` must not grow, ``*_per_min``
must not shrink), and fail — non-zero exit in the CLI — when any metric
regresses past its threshold.

Only *performance* leaves are compared. Configuration echoes (seeds, shard
counts, request counts) and environment records (``machine_info``) carry
no direction and are ignored, so a diff between two runs of the same
benchmark script never trips over its parameters.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.tables import format_table
from repro.errors import ObsError

DEFAULT_THRESHOLD_PCT = 20.0

_IGNORED_KEYS = frozenset(
    {"machine_info", "commit_info", "datetime", "version", "benchmarks_version"}
)

_LOWER_EXACT = frozenset({"min", "max", "mean", "median", "min_s", "mean_s", "max_s", "total_s"})
_LOWER_SUBSTRINGS = ("seconds", "latency", "_ms", "rtt")
_HIGHER_EXACT = frozenset({"ops"})
_HIGHER_SUBSTRINGS = ("per_min", "per_second", "per_sec", "speedup", "throughput")


def metric_direction(leaf_key: str) -> str | None:
    """``"lower"``/``"higher"`` = which way is better; ``None`` = not a
    performance metric (configuration echo, count, environment record)."""
    key = leaf_key.lower()
    if key in _LOWER_EXACT:
        return "lower"
    if key in _HIGHER_EXACT:
        return "higher"
    if any(token in key for token in _HIGHER_SUBSTRINGS):
        return "higher"
    if any(token in key for token in _LOWER_SUBSTRINGS):
        return "lower"
    return None


def flatten_benchmark(doc: object, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a benchmark document as ``dotted.path -> value``.

    Lists of named objects (pytest-benchmark's ``"benchmarks"`` array) are
    keyed by their ``name`` field; anonymous lists are environment noise
    and are skipped.
    """
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            if key in _IGNORED_KEYS:
                continue
            out.update(flatten_benchmark(value, f"{prefix}{key}."))
    elif isinstance(doc, list):
        if doc and all(isinstance(item, dict) and "name" in item for item in doc):
            for item in doc:
                out.update(flatten_benchmark(item, f"{prefix}{item['name']}."))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)) and math.isfinite(doc):
        out[prefix.rstrip(".")] = float(doc)
    return out


@dataclass(frozen=True)
class MetricDiff:
    """One compared metric: values, budget, and the verdict."""

    metric: str
    direction: str
    old: float | None
    new: float | None
    change_pct: float | None
    threshold_pct: float
    status: str  # "ok" | "improved" | "regression" | "missing" | "new"

    @property
    def is_regression(self) -> bool:
        return self.status in ("regression", "missing")


def diff_benchmarks(
    old_doc: object,
    new_doc: object,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    per_metric: dict[str, float] | None = None,
) -> list[MetricDiff]:
    """Compare every directional metric of two benchmark documents.

    ``threshold_pct`` is the default allowed adverse change; ``per_metric``
    overrides it for specific dotted paths. A metric present in the old
    document but absent from the new one is a regression (the number being
    guarded disappeared); a metric new in the new document is reported as
    informational.
    """
    per_metric = per_metric or {}
    old = {
        path: value
        for path, value in flatten_benchmark(old_doc).items()
        if metric_direction(path.rsplit(".", 1)[-1]) is not None
    }
    new = {
        path: value
        for path, value in flatten_benchmark(new_doc).items()
        if metric_direction(path.rsplit(".", 1)[-1]) is not None
    }
    unknown = sorted(set(per_metric) - set(old) - set(new))
    if unknown:
        raise ObsError(
            f"--metric override(s) {unknown} match no metric in either "
            f"document; known metrics: {sorted(old)}"
        )

    diffs: list[MetricDiff] = []
    for path in sorted(set(old) | set(new)):
        direction = metric_direction(path.rsplit(".", 1)[-1])
        budget = per_metric.get(path, threshold_pct)
        if path not in new:
            diffs.append(
                MetricDiff(path, direction, old[path], None, None, budget, "missing")
            )
            continue
        if path not in old:
            diffs.append(
                MetricDiff(path, direction, None, new[path], None, budget, "new")
            )
            continue
        old_value, new_value = old[path], new[path]
        if old_value == 0.0:
            change_pct = 0.0 if new_value == 0.0 else math.inf
        else:
            change_pct = (new_value - old_value) / abs(old_value) * 100.0
        adverse = change_pct if direction == "lower" else -change_pct
        if adverse > budget:
            status = "regression"
        elif adverse < 0.0:
            status = "improved"
        else:
            status = "ok"
        diffs.append(
            MetricDiff(path, direction, old_value, new_value, change_pct, budget, status)
        )
    return diffs


def has_regressions(diffs: list[MetricDiff]) -> bool:
    return any(diff.is_regression for diff in diffs)


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    if value == 0.0 or 0.001 <= abs(value) < 1e7:
        return f"{value:.4g}"
    return f"{value:.3e}"


def format_diff(diffs: list[MetricDiff]) -> str:
    """Render the comparison as an aligned table plus a one-line verdict."""
    if not diffs:
        return "no comparable performance metrics found in either document"
    rows = [
        (
            diff.metric,
            diff.direction,
            _fmt(diff.old),
            _fmt(diff.new),
            "-" if diff.change_pct is None else f"{diff.change_pct:+.1f}%",
            f"{diff.threshold_pct:g}%",
            diff.status.upper() if diff.is_regression else diff.status,
        )
        for diff in diffs
    ]
    table = format_table(
        ("metric", "better", "old", "new", "change", "budget", "status"), rows
    )
    regressions = [diff for diff in diffs if diff.is_regression]
    if regressions:
        verdict = (
            f"REGRESSION: {len(regressions)} of {len(diffs)} metric(s) "
            f"exceeded their budget"
        )
    else:
        verdict = f"ok: {len(diffs)} metric(s) within budget"
    return f"{table}\n\n{verdict}"


def load_benchmark(path: str | Path) -> object:
    """Parse one ``BENCH_*.json`` document."""
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except OSError as exc:
        raise ObsError(f"cannot read benchmark file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path} is not valid JSON: {exc}") from exc


def diff_benchmark_files(
    old_path: str | Path,
    new_path: str | Path,
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    per_metric: dict[str, float] | None = None,
) -> list[MetricDiff]:
    """File-level convenience wrapper (the ``repro obs diff`` body)."""
    return diff_benchmarks(
        load_benchmark(old_path),
        load_benchmark(new_path),
        threshold_pct=threshold_pct,
        per_metric=per_metric,
    )
