"""Span-based tracing of the serve path, buffered and flushed as JSONL.

A *span* here is one flat JSON record: ``span_id``, ``parent_id`` (``None``
for roots), a ``kind`` and arbitrary attributes. The serve path emits one
``"serve"`` root span per :meth:`repro.spacecdn.system.SpaceCdnSystem.serve`
call and one ``"attempt"`` child span per fallback-ladder rung tried, whose
``rtt_contribution_ms`` values sum to the served request's RTT.

Spans accumulate in memory and are flushed atomically (tmp + fsync +
rename via :mod:`repro.atomicio`), so an interrupted run never leaves a
truncated trace line behind — the file is either absent, the previous
complete flush, or the new complete flush.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.atomicio import atomic_open
from repro.errors import ObsError


class SpanHandle:
    """A live root span: set attributes, attach completed child spans."""

    __slots__ = ("_buffer", "span_id", "_record")

    def __init__(self, buffer: "TraceBuffer", span_id: int, record: dict) -> None:
        self._buffer = buffer
        self.span_id = span_id
        self._record = record

    def set(self, **attrs: Any) -> "SpanHandle":
        """Attach attributes to this span (later calls overwrite)."""
        self._record.update(attrs)
        return self

    def child(self, kind: str, **attrs: Any) -> int:
        """Record a completed child span; returns its span id."""
        return self._buffer.record(kind, parent_id=self.span_id, **attrs)


class TraceBuffer:
    """In-memory span store with atomic JSONL flush."""

    def __init__(self) -> None:
        self._spans: list[dict] = []
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._spans)

    def record(self, kind: str, parent_id: int | None = None, **attrs: Any) -> int:
        """Append one completed span; returns its span id."""
        span_id = self._next_id
        self._next_id += 1
        record = {"kind": kind, "span_id": span_id, "parent_id": parent_id}
        record.update(attrs)
        self._spans.append(record)
        return span_id

    def open_span(self, kind: str, **attrs: Any) -> SpanHandle:
        """Start a root span whose attributes may still be filled in.

        The record is appended immediately (spans appear in start order);
        the returned handle mutates it in place until the buffer is
        flushed.
        """
        record = {"kind": kind, "span_id": self._next_id, "parent_id": None}
        record.update(attrs)
        self._next_id += 1
        self._spans.append(record)
        return SpanHandle(self, record["span_id"], record)

    def spans(self) -> list[dict]:
        """A snapshot of every buffered span."""
        return [dict(span) for span in self._spans]

    def snapshot_delta(self, drain: bool = False) -> list[dict]:
        """A JSON-serialisable snapshot of every buffered span.

        With ``drain=True`` the buffer empties (span ids keep counting up,
        so ids within one process never repeat across deltas); the parent
        re-ids shipped spans on merge anyway (:mod:`repro.obs.merge`), so
        parent-side and worker-side spans can share one buffer.
        """
        spans = [dict(span) for span in self._spans]
        if drain:
            self._spans = []
        return spans

    def flush(self, path: str | Path) -> int:
        """Atomically write every buffered span as JSONL; returns the count.

        The buffer is retained, so repeated flushes (heartbeat, interrupt,
        final) each rewrite the complete trace — a reader never observes a
        file with half a line or half a run.
        """
        with atomic_open(path) as handle:
            for span in self._spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        return len(self._spans)


def read_trace(path: str | Path) -> Iterator[dict]:
    """Yield spans from a JSONL trace file, validating as it goes."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ObsError(f"cannot read trace {path}: {exc}") from exc
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"{path}:{number}: malformed trace line: {exc}") from exc
        if not isinstance(span, dict) or "kind" not in span:
            raise ObsError(f"{path}:{number}: trace line is not a span object")
        yield span
