"""Windowed time-series metrics keyed by *simulation* time.

Everything in :mod:`repro.obs.metrics` is a run-scoped aggregate: one
counter value, one histogram per series, no notion of *when* within the
simulated timeline an observation happened. This module adds the temporal
axis the paper's phenomena live on — availability dips as satellites
duty-cycle down, p99 inflation during handover churn, the overload knee
under a flash crowd — by bucketing each observation into a fixed-width
window derived from the observation's simulated timestamp:

    window = floor(t_s / window_s)

The window index depends only on simulated time, never on wall clock,
seed, worker id, or shard execution order. That makes the series
*merge-deterministic*: a ``--jobs N`` run ships per-shard deltas whose
windows interleave arbitrarily, yet the merged series is byte-identical
to a ``--jobs 1`` run of the same plan, because

* window assignment is a pure function of the request's ``t_s``;
* every per-window cell is an **integer** — counts, bucket counts, and
  fixed-point totals (micro-units, :data:`FIXED_POINT_SCALE`) — so
  merge order cannot re-associate float additions;
* exports sort windows and series keys, so rendering is order-free.

The exported document (``obs-timeseries.json``) is what ``repro obs slo``
and ``repro obs timeline`` consume; :mod:`repro.obs.slo` evaluates SLO
specs over it and :mod:`repro.obs.dashboard` renders it as sparklines.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.atomicio import atomic_write_text
from repro.errors import ObsError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Labels,
    _check_labels,
)

TS_FORMAT_VERSION = 1

DEFAULT_WINDOW_S = 60.0
"""Default window width in simulated seconds — one constellation snapshot
slot (:class:`~repro.spacecdn.system.SpaceCdnSystem` recomputes visibility
on the same quantum), so a window never straddles a topology change."""

FIXED_POINT_SCALE = 1_000_000
"""Per-window totals are accumulated as integer micro-units so that the
merge of N shard deltas is exact integer addition (order-independent),
not float summation (order-dependent). One micro-ms on an RTT total is
far below any bucket bound, so nothing observable is lost."""


def _fp(value: float) -> int:
    """A float observation in fixed-point micro-units."""
    return int(round(value * FIXED_POINT_SCALE))


def _un_fp(value: int) -> float:
    """A fixed-point total back as a float for export."""
    return value / FIXED_POINT_SCALE


class WindowHistogram:
    """One window's worth of a fixed-bucket histogram — all integers."""

    __slots__ = ("bucket_counts", "count", "total_fp")

    def __init__(self, num_bounds: int) -> None:
        self.bucket_counts = [0] * (num_bounds + 1)  # last slot is +Inf
        self.count = 0
        self.total_fp = 0


class TimeSeriesBuffer:
    """All windowed series of one recording session.

    The API mirrors :class:`~repro.obs.metrics.MetricsRegistry` with a
    leading ``t_s`` (simulated seconds) on every recording call; series
    are keyed by ``(name, labels)`` and hold one integer cell per window
    that saw an observation (sparse — quiet windows cost nothing).
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S) -> None:
        if not window_s > 0:
            raise ObsError(f"window width must be positive, got {window_s}")
        self.window_s = float(window_s)
        self._counters: dict[tuple[str, Labels], dict[int, int]] = {}
        self._histograms: dict[tuple[str, Labels], dict[int, WindowHistogram]] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}

    def window_of(self, t_s: float) -> int:
        """The window index of a simulated timestamp (pure, seed-free)."""
        return int(t_s // self.window_s)

    # -- recording ---------------------------------------------------------

    def inc(
        self, t_s: float, name: str, labels: Labels = (), value: float = 1.0
    ) -> None:
        """Add ``value`` to a counter in the window containing ``t_s``."""
        series = self._counters.setdefault((name, _check_labels(labels)), {})
        window = self.window_of(t_s)
        series[window] = series.get(window, 0) + _fp(value)

    def observe(
        self,
        t_s: float,
        name: str,
        value: float,
        labels: Labels = (),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> None:
        """Record one histogram sample in the window containing ``t_s``.

        Bucket bounds pin on first use per metric name, exactly like the
        scalar registry — mixed-bucket series cannot be aggregated.
        """
        pinned = self._buckets.setdefault(name, tuple(buckets))
        if pinned != tuple(buckets):
            raise ObsError(
                f"windowed histogram {name!r} was created with buckets "
                f"{pinned}, got {tuple(buckets)}"
            )
        series = self._histograms.setdefault((name, _check_labels(labels)), {})
        window = self.window_of(t_s)
        cell = series.get(window)
        if cell is None:
            cell = series[window] = WindowHistogram(len(pinned))
        index = 0
        for bound in pinned:
            if value <= bound:
                break
            index += 1
        cell.bucket_counts[index] += 1
        cell.count += 1
        cell.total_fp += _fp(value)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, window: int, labels: Labels = ()) -> float:
        series = self._counters.get((name, labels), {})
        return _un_fp(series.get(window, 0))

    def histogram_cell(
        self, name: str, window: int, labels: Labels = ()
    ) -> WindowHistogram | None:
        return self._histograms.get((name, labels), {}).get(window)

    def windows(self) -> list[int]:
        """Every window index any series touched, ascending."""
        seen: set[int] = set()
        for series in self._counters.values():
            seen.update(series)
        for cells in self._histograms.values():
            seen.update(cells)
        return sorted(seen)

    @property
    def is_empty(self) -> bool:
        return not (self._counters or self._histograms)

    # -- delta serialisation -----------------------------------------------

    def snapshot_delta(self, drain: bool = False) -> dict:
        """A JSON-serialisable snapshot of every windowed series.

        Shipped by parallel workers alongside the scalar metrics delta;
        every value is an integer, so the parent's merge is exact. With
        ``drain=True`` the buffer empties (bucket pins are kept).
        """
        delta = {
            "window_s": self.window_s,
            "counters": [
                [
                    name,
                    [list(pair) for pair in labels],
                    [[window, value] for window, value in sorted(series.items())],
                ]
                for (name, labels), series in self._counters.items()
            ],
            "histograms": [
                [
                    name,
                    [list(pair) for pair in labels],
                    list(self._buckets[name]),
                    [
                        [window, list(cell.bucket_counts), cell.count, cell.total_fp]
                        for window, cell in sorted(cells.items())
                    ],
                ]
                for (name, labels), cells in self._histograms.items()
            ],
        }
        if drain:
            self._counters = {}
            self._histograms = {}
        return delta

    def merge_delta(self, delta: dict) -> None:
        """Fold a shipped windowed-series delta into this buffer.

        Window-wise integer addition — associative and commutative, so
        shard completion order cannot change the merged series. Window
        width and bucket-bound drift are configuration errors.
        """
        window_s = float(delta.get("window_s", self.window_s))
        if window_s != self.window_s:
            raise ObsError(
                f"cannot merge time series: shipped window width {window_s}s "
                f"differs from the local {self.window_s}s"
            )
        for name, raw_labels, points in delta.get("counters", ()):
            labels = tuple((str(k), str(v)) for k, v in raw_labels)
            series = self._counters.setdefault((name, labels), {})
            for window, value in points:
                series[int(window)] = series.get(int(window), 0) + int(value)
        for name, raw_labels, raw_bounds, points in delta.get("histograms", ()):
            bounds = tuple(float(b) for b in raw_bounds)
            pinned = self._buckets.setdefault(name, bounds)
            if pinned != bounds:
                raise ObsError(
                    f"cannot merge windowed histogram {name!r}: shipped "
                    f"buckets {bounds} differ from the pinned {pinned}"
                )
            labels = tuple((str(k), str(v)) for k, v in raw_labels)
            cells = self._histograms.setdefault((name, labels), {})
            for window, bucket_counts, count, total_fp in points:
                cell = cells.get(int(window))
                if cell is None:
                    cell = cells[int(window)] = WindowHistogram(len(bounds))
                if len(bucket_counts) != len(cell.bucket_counts):
                    raise ObsError(
                        f"cannot merge windowed histogram {name!r}: shipped "
                        f"{len(bucket_counts)} buckets, local cell holds "
                        f"{len(cell.bucket_counts)}"
                    )
                for index, bucket in enumerate(bucket_counts):
                    cell.bucket_counts[index] += int(bucket)
                cell.count += int(count)
                cell.total_fp += int(total_fp)

    # -- exporters ---------------------------------------------------------

    def to_json(self) -> dict:
        """The whole buffer as one deterministic JSON document.

        Series and windows are sorted and fixed-point totals convert back
        to floats by a single division, so two buffers holding the same
        cells serialise to byte-identical text regardless of the order in
        which observations or shard deltas arrived.
        """

        def label_dict(labels: Labels) -> dict[str, str]:
            return {key: value for key, value in labels}

        return {
            "format_version": TS_FORMAT_VERSION,
            "window_s": self.window_s,
            "windows": self.windows(),
            "counters": [
                {
                    "name": name,
                    "labels": label_dict(labels),
                    "points": [
                        [window, _un_fp(value)]
                        for window, value in sorted(series.items())
                    ],
                }
                for (name, labels), series in sorted(self._counters.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": label_dict(labels),
                    "bounds": list(self._buckets[name]),
                    "points": [
                        {
                            "window": window,
                            "bucket_counts": list(cell.bucket_counts),
                            "count": cell.count,
                            "sum": _un_fp(cell.total_fp),
                        }
                        for window, cell in sorted(cells.items())
                    ],
                }
                for (name, labels), cells in sorted(self._histograms.items())
            ],
        }

    def write_json(self, path: str | Path) -> None:
        """Atomically write the JSON document to ``path``."""
        atomic_write_text(path, json.dumps(self.to_json(), indent=1, sort_keys=True))


def read_timeseries(path: str | Path) -> dict:
    """Load and validate an ``obs-timeseries.json`` document."""
    try:
        doc = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise ObsError(f"no time-series document at {path}") from None
    except json.JSONDecodeError as exc:
        raise ObsError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or "windows" not in doc:
        raise ObsError(f"{path} is not a time-series document")
    version = doc.get("format_version")
    if version != TS_FORMAT_VERSION:
        raise ObsError(
            f"time-series format version {version!r} is not the expected "
            f"{TS_FORMAT_VERSION}"
        )
    return doc


def timeseries_diff(left: TimeSeriesBuffer, right: TimeSeriesBuffer) -> list[str]:
    """Human-readable differences between two buffers; ``[]`` means equal.

    Exact integer equality — no tolerance is needed because windowed cells
    never hold floats, which is precisely what makes "``--jobs N`` equals
    ``--jobs 1``" a byte-level guarantee rather than an approximate one.
    """
    problems: list[str] = []
    if left.window_s != right.window_s:
        problems.append(f"window_s: {left.window_s} != {right.window_s}")
    for key in sorted(set(left._counters) | set(right._counters)):
        a = left._counters.get(key)
        b = right._counters.get(key)
        if a is None or b is None:
            problems.append(f"counter {key}: present only on one side")
        elif a != b:
            problems.append(f"counter {key}: window series differ")
    for key in sorted(set(left._histograms) | set(right._histograms)):
        a = left._histograms.get(key)
        b = right._histograms.get(key)
        if a is None or b is None:
            problems.append(f"histogram {key}: present only on one side")
            continue
        if left._buckets.get(key[0]) != right._buckets.get(key[0]):
            problems.append(f"histogram {key}: bucket bounds differ")
        if sorted(a) != sorted(b):
            problems.append(f"histogram {key}: window sets differ")
            continue
        for window in sorted(a):
            ca, cb = a[window], b[window]
            if (
                ca.bucket_counts != cb.bucket_counts
                or ca.count != cb.count
                or ca.total_fp != cb.total_fp
            ):
                problems.append(f"histogram {key} window {window}: cells differ")
    return problems
