"""Crash-safe file writes shared by the exporters and the runner.

A write that dies half-way must never leave a truncated artifact under the
final name: writers emit to a sibling ``*.tmp`` file, flush + ``fsync`` it,
then ``os.replace`` it over the destination (atomic on POSIX within one
filesystem). Readers therefore observe either the old complete file or the
new complete file, never a partial one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator


def _fsync_dir(directory: Path) -> None:
    """Persist a directory entry (rename durability); best-effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_open(path: str | Path, newline: str | None = None) -> Iterator[IO[str]]:
    """Open ``path`` for atomic text writing.

    Yields a handle onto ``<path>.<pid>.tmp`` in the same directory (same
    filesystem, so the final rename is atomic). On clean exit the data is
    fsynced and renamed over ``path``; on any exception the temp file is
    removed and the destination is left untouched.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    handle = tmp.open("w", newline=newline)
    try:
        yield handle
        handle.flush()
        os.fsync(handle.fileno())
        handle.close()
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        handle.close()
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomically replace ``path`` with ``text`` (tmp + fsync + rename)."""
    with atomic_open(path) as handle:
        handle.write(text)
