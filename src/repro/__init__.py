"""SpaceCDN: content delivery networks in the LEO satellite network era.

A reproduction of *"It's a bird? It's a plane? It's CDN!"* (Bose et al.,
HotNets '24): a Walker-constellation simulator with +Grid inter-satellite
links, calibrated Starlink and terrestrial path-latency models, a synthetic
Cloudflare-AIM measurement pipeline, a NetMet web-browsing model, and the
SpaceCDN system itself — on-satellite caching with hop-bounded ISL lookup,
duty cycling, video striping, content bubbles and VM handover.

Quickstart::

    from repro import starlink_shell1, build_walker_delta, build_snapshot
    from repro.spacecdn import SpaceCdnLookup, KPerPlanePlacement

    shell = starlink_shell1()
    constellation = build_walker_delta(shell)
    snapshot = build_snapshot(constellation, t_s=0.0)
    placement = KPerPlanePlacement(copies_per_plane=4)
    holders = placement.place_object("video-123", shell)
    lookup = SpaceCdnLookup(snapshot=snapshot, max_hops=5)

See ``examples/`` for runnable end-to-end scenarios and ``benchmarks/`` for
the per-table/figure reproduction harnesses.
"""

from repro.constants import orbital_period_s, orbital_speed_km_s
from repro.errors import (
    ReproError,
    ConfigurationError,
    GeodesyError,
    RoutingError,
    VisibilityError,
    CacheError,
    ContentNotFoundError,
    DatasetError,
    PlacementError,
)
from repro.geo.coordinates import GeoPoint, great_circle_km, slant_range_km
from repro.orbits.elements import ShellConfig, SatelliteId, starlink_shell1
from repro.orbits.walker import Constellation, build_walker_delta
from repro.topology.graph import SnapshotGraph, build_snapshot

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "orbital_period_s",
    "orbital_speed_km_s",
    "ReproError",
    "ConfigurationError",
    "GeodesyError",
    "RoutingError",
    "VisibilityError",
    "CacheError",
    "ContentNotFoundError",
    "DatasetError",
    "PlacementError",
    "GeoPoint",
    "great_circle_km",
    "slant_range_km",
    "ShellConfig",
    "SatelliteId",
    "starlink_shell1",
    "Constellation",
    "build_walker_delta",
    "SnapshotGraph",
    "build_snapshot",
]
