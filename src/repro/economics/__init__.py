"""Economics of SpaceCDNs (paper §5): delivery cost and MetaCDN sharing."""

from repro.economics.costs import (
    SpaceCdnCostParams,
    TerrestrialCostParams,
    DeliveryCostModel,
    DeliveryCostBreakdown,
)
from repro.economics.metacdn import MetaCdnOperator, TenantAllocation

__all__ = [
    "SpaceCdnCostParams",
    "TerrestrialCostParams",
    "DeliveryCostModel",
    "DeliveryCostBreakdown",
    "MetaCdnOperator",
    "TenantAllocation",
]
