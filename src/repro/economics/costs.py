"""Delivery cost model: SpaceCDN vs terrestrial CDN vs origin-only (§5).

The paper observes that SpaceCDN benefits concentrate in regions that are
*not* lucrative for traditional operators, and sketches a MetaCDN model
where the LSN monetises its caches. This module turns that sketch into a
parameterised per-GB cost model:

* **SpaceCDN**: amortised satellite payload cost spread over delivered
  traffic, plus downlink spectrum opportunity cost — cheap only above a
  utilisation floor;
* **terrestrial CDN**: edge egress plus a WAN fill share, plus — the key
  term for remote regions — the cost of *reaching* the edge over
  under-provisioned transit;
* **origin-only**: WAN transit the whole way.

Defaults are order-of-magnitude engineering estimates (launch ~$1500/kg,
~$300k payload amortised over 5 years), chosen so the *comparisons* are
meaningful; every number is a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SpaceCdnCostParams:
    """Cost structure of running a caching payload on one satellite."""

    payload_capex_usd: float = 300_000.0
    """Incremental hardware + launch mass for the caching payload."""

    payload_lifetime_years: float = 5.0
    """LEO satellite service life (atmospheric drag bounds it)."""

    payload_power_opex_usd_per_year: float = 6_000.0
    """Share of solar/battery budget and ops attributable to caching."""

    downlink_opportunity_usd_per_gb: float = 0.002
    """Spectrum/beam capacity the cache's traffic displaces."""

    isl_transit_usd_per_gb: float = 0.001
    """Optical ISL capacity used when content is fetched from a neighbour."""

    def __post_init__(self) -> None:
        if self.payload_lifetime_years <= 0:
            raise ConfigurationError("payload lifetime must be positive")
        if min(
            self.payload_capex_usd,
            self.payload_power_opex_usd_per_year,
            self.downlink_opportunity_usd_per_gb,
            self.isl_transit_usd_per_gb,
        ) < 0:
            raise ConfigurationError("cost parameters must be non-negative")

    @property
    def amortised_usd_per_year(self) -> float:
        """Capex spread over the payload lifetime, plus yearly opex."""
        return (
            self.payload_capex_usd / self.payload_lifetime_years
            + self.payload_power_opex_usd_per_year
        )


@dataclass(frozen=True)
class TerrestrialCostParams:
    """Cost structure of classical CDN delivery to a region."""

    edge_egress_usd_per_gb: float = 0.004
    """Serving a cached byte from a local edge."""

    wan_fill_usd_per_gb: float = 0.03
    """Filling an edge cache over the WAN (amortised per served GB via
    the miss ratio)."""

    remote_transit_usd_per_gb: float = 0.08
    """Reaching users over under-provisioned transit when the nearest
    edge is far away (the Africa inter-country detour problem)."""

    origin_egress_usd_per_gb: float = 0.05
    """Serving straight from origin over the WAN (no CDN at all)."""

    def __post_init__(self) -> None:
        if min(
            self.edge_egress_usd_per_gb,
            self.wan_fill_usd_per_gb,
            self.remote_transit_usd_per_gb,
            self.origin_egress_usd_per_gb,
        ) < 0:
            raise ConfigurationError("cost parameters must be non-negative")


@dataclass(frozen=True)
class DeliveryCostBreakdown:
    """Per-GB delivery cost of the three strategies for one demand profile."""

    spacecdn_usd_per_gb: float
    terrestrial_cdn_usd_per_gb: float
    origin_only_usd_per_gb: float

    def cheapest(self) -> str:
        """Which strategy wins: 'spacecdn', 'terrestrial-cdn' or 'origin'."""
        costs = {
            "spacecdn": self.spacecdn_usd_per_gb,
            "terrestrial-cdn": self.terrestrial_cdn_usd_per_gb,
            "origin": self.origin_only_usd_per_gb,
        }
        return min(costs, key=costs.__getitem__)


@dataclass
class DeliveryCostModel:
    """Compares delivery strategies for a regional demand profile."""

    space: SpaceCdnCostParams = SpaceCdnCostParams()
    terrestrial: TerrestrialCostParams = TerrestrialCostParams()
    satellites_serving_region: int = 40
    """Satellites whose amortised cost the region's traffic must carry
    (footprint share of the fleet)."""

    def __post_init__(self) -> None:
        if self.satellites_serving_region < 1:
            raise ConfigurationError("need at least one serving satellite")

    def spacecdn_usd_per_gb(
        self,
        demand_gb_per_month: float,
        space_hit_ratio: float = 0.9,
        mean_isl_hops: float = 2.0,
    ) -> float:
        """Per-GB cost of SpaceCDN delivery at a given utilisation."""
        if demand_gb_per_month <= 0:
            raise ConfigurationError("demand must be positive")
        if not 0.0 <= space_hit_ratio <= 1.0:
            raise ConfigurationError("hit ratio must be in [0, 1]")
        if mean_isl_hops < 0:
            raise ConfigurationError("mean hops must be non-negative")
        amortised_month = (
            self.space.amortised_usd_per_year * self.satellites_serving_region / 12.0
        )
        fixed = amortised_month / demand_gb_per_month
        variable = (
            self.space.downlink_opportunity_usd_per_gb
            + mean_isl_hops * self.space.isl_transit_usd_per_gb
        )
        # Misses fall back to the ground and pay the terrestrial WAN price.
        miss = (1.0 - space_hit_ratio) * self.terrestrial.wan_fill_usd_per_gb
        return fixed + variable + miss

    def terrestrial_cdn_usd_per_gb(
        self, edge_is_local: bool, cache_hit_ratio: float = 0.9
    ) -> float:
        """Per-GB cost of classical CDN delivery to a region."""
        if not 0.0 <= cache_hit_ratio <= 1.0:
            raise ConfigurationError("hit ratio must be in [0, 1]")
        serve = self.terrestrial.edge_egress_usd_per_gb
        if not edge_is_local:
            serve += self.terrestrial.remote_transit_usd_per_gb
        fill = (1.0 - cache_hit_ratio) * self.terrestrial.wan_fill_usd_per_gb
        return serve + fill

    def breakdown(
        self,
        demand_gb_per_month: float,
        edge_is_local: bool,
        space_hit_ratio: float = 0.9,
        mean_isl_hops: float = 2.0,
    ) -> DeliveryCostBreakdown:
        """All three strategies for one demand profile."""
        return DeliveryCostBreakdown(
            spacecdn_usd_per_gb=self.spacecdn_usd_per_gb(
                demand_gb_per_month, space_hit_ratio, mean_isl_hops
            ),
            terrestrial_cdn_usd_per_gb=self.terrestrial_cdn_usd_per_gb(
                edge_is_local
            ),
            origin_only_usd_per_gb=self.terrestrial.origin_egress_usd_per_gb
            + (0.0 if edge_is_local else self.terrestrial.remote_transit_usd_per_gb),
        )

    def breakeven_demand_gb_per_month(
        self,
        edge_is_local: bool,
        space_hit_ratio: float = 0.9,
        mean_isl_hops: float = 2.0,
    ) -> float:
        """Monthly demand above which SpaceCDN beats the terrestrial CDN.

        Returns ``inf`` when SpaceCDN's variable cost alone already exceeds
        the terrestrial price (it can never win at any volume).
        """
        terrestrial = self.terrestrial_cdn_usd_per_gb(edge_is_local)
        variable = (
            self.space.downlink_opportunity_usd_per_gb
            + mean_isl_hops * self.space.isl_transit_usd_per_gb
            + (1.0 - space_hit_ratio) * self.terrestrial.wan_fill_usd_per_gb
        )
        margin = terrestrial - variable
        if margin <= 0.0:
            return float("inf")
        amortised_month = (
            self.space.amortised_usd_per_year * self.satellites_serving_region / 12.0
        )
        return amortised_month / margin
