"""MetaCDN-style multi-tenant operation of satellite caches (§5).

The paper envisions the LSN owning the on-orbit caches and renting slices
to content customers (streaming services, news networks), "possibly
partnering with existing local terrestrial CDN operators". The
:class:`MetaCdnOperator` allocates cache capacity across tenants
proportionally to what they commit to pay, prices delivery with a margin
over cost, and reports per-tenant economics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.economics.costs import DeliveryCostModel
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TenantAllocation:
    """One tenant's slice of the fleet cache."""

    tenant: str
    committed_usd_per_month: float
    allocated_bytes: int
    price_usd_per_gb: float


@dataclass
class MetaCdnOperator:
    """Allocates fleet cache capacity and prices delivery for tenants."""

    total_cache_bytes: int
    cost_model: DeliveryCostModel = field(default_factory=DeliveryCostModel)
    margin: float = 0.35
    """Operator margin over delivery cost."""

    _commitments: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.total_cache_bytes <= 0:
            raise ConfigurationError("total cache capacity must be positive")
        if self.margin < 0:
            raise ConfigurationError("margin must be non-negative")

    def commit(self, tenant: str, usd_per_month: float) -> None:
        """Register (or update) a tenant's monthly commitment."""
        if usd_per_month <= 0:
            raise ConfigurationError("commitment must be positive")
        self._commitments[tenant] = usd_per_month

    def withdraw(self, tenant: str) -> None:
        """Remove a tenant; raises if unknown."""
        if tenant not in self._commitments:
            raise ConfigurationError(f"unknown tenant: {tenant!r}")
        del self._commitments[tenant]

    def tenants(self) -> list[str]:
        return sorted(self._commitments)

    def delivery_price_usd_per_gb(
        self, demand_gb_per_month: float, space_hit_ratio: float = 0.9
    ) -> float:
        """What the operator charges per delivered GB (cost plus margin)."""
        cost = self.cost_model.spacecdn_usd_per_gb(
            demand_gb_per_month, space_hit_ratio
        )
        return cost * (1.0 + self.margin)

    def allocations(self, demand_gb_per_month: float) -> list[TenantAllocation]:
        """Capacity split proportional to commitments.

        Larger commitments buy proportionally more cache bytes; the price
        per GB is uniform (the fleet's marginal delivery cost plus margin),
        which keeps the scheme incentive-compatible for small tenants.
        """
        if not self._commitments:
            return []
        total_commit = sum(self._commitments.values())
        price = self.delivery_price_usd_per_gb(demand_gb_per_month)
        return [
            TenantAllocation(
                tenant=tenant,
                committed_usd_per_month=commit,
                allocated_bytes=int(self.total_cache_bytes * commit / total_commit),
                price_usd_per_gb=price,
            )
            for tenant, commit in sorted(self._commitments.items())
        ]

    def monthly_revenue_usd(self, delivered_gb_by_tenant: dict[str, float]) -> float:
        """Revenue from delivered traffic at the uniform price.

        Raises for traffic attributed to tenants without a commitment.
        """
        unknown = set(delivered_gb_by_tenant) - set(self._commitments)
        if unknown:
            raise ConfigurationError(f"traffic from unknown tenants: {sorted(unknown)}")
        total_gb = sum(delivered_gb_by_tenant.values())
        if total_gb < 0:
            raise ConfigurationError("delivered traffic cannot be negative")
        if total_gb == 0:
            return 0.0
        price = self.delivery_price_usd_per_gb(total_gb)
        return price * total_gb
