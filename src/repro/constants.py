"""Physical and engineering constants used throughout the simulation.

All distances are kilometres, all times are seconds unless a name says
otherwise (``*_ms`` means milliseconds). The calibration constants in the
second half of the module are anchored to the figures quoted in the paper
(Bose et al., HotNets '24) — see DESIGN.md §6 for the anchor list.
"""

from __future__ import annotations

import math

# --- Physical constants -----------------------------------------------------

EARTH_RADIUS_KM: float = 6371.0
"""Mean Earth radius (spherical Earth model)."""

EARTH_MU_KM3_S2: float = 398600.4418
"""Standard gravitational parameter of Earth (km^3/s^2)."""

EARTH_ROTATION_RAD_S: float = 7.2921159e-5
"""Earth sidereal rotation rate (rad/s)."""

SPEED_OF_LIGHT_KM_S: float = 299792.458
"""Speed of light in vacuum — governs free-space optical ISLs and radio links."""

FIBER_REFRACTION_INDEX: float = 1.468
"""Typical group index of single-mode fiber; light in fiber travels at c/n."""

FIBER_SPEED_KM_S: float = SPEED_OF_LIGHT_KM_S / FIBER_REFRACTION_INDEX
"""Propagation speed in terrestrial fiber (~204,000 km/s)."""

SECONDS_PER_DAY: float = 86400.0

# --- Starlink Shell 1 (the configuration simulated in the paper, §4) --------

STARLINK_SHELL1_ALTITUDE_KM: float = 550.0
STARLINK_SHELL1_INCLINATION_DEG: float = 53.0
STARLINK_SHELL1_NUM_PLANES: int = 72
STARLINK_SHELL1_SATS_PER_PLANE: int = 22
STARLINK_SHELL1_PHASE_OFFSET: int = 39
"""Walker-delta phasing factor commonly used for Shell 1 in LEO simulators."""

MIN_ELEVATION_USER_DEG: float = 25.0
"""Minimum elevation angle for a user terminal to talk to a satellite."""

MIN_ELEVATION_GS_DEG: float = 10.0
"""Ground stations use larger dishes and can track lower elevations."""

# --- Access-link calibration (anchored to paper Table 1 best cases) ---------

STARLINK_SCHEDULING_DELAY_MS: float = 4.0
"""Minimum one-way MAC scheduling / frame-alignment delay on the Ku-band link.

This is the floor; the frame-alignment *jitter* on top of it (0 to one full
scheduling interval) lives in :class:`repro.network.latency.LatencyNoise`.
"""

STARLINK_FRAME_JITTER_MAX_MS: float = 20.0
"""Worst-case extra RTT from uplink-grant alignment and CGNAT queueing —
the spread between Starlink's minRTT and its median RTT."""

STARLINK_PROCESSING_DELAY_MS: float = 1.5
"""Per-traversal satellite/gateway processing (modem, switching)."""

POP_PROCESSING_DELAY_MS: float = 1.5
"""CGNAT + aggregation at the Starlink point of presence (one-way)."""

ISL_HOP_PROCESSING_MS: float = 0.35
"""Per-ISL-hop optical-terminal switching delay (one-way)."""

TERRESTRIAL_PER_HOP_MS: float = 0.25
"""Average per-router queueing/forwarding delay on terrestrial paths."""

CDN_SERVER_THINK_TIME_MS: float = 3.0
"""Typical CDN cache-hit response generation time (first byte)."""

BUFFERBLOAT_LOADED_EXTRA_MS: float = 200.0
"""Extra latency under load observed on Starlink paths (paper §3.2)."""

# --- Terrestrial path circuity ----------------------------------------------
# Real routes are longer than geodesics: cable layout, IXP detours. The paper's
# Africa analysis (Formoso et al. reference) motivates a much higher circuity
# for poorly interconnected regions.

CIRCUITY_TIER1: float = 1.4
"""Well-provisioned regions (western Europe, US coasts, Japan)."""

CIRCUITY_TIER2: float = 1.8
"""Moderately provisioned regions."""

CIRCUITY_TIER3: float = 2.6
"""Poorly interconnected regions (much of Africa, remote islands)."""

# --- SpaceCDN capacity arithmetic (paper §5) ---------------------------------

SATELLITE_STORAGE_TB: float = 150.0
"""Storage attached to one high-end in-orbit server (HPE DL325 figure)."""

VIDEO_1080P_GB_PER_HOUR: float = 1.4
"""Approximate size of 1080p/30fps video per hour (H.264)."""

SATELLITE_THERMAL_LIMIT_C: float = 30.0
"""Passive-cooling safe operating ceiling quoted in §5."""


def orbital_period_s(altitude_km: float) -> float:
    """Period of a circular orbit at ``altitude_km`` above the mean surface."""
    semi_major_km = EARTH_RADIUS_KM + altitude_km
    return 2.0 * math.pi * math.sqrt(semi_major_km**3 / EARTH_MU_KM3_S2)


def orbital_speed_km_s(altitude_km: float) -> float:
    """Ground-frame speed of a satellite on a circular orbit."""
    semi_major_km = EARTH_RADIUS_KM + altitude_km
    return math.sqrt(EARTH_MU_KM3_S2 / semi_major_km)
