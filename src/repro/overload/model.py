"""Overload protection: capacity, admission, queueing, circuit breakers.

The paper's §5 duty-cycling observation cuts both ways: thermal budgets not
only rotate satellites out of the cache fleet, they bound how many requests
a satellite that *is* in rotation can answer per slot. This module turns
that bound into a serving-path discipline:

* **Capacity** — each satellite (and the bent-pipe ground segment) carries
  a per-slot request budget, derived from
  :meth:`~repro.spacecdn.capacity.ThermalModel.sustainable_requests_per_slot`
  or set explicitly. Flash crowds
  (:class:`~repro.faults.processes.FlashCrowdProcess`) consume budget as
  background load before any real request is admitted.
* **Admission control** — requests carry a priority class; lower classes
  are shed at progressively lower utilisation thresholds, so a saturating
  satellite degrades by shedding bulk traffic first instead of collapsing
  for everyone at once.
* **Queueing delay** — admitted requests pay an M/M/1-style inflation
  ``service · ρ/(1−ρ)`` on top of the propagation RTT, so latency rises
  smoothly towards the knee rather than stepping at it.
* **Circuit breakers** — a closed/open/half-open state machine per target
  stops the fallback ladder from hammering rungs that keep refusing or
  failing; half-open probes (with seeded cooldown jitter) let a recovered
  target rejoin without a thundering herd.

Everything is deterministic in ``(seed, request order, simulated time)``:
the same request stream through the same model always sheds the same
requests with the same delays, scalar or batched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.retry import DeadlineBudget
from repro.obs.recorder import get_recorder

if TYPE_CHECKING:  # runtime import stays lazy: spacecdn imports this module
    from repro.spacecdn.capacity import ThermalModel

GROUND_TARGET = -1
"""Breaker key for the bent-pipe ground rung (satellite indices are >= 0)."""

BREAKER_STATES = ("closed", "open", "half-open")
"""Every state a circuit breaker can be in, in gauge-rendering order."""


@dataclass(frozen=True)
class CircuitBreakerConfig:
    """Tuning for one per-target circuit breaker.

    ``failure_threshold`` consecutive failures open the breaker;
    after ``cooldown_s`` (plus seeded jitter up to ``cooldown_jitter_s``,
    so a correlated outage does not re-probe every target at the same
    instant) it half-opens and admits ``half_open_probes`` probe requests —
    one success closes it, one failure re-opens it with a fresh cooldown.
    """

    failure_threshold: int = 3
    cooldown_s: float = 120.0
    cooldown_jitter_s: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s <= 0:
            raise ConfigurationError(f"cooldown must be positive: {self.cooldown_s}")
        if self.cooldown_jitter_s < 0:
            raise ConfigurationError(
                f"negative cooldown jitter: {self.cooldown_jitter_s}"
            )
        if self.half_open_probes < 1:
            raise ConfigurationError(
                f"half-open probes must be >= 1, got {self.half_open_probes}"
            )


class CircuitBreaker:
    """The closed/open/half-open state machine for one serving target.

    Time is simulated seconds, pushed in by the caller — the breaker never
    reads a clock, which is what keeps overloaded runs reproducible.
    ``on_transition`` is the owning model's hook (state-count gauges,
    transition counters, trace spans); the breaker itself stays obs-free.
    """

    __slots__ = (
        "config", "seed", "target", "state", "on_transition",
        "_failures", "_opens", "_reopen_at", "_probes_left",
    )

    def __init__(
        self,
        config: CircuitBreakerConfig,
        seed: int,
        target: int,
        on_transition=None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.target = target
        self.on_transition = on_transition
        self.state = "closed"
        self._failures = 0
        self._opens = 0
        self._reopen_at = 0.0
        self._probes_left = 0

    def _transition(self, to: str, t_s: float) -> None:
        if to == self.state:
            return
        old, self.state = self.state, to
        if self.on_transition is not None:
            self.on_transition(self.target, old, to, t_s)

    def _cooldown_s(self) -> float:
        """This open's cooldown: base plus seeded jitter, per-open stream."""
        if self.config.cooldown_jitter_s <= 0:
            return self.config.cooldown_s
        rng = np.random.default_rng(
            (self.seed, 0xB4EA, self.target + 1, self._opens)
        )
        return self.config.cooldown_s + float(rng.random()) * (
            self.config.cooldown_jitter_s
        )

    def _open(self, t_s: float) -> None:
        self._opens += 1
        self._failures = 0
        self._reopen_at = t_s + self._cooldown_s()
        self._transition("open", t_s)

    def allow(self, t_s: float) -> bool:
        """Whether an attempt against this target may proceed at ``t_s``.

        Open breakers half-open themselves once the cooldown elapses; each
        ``allow`` in the half-open state consumes one probe slot.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if t_s < self._reopen_at:
                return False
            self._probes_left = self.config.half_open_probes
            self._transition("half-open", t_s)
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    def record_success(self, t_s: float) -> None:
        """A completed attempt: closes a probing breaker, clears failures."""
        self._failures = 0
        if self.state != "closed":
            self._transition("closed", t_s)

    def record_failure(self, t_s: float) -> None:
        """A failed/refused attempt: trips or re-opens the breaker."""
        if self.state == "open":
            return
        if self.state == "half-open":
            self._open(t_s)
            return
        self._failures += 1
        if self._failures >= self.config.failure_threshold:
            self._open(t_s)


@dataclass
class OverloadModel:
    """Per-satellite capacity and the protections wrapped around it.

    Hand one to :class:`~repro.spacecdn.system.SpaceCdnSystem` and every
    request runs the overloaded serve path: priority-classed admission
    against per-slot capacity, M/M/1 queue-delay inflation, per-target
    circuit breakers, and an end-to-end deadline budget. A system without
    a model never touches this code — its output stays byte-identical.

    ``shed_thresholds[c]`` is the utilisation fraction above which priority
    class ``c`` is refused admission; class 0 (threshold 1.0) is only shed
    at hard capacity. ``priority_weights`` drive the seeded per-request
    class assignment used when the caller does not pass an explicit class.
    """

    capacity_per_slot: float = 50.0
    ground_capacity_per_slot: float = 200.0
    queue_service_ms: float = 4.0
    max_utilisation: float = 0.98
    max_queue_delay_ms: float = 400.0
    shed_thresholds: tuple[float, ...] = (1.0, 0.9, 0.75)
    priority_weights: tuple[float, ...] = (0.7, 0.2, 0.1)
    deadline_ms: float | None = None
    breaker: CircuitBreakerConfig | None = field(
        default_factory=CircuitBreakerConfig
    )
    seed: int = 0

    _slot: int = field(default=-1, repr=False)
    _load: np.ndarray | None = field(default=None, repr=False)
    _ground_load: float = field(default=0.0, repr=False)
    _background: np.ndarray | None = field(default=None, repr=False)
    _breakers: dict[int, CircuitBreaker] = field(default_factory=dict, repr=False)
    _state_counts: dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_per_slot <= 0 or self.ground_capacity_per_slot <= 0:
            raise ConfigurationError("capacities must be positive")
        if self.queue_service_ms < 0 or self.max_queue_delay_ms < 0:
            raise ConfigurationError("queue service time and cap must be >= 0")
        if not 0.0 < self.max_utilisation < 1.0:
            raise ConfigurationError(
                f"max utilisation must be in (0, 1), got {self.max_utilisation}"
            )
        if len(self.shed_thresholds) != len(self.priority_weights):
            raise ConfigurationError(
                f"{len(self.shed_thresholds)} shed thresholds for "
                f"{len(self.priority_weights)} priority classes"
            )
        if not self.shed_thresholds:
            raise ConfigurationError("at least one priority class is required")
        previous = float("inf")
        for threshold in self.shed_thresholds:
            if not 0.0 < threshold <= 1.0:
                raise ConfigurationError(
                    f"shed thresholds must be in (0, 1], got {threshold}"
                )
            if threshold > previous:
                raise ConfigurationError(
                    "shed thresholds must be non-increasing: lower-priority "
                    "classes cannot outlast higher ones"
                )
            previous = threshold
        if any(w <= 0 for w in self.priority_weights):
            raise ConfigurationError("priority weights must be positive")
        if self.deadline_ms is not None:
            DeadlineBudget(total_ms=self.deadline_ms)  # reuse its validation
        if self.seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {self.seed}")
        self._state_counts = {state: 0 for state in BREAKER_STATES}

    @classmethod
    def from_thermal(
        cls,
        thermal: ThermalModel | None = None,
        peak_requests_per_slot: float = 100.0,
        slot_s: float = 600.0,
        **kwargs,
    ) -> "OverloadModel":
        """A model whose satellite capacity is the thermal duty budget.

        ``peak_requests_per_slot`` is what a satellite could serve running
        its payload flat-out for a whole slot; the admission limit is the
        thermally sustainable share of that.
        """
        from repro.spacecdn.capacity import ThermalModel

        if thermal is None:
            thermal = ThermalModel()
        capacity = thermal.sustainable_requests_per_slot(
            peak_requests_per_slot, slot_s
        )
        return cls(capacity_per_slot=float(capacity), **kwargs)

    @property
    def num_classes(self) -> int:
        return len(self.priority_weights)

    # -- per-slot state ------------------------------------------------------

    def begin_slot(
        self, slot: int, t_s: float, num_satellites: int, schedule
    ) -> None:
        """Reset per-slot load counters on entering a new snapshot slot.

        Idempotent within a slot. Breakers persist across slots (their
        cooldowns span slots by design); background load is recompiled from
        the fault schedule's flash-crowd processes at the slot instant.
        """
        if slot == self._slot and self._load is not None and (
            len(self._load) == num_satellites
        ):
            return
        self._slot = slot
        self._load = np.zeros(num_satellites)
        self._ground_load = 0.0
        self._background = (
            None if schedule is None
            else schedule.compile_load_at(t_s, num_satellites)
        )
        rec = get_recorder()
        if rec.enabled and self.breaker is not None:
            for state in BREAKER_STATES:
                rec.set_gauge(
                    "repro_breaker_state",
                    self._state_counts[state],
                    (("state", state),),
                )

    def _usage(self, satellite: int | None) -> float:
        if satellite is None:
            return self._ground_load
        usage = float(self._load[satellite])
        if self._background is not None:
            usage += float(self._background[satellite])
        return usage

    def _capacity(self, satellite: int | None) -> float:
        if satellite is None:
            return self.ground_capacity_per_slot
        return self.capacity_per_slot

    def utilisation(self, satellite: int | None) -> float:
        """Current slot utilisation of one target (``None`` = ground)."""
        return self._usage(satellite) / self._capacity(satellite)

    # -- the protections -----------------------------------------------------

    def validate_priority(self, priority: int) -> int:
        if not 0 <= priority < self.num_classes:
            raise ConfigurationError(
                f"priority class {priority} out of range "
                f"[0, {self.num_classes})"
            )
        return priority

    def priority_of(self, request_index: int) -> int:
        """The seeded priority class of request ``request_index``."""
        rng = np.random.default_rng((self.seed, 0x9A17, request_index))
        draw = float(rng.random()) * sum(self.priority_weights)
        acc = 0.0
        for cls, weight in enumerate(self.priority_weights):
            acc += weight
            if draw < acc:
                return cls
        return self.num_classes - 1

    def admit(self, satellite: int | None, priority: int) -> bool:
        """Whether one more request fits the target's class threshold."""
        threshold = self.shed_thresholds[priority]
        return self._usage(satellite) + 1.0 <= (
            self._capacity(satellite) * threshold
        )

    def queue_delay_ms(self, satellite: int | None) -> float:
        """M/M/1-style delay inflation at the target's current utilisation."""
        rho = min(self.utilisation(satellite), self.max_utilisation)
        if rho <= 0.0:
            return 0.0
        return min(
            self.queue_service_ms * rho / (1.0 - rho), self.max_queue_delay_ms
        )

    def note_served(self, satellite: int | None) -> None:
        """Charge one admitted-and-served request to the target's slot."""
        if satellite is None:
            self._ground_load += 1.0
        else:
            self._load[satellite] += 1.0

    def deadline_budget(self) -> DeadlineBudget:
        """A fresh per-request deadline budget (inert when unconfigured)."""
        return DeadlineBudget(total_ms=self.deadline_ms)

    def breaker_for(self, target: int) -> CircuitBreaker | None:
        """The (lazily created) breaker guarding one target.

        ``target`` is a satellite index or :data:`GROUND_TARGET`. ``None``
        when breakers are disabled on this model.
        """
        if self.breaker is None:
            return None
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker, self.seed, target, self._on_transition
            )
            self._breakers[target] = breaker
            self._state_counts["closed"] += 1
        return breaker

    def _on_transition(self, target: int, old: str, new: str, t_s: float) -> None:
        """Breaker obs hook: gauges, transition counter, one trace span."""
        self._state_counts[old] -= 1
        self._state_counts[new] += 1
        rec = get_recorder()
        if rec.enabled:
            rec.inc(
                "repro_breaker_transitions_total",
                (("from", old), ("to", new)),
            )
            if new == "open":
                # Windowed by the simulated time of the tripping request, so
                # the timeline dashboard can align breaker trips with the
                # shed/latency spikes they respond to.
                rec.window_inc(t_s, "repro_breaker_opens_total")
            for state in BREAKER_STATES:
                rec.set_gauge(
                    "repro_breaker_state",
                    self._state_counts[state],
                    (("state", state),),
                )
            rec.record_span(
                "breaker",
                target="ground" if target == GROUND_TARGET else target,
                from_state=old,
                to_state=new,
                t_s=t_s,
            )
