"""Overload protection for the serve path (paper §5 capacity discipline).

Per-satellite request capacity derived from thermal duty budgets, priority
admission control with graduated load shedding, M/M/1 queue-delay inflation,
per-target circuit breakers, and end-to-end deadline budgets. Attach an
:class:`OverloadModel` to a :class:`~repro.spacecdn.system.SpaceCdnSystem`
to enable all of it; systems without one are untouched.
"""

from repro.overload.model import (
    BREAKER_STATES,
    GROUND_TARGET,
    CircuitBreaker,
    CircuitBreakerConfig,
    OverloadModel,
)

__all__ = [
    "OverloadModel",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "BREAKER_STATES",
    "GROUND_TARGET",
]
