"""Inter-satellite link (ISL) wiring.

Starlink-generation satellites carry four optical terminals wired in the
"+Grid" pattern: two links to the neighbours ahead/behind in the same orbital
plane and two to the same-slot satellites in the adjacent planes east/west.
The resulting 4-regular graph is *static in satellite indices* — only the
link lengths change as the constellation rotates — which lets the simulation
reuse one link list across every time snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.orbits.elements import ShellConfig


@dataclass(frozen=True)
class IslLink:
    """One undirected inter-satellite link between flat satellite indices."""

    a: int
    b: int
    kind: str  # "intra-plane" or "cross-plane"

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ConfigurationError(f"self-link on satellite {self.a}")
        if self.kind not in ("intra-plane", "cross-plane"):
            raise ConfigurationError(f"unknown ISL kind: {self.kind!r}")

    def endpoints(self) -> tuple[int, int]:
        """Canonical (low, high) endpoint order."""
        return (self.a, self.b) if self.a < self.b else (self.b, self.a)


@lru_cache(maxsize=8)
def nearest_cross_plane_offset(config: ShellConfig) -> int:
    """The slot offset that minimises the cross-plane neighbour distance.

    Walker-delta phasing (F > 0) shifts adjacent planes along-track, so the
    *same-slot* satellite in the next plane can be over a thousand km away
    while a slot-shifted one flies nearly alongside. Real optical terminals
    link to the nearest stable neighbour; we compute the offset once from
    the epoch geometry (it is plane-independent by symmetry).
    """
    if config.num_planes < 2:
        return 0
    from repro.orbits.walker import build_walker_delta

    constellation = build_walker_delta(config)
    positions = constellation.positions_ecef(0.0)
    per = config.sats_per_plane
    anchor = positions[0]  # plane 0, slot 0
    best_offset = 0
    best_distance = float("inf")
    for offset in range(per):
        candidate = positions[per + offset]  # plane 1, slot ``offset``
        dx = candidate - anchor
        distance = float((dx @ dx) ** 0.5)
        if distance < best_distance:
            best_offset, best_distance = offset, distance
    return best_offset


@lru_cache(maxsize=8)
def plus_grid_links(config: ShellConfig) -> tuple[IslLink, ...]:
    """The +Grid link set for a shell: 2 intra-plane + 2 cross-plane per satellite.

    Cross-plane links use the nearest-slot offset (see
    :func:`nearest_cross_plane_offset`). Each undirected link appears exactly
    once; with P planes of S satellites the grid has ``2 * P * S`` links
    (every satellite has degree 4) whenever P > 2 and S > 2.
    """
    if not config.isl_capable:
        return ()
    per = config.sats_per_plane
    planes = config.num_planes
    offset = nearest_cross_plane_offset(config)
    links: list[IslLink] = []
    seen: set[tuple[int, int]] = set()

    def add(a: int, b: int, kind: str) -> None:
        key = (a, b) if a < b else (b, a)
        if key not in seen:
            seen.add(key)
            links.append(IslLink(key[0], key[1], kind))

    for plane in range(planes):
        for slot in range(per):
            index = plane * per + slot
            ahead = plane * per + (slot + 1) % per
            east = ((plane + 1) % planes) * per + (slot + offset) % per
            if ahead != index:
                add(index, ahead, "intra-plane")
            if east != index:
                add(index, east, "cross-plane")
    return tuple(links)


def links_for_satellite(config: ShellConfig, index: int) -> tuple[IslLink, ...]:
    """The (up to four) +Grid links incident to one satellite."""
    if not 0 <= index < config.total_satellites:
        raise ConfigurationError(f"satellite index {index} out of range")
    return tuple(
        link for link in plus_grid_links(config) if index in (link.a, link.b)
    )
