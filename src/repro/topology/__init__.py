"""Constellation topology: ISL wiring, snapshot graphs, routing, ground nodes."""

from repro.topology.isl import (
    IslLink,
    plus_grid_links,
    links_for_satellite,
    nearest_cross_plane_offset,
)
from repro.topology.fastcore import (
    CsrSnapshot,
    CsrTopology,
    build_core,
    csr_topology,
    hop_distances_batch,
    hop_ladder_batch,
    latency_batch,
    nearest_hops,
)
from repro.topology.graph import (
    SnapshotGraph,
    build_snapshot,
    isl_latency_ms,
    access_latency_ms,
)
from repro.topology.routing import (
    RouteResult,
    shortest_path,
    hop_distances,
    latency_by_hop_count,
    min_latency_at_hops,
)
from repro.topology.endtoend import GraphPathRouter, EndToEndPath
from repro.topology.ground import (
    UserTerminal,
    GroundStation,
    PointOfPresence,
    GroundSegment,
)

__all__ = [
    "IslLink",
    "plus_grid_links",
    "links_for_satellite",
    "nearest_cross_plane_offset",
    "CsrSnapshot",
    "CsrTopology",
    "build_core",
    "csr_topology",
    "hop_distances_batch",
    "hop_ladder_batch",
    "latency_batch",
    "nearest_hops",
    "SnapshotGraph",
    "build_snapshot",
    "isl_latency_ms",
    "access_latency_ms",
    "RouteResult",
    "shortest_path",
    "hop_distances",
    "latency_by_hop_count",
    "min_latency_at_hops",
    "UserTerminal",
    "GroundStation",
    "PointOfPresence",
    "GroundSegment",
    "GraphPathRouter",
    "EndToEndPath",
]
