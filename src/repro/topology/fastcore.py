"""Vectorised CSR routing core for the +Grid constellation topology.

The +Grid ISL structure is *static in satellite indices* — only the link
lengths change as the constellation rotates — so the neighbour structure can
be compiled once per shell configuration into flat CSR arrays
(:class:`CsrTopology`) and every snapshot only swaps in a fresh per-link
weight vector (:class:`CsrSnapshot`). Routing queries then run as batched
array kernels instead of per-query ``networkx`` traversals:

* :func:`hop_distances_batch` — BFS levels from many sources at once;
* :func:`latency_batch` — one-way Dijkstra latencies from many sources;
* :func:`hop_ladder_batch` — the Fig. 7 "cheapest satellite at exactly
  h hops" ladder for many sources;
* :func:`nearest_hops` — multi-source BFS (hops to the nearest of a
  replica/holder set), the placement and resilience primitive.

Two interchangeable backends produce identical results: a
``scipy.sparse.csgraph`` fast path (used automatically when scipy is
importable — it is an optional accelerator, never a hard dependency) and a
pure-numpy min-plus relaxation over a padded neighbour matrix, which
exploits the grid's bounded degree (four ISL terminals per satellite).

Satellite failures are expressed as an ``active`` boolean mask: failed
nodes neither relay nor terminate paths, matching ``networkx`` routing on
the degraded subgraph. Link-level faults (ISL cuts, latency degradation)
are expressed per snapshot through :func:`degrade_core`: the degraded view
shares the immutable topology and only swaps the per-link weight/liveness
vectors, so fault injection costs one O(E) array pass, never a rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.constants import ISL_HOP_PROCESSING_MS, SPEED_OF_LIGHT_KM_S
from repro.errors import RoutingError
from repro.obs.recorder import get_recorder
from repro.orbits.elements import ShellConfig
from repro.topology.isl import plus_grid_links

try:  # Optional accelerator; the numpy backend is always available.
    from scipy.sparse import csr_matrix as _scipy_csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only without scipy
    _scipy_csr_matrix = None
    _scipy_dijkstra = None
    HAVE_SCIPY = False

HOP_UNREACHABLE = -1
"""Hop-count value marking satellites no path reaches."""

_MEMO_MAX_SOURCES = 256
"""Cap on per-snapshot memoised single-source results (~3 MB at Shell-1)."""


@dataclass(frozen=True)
class CsrTopology:
    """Flat CSR adjacency of one shell's +Grid, built once per config.

    Directed slot ``k`` is the edge ``slot_row[k] -> indices[k]`` carrying
    undirected link ``slot_link[k]``; ``neighbors``/``neighbor_link`` are the
    same structure padded to a dense ``(N, max_degree)`` matrix (pad slots
    hold a safe node index and link id ``-1``) for the numpy kernels.
    """

    num_nodes: int
    link_a: np.ndarray
    link_b: np.ndarray
    link_kind: tuple[str, ...]
    indptr: np.ndarray
    indices: np.ndarray
    slot_link: np.ndarray
    slot_row: np.ndarray
    neighbors: np.ndarray
    neighbor_link: np.ndarray
    max_degree: int

    @property
    def num_links(self) -> int:
        return len(self.link_a)


@lru_cache(maxsize=16)
def csr_topology(config: ShellConfig) -> CsrTopology:
    """Compile the +Grid link set of a shell into CSR arrays (cached)."""
    links = plus_grid_links(config)
    n = config.total_satellites
    e = len(links)
    link_a = np.fromiter((l.a for l in links), dtype=np.int32, count=e)
    link_b = np.fromiter((l.b for l in links), dtype=np.int32, count=e)
    link_kind = tuple(l.kind for l in links)

    # Directed edge list: every undirected link contributes both directions.
    rows = np.concatenate((link_a, link_b)) if e else np.empty(0, dtype=np.int32)
    cols = np.concatenate((link_b, link_a)) if e else np.empty(0, dtype=np.int32)
    link_ids = np.concatenate((np.arange(e), np.arange(e))).astype(np.int32)

    order = np.argsort(rows, kind="stable")
    rows, cols, link_ids = rows[order], cols[order], link_ids[order]
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)

    degrees = np.diff(indptr)
    max_degree = int(degrees.max()) if n else 0
    neighbors = np.zeros((n, max_degree), dtype=np.int32)
    neighbor_link = np.full((n, max_degree), -1, dtype=np.int32)
    if e:
        slot_of = (np.arange(len(rows)) - indptr[rows]).astype(np.int32)
        neighbors[rows, slot_of] = cols
        neighbor_link[rows, slot_of] = link_ids

    return CsrTopology(
        num_nodes=n,
        link_a=link_a,
        link_b=link_b,
        link_kind=link_kind,
        indptr=indptr,
        indices=cols.astype(np.int32),
        slot_link=link_ids,
        slot_row=rows.astype(np.int32),
        neighbors=neighbors,
        neighbor_link=neighbor_link,
        max_degree=max_degree,
    )


@dataclass
class CsrSnapshot:
    """Per-instant link weights over a shell's static CSR topology.

    ``link_active`` (when not ``None``) marks ISLs cut by a fault schedule:
    inactive links carry nothing in either backend, exactly as if the edge
    were absent from the graph.
    """

    topology: CsrTopology
    link_distance_km: np.ndarray
    link_latency_ms: np.ndarray
    link_active: np.ndarray | None = None
    _matrix_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _memo: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes


def link_weights(
    topology: CsrTopology, positions: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Distances and latencies of every link, one vectorised gather.

    ``positions`` is the ``(N, 3)`` ECEF array of the snapshot instant; the
    distances are the chord lengths between link endpoints and latencies add
    the per-hop optical-terminal switching delay.
    """
    if positions.shape != (topology.num_nodes, 3):
        raise RoutingError(
            f"positions must have shape ({topology.num_nodes}, 3), "
            f"got {positions.shape}"
        )
    diff = positions[topology.link_a] - positions[topology.link_b]
    distances = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    latencies = distances / SPEED_OF_LIGHT_KM_S * 1000.0 + ISL_HOP_PROCESSING_MS
    return distances, latencies


def build_core(constellation, t_s: float) -> CsrSnapshot:
    """CSR snapshot of a constellation at time ``t_s`` (positions included)."""
    with get_recorder().timer("fastcore.build_core"):
        topology = csr_topology(constellation.config)
        distances, latencies = link_weights(
            topology, constellation.positions_ecef(t_s)
        )
        return CsrSnapshot(
            topology=topology, link_distance_km=distances, link_latency_ms=latencies
        )


def degrade_core(
    core: CsrSnapshot,
    latency_multiplier: np.ndarray | None = None,
    cut_links: Iterable[int] = (),
) -> CsrSnapshot:
    """A degraded view of a snapshot core: cut ISLs, inflated link latencies.

    The returned :class:`CsrSnapshot` shares the immutable topology arrays;
    only the per-link latency vector is copied (scaled by
    ``latency_multiplier``, which must be finite and >= 1 everywhere) and a
    ``link_active`` mask marks the cut links. Distances are left untouched —
    degradation models queueing/retransmission delay, not geometry.
    """
    e = core.topology.num_links
    latencies = core.link_latency_ms
    if latency_multiplier is not None:
        mult = np.asarray(latency_multiplier, dtype=np.float64)
        if mult.shape != (e,):
            raise RoutingError(
                f"latency multiplier must have shape ({e},), got {mult.shape}"
            )
        if not np.isfinite(mult).all() or (mult < 1.0).any():
            raise RoutingError("latency multipliers must be finite and >= 1")
        latencies = latencies * mult
    link_active = None if core.link_active is None else core.link_active.copy()
    cut = np.asarray(sorted(set(int(l) for l in cut_links)), dtype=np.int64)
    if cut.size:
        if cut[0] < 0 or cut[-1] >= e:
            bad = cut[0] if cut[0] < 0 else cut[-1]
            raise RoutingError(f"unknown link id {int(bad)} in cut set")
        if link_active is None:
            link_active = np.ones(e, dtype=bool)
        link_active[cut] = False
    return CsrSnapshot(
        topology=core.topology,
        link_distance_km=core.link_distance_km,
        link_latency_ms=latencies,
        link_active=link_active,
    )


# -- source / mask validation -------------------------------------------------


def _as_sources(core: CsrSnapshot, sources, active: np.ndarray | None) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if arr.ndim != 1 or arr.size == 0:
        raise RoutingError("sources must be a non-empty 1-D sequence")
    n = core.num_nodes
    bad = (arr < 0) | (arr >= n)
    if bad.any():
        raise RoutingError(f"unknown source satellite {int(arr[bad][0])}")
    if active is not None and not active[arr].all():
        dead = arr[~active[arr]]
        raise RoutingError(f"source satellite {int(dead[0])} is failed")
    return arr


def _as_active(core: CsrSnapshot, active) -> np.ndarray | None:
    if active is None:
        return None
    mask = np.asarray(active, dtype=bool)
    if mask.shape != (core.num_nodes,):
        raise RoutingError(
            f"active mask must have shape ({core.num_nodes},), got {mask.shape}"
        )
    return mask


def _pick_method(method: str) -> str:
    if method == "auto":
        return "scipy" if HAVE_SCIPY else "numpy"
    if method not in ("scipy", "numpy"):
        raise RoutingError(f"unknown routing backend {method!r}")
    if method == "scipy" and not HAVE_SCIPY:
        raise RoutingError("scipy backend requested but scipy is not importable")
    return method


# -- scipy backend ------------------------------------------------------------


def _scipy_graph(core: CsrSnapshot, active: np.ndarray | None, weighted: bool):
    """A csgraph CSR matrix of the (possibly degraded) snapshot, cached for
    the common undegraded case."""
    key = (weighted, None if active is None else active.tobytes())
    cached = core._matrix_cache.get(key)
    if cached is not None:
        return cached
    topo = core.topology
    rows, cols, links = topo.slot_row, topo.indices, topo.slot_link
    keep = None
    if active is not None:
        keep = active[rows] & active[cols]
    if core.link_active is not None:
        live = core.link_active[links]
        keep = live if keep is None else keep & live
    if keep is not None:
        rows, cols, links = rows[keep], cols[keep], links[keep]
    data = (
        core.link_latency_ms[links]
        if weighted
        else np.ones(len(links), dtype=np.float64)
    )
    matrix = _scipy_csr_matrix(
        (data, (rows, cols)), shape=(topo.num_nodes, topo.num_nodes)
    )
    if active is None or len(core._matrix_cache) < 8:
        core._matrix_cache[key] = matrix
    return matrix


# -- numpy backend: min-plus relaxation over the padded neighbour matrix -----


def _numpy_relax(
    core: CsrSnapshot,
    sources: np.ndarray,
    active: np.ndarray | None,
    weighted: bool,
    min_only: bool,
) -> np.ndarray:
    """Bellman-Ford-style min-plus iteration, vectorised over all sources.

    ``dist[s, v]`` relaxes through ``min_d dist[s, nbr[v, d]] + w[v, d]``;
    positive weights guarantee convergence within the graph eccentricity,
    detected by fixpoint.
    """
    topo = core.topology
    n = topo.num_nodes
    num_rows = 1 if min_only else len(sources)
    dist = np.full((num_rows, n), np.inf)
    if min_only:
        dist[0, sources] = 0.0
    else:
        dist[np.arange(len(sources)), sources] = 0.0
    if topo.max_degree == 0:
        return dist

    pad = topo.neighbor_link < 0
    safe_link = np.where(pad, 0, topo.neighbor_link)
    if weighted:
        weights = core.link_latency_ms[safe_link]
    else:
        weights = np.ones(topo.neighbor_link.shape)
    weights = np.where(pad, np.inf, weights)
    if core.link_active is not None:
        weights = np.where(core.link_active[safe_link], weights, np.inf)
    if active is not None:
        weights = np.where(active[:, None], weights, np.inf)

    for _ in range(n):
        candidate = np.min(dist[:, topo.neighbors] + weights, axis=2)
        relaxed = np.minimum(dist, candidate)
        if np.array_equal(relaxed, dist):
            break
        dist = relaxed
    return dist


# -- public kernels -----------------------------------------------------------


def _distances(
    core: CsrSnapshot,
    sources,
    active,
    weighted: bool,
    method: str,
    min_only: bool = False,
) -> np.ndarray:
    mask = _as_active(core, active)
    src = _as_sources(core, sources, mask)
    backend = _pick_method(method)
    if backend == "scipy":
        graph = _scipy_graph(core, mask, weighted)
        dist = _scipy_dijkstra(
            graph,
            indices=src,
            unweighted=not weighted,
            min_only=min_only,
        )
        dist = np.atleast_2d(dist)
    else:
        dist = _numpy_relax(core, src, mask, weighted, min_only)
    if mask is not None:
        dist[:, ~mask] = np.inf
    return dist


def latency_batch(
    core: CsrSnapshot,
    sources: Sequence[int] | np.ndarray,
    active: np.ndarray | None = None,
    method: str = "auto",
) -> np.ndarray:
    """One-way ISL latencies from each source to every satellite.

    Returns ``(len(sources), N)`` float64; unreachable (or failed)
    satellites hold ``inf``.
    """
    with get_recorder().timer("fastcore.latency_batch"):
        return _distances(core, sources, active, weighted=True, method=method)


def hop_distances_batch(
    core: CsrSnapshot,
    sources: Sequence[int] | np.ndarray,
    active: np.ndarray | None = None,
    method: str = "auto",
) -> np.ndarray:
    """BFS hop counts from each source to every satellite.

    Returns ``(len(sources), N)`` int32; unreachable (or failed) satellites
    hold :data:`HOP_UNREACHABLE`.
    """
    with get_recorder().timer("fastcore.hop_distances_batch"):
        levels = _distances(core, sources, active, weighted=False, method=method)
        hops = np.full(levels.shape, HOP_UNREACHABLE, dtype=np.int32)
        reachable = np.isfinite(levels)
        hops[reachable] = levels[reachable].astype(np.int32)
        return hops


def nearest_hops(
    core: CsrSnapshot,
    targets: Iterable[int],
    active: np.ndarray | None = None,
    method: str = "auto",
) -> np.ndarray:
    """Hops from every satellite to its nearest member of ``targets``.

    Multi-source BFS; the placement/resilience primitive. Returns ``(N,)``
    int32 with :data:`HOP_UNREACHABLE` where no target can be reached.
    """
    with get_recorder().timer("fastcore.nearest_hops"):
        target_arr = np.asarray(sorted(set(int(t) for t in targets)), dtype=np.int64)
        levels = _distances(
            core, target_arr, active, weighted=False, method=method, min_only=True
        )[0]
        hops = np.full(levels.shape, HOP_UNREACHABLE, dtype=np.int32)
        reachable = np.isfinite(levels)
        hops[reachable] = levels[reachable].astype(np.int32)
        return hops


def single_source(
    core: CsrSnapshot,
    source: int,
    active: np.ndarray | None = None,
    method: str = "auto",
) -> tuple[np.ndarray, np.ndarray]:
    """(hop counts, latencies) from one source — memoised per snapshot.

    The memo only applies to undegraded queries; degraded (masked) queries
    are computed fresh since failure sets vary per call.
    """
    if active is None:
        memo = core._memo
        cached = memo.get((int(source), method))
        if cached is not None:
            return cached
    hops = hop_distances_batch(core, [source], active, method)[0]
    lats = latency_batch(core, [source], active, method)[0]
    if active is None:
        if len(core._memo) >= _MEMO_MAX_SOURCES:
            core._memo.clear()
        core._memo[(int(source), method)] = (hops, lats)
    return hops, lats


def single_source_batch(
    core: CsrSnapshot,
    sources: Sequence[int] | np.ndarray,
    active: np.ndarray | None = None,
    method: str = "auto",
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked :func:`single_source` rows for many sources at once.

    Returns ``(hops, latencies)`` of shapes ``(len(sources), N)``; row ``i``
    is bit-identical to ``single_source(core, sources[i], active, method)``
    (both backends compute each source row independently).

    Unmasked queries share :func:`single_source`'s per-snapshot memo —
    rows already computed by scalar callers are reused, rows computed here
    are left behind for them — and only the missing sources pay one batched
    kernel call. Masked (degraded) queries run as a single batched pass
    over all sources: this is precisely the per-request recompute the
    scalar chaos path pays ``len(sources)`` times over.
    """
    mask = _as_active(core, active)
    src = _as_sources(core, sources, mask)
    if mask is not None:
        hops = hop_distances_batch(core, src, mask, method)
        lats = latency_batch(core, src, mask, method)
        return hops, lats

    memo = core._memo
    rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    unique = list(dict.fromkeys(int(s) for s in src))
    for s in unique:
        cached = memo.get((s, method))
        if cached is not None:
            rows[s] = cached
    missing = [s for s in unique if s not in rows]
    if missing:
        hop_rows = hop_distances_batch(core, missing, None, method)
        lat_rows = latency_batch(core, missing, None, method)
        for i, s in enumerate(missing):
            pair = (hop_rows[i], lat_rows[i])
            rows[s] = pair
            if len(memo) >= _MEMO_MAX_SOURCES:
                memo.clear()
            memo[(s, method)] = pair
    n = core.num_nodes
    hops = np.empty((len(src), n), dtype=np.int32)
    lats = np.empty((len(src), n), dtype=np.float64)
    for i, s in enumerate(src):
        hop_row, lat_row = rows[int(s)]
        hops[i] = hop_row
        lats[i] = lat_row
    return hops, lats


def hop_ladder_batch(
    core: CsrSnapshot,
    sources: Sequence[int] | np.ndarray,
    max_hops: int,
    active: np.ndarray | None = None,
    method: str = "auto",
) -> np.ndarray:
    """Minimum latency to any satellite at *exactly* h hops, per source.

    Returns ``(len(sources), max_hops + 1)`` float64; entry ``[s, h]`` is
    the cheapest one-way latency from ``sources[s]`` to a satellite exactly
    ``h`` ISL hops away (``NaN`` when no satellite sits at that hop count).
    Column 0 is always 0.0 for reachable sources — content on the access
    satellite itself.
    """
    if max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")
    # The nested hop/latency kernels charge their own profile sites; this
    # site therefore reports the whole ladder including those legs.
    with get_recorder().timer("fastcore.hop_ladder_batch"):
        hops = hop_distances_batch(core, sources, active, method)
        lats = latency_batch(core, sources, active, method)
        num_sources = hops.shape[0]
        width = max_hops + 1
        valid = (hops >= 0) & (hops <= max_hops) & np.isfinite(lats)
        s_idx, node_idx = np.nonzero(valid)
        keys = s_idx * width + hops[s_idx, node_idx]
        flat = np.full(num_sources * width, np.inf)
        np.minimum.at(flat, keys, lats[s_idx, node_idx])
        ladder = flat.reshape(num_sources, width)
        ladder[np.isinf(ladder)] = np.nan
        return ladder
