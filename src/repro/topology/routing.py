"""Routing over snapshot graphs.

Two complementary views of "distance" coexist in the experiments:

* *latency* — Dijkstra over one-way edge latencies, used for end-to-end RTTs;
* *ISL hop count* — unweighted BFS over satellite-satellite edges, used by
  the SpaceCDN lookup ("content found within n ISL hops", paper Fig. 7).

``latency_by_hop_count`` joins the two: the cheapest latency at which content
placed exactly n hops from the access satellite can be reached.

The satellite-only queries run on the vectorised CSR core
(:mod:`repro.topology.fastcore`); the original ``networkx`` traversals are
kept as the reference implementation (``*_reference``) behind the same
dict-returning API — property tests pin the two against each other, and the
benchmarks report the speedup. :func:`shortest_path` stays on ``networkx``:
it reconstructs node paths and spans ground nodes, neither of which the
satellite kernels model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import networkx as nx
import numpy as np

from repro.errors import RoutingError
from repro.topology import fastcore
from repro.topology.graph import SnapshotGraph


@dataclass(frozen=True)
class RouteResult:
    """A routed path and its one-way latency."""

    path: tuple[Hashable, ...]
    latency_ms: float

    @property
    def hops(self) -> int:
        """Number of edges traversed."""
        return len(self.path) - 1


def shortest_path(snapshot: SnapshotGraph, src: Hashable, dst: Hashable) -> RouteResult:
    """Minimum-latency path between two nodes of a snapshot graph."""
    try:
        latency, path = nx.single_source_dijkstra(
            snapshot.graph, src, dst, weight="latency_ms"
        )
    except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
        raise RoutingError(f"no route {src!r} -> {dst!r}: {exc}") from exc
    return RouteResult(path=tuple(path), latency_ms=float(latency))


def _require_satellite(snapshot: SnapshotGraph, source: int) -> int:
    source = int(source)
    if not snapshot.has_satellite(source):
        raise RoutingError(f"unknown source satellite {source}")
    return source


def hop_distances(snapshot: SnapshotGraph, source: int) -> dict[int, int]:
    """BFS hop count from ``source`` to every satellite, over ISL edges only.

    Ground nodes and access links are excluded: a "hop" in the paper's
    Fig. 7 sense is an ISL traversal.
    """
    source = _require_satellite(snapshot, source)
    hops, _ = fastcore.single_source(snapshot.core, source, snapshot.active_mask)
    return {
        int(node): int(h)
        for node, h in enumerate(hops)
        if h != fastcore.HOP_UNREACHABLE
    }


def satellite_latencies(snapshot: SnapshotGraph, source: int) -> dict[int, float]:
    """Dijkstra one-way latency from ``source`` to every satellite (ISLs only)."""
    source = _require_satellite(snapshot, source)
    _, latencies = fastcore.single_source(snapshot.core, source, snapshot.active_mask)
    return {
        int(node): float(latency)
        for node, latency in enumerate(latencies)
        if np.isfinite(latency)
    }


def latency_by_hop_count(
    snapshot: SnapshotGraph, source: int, max_hops: int
) -> dict[int, float]:
    """For each hop count h <= max_hops, the minimum one-way latency from
    ``source`` to any satellite exactly h ISL hops away.

    Hop 0 maps to 0.0 ms (content on the access satellite itself).
    """
    if max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")
    source = _require_satellite(snapshot, source)
    ladder = fastcore.hop_ladder_batch(
        snapshot.core, [source], max_hops, snapshot.active_mask
    )[0]
    return {h: float(v) for h, v in enumerate(ladder) if not np.isnan(v)}


def min_latency_at_hops(
    snapshot: SnapshotGraph, source: int, hop_count: int
) -> float:
    """Minimum one-way latency to reach any satellite exactly ``hop_count`` hops away."""
    table = latency_by_hop_count(snapshot, source, hop_count)
    if hop_count not in table:
        raise RoutingError(
            f"no satellite exactly {hop_count} hops from {source} in this snapshot"
        )
    return table[hop_count]


# -- networkx reference implementations --------------------------------------
#
# The original per-query traversals, kept verbatim as the ground truth the
# CSR kernels are verified against (tests/test_topology_fastcore.py) and
# benchmarked against (benchmarks/bench_core_perf.py).


def hop_distances_reference(snapshot: SnapshotGraph, source: int) -> dict[int, int]:
    """``networkx`` BFS reference for :func:`hop_distances`."""
    if source not in snapshot.graph:
        raise RoutingError(f"unknown source satellite {source}")
    sat_graph = snapshot.graph.subgraph(snapshot.satellite_nodes())
    return {
        int(node): int(d)
        for node, d in nx.single_source_shortest_path_length(sat_graph, source).items()
    }


def satellite_latencies_reference(
    snapshot: SnapshotGraph, source: int
) -> dict[int, float]:
    """``networkx`` Dijkstra reference for :func:`satellite_latencies`."""
    if source not in snapshot.graph:
        raise RoutingError(f"unknown source satellite {source}")
    sat_graph = snapshot.graph.subgraph(snapshot.satellite_nodes())
    return {
        int(node): float(d)
        for node, d in nx.single_source_dijkstra_path_length(
            sat_graph, source, weight="latency_ms"
        ).items()
    }


def latency_by_hop_count_reference(
    snapshot: SnapshotGraph, source: int, max_hops: int
) -> dict[int, float]:
    """``networkx`` reference for :func:`latency_by_hop_count`."""
    if max_hops < 0:
        raise RoutingError(f"max_hops must be non-negative, got {max_hops}")
    hops = hop_distances_reference(snapshot, source)
    latencies = satellite_latencies_reference(snapshot, source)
    result: dict[int, float] = {}
    for node, h in hops.items():
        if h > max_hops:
            continue
        latency = latencies.get(node)
        if latency is None:
            continue
        best = result.get(h)
        if best is None or latency < best:
            result[h] = latency
    return result
