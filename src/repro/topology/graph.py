"""Time-snapshot network graphs over the constellation.

A :class:`SnapshotGraph` freezes the constellation at one instant: satellite
nodes connected by +Grid ISLs weighted with one-way latency (speed-of-light
propagation over the current link length, plus optical-terminal switching),
optionally joined by ground nodes (user terminals, gateways) attached to
every satellite they can currently see.

The satellite topology lives in flat CSR arrays (see
:mod:`repro.topology.fastcore`) computed in one vectorised gather per
snapshot; the ``networkx`` view is materialised lazily, only for callers
that need a graph object (path reconstruction, ground-node routing). The
vectorised kernels never pay for it.

Node naming: satellites are integer indices; ground nodes are strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx
import numpy as np

from repro.constants import (
    ISL_HOP_PROCESSING_MS,
    MIN_ELEVATION_USER_DEG,
    SPEED_OF_LIGHT_KM_S,
    STARLINK_PROCESSING_DELAY_MS,
    STARLINK_SCHEDULING_DELAY_MS,
)
from repro.errors import ConfigurationError, VisibilityError
from repro.geo.coordinates import GeoPoint
from repro.orbits.walker import Constellation
from repro.topology.fastcore import CsrSnapshot, csr_topology, link_weights


def isl_latency_ms(distance_km: float) -> float:
    """One-way latency of an optical ISL of the given length.

    Free-space optical links run at vacuum light speed; each hop adds a small
    switching delay at the receiving optical terminal.
    """
    if distance_km < 0:
        raise ConfigurationError(f"negative ISL length: {distance_km}")
    return distance_km / SPEED_OF_LIGHT_KM_S * 1000.0 + ISL_HOP_PROCESSING_MS


def access_latency_ms(slant_range_km: float) -> float:
    """One-way latency of the Ku-band access link (terminal <-> satellite).

    Radio propagation at c plus the MAC scheduling delay (the terminal must
    wait for its uplink grant) and satellite processing.
    """
    if slant_range_km < 0:
        raise ConfigurationError(f"negative slant range: {slant_range_km}")
    return (
        slant_range_km / SPEED_OF_LIGHT_KM_S * 1000.0
        + STARLINK_SCHEDULING_DELAY_MS
        + STARLINK_PROCESSING_DELAY_MS
    )


@dataclass
class SnapshotGraph:
    """The constellation graph at a single instant.

    ``core`` holds the CSR satellite topology with this instant's link
    weights; ``graph`` is a lazily built ``networkx`` view whose edge
    weights are one-way latencies in milliseconds under the key
    ``"latency_ms"``. ``failed`` marks satellites removed from service
    (their ISLs carry nothing and they serve nothing).
    """

    constellation: Constellation
    t_s: float
    positions: np.ndarray
    core: CsrSnapshot
    ground_nodes: dict[str, GeoPoint] = field(default_factory=dict)
    failed: frozenset[int] = frozenset()
    _graph: nx.Graph | None = field(default=None, repr=False, compare=False)

    @property
    def graph(self) -> nx.Graph:
        """The ``networkx`` view, materialised on first access."""
        if self._graph is None:
            self._graph = self._materialise()
        return self._graph

    def _materialise(self) -> nx.Graph:
        topo = self.core.topology
        graph = nx.Graph()
        graph.add_nodes_from(
            i for i in range(topo.num_nodes) if i not in self.failed
        )
        distances = self.core.link_distance_km
        latencies = self.core.link_latency_ms
        link_active = self.core.link_active
        for i, (a, b) in enumerate(zip(topo.link_a, topo.link_b)):
            a, b = int(a), int(b)
            if a in self.failed or b in self.failed:
                continue
            if link_active is not None and not link_active[i]:
                continue
            graph.add_edge(
                a,
                b,
                latency_ms=float(latencies[i]),
                kind=topo.link_kind[i],
                distance_km=float(distances[i]),
            )
        return graph

    @property
    def active_mask(self) -> np.ndarray | None:
        """Boolean per-satellite liveness mask (``None`` when nothing failed)."""
        if not self.failed:
            return None
        mask = np.ones(self.core.num_nodes, dtype=bool)
        mask[list(self.failed)] = False
        return mask

    def satellite_nodes(self) -> list[int]:
        """All live satellite node indices."""
        if self._graph is not None:
            return [n for n in self._graph.nodes if isinstance(n, int)]
        return [i for i in range(self.core.num_nodes) if i not in self.failed]

    def has_satellite(self, index: int) -> bool:
        """Whether ``index`` is a live satellite of this snapshot."""
        return 0 <= index < self.core.num_nodes and index not in self.failed

    def copy(self) -> "SnapshotGraph":
        """An independent snapshot sharing the immutable CSR arrays.

        Mutations (ground-node attachment, manual graph edits) on the copy
        never touch the original — this is what makes cached snapshots safe
        to hand out.
        """
        return SnapshotGraph(
            constellation=self.constellation,
            t_s=self.t_s,
            positions=self.positions,
            core=self.core,
            ground_nodes=dict(self.ground_nodes),
            failed=self.failed,
            _graph=None if self._graph is None else self._graph.copy(),
        )

    def with_core(self, core: CsrSnapshot) -> "SnapshotGraph":
        """A sibling snapshot routed over a different (degraded) CSR core.

        The networkx view is dropped — it rematerialises lazily against the
        new core's link weights and liveness mask. Ground nodes are *not*
        carried over (their access edges were priced against the old view).
        """
        if core.topology is not self.core.topology:
            raise ConfigurationError("core belongs to a different topology")
        return SnapshotGraph(
            constellation=self.constellation,
            t_s=self.t_s,
            positions=self.positions,
            core=core,
            failed=self.failed,
        )

    def attach_ground_node(
        self,
        name: str,
        point: GeoPoint,
        min_elevation_deg: float = MIN_ELEVATION_USER_DEG,
        max_links: int | None = None,
    ) -> list[int]:
        """Attach a ground node to every satellite it can currently see.

        Returns the satellite indices linked. Raises
        :class:`VisibilityError` when no satellite is visible.
        """
        from repro.orbits.visibility import visible_satellites

        if name in self.graph:
            raise ConfigurationError(f"ground node {name!r} already attached")
        visible = visible_satellites(
            self.constellation, point, self.t_s, min_elevation_deg
        )
        visible = [sat for sat in visible if sat.index not in self.failed]
        if not visible:
            raise VisibilityError(f"no satellite visible from ground node {name!r}")
        if max_links is not None:
            visible = visible[:max_links]

        self.graph.add_node(name)
        self.ground_nodes[name] = point
        linked = []
        for sat in visible:
            self.graph.add_edge(
                name,
                sat.index,
                latency_ms=access_latency_ms(sat.slant_range_km),
                kind="access",
            )
            linked.append(sat.index)
        return linked

    def edge_latency_ms(self, a: Hashable, b: Hashable) -> float:
        """One-way latency of the edge between two adjacent nodes."""
        return float(self.graph[a][b]["latency_ms"])


def build_snapshot(constellation: Constellation, t_s: float) -> SnapshotGraph:
    """Build the ISL snapshot of the constellation at time ``t_s``.

    All link distances come from one vectorised gather over the endpoint
    positions; the ``networkx`` view is deferred until something asks for it.
    """
    positions = constellation.positions_ecef(t_s)
    topology = csr_topology(constellation.config)
    distances, latencies = link_weights(topology, positions)
    core = CsrSnapshot(
        topology=topology, link_distance_km=distances, link_latency_ms=latencies
    )
    return SnapshotGraph(
        constellation=constellation, t_s=t_s, positions=positions, core=core
    )
